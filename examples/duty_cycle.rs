//! Duty-cycle economics: what log-many-test diagnosis buys a machine
//! operator.
//!
//! Simulates eight hours of a drifting 11-qubit trap under three
//! maintenance policies and compares the fraction of wall clock spent on
//! customer jobs (the paper's Fig. 2 pie / §IX uptime argument):
//!
//! * `periodic`  — recalibrate every coupling on a fixed cadence
//!   (contemporary practice: ~half the clock goes to maintenance);
//! * `diagnose`  — minute canary + Fig. 5 diagnosis, recalibrate only
//!   diagnosed couplings;
//! * `map-around` — same, but tolerate up to 3 known-faulty couplings by
//!   routing circuits around them (§VIII), recalibrating only when the
//!   budget is exceeded.
//!
//! Run with: `cargo run --release --example duty_cycle`

use itqc::core::cost::CostModel;
use itqc::core::multi_fault::diagnose_all_excluding;
use itqc::core::testplan::ScoreMode;
use itqc::prelude::*;
use itqc_faults::drift::{JumpDrift, OrnsteinUhlenbeckDrift};
use std::collections::BTreeSet;

const N: usize = 11;
const HOURS: f64 = 8.0;

fn drift() -> JumpDrift {
    JumpDrift {
        base: OrnsteinUhlenbeckDrift { tau_minutes: 240.0, sigma: 0.03 },
        jumps_per_minute: 0.001,
        jump_scale: 0.30,
    }
}

fn config() -> MultiFaultConfig {
    MultiFaultConfig {
        reps_ladder: vec![2, 4],
        threshold: 0.5,
        canary_threshold: 0.4,
        shots: 300,
        canary_shots: 30,
        max_faults: 6,
        decoder: itqc::core::decoder::DecoderPolicy::SetCoverFallback,
        ranked_sigma: itqc::core::threshold::observation_sigma(300, 0.0, 4),
        score: ScoreMode::ExactTarget,
        canary_score: ScoreMode::ExactTarget,
        max_threshold_retunes: 4,
        fusion_rounds: 0,
        fault_magnitude: 0.10,
        canary_rotations: 0,
        canary_seed: 0,
    }
}

fn periodic(seed: u64) -> VirtualTrap {
    let mut trap = VirtualTrap::new(TrapConfig::ideal(N, seed));
    let model = CostModel::paper_defaults();
    let d = drift();
    let mut minutes = 0.0;
    while minutes < HOURS * 60.0 {
        for _ in 0..10 {
            trap.bill_job_time(30.0);
            trap.apply_drift(0.5, &d);
            minutes += 0.5;
        }
        trap.bill_test_time(model.point_check_time(N));
        for c in trap.couplings() {
            trap.recalibrate(c);
        }
        minutes += model.point_check_time(N) / 60.0;
    }
    trap
}

fn diagnose_policy(seed: u64, tolerate: usize) -> (VirtualTrap, usize) {
    let mut trap = VirtualTrap::new(TrapConfig::ideal(N, seed));
    let d = drift();
    let cfg = config();
    let mut known_faulty: BTreeSet<Coupling> = BTreeSet::new();
    let mut recals = 0usize;
    let mut minutes = 0.0;
    while minutes < HOURS * 60.0 {
        trap.bill_job_time(60.0);
        trap.apply_drift(1.0, &d);
        minutes += 1.0;
        // Quarantined couplings are excluded from the canary and all
        // tests (Corollary V.12) — they are known-bad and mapped around.
        let report = diagnose_all_excluding(&mut trap, N, &cfg, &known_faulty);
        for df in &report.diagnosed {
            known_faulty.insert(df.coupling);
        }
        // Map-around budget: only recalibrate once too many couplings are
        // out of action for circuits to route around (§VIII / Fig. 11:
        // typical workloads use ~1/3 of couplings, leaving slack).
        if known_faulty.len() > tolerate {
            for c in std::mem::take(&mut known_faulty) {
                trap.recalibrate(c);
                recals += 1;
            }
        }
    }
    // Settle the books at shift end.
    for c in std::mem::take(&mut known_faulty) {
        trap.recalibrate(c);
        recals += 1;
    }
    (trap, recals)
}

fn main() {
    println!("8-hour shift on a drifting {N}-qubit trap\n");
    let p = periodic(11);
    let (d0, r0) = diagnose_policy(12, 0);
    let (d3, r3) = diagnose_policy(13, 3);

    println!("{:<34}{:>10}{:>14}{:>10}", "policy", "jobs", "maintenance", "recals");
    println!("{}", "-".repeat(68));
    for (name, trap, recals) in [
        ("periodic full recalibration", &p, p.couplings().len() * 16),
        ("canary + diagnosis", &d0, r0),
        ("canary + diagnosis + map-around", &d3, r3),
    ] {
        let jobs = trap.duty().uptime_fraction();
        let maint = trap.duty().overhead_fraction();
        println!("{name:<34}{:>9.1}%{:>13.1}%{recals:>10}", 100.0 * jobs, 100.0 * maint);
    }

    println!(
        "\ntakeaway: selective, test-driven recalibration converts most maintenance\n\
         time back into job time; tolerating a few mapped-around faults postpones\n\
         recalibration further (the paper's §VIII discussion)."
    );
}
