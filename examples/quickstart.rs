//! Quickstart: diagnose a single miscalibrated coupling with log-many
//! tests.
//!
//! Builds an 8-qubit virtual ion trap, hides a 40% under-rotation on one
//! coupling, and runs the paper's single-fault protocol: 2n = 6
//! non-adaptive class tests, one adaptive round of equal-bits tests, and a
//! verification test — at most 3n − 1 = 8 tests (+1 verify) instead of
//! C(8,2) = 28 point checks.
//!
//! Run with: `cargo run --release --example quickstart`

use itqc::prelude::*;

fn main() {
    // --- the machine (what a lab would hand you) ------------------------
    let n_qubits = 8;
    let hidden_fault = Coupling::new(2, 6);
    let mut trap = VirtualTrap::new(TrapConfig::ideal(n_qubits, 42));
    trap.inject_fault(hidden_fault, 0.40);
    println!("machine: {n_qubits} qubits, {} couplings", trap.couplings().len());
    println!("(hidden truth: {hidden_fault} is 40% under-rotated)\n");

    // --- the diagnosis ---------------------------------------------------
    let protocol = SingleFaultProtocol::new(n_qubits, 4, 0.5, 300);
    let report = protocol.diagnose(&mut trap);

    println!("tests executed ({} total):", report.tests_run());
    for t in &report.tests {
        println!(
            "  {:<22} fidelity {:.3}  {}",
            t.label,
            t.fidelity,
            if t.failed { "FAIL" } else { "pass" }
        );
    }
    println!("\nfirst-round syndrome: {}", report.syndrome);
    println!("adaptive rounds used: {}", report.adaptations);

    match report.diagnosis {
        Diagnosis::Fault(c) => {
            println!("\ndiagnosis: coupling {c} is faulty");
            assert_eq!(c, hidden_fault, "protocol must find the planted fault");
            trap.recalibrate(c);
            println!("recalibrated {c}; true error now {:+.3}", trap.true_under_rotation(c));
        }
        ref other => println!("\ndiagnosis: {other:?}"),
    }

    // --- the accounting ---------------------------------------------------
    println!(
        "\ncost: {} tests vs {} point checks (brute force); machine time {:.1} s",
        report.tests_run(),
        trap.couplings().len(),
        trap.clock_seconds()
    );
}
