//! Mapping circuits around diagnosed faulty couplings (§VIII).
//!
//! All-to-all connectivity means a diagnosed faulty coupling need not stop
//! the machine: if the workload doesn't use every coupling (Fig. 11 —
//! typical circuits use ~1/3 of them), a qubit relabeling can often route
//! the computation around the bad pair. This example:
//!
//! 1. diagnoses a faulty coupling on an 8-qubit trap,
//! 2. takes a QAOA workload that *does* use that coupling,
//! 3. searches qubit permutations for one avoiding all faulty couplings,
//! 4. shows the remapped circuit runs at full fidelity while the naive
//!    mapping visibly degrades.
//!
//! Run with: `cargo run --release --example map_around_faults`

use itqc::circuit::{library, transpile};
use itqc::prelude::*;
use std::collections::BTreeSet;

/// Relabels the qubits of a circuit.
fn permute(circuit: &Circuit, perm: &[usize]) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    for op in circuit.ops() {
        let qs = op.qubits();
        match qs.len() {
            1 => {
                out.push(Op::one(op.gate, perm[qs[0]]));
            }
            _ => {
                out.push(Op::two(op.gate, perm[qs[0]], perm[qs[1]]));
            }
        }
    }
    out
}

/// Searches (randomised greedy) for a permutation whose used couplings
/// avoid `faulty`. Returns the permutation if found.
fn find_mapping(
    circuit: &Circuit,
    faulty: &BTreeSet<Coupling>,
    tries: usize,
) -> Option<Vec<usize>> {
    let n = circuit.n_qubits();
    let used = circuit.used_couplings();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed as usize
    };
    for _ in 0..tries {
        let ok = used.iter().all(|c| !faulty.contains(&Coupling::new(perm[c.lo()], perm[c.hi()])));
        if ok {
            return Some(perm);
        }
        // Random transposition.
        let i = next() % n;
        let j = next() % n;
        if i != j {
            perm.swap(i, j);
        }
    }
    None
}

fn main() {
    let n = 8;
    let mut trap = VirtualTrap::new(TrapConfig::ideal(n, 99));
    trap.inject_fault(Coupling::new(1, 2), 0.35);

    // Step 1: diagnose.
    let protocol = SingleFaultProtocol::new(n, 4, 0.5, 300);
    let report = protocol.diagnose(&mut trap);
    let Diagnosis::Fault(bad) = report.diagnosis else {
        panic!("expected a diagnosis, got {:?}", report.diagnosis);
    };
    println!("diagnosed faulty coupling: {bad} ({} tests)\n", report.tests_run());
    let faulty: BTreeSet<Coupling> = [bad].into();

    // Step 2: a workload that uses the faulty coupling.
    let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 0)];
    let qaoa = library::qaoa_maxcut(n, &edges, &[(0.5, 0.9)]);
    let native = transpile::to_native_optimized(&qaoa);
    println!(
        "workload: QAOA ring, uses {} of {} couplings (incl. {bad}: {})",
        native.used_couplings().len(),
        n * (n - 1) / 2,
        native.used_couplings().contains(&bad)
    );

    // Step 3: find a remapping that avoids it.
    let perm = find_mapping(&native, &faulty, 10_000).expect("a ring has many embeddings");
    println!("found qubit relabeling: {perm:?}");
    let remapped = permute(&native, &perm);
    assert!(remapped.used_couplings().iter().all(|c| !faulty.contains(c)));

    // Step 4: compare output quality on the faulty machine.
    let shots = 2000;
    let ideal = itqc::sim::run(&native);
    let count_naive = trap.run_circuit(&native, shots, Activity::Jobs);
    let count_mapped = trap.run_circuit(&remapped, shots, Activity::Jobs);

    // Score: total-variation-ish overlap between observed counts and the
    // ideal distribution (remapped outcomes are un-permuted for scoring).
    let inv: Vec<usize> = {
        let mut v = vec![0; n];
        for (i, &p) in perm.iter().enumerate() {
            v[p] = i;
        }
        v
    };
    let unpermute = |basis: usize| -> usize {
        let mut out = 0;
        for (q, &iq) in inv.iter().enumerate() {
            if (basis >> q) & 1 == 1 {
                out |= 1 << iq;
            }
        }
        out
    };
    let fidelity_of = |counts: &std::collections::BTreeMap<usize, usize>, mapped: bool| -> f64 {
        let mut overlap = 0.0;
        for (&basis, &cnt) in counts {
            let logical = if mapped { unpermute(basis) } else { basis };
            let p_model = ideal.probability(logical);
            overlap += (cnt as f64 / shots as f64).min(p_model);
        }
        overlap
    };
    let f_naive = fidelity_of(&count_naive, false);
    let f_mapped = fidelity_of(&count_mapped, true);
    println!("\ndistribution overlap with ideal (higher is better):");
    println!("  naive mapping (uses faulty {bad}):  {f_naive:.3}");
    println!("  remapped around the fault:          {f_mapped:.3}");
    assert!(f_mapped > f_naive, "mapping around the fault must improve output quality");
    println!(
        "\nthe faulty coupling stays quarantined until the next scheduled\n\
         recalibration — the machine keeps serving jobs (paper §VIII)."
    );
}
