//! A §VI-style debugging session: artificial faults, single-output tests,
//! thresholds, sequential diagnosis.
//!
//! Recreates the paper's hardware validation narrative end to end:
//! 1. inject the Fig. 6 artificial errors (47% on {0,4}, 22% on {0,7});
//! 2. run the 2-MS and 4-MS first-round batteries and read them against
//!    the paper's 0.45 / 0.25 thresholds;
//! 3. walk the full Fig. 5 multi-fault pipeline, which first isolates the
//!    {0,4} fault from its syndrome and then catches the bit-complementary
//!    {0,7} — invisible to round 1 — through the adaptive round
//!    (footnote 9's case);
//! 4. verify the machine is clean after recalibration.
//!
//! Run with: `cargo run --release --example debug_session`

use itqc::core::first_round_classes;
use itqc::core::testplan::ScoreMode;
use itqc::prelude::*;
use std::collections::BTreeSet;

fn main() {
    let n = 8;
    let mut trap = VirtualTrap::new(TrapConfig::ideal(n, 2022));
    trap.inject_fault(Coupling::new(0, 4), 0.47);
    trap.inject_fault(Coupling::new(0, 7), 0.22);
    println!("injected: {{0,4}} at 47%, {{0,7}} at 22% (the paper's Fig. 6 setup)\n");

    // --- step 1: the test battery ---------------------------------------
    let space = LabelSpace::new(n);
    let none = BTreeSet::new();
    println!("first-round battery (300 shots per test):");
    println!("{:<8} {:>10} {:>8} {:>10} {:>8}", "test", "2MS fid", "0.45?", "4MS fid", "0.25?");
    for class in first_round_classes(&space) {
        let couplings = class.couplings(&space, &none);
        let mut row = format!("{class:<8}");
        for (reps, thr) in [(2usize, 0.45), (4usize, 0.25)] {
            let spec = TestSpec::for_couplings(format!("{class}"), &couplings, reps);
            let hits = trap.run_xx_test(&spec.gates, spec.target, 300, Activity::Testing);
            let f = hits as f64 / 300.0;
            row.push_str(&format!(" {f:>10.3} {:>8}", if f < thr { "FAIL" } else { "pass" }));
        }
        println!("{row}");
    }
    println!(
        "\nreading: {{0,4}} shares bits 0,1 -> (0,0) and (1,0) fail; {{0,7}} is\n\
         bit-complementary and trips nothing in round 1.\n"
    );

    // --- step 2: full sequential diagnosis ------------------------------
    // The 47% fault is caught at 4MS (it nearly cancels at 8MS — the
    // footnote-8 aliasing); the 22% fault needs 8MS amplification to fall
    // below the 0.5 threshold. The ladder covers both.
    let config = MultiFaultConfig {
        reps_ladder: vec![2, 4, 8],
        threshold: 0.5,
        canary_threshold: 0.5,
        shots: 300,
        canary_shots: 100,
        max_faults: 4,
        decoder: itqc::core::decoder::DecoderPolicy::Ranked,
        ranked_sigma: itqc::core::threshold::observation_sigma(300, 0.0, 4),
        score: ScoreMode::ExactTarget,
        canary_score: ScoreMode::ExactTarget,
        max_threshold_retunes: 4,
        fusion_rounds: 2,
        fault_magnitude: 0.10,
        canary_rotations: 0,
        canary_seed: 0,
    };
    let report = diagnose_all(&mut trap, n, &config);
    println!("sequential diagnosis (Fig. 5 pipeline):");
    for (k, d) in report.diagnosed.iter().enumerate() {
        println!(
            "  {}. {} isolated at {}MS amplification (true error {:+.0}%)",
            k + 1,
            d.coupling,
            d.reps,
            100.0 * trap.true_under_rotation(d.coupling)
        );
    }
    println!(
        "  converged: {} | {} tests | {} adaptive rounds (paper budget 4k+1 = {})",
        report.converged,
        report.tests_run,
        report.adaptations,
        4 * report.diagnosed.len() + 1
    );
    let found: BTreeSet<Coupling> = report.couplings().into_iter().collect();
    let expect: BTreeSet<Coupling> = [Coupling::new(0, 4), Coupling::new(0, 7)].into();
    assert_eq!(found, expect, "both injected faults must be diagnosed");

    // --- step 3: fix and confirm -----------------------------------------
    for c in report.couplings() {
        trap.recalibrate(c);
    }
    let all = trap.couplings();
    let spec = TestSpec::for_couplings("post-recal canary", &all, 4);
    let hits = trap.run_xx_test(&spec.gates, spec.target, 300, Activity::Testing);
    println!("\npost-recalibration canary fidelity: {:.3} (machine is clean)", hits as f64 / 300.0);
    println!("\nduty ledger:\n{}", trap.duty());
}
