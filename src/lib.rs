//! # itqc — detecting qubit-coupling faults in ion-trap quantum computers
//!
//! A Rust reproduction of *"Detecting Qubit-coupling Faults in Ion-trap
//! Quantum Computers"* (Maksymov, Nguyen, Chaplin, Nam, Markov — HPCA
//! 2022, arXiv:2108.03708), built as a full stack: quantum circuit layer,
//! two simulator backends, the paper's fault/noise models, a virtual
//! ion-trap machine, and the combinatorial fault-testing protocols that
//! locate miscalibrated couplings among `C(N,2)` candidates with
//! `O(log N)` test circuits.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`math`] | complex arithmetic, small linear algebra, eigensolver, FFT, samplers |
//! | [`circuit`] | gate set (incl. Mølmer–Sørensen), circuit IR, algorithm library, native transpiler |
//! | [`sim`] | dense state-vector backend + exact commuting-XX engine |
//! | [`backend`] | pluggable simulation-backend subsystem: `SimBackend` trait, dense + scalable analytic engines, prepared-circuit cache |
//! | [`faults`] | Table-I taxonomy, Fig.-4 fault models, 1/f noise, SPAM, drift, Eq. 1–2 estimators |
//! | [`trap`] | virtual machine with hidden calibration state, ion-chain physics, timing/duty model |
//! | [`core`] | THE PAPER'S CONTRIBUTION: classes, syndromes, single-/multi-fault protocols, baselines, cost model |
//! | [`fleet`] | `fleetd` fleet service: sharded tick scheduler, shared prepared-circuit cache, batched test plans |
//! | [`obs`] | observability: deterministic counters/histograms, wall-clock spans, JSON metrics documents |
//!
//! # Quickstart
//!
//! ```
//! use itqc::prelude::*;
//!
//! // An 8-qubit machine with one hidden miscalibration.
//! let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 7));
//! trap.inject_fault(Coupling::new(2, 6), 0.40);
//!
//! // Diagnose with the 3n−1-test protocol (4 MS gates per coupling,
//! // 300 shots per test).
//! let protocol = SingleFaultProtocol::new(8, 4, 0.5, 300);
//! let report = protocol.diagnose(&mut trap);
//! assert_eq!(report.diagnosis, Diagnosis::Fault(Coupling::new(2, 6)));
//! ```

#![warn(missing_docs)]

pub use itqc_backend as backend;
pub use itqc_circuit as circuit;
pub use itqc_core as core;
pub use itqc_faults as faults;
pub use itqc_fleet as fleet;
pub use itqc_math as math;
pub use itqc_obs as obs;
pub use itqc_sim as sim;
pub use itqc_trap as trap;

/// The commonly used types in one import.
pub mod prelude {
    pub use itqc_backend::{Backend, BackendChoice, PreparedCircuit, SimBackend};
    pub use itqc_circuit::{Circuit, Coupling, Gate, Op};
    pub use itqc_core::{
        diagnose_all, DecoderPolicy, Diagnosis, ExactExecutor, LabelSpace, MultiFaultConfig,
        SingleFaultProtocol, Syndrome, TestExecutor, TestSpec,
    };
    pub use itqc_faults::{CouplingFault, FaultKind, IonTrapNoise, SpamModel};
    pub use itqc_fleet::{Fleet, FleetConfig, FleetSummary};
    pub use itqc_math::Complex64;
    pub use itqc_sim::{run, StateVector, XxCircuit};
    pub use itqc_trap::{Activity, TrapConfig, VirtualTrap};
}
