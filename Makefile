# Convenience targets for the itqc workspace. Everything builds fully
# offline (dependencies are vendored under vendor/).

CARGO ?= cargo

# The 13 evaluation binaries, in paper order (extensions last).
REPRO_BINS := table1 fig2 fig3 fig6 fig7 fig8 fig9 fig10 fig11 table2 rb ablations fig_adv

.PHONY: build test bench fleet-bench repro cost-report chain-bench obs-check fmt lint clean

## build: release build of every workspace member
build:
	$(CARGO) build --release

## test: tier-1 gate — release build plus the full test suite
test:
	$(CARGO) build --release
	$(CARGO) test -q

## bench: run the criterion benches (vendored shim prints to stdout)
bench:
	$(CARGO) bench -p itqc-bench

## fleet-bench: the BENCH_BASELINE.json fleetd workload — 256 traps for
## one simulated hour, summary diffed across worker counts (the stdout
## must be bit-identical; only the stderr wall-clock lines may differ)
fleet-bench:
	$(CARGO) build --release -p itqc-fleet --bin fleetd -p itqc-bench --bin loadgen
	./target/release/loadgen --traps=256 --minutes=60 --workers=1 > loadgen.w1.out
	./target/release/loadgen --traps=256 --minutes=60 --workers=auto > loadgen.wauto.out
	diff loadgen.w1.out loadgen.wauto.out
	@cat loadgen.w1.out
	@rm -f loadgen.w1.out loadgen.wauto.out

## cost-report: cost model vs measured wall-clock (the CI gate). With
## `--cost-report` the obs layer reprices each phase from observed
## counters (memoized trials at lookup cost), so the gated ratio is
## observed/measured: fig8 N=8 stays in [0.25, 4.0]; table2 — whose
## static walk prediction historically over-counted ~3x — must now land
## in the tighter [0.25, 2.0]
cost-report:
	$(CARGO) build --release -p itqc-bench --bin fig8 --bin table2
	./target/release/fig8 --sizes=8 --cost-report >/dev/null 2>cost-report.err
	@cat cost-report.err
	@awk '/^cost-report fig8:/ { r = $$NF + 0; found = 1; \
		if (r < 0.25 || r > 4.0) { print "cost-model ratio " r " outside [0.25, 4.0]"; exit 1 } } \
		END { if (!found) { print "no cost-report line on stderr"; exit 1 } }' cost-report.err
	./target/release/table2 --cost-report >/dev/null 2>cost-report.err
	@cat cost-report.err
	@awk '/^cost-report table2:/ { r = $$NF + 0; found = 1; \
		if (r < 0.25 || r > 2.0) { print "table2 cost-model ratio " r " outside [0.25, 2.0]"; exit 1 } } \
		END { if (!found) { print "no cost-report line on stderr"; exit 1 } }' cost-report.err
	@rm -f cost-report.err

## chain-bench: chain-sampler cost gate — the fig8 N=64 panel runs on
## 32-qubit chain-sampled components (beyond the joint-table cap); the
## chain cost terms' predicted/measured ratio must stay in [0.25, 4.0]
chain-bench:
	$(CARGO) build --release -p itqc-bench --bin fig8
	./target/release/fig8 --sizes=64 --cost-report >/dev/null 2>chain-bench.err
	@cat chain-bench.err
	@awk '/^cost-report fig8:/ { r = $$NF + 0; found = 1; \
		if (r < 0.25 || r > 4.0) { print "chain cost-model ratio " r " outside [0.25, 4.0]"; exit 1 } } \
		END { if (!found) { print "no cost-report line on stderr"; exit 1 } }' chain-bench.err
	@rm -f chain-bench.err

## obs-check: the observability contract, binary level — (1) the fig8
## deterministic metrics snapshot is bit-identical at 1 vs 8 threads and
## --metrics leaves stdout byte-identical; (2) same for loadgen at 1 vs
## 8 workers; (3) the registry adds no measurable overhead to the fig9
## hot path (metrics run within 5% + 0.5 s of the plain run); (4) the
## counter micro-bench runs clean
obs-check:
	$(CARGO) build --release -p itqc-bench --bin fig8 --bin fig9 --bin loadgen
	./target/release/fig8 --fast --sizes=8 --threads=1 --metrics=obs.t1.json > obs.t1.out
	./target/release/fig8 --fast --sizes=8 --threads=8 --metrics=obs.t8.json > obs.t8.out
	./target/release/fig8 --fast --sizes=8 --threads=1 > obs.plain.out
	diff obs.t1.out obs.t8.out
	diff obs.t1.out obs.plain.out
	@grep '"deterministic"' obs.t1.json > obs.t1.det
	@grep '"deterministic"' obs.t8.json > obs.t8.det
	diff obs.t1.det obs.t8.det
	@echo "obs-check fig8: deterministic snapshot thread-invariant, stdout unchanged"
	./target/release/loadgen --traps=32 --minutes=10 --workers=1 --metrics=obs.w1.json \
		> obs.w1.out 2>/dev/null
	./target/release/loadgen --traps=32 --minutes=10 --workers=8 --metrics=obs.w8.json \
		> obs.w8.out 2>/dev/null
	diff obs.w1.out obs.w8.out
	@grep '"deterministic"' obs.w1.json > obs.w1.det
	@grep '"deterministic"' obs.w8.json > obs.w8.det
	diff obs.w1.det obs.w8.det
	@echo "obs-check loadgen: deterministic snapshot worker-invariant, stdout unchanged"
	@t0=$$(date +%s.%N); ./target/release/fig9 --fast --threads=1 >/dev/null; \
	t1=$$(date +%s.%N); \
	./target/release/fig9 --fast --threads=1 --metrics=obs.fig9.json >/dev/null; \
	t2=$$(date +%s.%N); \
	awk -v a="$$t0" -v b="$$t1" -v c="$$t2" 'BEGIN { td = b - a; te = c - b; \
		printf "obs-check fig9 overhead: plain %.2f s, metrics %.2f s\n", td, te; \
		if (te > td * 1.05 + 0.5) { print "metrics overhead above the 5% gate"; exit 1 } }'
	$(CARGO) bench -p itqc-obs
	@rm -f obs.t1.* obs.t8.* obs.plain.out obs.w1.* obs.w8.* obs.fig9.json

## repro: regenerate every paper table/figure (see EXPERIMENTS.md)
repro: build
	@set -e; for b in $(REPRO_BINS); do \
		echo; echo "==================== $$b ===================="; \
		$(CARGO) run --release -q -p itqc-bench --bin $$b; \
	done

## fmt: apply the workspace formatting style
fmt:
	$(CARGO) fmt

## lint: what CI enforces — fmt --check and clippy with warnings denied
lint:
	$(CARGO) fmt --check
	$(CARGO) clippy --all-targets -- -D warnings

clean:
	$(CARGO) clean
