# Convenience targets for the itqc workspace. Everything builds fully
# offline (dependencies are vendored under vendor/).

CARGO ?= cargo

# The 13 evaluation binaries, in paper order (extensions last).
REPRO_BINS := table1 fig2 fig3 fig6 fig7 fig8 fig9 fig10 fig11 table2 rb ablations fig_adv

.PHONY: build test bench repro fmt lint clean

## build: release build of every workspace member
build:
	$(CARGO) build --release

## test: tier-1 gate — release build plus the full test suite
test:
	$(CARGO) build --release
	$(CARGO) test -q

## bench: run the criterion benches (vendored shim prints to stdout)
bench:
	$(CARGO) bench -p itqc-bench

## repro: regenerate every paper table/figure (see EXPERIMENTS.md)
repro: build
	@set -e; for b in $(REPRO_BINS); do \
		echo; echo "==================== $$b ===================="; \
		$(CARGO) run --release -q -p itqc-bench --bin $$b; \
	done

## fmt: apply the workspace formatting style
fmt:
	$(CARGO) fmt

## lint: what CI enforces — fmt --check and clippy with warnings denied
lint:
	$(CARGO) fmt --check
	$(CARGO) clippy --all-targets -- -D warnings

clean:
	$(CARGO) clean
