# Convenience targets for the itqc workspace. Everything builds fully
# offline (dependencies are vendored under vendor/).

CARGO ?= cargo

# The 13 evaluation binaries, in paper order (extensions last).
REPRO_BINS := table1 fig2 fig3 fig6 fig7 fig8 fig9 fig10 fig11 table2 rb ablations fig_adv

.PHONY: build test bench fleet-bench repro fmt lint clean

## build: release build of every workspace member
build:
	$(CARGO) build --release

## test: tier-1 gate — release build plus the full test suite
test:
	$(CARGO) build --release
	$(CARGO) test -q

## bench: run the criterion benches (vendored shim prints to stdout)
bench:
	$(CARGO) bench -p itqc-bench

## fleet-bench: the BENCH_BASELINE.json fleetd workload — 256 traps for
## one simulated hour, summary diffed across worker counts (the stdout
## must be bit-identical; only the stderr wall-clock lines may differ)
fleet-bench:
	$(CARGO) build --release -p itqc-fleet --bin fleetd -p itqc-bench --bin loadgen
	./target/release/loadgen --traps=256 --minutes=60 --workers=1 > loadgen.w1.out
	./target/release/loadgen --traps=256 --minutes=60 --workers=auto > loadgen.wauto.out
	diff loadgen.w1.out loadgen.wauto.out
	@cat loadgen.w1.out
	@rm -f loadgen.w1.out loadgen.wauto.out

## repro: regenerate every paper table/figure (see EXPERIMENTS.md)
repro: build
	@set -e; for b in $(REPRO_BINS); do \
		echo; echo "==================== $$b ===================="; \
		$(CARGO) run --release -q -p itqc-bench --bin $$b; \
	done

## fmt: apply the workspace formatting style
fmt:
	$(CARGO) fmt

## lint: what CI enforces — fmt --check and clippy with warnings denied
lint:
	$(CARGO) fmt --check
	$(CARGO) clippy --all-targets -- -D warnings

clean:
	$(CARGO) clean
