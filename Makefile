# Convenience targets for the itqc workspace. Everything builds fully
# offline (dependencies are vendored under vendor/).

CARGO ?= cargo

# The 13 evaluation binaries, in paper order (extensions last).
REPRO_BINS := table1 fig2 fig3 fig6 fig7 fig8 fig9 fig10 fig11 table2 rb ablations fig_adv

.PHONY: build test bench fleet-bench repro cost-report chain-bench fmt lint clean

## build: release build of every workspace member
build:
	$(CARGO) build --release

## test: tier-1 gate — release build plus the full test suite
test:
	$(CARGO) build --release
	$(CARGO) test -q

## bench: run the criterion benches (vendored shim prints to stdout)
bench:
	$(CARGO) bench -p itqc-bench

## fleet-bench: the BENCH_BASELINE.json fleetd workload — 256 traps for
## one simulated hour, summary diffed across worker counts (the stdout
## must be bit-identical; only the stderr wall-clock lines may differ)
fleet-bench:
	$(CARGO) build --release -p itqc-fleet --bin fleetd -p itqc-bench --bin loadgen
	./target/release/loadgen --traps=256 --minutes=60 --workers=1 > loadgen.w1.out
	./target/release/loadgen --traps=256 --minutes=60 --workers=auto > loadgen.wauto.out
	diff loadgen.w1.out loadgen.wauto.out
	@cat loadgen.w1.out
	@rm -f loadgen.w1.out loadgen.wauto.out

## cost-report: static cost model vs measured wall-clock on the fig8
## N=8 panel (the CI gate); fails if the predicted/measured ratio
## drifts outside [0.25, 4.0]
cost-report:
	$(CARGO) build --release -p itqc-bench --bin fig8
	./target/release/fig8 --sizes=8 --cost-report >/dev/null 2>cost-report.err
	@cat cost-report.err
	@awk '/^cost-report fig8:/ { r = $$NF + 0; found = 1; \
		if (r < 0.25 || r > 4.0) { print "cost-model ratio " r " outside [0.25, 4.0]"; exit 1 } } \
		END { if (!found) { print "no cost-report line on stderr"; exit 1 } }' cost-report.err
	@rm -f cost-report.err

## chain-bench: chain-sampler cost gate — the fig8 N=64 panel runs on
## 32-qubit chain-sampled components (beyond the joint-table cap); the
## chain cost terms' predicted/measured ratio must stay in [0.25, 4.0]
chain-bench:
	$(CARGO) build --release -p itqc-bench --bin fig8
	./target/release/fig8 --sizes=64 --cost-report >/dev/null 2>chain-bench.err
	@cat chain-bench.err
	@awk '/^cost-report fig8:/ { r = $$NF + 0; found = 1; \
		if (r < 0.25 || r > 4.0) { print "chain cost-model ratio " r " outside [0.25, 4.0]"; exit 1 } } \
		END { if (!found) { print "no cost-report line on stderr"; exit 1 } }' chain-bench.err
	@rm -f chain-bench.err

## repro: regenerate every paper table/figure (see EXPERIMENTS.md)
repro: build
	@set -e; for b in $(REPRO_BINS); do \
		echo; echo "==================== $$b ===================="; \
		$(CARGO) run --release -q -p itqc-bench --bin $$b; \
	done

## fmt: apply the workspace formatting style
fmt:
	$(CARGO) fmt

## lint: what CI enforces — fmt --check and clippy with warnings denied
lint:
	$(CARGO) fmt --check
	$(CARGO) clippy --all-targets -- -D warnings

clean:
	$(CARGO) clean
