//! Offline, API-compatible subset of the
//! [`criterion`](https://docs.rs/criterion/0.5) benchmark harness,
//! vendored into the workspace because CI has no access to crates.io
//! (see the repository README, "Vendored dependencies").
//!
//! It supports the surface the `itqc-bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Criterion::bench_function`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — and reports
//! median / mean / min wall-clock per iteration on stdout instead of
//! criterion's HTML + statistics machinery.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark manager handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\n== {name} ==");
        BenchmarkGroup { _parent: self, name, sample_size }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, |b| f(b));
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with the given input, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// A benchmark label, usually derived from the swept parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Labels a benchmark by its parameter value alone.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Labels a benchmark by a function name and parameter value.
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId(format!("{}/{p}", name.into()))
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code to measure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, collecting `sample_size` timed samples of an
    /// automatically chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size the per-sample iteration count so one sample
        // takes roughly 10 ms (bounded to keep total runtime sane).
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let min = b.samples[0];
    println!("{label:<40} median {median:>12.3?}   mean {mean:>12.3?}   min {min:>12.3?}");
}

/// Bundles benchmark functions into a group runner, mirroring
/// criterion's macro of the same name (the `config = …` form accepts an
/// expression yielding a [`Criterion`]).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates a `main` running the given groups, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
        c.bench_function("lone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, work);

    #[test]
    fn harness_runs() {
        benches();
    }
}
