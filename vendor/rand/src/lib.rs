//! Offline, API-compatible subset of the [`rand`](https://docs.rs/rand/0.8)
//! crate, vendored into the workspace because CI has no access to
//! crates.io (see the repository README, "Vendored dependencies").
//!
//! Only the surface the `itqc` workspace actually uses is provided:
//!
//! * the [`RngCore`] / [`Rng`] / [`SeedableRng`] traits with `gen`,
//!   `gen_range` (half-open and inclusive ranges over the primitive
//!   integer and float types) and `gen_bool`;
//! * [`rngs::SmallRng`], implemented as xoshiro256++ — the same family
//!   the real `rand` 0.8 uses on 64-bit targets — seeded through
//!   SplitMix64 exactly like `seed_from_u64` upstream.
//!
//! The generator is deterministic: a given seed yields the same stream
//! on every platform, which the workspace's parallel trial engine
//! relies on for thread-count-invariant results.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly "at random" by [`Rng::gen`]
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty as $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                sample_below(rng, (self.end as $wide).wrapping_sub(self.start as $wide))
                    .wrapping_add(self.start as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return <$t as Standard>::sample_standard(rng);
                }
                sample_below(rng, span).wrapping_add(lo as $wide) as $t
            }
        }
    )*};
}
impl_range_int!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as u64,
    i16 as u64,
    i32 as u64,
    i64 as u64,
    isize as u64,
);

/// Unbiased uniform draw from `[0, bound)` (Lemire's method with
/// rejection); `bound == 0` means the full 64-bit range.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                loop {
                    let u = <$t as Standard>::sample_standard(rng);
                    let v = self.start + (self.end - self.start) * u;
                    // Guard against rounding up to the excluded endpoint.
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution for `T`
    /// (uniform over all values for integers and `bool`, `[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it through
    /// SplitMix64 — the same construction as `rand` 0.8.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast, high-quality generator: xoshiro256++ (Blackman &
    /// Vigna 2019), the algorithm behind `rand` 0.8's 64-bit
    /// `SmallRng`. Not cryptographically secure.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_mean_near_half() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let m: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((m - 0.5).abs() < 0.005, "mean {m}");
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(1..=10u32);
            assert!((1..=10).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..3.0);
            assert!((-1.0..3.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.25).abs() < 0.01, "frequency {f}");
    }
}
