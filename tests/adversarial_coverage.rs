//! Tier-2 adversarial fault-coverage suite.
//!
//! The `fig_adv` scorecard's claims, pinned: the paper-faithful
//! pipeline (fixed worst-qubit canary, ranked evidence-fusion decoder)
//! has two *structural* blind spots — even-degree fault configurations
//! and tied disjoint perfect-fit covers — and the countermeasure pair
//! (rotating seeded canary subsets + disputed-member interrogation)
//! closes both, lifting the blind-spot classes to the uniform-draw
//! identification level. Blind spots may only ever cause *misses*:
//! every accusation is magnitude-verified, so the false-accusation
//! count must be exactly zero in every cell, countermeasures on or off.
//!
//! Methodology matches `paper_regression.rs`: seeds are derived exactly
//! as the `fig_adv` binary derives them (`Args::seed_for` with the
//! master seed 20220402), statistical bounds quote the binomial 95 %
//! half-width `1.96·√(p(1−p)/n)` at the trial count they run, and the
//! structural claims (`== 0.0`) are exact — a 0 % cell is a property of
//! the pipeline on the oracle executor, not a sampling accident.

use itqc_bench::adversarial::adversarial_score;
use itqc_bench::Args;
use itqc_faults::adversarial::ConfigClass;

/// The master seed the `EXPERIMENTS.md` scorecard was captured at.
const PAPER_SEED: u64 = 20220402;

/// Seeds derived exactly as the `fig_adv` binary derives them.
fn seed_for(tag: &str) -> u64 {
    Args {
        trials: 0,
        seed: PAPER_SEED,
        threads: 0,
        decoder: None,
        backend: itqc_backend::BackendChoice::Auto,
        csv: false,
        fast: false,
        cost_report: false,
        metrics: None,
    }
    .seed_for(tag)
}

/// One scorecard cell at the binary's own per-cell seed.
fn cell(n: usize, class: ConfigClass, trials: usize, countermeasures: bool) -> (f64, usize) {
    let arm = if countermeasures { "rotating" } else { "fixed" };
    let s = adversarial_score(
        n,
        class,
        trials,
        0,
        countermeasures,
        seed_for(&format!("fig_adv/n={n}/{class}/{arm}")),
    );
    (s.identification, s.false_accusations)
}

#[test]
fn even_degree_configurations_are_invisible_to_the_fixed_canary() {
    // Exactly zero, not "low": every qubit of an even-degree
    // configuration touches an even number of faults, so the product of
    // per-fault cosines is positive and the worst-qubit canary
    // agreement (1 + Π cos)/2 stays ≥ 1/2 at ANY fault magnitude. The
    // paper loop sees the canary pass and converges with an empty
    // diagnosis — at both machine sizes, on every draw.
    for n in [8usize, 16] {
        let (p, false_acc) = cell(n, ConfigClass::EvenDegree, 100, false);
        assert_eq!(p, 0.0, "n={n}: even-degree must be structurally invisible");
        assert_eq!(false_acc, 0, "n={n}: misses must not become accusations");
    }
}

#[test]
fn tied_covers_stall_the_ranked_decoder_without_false_accusations() {
    // Two conflicting same-syndrome families predict identical scores
    // at every rung, so the evidence-fusion consensus honestly abstains
    // forever — zero identification, and zero false accusations, which
    // is the designed failure mode (abstention, never fabrication).
    let (p, false_acc) = cell(8, ConfigClass::TiedCover, 60, false);
    assert_eq!(p, 0.0, "tied covers must stall the ranked decoder");
    assert_eq!(false_acc, 0);
}

#[test]
fn countermeasures_lift_even_degree_to_the_uniform_draw_level() {
    // The acceptance bar of the harness: with rotating canary subsets
    // and disputed-member interrogation on, even-degree configurations
    // must identify at the uniform-draw rate. Captured at 300 trials:
    // 0.980 (even-degree) vs 0.950 (uniform) at 8 qubits. At 160 trials
    // the 95 % half-width of the *difference* is
    // 1.96·√(0.95·0.05/160 + 0.98·0.02/160) ≈ 0.040; the bound below
    // widens it to 0.06 against seed-to-seed drift.
    let trials = 160;
    let (uniform, fa_u) = cell(8, ConfigClass::Uniform, trials, true);
    let (even, fa_e) = cell(8, ConfigClass::EvenDegree, trials, true);
    assert!(
        even >= uniform - 0.06,
        "even-degree under countermeasures ({even:.3}) must reach the \
         uniform-draw level ({uniform:.3}) within the binomial CI"
    );
    assert!(even >= 0.90, "even-degree under countermeasures sank to {even:.3}");
    assert_eq!(fa_u + fa_e, 0, "countermeasures must not buy coverage with fabrications");
}

#[test]
fn interrogation_resolves_tied_covers_at_both_machine_sizes() {
    // Disputed-member interrogation point-tests members that appear in
    // some but not all tied covers; each veto collapses the tie family
    // until consensus fires. Captured at 300 trials: 1.000 at both
    // sizes; 0.95 leaves the binomial-CI floor at 60 trials
    // (1.96·√(1.0·0.0/60) = 0, so any miss at all is the signal).
    for n in [8usize, 16] {
        let (p, false_acc) = cell(n, ConfigClass::TiedCover, 60, true);
        assert!(p >= 0.95, "n={n}: tied-cover under interrogation only {p:.3}");
        assert_eq!(false_acc, 0, "n={n}");
    }
}
