//! End-to-end determinism contract of the `itqc_obs` subsystem.
//!
//! The deterministic section of a metrics snapshot must be bit-identical
//! at any thread/worker count: every entry is a partition-invariant
//! logical-work total merged by commutative addition. These tests pin
//! that contract across the bench layer (fig8 at `threads` 1/2/8), the
//! fleet layer (`workers` 1/8), the dense-vs-analytic backend split,
//! and the class boundary itself (wall-clock spans and `nd.` members
//! can never leak into the deterministic snapshot).
//!
//! The ambient event layer folds into one process-global registry, so
//! every test that touches it serialises on [`obs_lock`] and resets the
//! registry around its measurement.

use itqc::fleet::{Fleet, FleetConfig};
use itqc::obs::{self, Snapshot};
use itqc::prelude::BackendChoice;
use itqc_bench::{fig8_curve, fig8_threshold};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialises tests that use the process-global ambient registry.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // A poisoned lock only means another obs test failed; the registry
    // is reset at the top of every capture, so continue regardless.
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `work` with the event layer enabled against a freshly reset
/// global registry and returns the deterministic snapshot it produced.
/// Leaves the layer disabled and the registry clean.
fn capture_det<R>(work: impl FnOnce() -> R) -> (R, Snapshot) {
    obs::global().reset();
    obs::set_enabled(true);
    let out = work();
    // Worker threads flushed when they finished; fold this thread's
    // own shard before reading.
    obs::event::flush();
    let snap = obs::global().deterministic_snapshot();
    obs::set_enabled(false);
    obs::global().reset();
    (out, snap)
}

/// Tentpole contract on the bench path: the deterministic snapshot of a
/// fig8 calibrate-plus-curve run is bit-identical at 1, 2, and 8
/// threads, down to the JSON rendering.
#[test]
fn fig8_deterministic_snapshot_is_thread_invariant() {
    let _guard = obs_lock();
    let mut snaps = Vec::new();
    for threads in [1usize, 2, 8] {
        let (_curve, snap) = capture_det(|| {
            let thr = fig8_threshold(6, 2, 24, threads, BackendChoice::Auto, 31);
            fig8_curve(6, 2, thr, 12, threads, BackendChoice::Auto, 77)
        });
        assert!(!snap.is_empty(), "fig8 must emit deterministic events");
        snaps.push(snap);
    }
    assert_eq!(snaps[0], snaps[1], "threads=1 vs threads=2");
    assert_eq!(snaps[0], snaps[2], "threads=1 vs threads=8");
    assert_eq!(snaps[0].to_json(), snaps[2].to_json(), "JSON rendering");
}

/// Same contract on the fleet path (the `loadgen --workers` axis): the
/// merged ambient + fleet-registry deterministic snapshot after a run
/// does not depend on the worker count.
#[test]
fn fleet_deterministic_snapshot_is_worker_invariant() {
    let _guard = obs_lock();
    let mut snaps = Vec::new();
    for workers in [1usize, 8] {
        obs::global().reset();
        obs::set_enabled(true);
        let config = FleetConfig {
            traps: 6,
            workers,
            seed: 11,
            n_qubits: 7,
            canary_cadence_min: 2,
            arrival_rate_per_min: 3.0,
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(config);
        fleet.run_minutes(12);
        // Mirror the fleetd `metrics` command: scheduler-side flush,
        // then merge the ambient and per-fleet registries.
        obs::event::flush();
        let merged = obs::Registry::new();
        merged.absorb(obs::global());
        merged.absorb(fleet.obs());
        let snap = merged.deterministic_snapshot();
        assert!(
            snap.counters.contains_key("fleet.jobs.completed"),
            "fleet registry must contribute its handle-backed counters"
        );
        snaps.push(snap);
        obs::set_enabled(false);
        obs::global().reset();
    }
    assert_eq!(snaps[0], snaps[1], "workers=1 vs workers=8");
}

/// Where the dense and analytic backends share a code path (the
/// component-factorised sampler), their deterministic counters must
/// agree exactly: same calls, same shots, same component structure.
#[test]
fn dense_and_analytic_agree_on_shared_deterministic_counters() {
    let _guard = obs_lock();
    let mut snaps = Vec::new();
    for backend in [BackendChoice::Analytic, BackendChoice::Dense] {
        let (_thr, snap) = capture_det(|| fig8_threshold(5, 2, 16, 1, backend, 13));
        assert!(
            snap.counters.get("backend.sample.calls").copied().unwrap_or(0) > 0,
            "{backend:?} must record sampler activity"
        );
        snaps.push(snap);
    }
    let (analytic, dense) = (&snaps[0], &snaps[1]);
    for name in ["backend.sample.calls", "backend.sample.components", "backend.shots.drawn"] {
        assert_eq!(analytic.counters.get(name), dense.counters.get(name), "{name}");
    }
    assert_eq!(
        analytic.histograms.get("backend.sample.component_qubits_draws"),
        dense.histograms.get("backend.sample.component_qubits_draws"),
        "component-size histogram"
    );
}

/// The class boundary: wall-clock spans and nondeterministic events are
/// reported in the document's nondeterministic section only — nothing
/// of either kind can appear in the deterministic snapshot, and the
/// [`Snapshot`] type itself carries no span data at all.
#[test]
fn spans_and_nd_events_never_enter_the_deterministic_snapshot() {
    let _guard = obs_lock();
    obs::global().reset();
    obs::set_enabled(true);
    {
        let _phase = obs::span::timed("boundary.phase");
        obs::event::add("boundary.work", 3);
        obs::event::add_nd("boundary.cache_traffic", 5);
        obs::event::observe_nd("boundary.cache_depth", 2, 1);
    }
    obs::event::flush();
    let det = obs::global().deterministic_snapshot();
    let nd = obs::global().nondeterministic_snapshot();
    obs::set_enabled(false);
    obs::global().reset();

    assert_eq!(det.counters.get("boundary.work"), Some(&3));
    assert!(!det.counters.contains_key("boundary.cache_traffic"));
    assert!(!det.histograms.contains_key("boundary.cache_depth"));
    assert_eq!(nd.counters.get("boundary.cache_traffic"), Some(&5));
    assert_eq!(nd.histograms.get("boundary.cache_depth"), Some(&vec![(2, 1)]));
    // Spans live in neither snapshot class: the Snapshot type has no
    // span field, so the deterministic JSON cannot mention one.
    let json = det.to_json();
    assert!(!json.contains("span"), "det snapshot must carry no span data: {json}");
}

/// The reserved `nd.`/`span.` prefixes are rejected at the
/// deterministic registration points, so a partition-dependent name
/// cannot be smuggled into the bit-identical snapshot by typo.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "reserved nondeterministic prefix")]
fn reserved_prefixes_cannot_register_deterministic_counters() {
    let _ = obs::Registry::new().counter("nd.sneaky");
}
