//! Failure-injection tests: conditions under which the protocols are
//! *expected* to struggle, asserting graceful degradation (no panics, no
//! false certainty) rather than success.

use itqc::core::testplan::ScoreMode;
use itqc::prelude::*;
use std::collections::BTreeSet;

#[test]
fn catastrophic_drift_fails_gracefully() {
    // Every coupling far out of calibration ("catastrophic effects with
    // numerous faults" — §V-C says test-driven calibration makes little
    // sense here). The pipeline must terminate without panicking and
    // without converging to a clean verdict.
    let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 1));
    for c in trap.couplings() {
        trap.inject_fault(c, 0.35);
    }
    let config = MultiFaultConfig {
        reps_ladder: vec![2, 4],
        threshold: 0.5,
        canary_threshold: 0.5,
        shots: 100,
        canary_shots: 50,
        max_faults: 5,
        decoder: DecoderPolicy::Greedy,
        ranked_sigma: itqc::core::threshold::observation_sigma(100, 0.0, 4),
        score: ScoreMode::ExactTarget,
        canary_score: ScoreMode::WorstQubit,
        max_threshold_retunes: 2,
        fusion_rounds: 0,
        fault_magnitude: 0.10,
        canary_rotations: 0,
        canary_seed: 0,
    };
    let report = diagnose_all(&mut trap, 8, &config);
    assert!(!report.converged, "a machine this broken cannot be certified clean");
    // Anything it did accuse must actually be faulty (all are).
    assert!(report.diagnosed.len() <= config.max_faults + 1);
}

#[test]
fn starved_shot_budget_never_accuses_healthy_couplings() {
    // With 10 shots per test the scores are extremely coarse; the
    // verification round must still protect healthy couplings.
    for seed in 0..5u64 {
        let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 100 + seed));
        let protocol = SingleFaultProtocol::new(8, 4, 0.5, 10);
        if let Diagnosis::Fault(c) = protocol.diagnose(&mut trap).diagnosis {
            panic!("accused healthy {c} at 10 shots")
        }
    }
}

#[test]
fn heavy_spam_degrades_but_does_not_misaccuse() {
    // 10% readout flips are far beyond the paper's sub-1% regime: exact-
    // string fidelities collapse, so the protocol may report anything
    // except a *wrong* coupling.
    let mut cfg = TrapConfig::ideal(8, 9);
    cfg.spam = SpamModel::new(0.10, 0.10);
    let mut trap = VirtualTrap::new(cfg);
    let truth = Coupling::new(1, 4);
    trap.inject_fault(truth, 0.40);
    let protocol = SingleFaultProtocol::new(8, 4, 0.35, 300);
    // Failing to conclude is acceptable at this noise level; a wrong
    // accusation is not.
    if let Diagnosis::Fault(c) = protocol.diagnose(&mut trap).diagnosis {
        assert_eq!(c, truth, "wrong accusation under heavy SPAM");
    }
}

#[test]
fn out_of_model_phase_fault_is_caught_by_the_cancellation_breaker() {
    // A π beam-phase fault is invisible to repetition tests (footnote 8);
    // the swap-insertion circuit exposes it on the dense path.
    use itqc::circuit::Gate;
    use itqc::core::testplan::cancellation_breaker;
    let faulty = Coupling::new(2, 6);
    let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 77));
    // Build the breaker circuit with the fault injected manually (the
    // trap's calibration map models amplitude errors; a phase fault is an
    // out-of-model unitary error, applied here at the circuit level).
    let (breaker, target) = cancellation_breaker(8, faulty, 5);
    let mut noisy = Circuit::new(8);
    for op in breaker.ops() {
        match (op.gate, op.coupling()) {
            (Gate::Xx(t), Some(c)) if c == faulty => {
                noisy.push(Op::two(
                    Gate::Ms { theta: t, phi1: std::f64::consts::PI, phi2: 0.0 },
                    op.qubits()[0],
                    op.qubits()[1],
                ));
            }
            _ => {
                noisy.push(*op);
            }
        }
    }
    let counts = trap.run_circuit(&noisy, 300, Activity::Testing);
    let hits = *counts.get(&(target as usize)).unwrap_or(&0);
    assert!((hits as f64 / 300.0) < 0.1, "breaker must expose the phase fault, got {hits}/300");
}

#[test]
fn excluding_every_coupling_is_a_clean_no_op() {
    let mut trap = VirtualTrap::new(TrapConfig::ideal(4, 3));
    trap.inject_fault(Coupling::new(0, 1), 0.4);
    let all: BTreeSet<Coupling> = trap.couplings().into_iter().collect();
    let config = MultiFaultConfig {
        reps_ladder: vec![2, 4],
        threshold: 0.5,
        canary_threshold: 0.5,
        shots: 50,
        canary_shots: 50,
        max_faults: 3,
        decoder: DecoderPolicy::Greedy,
        ranked_sigma: itqc::core::threshold::observation_sigma(100, 0.0, 4),
        score: ScoreMode::ExactTarget,
        canary_score: ScoreMode::ExactTarget,
        max_threshold_retunes: 0,
        fusion_rounds: 0,
        fault_magnitude: 0.10,
        canary_rotations: 0,
        canary_seed: 0,
    };
    let report = itqc::core::multi_fault::diagnose_all_excluding(&mut trap, 4, &config, &all);
    assert!(report.converged, "nothing left to test");
    assert!(report.diagnosed.is_empty());
    assert_eq!(report.tests_run, 0);
}

#[test]
fn over_rotations_are_detected_like_under_rotations() {
    // The fault model is signed; the protocol must catch u < 0 too.
    let truth = Coupling::new(3, 5);
    let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 13));
    trap.inject_fault(truth, -0.40);
    let protocol = SingleFaultProtocol::new(8, 4, 0.5, 300);
    assert_eq!(protocol.diagnose(&mut trap).diagnosis, Diagnosis::Fault(truth));
}

#[test]
fn half_turn_alias_is_invisible_at_matching_reps() {
    // Footnote 8's aliasing, quantified: u = 0.5 at 8 repetitions walks a
    // full 2π of missing angle — the point test passes despite the huge
    // fault — while 2 repetitions see it at full contrast.
    use itqc::core::executor::point_test_fidelity;
    assert!((point_test_fidelity(0.5, 8) - 1.0).abs() < 1e-12);
    assert!(point_test_fidelity(0.5, 2) < 0.51);
}
