//! Integration tests across the full stack: virtual machine → protocols →
//! recalibration → verification, under realistic noise.

use itqc::core::multi_fault::diagnose_all_excluding;
use itqc::core::testplan::ScoreMode;
use itqc::prelude::*;
use std::collections::BTreeSet;

fn multi_config(ladder: Vec<usize>, threshold: f64, canary_threshold: f64) -> MultiFaultConfig {
    MultiFaultConfig {
        reps_ladder: ladder,
        threshold,
        canary_threshold,
        shots: 300,
        canary_shots: 100,
        max_faults: 6,
        decoder: DecoderPolicy::Greedy,
        ranked_sigma: itqc::core::threshold::observation_sigma(300, 0.0, 4),
        score: ScoreMode::ExactTarget,
        canary_score: ScoreMode::ExactTarget,
        max_threshold_retunes: 4,
        fusion_rounds: 0,
        fault_magnitude: 0.10,
        canary_rotations: 0,
        canary_seed: 0,
    }
}

#[test]
fn single_fault_on_noisy_machine_with_shots() {
    // SPAM + shot noise + small recalibration residuals: the protocol
    // still pins the planted fault.
    let mut cfg = TrapConfig::ideal(8, 31);
    cfg.spam = SpamModel::new(0.004, 0.006);
    let mut trap = VirtualTrap::new(cfg);
    let truth = Coupling::new(1, 6);
    trap.inject_fault(truth, 0.35);
    let protocol = SingleFaultProtocol::new(8, 4, 0.5, 300);
    let report = protocol.diagnose(&mut trap);
    assert_eq!(report.diagnosis, Diagnosis::Fault(truth));
}

#[test]
fn eleven_qubit_machine_paper_size() {
    // The paper's actual machine size (non-power-of-two → padding).
    let mut trap = VirtualTrap::new(TrapConfig::ideal(11, 5));
    let truth = Coupling::new(3, 10);
    trap.inject_fault(truth, 0.40);
    let protocol = SingleFaultProtocol::new(11, 4, 0.5, 300);
    let report = protocol.diagnose(&mut trap);
    assert_eq!(report.diagnosis, Diagnosis::Fault(truth));
    // n = ⌈log₂ 11⌉ = 4 → at most 12 tests + verification.
    assert!(report.tests_run() <= 13);
}

#[test]
fn multi_fault_pipeline_with_magnitude_spread() {
    let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 77));
    let faults = [(Coupling::new(0, 5), 0.45), (Coupling::new(3, 4), 0.18)];
    for (c, u) in faults {
        trap.inject_fault(c, u);
    }
    let report = diagnose_all(&mut trap, 8, &multi_config(vec![2, 4, 8], 0.5, 0.5));
    assert!(report.converged, "{report:?}");
    let found: BTreeSet<Coupling> = report.couplings().into_iter().collect();
    let expect: BTreeSet<Coupling> = faults.iter().map(|&(c, _)| c).collect();
    assert_eq!(found, expect);
    // Recalibrate and confirm a clean canary.
    for c in report.couplings() {
        trap.recalibrate(c);
    }
    let again = diagnose_all(&mut trap, 8, &multi_config(vec![2, 4, 8], 0.5, 0.5));
    assert!(again.converged);
    assert!(again.diagnosed.is_empty(), "machine should be clean: {again:?}");
}

#[test]
fn exclusion_quarantine_workflow() {
    // A known-faulty coupling is quarantined (mapped around); diagnosis of
    // a *new* fault proceeds with the quarantine in force.
    let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 13));
    let quarantined = Coupling::new(2, 7);
    let fresh = Coupling::new(0, 3);
    trap.inject_fault(quarantined, 0.5);
    trap.inject_fault(fresh, 0.35);
    let excl: BTreeSet<Coupling> = [quarantined].into();
    let report = diagnose_all_excluding(&mut trap, 8, &multi_config(vec![2, 4], 0.5, 0.5), &excl);
    assert!(report.converged);
    assert_eq!(report.couplings(), vec![fresh]);
}

#[test]
fn shot_noise_does_not_create_false_positives() {
    // A clean machine diagnosed repeatedly with finite shots must never
    // accuse a coupling (verification gates every accusation).
    let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 999));
    for _ in 0..5 {
        let protocol = SingleFaultProtocol::new(8, 4, 0.5, 100);
        let report = protocol.diagnose(&mut trap);
        assert_eq!(report.diagnosis, Diagnosis::NoFault);
    }
}

#[test]
fn ambient_jitter_degrades_gracefully() {
    // With heavy per-gate amplitude jitter the protocol may fail to
    // conclude, but it must not mis-accuse a healthy coupling when a
    // large fault is present.
    let mut cfg = TrapConfig::ideal(8, 55);
    cfg.amplitude_jitter_std = 0.125; // "10% average" per-gate jitter
    let mut trap = VirtualTrap::new(cfg);
    let truth = Coupling::new(2, 4);
    trap.inject_fault(truth, 0.45);
    let mut hits = 0;
    let mut false_accusations = 0;
    for _ in 0..10 {
        let protocol = SingleFaultProtocol::new(8, 4, 0.35, 300);
        match protocol.diagnose(&mut trap).diagnosis {
            Diagnosis::Fault(c) if c == truth => hits += 1,
            Diagnosis::Fault(_) => false_accusations += 1,
            _ => {}
        }
    }
    assert!(hits >= 5, "should usually identify the fault, got {hits}/10");
    assert_eq!(false_accusations, 0, "never accuse a healthy coupling");
}

#[test]
fn dense_noise_channels_run_through_trap_circuits() {
    // The full dense path (phase noise + residual coupling + SPAM) on the
    // paper-like machine: a GHZ circuit keeps a recognisable distribution.
    let mut trap = VirtualTrap::new(TrapConfig::paper_like(4, 17));
    let ghz = itqc::circuit::library::ghz(4);
    let native = itqc::circuit::transpile::to_native_optimized(&ghz);
    let counts = trap.run_circuit(&native, 600, Activity::Jobs);
    let p_ends = (counts.get(&0).copied().unwrap_or(0) + counts.get(&0b1111).copied().unwrap_or(0))
        as f64
        / 600.0;
    assert!(p_ends > 0.7, "GHZ structure should survive realistic noise, got {p_ends}");
}

#[test]
fn baselines_and_protocol_agree_on_diagnosis() {
    let truth = Coupling::new(1, 5);
    let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 3));
    trap.inject_fault(truth, 0.4);
    // Point checks.
    let base = itqc::core::baselines::point_check_all(&mut trap, 8, 4, 0.5, 200);
    assert_eq!(base.faulty, vec![truth]);
    // Binary search.
    let (found, report) =
        itqc::core::baselines::binary_search_single(&mut trap, 8, 4, 0.5, 200, &BTreeSet::new());
    assert_eq!(found, Some(truth));
    // Binary search pays an adaptation per test; the paper's protocol
    // needs at most two.
    let protocol_report = SingleFaultProtocol::new(8, 4, 0.5, 200).diagnose(&mut trap);
    assert!(report.adaptations > protocol_report.adaptations);
}

#[test]
fn duty_ledger_accounts_every_activity() {
    let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 21));
    trap.inject_fault(Coupling::new(0, 1), 0.4);
    trap.bill_job_time(10.0);
    let _ = diagnose_all(&mut trap, 8, &multi_config(vec![2, 4], 0.5, 0.5));
    trap.recalibrate(Coupling::new(0, 1));
    let d = trap.duty();
    assert!(d.seconds(Activity::Jobs) > 0.0);
    assert!(d.seconds(Activity::Testing) > 0.0);
    assert!(d.seconds(Activity::Calibration) > 0.0);
    assert!(d.seconds(Activity::Adaptation) > 0.0);
    let total: f64 = [
        Activity::Jobs,
        Activity::Testing,
        Activity::Calibration,
        Activity::Adaptation,
        Activity::Idle,
    ]
    .iter()
    .map(|&a| d.seconds(a))
    .sum();
    assert!((total - d.total()).abs() < 1e-9);
}
