//! Cross-backend equivalence: the commuting-XX analytic engine must agree
//! with the dense state-vector simulator wherever both apply.
//!
//! Originally written against `proptest`; rewritten as seeded randomized
//! sweeps (48 cases per property, mirroring the old
//! `ProptestConfig::with_cases(48)`) because the workspace builds fully
//! offline and vendoring proptest's macro DSL is not worth it.

use itqc::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// A random pure-XX circuit description: (n, gates), with 1–13 gates on
/// distinct qubit pairs of a 2–9 qubit register.
fn random_xx_circuit(rng: &mut SmallRng) -> (usize, Vec<(usize, usize, f64)>) {
    let n = rng.gen_range(2usize..=9);
    let count = rng.gen_range(1usize..14);
    let mut gates = Vec::with_capacity(count);
    while gates.len() < count {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            gates.push((a, b, rng.gen_range(-3.0f64..3.0)));
        }
    }
    (n, gates)
}

fn build_both(n: usize, gates: &[(usize, usize, f64)]) -> (Circuit, XxCircuit) {
    let mut circuit = Circuit::new(n);
    let mut xx = XxCircuit::new(n);
    for &(a, b, theta) in gates {
        circuit.xx(a, b, theta);
        xx.add_xx(a, b, theta);
    }
    (circuit, xx)
}

/// Exact-target fidelity agrees between backends on every basis target.
#[test]
fn fidelity_agreement() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x51E0 + case);
        let (n, gates) = random_xx_circuit(&mut rng);
        let (circuit, xx) = build_both(n, &gates);
        let dense = run(&circuit);
        let target = rng.gen::<usize>() & ((1 << n) - 1);
        let f_xx = xx.fidelity(target as u128);
        let f_dense = dense.probability(target);
        assert!(
            (f_xx - f_dense).abs() < 1e-9,
            "case {case}: {f_xx} vs {f_dense} (n={n}, gates={gates:?})"
        );
    }
}

/// Per-qubit marginals agree between the closed form and the dense
/// backend.
#[test]
fn marginal_agreement() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x3A26 + case);
        let (n, gates) = random_xx_circuit(&mut rng);
        let (circuit, xx) = build_both(n, &gates);
        let dense = run(&circuit);
        for q in 0..n {
            assert!(
                (xx.marginal_one(q) - dense.marginal_one(q)).abs() < 1e-9,
                "case {case}, qubit {q} (n={n}, gates={gates:?})"
            );
        }
    }
}

/// The state norm is preserved by arbitrary random circuits (unitarity
/// of the dense backend under the whole gate set).
#[test]
fn dense_norm_preservation() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x4012 + case);
        let n = rng.gen_range(2usize..=7);
        let circuit = itqc::circuit::library::random_circuit(n, 4, &mut rng);
        let s = run(&circuit);
        assert!((s.norm() - 1.0).abs() < 1e-9, "case {case}, n={n}");
    }
}

/// Transpiled circuits are unitarily equivalent to their sources
/// (global phase aside), checked through state overlap.
#[test]
fn transpile_equivalence() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7157 + case);
        let n = rng.gen_range(2usize..=5);
        let circuit = itqc::circuit::library::random_circuit(n, 3, &mut rng);
        let native = itqc::circuit::transpile::to_native_optimized(&circuit);
        let s1 = run(&circuit);
        let s2 = run(&native);
        assert!((s1.fidelity(&s2) - 1.0).abs() < 1e-8, "case {case}, n={n}");
    }
}

#[test]
fn thirty_two_qubit_class_test_beyond_dense_reach() {
    // The analytic engine handles a register the dense backend cannot even
    // allocate: a full 16-qubit class on a 32-qubit machine.
    let mut xx = XxCircuit::new(32);
    let class: Vec<usize> = (0..32).filter(|q| q % 2 == 1).collect();
    for (i, &a) in class.iter().enumerate() {
        for &b in &class[i + 1..] {
            xx.add_xx(a, b, std::f64::consts::PI * 0.98);
        }
    }
    // Slightly under-rotated everywhere: fidelity must be in (0, 1).
    let mut target = 0usize;
    for &q in &class {
        target |= 1 << q; // 2-MS per coupling, degree 15 (odd) → all flip
    }
    let f = xx.fidelity(target as u128);
    assert!(f > 0.0 && f < 1.0, "fidelity {f}");
}
