//! Cross-backend equivalence: the commuting-XX analytic engine must agree
//! with the dense state-vector simulator wherever both apply.

use itqc::prelude::*;
use proptest::prelude::*;

/// A random pure-XX circuit description: (n, gates).
fn xx_circuit_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..=9).prop_flat_map(|n| {
        let gate = (0..n, 0..n, -3.0f64..3.0)
            .prop_filter("distinct", |(a, b, _)| a != b);
        (Just(n), prop::collection::vec(gate, 1..14))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact-target fidelity agrees between backends on every basis target.
    #[test]
    fn fidelity_agreement((n, gates) in xx_circuit_strategy(), target_seed in any::<u64>()) {
        let mut circuit = Circuit::new(n);
        let mut xx = XxCircuit::new(n);
        for &(a, b, theta) in &gates {
            circuit.xx(a, b, theta);
            xx.add_xx(a, b, theta);
        }
        let dense = run(&circuit);
        let target = (target_seed as usize) & ((1 << n) - 1);
        let f_xx = xx.fidelity(target);
        let f_dense = dense.probability(target);
        prop_assert!((f_xx - f_dense).abs() < 1e-9, "{f_xx} vs {f_dense}");
    }

    /// Per-qubit marginals agree between the closed form and the dense
    /// backend.
    #[test]
    fn marginal_agreement((n, gates) in xx_circuit_strategy()) {
        let mut circuit = Circuit::new(n);
        let mut xx = XxCircuit::new(n);
        for &(a, b, theta) in &gates {
            circuit.xx(a, b, theta);
            xx.add_xx(a, b, theta);
        }
        let dense = run(&circuit);
        for q in 0..n {
            prop_assert!((xx.marginal_one(q) - dense.marginal_one(q)).abs() < 1e-9);
        }
    }

    /// The state norm is preserved by arbitrary random circuits (unitarity
    /// of the dense backend under the whole gate set).
    #[test]
    fn dense_norm_preservation(seed in any::<u64>(), n in 2usize..=7) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let circuit = itqc::circuit::library::random_circuit(n, 4, &mut rng);
        let s = run(&circuit);
        prop_assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    /// Transpiled circuits are unitarily equivalent to their sources
    /// (global phase aside), checked through state overlap.
    #[test]
    fn transpile_equivalence(seed in any::<u64>(), n in 2usize..=5) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let circuit = itqc::circuit::library::random_circuit(n, 3, &mut rng);
        let native = itqc::circuit::transpile::to_native_optimized(&circuit);
        let s1 = run(&circuit);
        let s2 = run(&native);
        prop_assert!((s1.fidelity(&s2) - 1.0).abs() < 1e-8);
    }
}

#[test]
fn thirty_two_qubit_class_test_beyond_dense_reach() {
    // The analytic engine handles a register the dense backend cannot even
    // allocate: a full 16-qubit class on a 32-qubit machine.
    let mut xx = XxCircuit::new(32);
    let class: Vec<usize> = (0..32).filter(|q| q % 2 == 1).collect();
    for (i, &a) in class.iter().enumerate() {
        for &b in &class[i + 1..] {
            xx.add_xx(a, b, std::f64::consts::PI * 0.98);
        }
    }
    // Slightly under-rotated everywhere: fidelity must be in (0, 1).
    let mut target = 0usize;
    for &q in &class {
        target |= 1 << q; // 2-MS per coupling, degree 15 (odd) → all flip
    }
    let f = xx.fidelity(target);
    assert!(f > 0.0 && f < 1.0, "fidelity {f}");
}
