//! Chain-sampler equivalence battery: the conditional-marginal chain
//! sampler (`itqc_backend::chain`) must be indistinguishable from the
//! joint-table sampler wherever both apply, and statistically correct
//! where only it applies.
//!
//! Three regimes:
//!
//! 1. **Bit-identity, `c ≤ 20`** — wherever a joint table exists, the
//!    chain sampler must produce *the same strings from the same RNG
//!    stream*: both scale one uniform per component per shot by their
//!    own total mass and descend to the same quantile, so equality is
//!    exact, not approximate. Pinned for arbitrary circuits up to
//!    `CHAIN_MAX_SPECIAL` qubits (where the chain degenerates to the
//!    joint distribution) and structured near-complete components up
//!    to `MAX_COMPONENT`. The blocked sampler must agree across block
//!    boundaries too.
//! 2. **Statistics, `c > 20`** — no joint reference exists, so the
//!    chain-sampled per-qubit marginals (including the worst qubit's)
//!    are pinned against the closed-form analytic marginals by a
//!    seeded chi-square goodness-of-fit at `c = 24` and `c = 32`, and
//!    relabelling the component's qubits must permute the empirical
//!    marginals with it (exchangeability of the bulk).
//! 3. **Refusal** — an oversize component *without* near-complete
//!    structure must surface the typed
//!    [`BackendError::ChainUnsupported`] at prepare time; the old
//!    blanket `SupportTooLarge` cap for `> MAX_COMPONENT` XX
//!    components is gone in both directions (structured components
//!    prepare, unstructured ones get the chain-specific error).

use itqc_backend::chain::ChainDist;
use itqc_backend::dist::{sample_strings, sample_strings_blocked_with, SAMPLE_BLOCK_SHOTS};
use itqc_backend::{
    Backend, BackendChoice, BackendError, BitString, XxPrepared, CHAIN_MAX_SPECIAL, MAX_COMPONENT,
};
use itqc_circuit::Circuit;
use itqc_sim::XxCircuit;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A connected `c`-qubit component: the complete graph at a modal
/// `base` angle, plus extra angle on a few deviant pairs (the chain
/// sampler's special set is the endpoints of those pairs).
fn structured_component(c: usize, base: f64, deviants: &[((usize, usize), f64)]) -> XxCircuit {
    let mut xx = XxCircuit::new(c);
    for a in 0..c {
        for b in (a + 1)..c {
            xx.add_xx(a, b, base);
        }
    }
    for &((a, b), extra) in deviants {
        xx.add_xx(a, b, extra);
    }
    xx
}

/// An arbitrary connected random circuit on `c` qubits: a random-angle
/// spanning path plus extra random pairs. Every pair angle is distinct,
/// so the chain plan marks all `c` qubits special — legal only up to
/// `CHAIN_MAX_SPECIAL`, where the chain *is* the joint distribution.
fn arbitrary_component(c: usize, rng: &mut SmallRng) -> XxCircuit {
    let mut xx = XxCircuit::new(c);
    for q in 1..c {
        xx.add_xx(q - 1, q, rng.gen_range(-2.5f64..2.5));
    }
    for _ in 0..c {
        let a = rng.gen_range(0..c);
        let b = rng.gen_range(0..c);
        if a != b {
            xx.add_xx(a, b, rng.gen_range(-2.5f64..2.5));
        }
    }
    xx
}

/// Deviant pairs `(0,1), (2,3), …` — `pairs` of them, touching
/// `2·pairs ≤ CHAIN_MAX_SPECIAL` special qubits.
fn disjoint_deviants(pairs: usize) -> Vec<((usize, usize), f64)> {
    (0..pairs).map(|i| ((2 * i, 2 * i + 1), 0.41 + 0.13 * i as f64)).collect()
}

/// Chain-vs-joint shared-seed comparison on one single-component
/// circuit: strings must be equal element-wise and both samplers must
/// leave their RNG at the same stream position.
fn assert_bit_identical(xx: &XxCircuit, shots: usize, seed: u64, label: &str) {
    let chain = ChainDist::build(xx).unwrap_or_else(|r| {
        panic!("{label}: chain refused a chainable component ({r:?})");
    });
    let prepared = XxPrepared::prepare(xx.clone()).unwrap();
    let joint = prepared.distributions();
    assert_eq!(joint.len(), 1, "{label}: expected a single component");
    let mut r_chain = SmallRng::seed_from_u64(seed);
    let mut r_joint = SmallRng::seed_from_u64(seed);
    let via_chain = sample_strings(&[chain], &mut r_chain, shots);
    let via_joint = sample_strings(joint, &mut r_joint, shots);
    assert_eq!(via_chain, via_joint, "{label}: strings diverged");
    assert_eq!(
        r_chain.gen::<u64>(),
        r_joint.gen::<u64>(),
        "{label}: RNG stream desynced (draws per shot differ)"
    );
}

#[test]
fn chain_matches_joint_bit_for_bit_on_arbitrary_components_up_to_12() {
    // c ≤ CHAIN_MAX_SPECIAL: every qubit may be special, so *any*
    // single-component circuit is chainable and the chain collapses to
    // the joint distribution — pin bit-identity on random circuits.
    for c in 2..=CHAIN_MAX_SPECIAL {
        let mut rng = SmallRng::seed_from_u64(0xC4A1_0000 + c as u64);
        for case in 0..4 {
            let xx = arbitrary_component(c, &mut rng);
            assert_bit_identical(&xx, 1500, rng.gen(), &format!("c={c} case={case}"));
        }
    }
}

#[test]
fn chain_matches_joint_bit_for_bit_on_structured_components_13_to_20() {
    // CHAIN_MAX_SPECIAL < c ≤ MAX_COMPONENT: both samplers exist for
    // near-complete components; the Krawtchouk-collapsed chain tables
    // must reproduce the 2^c joint table's draws exactly.
    for c in (CHAIN_MAX_SPECIAL + 1)..=MAX_COMPONENT {
        for pairs in [0usize, 2, 4] {
            let xx = structured_component(c, 0.9, &disjoint_deviants(pairs));
            let seed = 0x51DE_0000 + (c * 8 + pairs) as u64;
            assert_bit_identical(&xx, 2000, seed, &format!("c={c} deviant-pairs={pairs}"));
        }
    }
}

#[test]
fn blocked_sampling_is_invariant_for_chain_components() {
    // The blocked column-pass sampler must equal the per-shot sampler
    // for chain components too, including across block boundaries and
    // at degenerate block sizes.
    let xx = structured_component(18, 1.1, &disjoint_deviants(3));
    let chain = [ChainDist::build(&xx).unwrap()];
    let shots = 2 * SAMPLE_BLOCK_SHOTS + 777;
    let seed = 0xB10C_0001;
    let reference = sample_strings(&chain, &mut SmallRng::seed_from_u64(seed), shots);
    for block in [1usize, 257, SAMPLE_BLOCK_SHOTS] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let blocked = sample_strings_blocked_with(&chain, &mut rng, shots, block);
        assert_eq!(reference, blocked, "block={block}");
        let mut r_ref = SmallRng::seed_from_u64(seed);
        let _ = sample_strings(&chain, &mut r_ref, shots);
        assert_eq!(rng.gen::<u64>(), r_ref.gen::<u64>(), "block={block}: stream desynced");
    }
}

#[test]
fn chain_marginals_pass_chi_square_against_closed_form_at_24_and_32_qubits() {
    // Beyond the joint cap there is no table to compare against; the
    // closed-form per-qubit marginals (an O(c) cosine product, computed
    // without any sampler) are the ground truth. Seeded chi-square over
    // special + bulk qubits — 0.999-quantile of χ²(6) is 22.5, and the
    // fixed seed makes this a deterministic regression pin.
    type Deviants = Vec<((usize, usize), f64)>;
    let cases: [(usize, Deviants, u64); 2] = [
        (24, vec![((0, 1), 0.37)], 0x6C0F_0018),
        (32, vec![((0, 1), 0.37), ((2, 3), -0.53)], 0x6C0F_0020),
    ];
    for (c, deviants, seed) in cases {
        let xx = structured_component(c, 0.9, &deviants);
        let chain = [ChainDist::build(&xx).unwrap()];
        let shots = sample_strings(&chain, &mut SmallRng::seed_from_u64(seed), 8000);
        let n = shots.len() as f64;
        let probe = [0usize, 1, 2, 3, c / 2, c - 1];
        let mut chi2 = 0.0;
        for &q in &probe {
            let p = xx.marginal_one(q).clamp(1e-9, 1.0 - 1e-9);
            let n1 = shots.iter().filter(|s| (**s >> q) & 1 == 1).count() as f64;
            chi2 += (n1 - n * p).powi(2) / (n * p)
                + ((n - n1) - n * (1.0 - p)).powi(2) / (n * (1.0 - p));
        }
        assert!(chi2.is_finite() && chi2 > 0.0, "c={c}: degenerate statistic {chi2}");
        assert!(chi2 < 22.5, "c={c}: chi-square {chi2} rejects the chain marginals");
    }
}

#[test]
fn relabelling_qubits_permutes_chain_marginals_with_them() {
    // Prefix-exchangeability: the chain draws special qubits first and
    // bulk qubits through a shared weight ladder, but the *labels* must
    // not matter — permuting the component's qubits must permute the
    // empirical per-qubit marginals within binomial noise.
    let c = 24usize;
    let xx = structured_component(c, 0.9, &[((0, 1), 0.37), ((4, 9), -0.61)]);
    let perm: Vec<usize> = (0..c).map(|q| (q + 7) % c).collect();
    let mut permuted = XxCircuit::new(c);
    for ((a, b), theta) in xx.terms() {
        permuted.add_xx(perm[a], perm[b], theta);
    }
    let shots = 6000usize;
    let freq = |xx: &XxCircuit, seed: u64| -> Vec<f64> {
        let chain = [ChainDist::build(xx).unwrap()];
        let strings = sample_strings(&chain, &mut SmallRng::seed_from_u64(seed), shots);
        (0..c)
            .map(|q| strings.iter().filter(|s| (**s >> q) & 1 == 1).count() as f64 / shots as f64)
            .collect()
    };
    let original = freq(&xx, 0xE8C4_0001);
    let relabeled = freq(&permuted, 0xE8C4_0002);
    for q in 0..c {
        let (a, b) = (original[q], relabeled[perm[q]]);
        let pooled = 0.5 * (a + b);
        let sigma = (2.0 * pooled * (1.0 - pooled) / shots as f64).sqrt().max(1e-3);
        assert!(
            (a - b).abs() < 5.0 * sigma,
            "qubit {q}→{}: marginal {a:.4} vs {b:.4} (5σ = {:.4})",
            perm[q],
            5.0 * sigma
        );
    }
}

#[test]
fn unstructured_oversize_component_yields_the_typed_chain_error() {
    // A 24-qubit star has every present pair deviating from the modal
    // (absent ⇒ 0) angle: all 24 qubits special, far past the limit.
    let mut star = XxCircuit::new(24);
    for q in 1..24 {
        star.add_xx(0, q, 1.3);
    }
    match XxPrepared::prepare(star) {
        Err(BackendError::ChainUnsupported { support, special, limit }) => {
            assert_eq!((support, special, limit), (24, 24, CHAIN_MAX_SPECIAL));
        }
        other => panic!("expected ChainUnsupported, got {other:?}"),
    }
    // The same typed error must surface through the public backend
    // seam, not a panic or a silent cap.
    let mut circuit = Circuit::new(24);
    for q in 1..24 {
        circuit.xx(0, q, 1.3);
    }
    match Backend::new(BackendChoice::Analytic).prepare(&circuit) {
        Err(BackendError::ChainUnsupported { support: 24, special: 24, .. }) => {}
        other => panic!("expected ChainUnsupported through Backend::prepare, got {other:?}"),
    }
}

#[test]
fn the_old_blanket_cap_above_20_qubits_is_gone_in_both_directions() {
    // Before the chain sampler, *every* XX component above MAX_COMPONENT
    // was rejected with SupportTooLarge. Now: structured components
    // prepare and sample; unstructured ones get the chain-specific
    // refusal. Neither path may return the old blanket error or panic.
    let oversize: Vec<(XxCircuit, bool, &str)> = vec![
        (structured_component(24, 0.9, &[]), true, "24q complete"),
        (structured_component(32, 0.9, &disjoint_deviants(2)), true, "32q complete + deviants"),
        (
            {
                let mut path = XxCircuit::new(24);
                for q in 1..24 {
                    path.add_xx(q - 1, q, 0.8);
                }
                path
            },
            false,
            "24q path",
        ),
    ];
    for (xx, chainable, label) in oversize {
        match XxPrepared::prepare(xx) {
            Ok(prepared) if chainable => {
                // The prepared circuit must actually produce strings.
                let mut rng = SmallRng::seed_from_u64(0x0D1D_0001);
                let strings = sample_strings(prepared.distributions(), &mut rng, 64);
                assert_eq!(strings.len(), 64, "{label}");
                assert!(strings.iter().any(|&s| s != 0 as BitString), "{label}: all-zero draws");
            }
            Err(BackendError::ChainUnsupported { .. }) if !chainable => {}
            Err(BackendError::SupportTooLarge { .. }) => {
                panic!("{label}: the blanket >{MAX_COMPONENT}-qubit cap is back")
            }
            other => panic!("{label}: unexpected outcome {other:?}"),
        }
    }
}
