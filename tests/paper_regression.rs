//! Tier-2 statistical paper-regression suite.
//!
//! Every filled row of `EXPERIMENTS.md` is pinned here to the paper's
//! value (Maksymov et al., HPCA 2022, arXiv:2108.03708) within a stated
//! tolerance, so a decoder or noise-model change that silently moves a
//! reproduced number fails the build (the `tier2-stats` CI job runs
//! exactly this file: `cargo test --release --test paper_regression`).
//!
//! Methodology: each Monte-Carlo assertion quotes the binomial 95 %
//! confidence half-width `1.96·√(p(1−p)/n)` at the trial count it runs,
//! and the accepted window is the paper value (or the pinned measured
//! value where the paper's own number is qualitative) widened by that
//! half-width. Seeds are derived exactly as the bench binaries derive
//! them (`Args::seed_for` with the master seed 20220402), so a bound
//! here is a bound on the published `EXPERIMENTS.md` row itself, not on
//! a lookalike workload. Trial counts are capped so the whole suite
//! stays within the CI job's ~5-minute budget on one vCPU.

use itqc_backend::BackendChoice;
use itqc_bench::coupling_census::{fig11_rows, suite_average_fraction};
use itqc_bench::detectability::{fig8_curve, fig8_threshold};
use itqc_bench::duty_cycle::{
    jobs_share_excluding_idle, mean_duty, periodic_policy, test_driven_policy,
};
use itqc_bench::echo::{chain_residuals, infidelity, FIG3_CALIB, FIG3_PHASE_RMS};
use itqc_bench::natural_faults::{fig7_diagnose, fig7_expected, fig7_recovery_rate, fig7_trap};
use itqc_bench::protocol_stats::{identification_rate_with, table2_config};
use itqc_bench::rb_stats::rb_summary;
use itqc_bench::single_output::{fig6_battery, fig6_expected_failing, fig6_jitter};
use itqc_bench::speedup::fig10_rows;
use itqc_bench::{adversarial_score, table2_identification_rate, Args};
use itqc_core::DecoderPolicy;
use itqc_faults::adversarial::ConfigClass;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The master seed every `EXPERIMENTS.md` row was captured at.
const PAPER_SEED: u64 = 20220402;

/// Seeds derived exactly as the bench binaries derive them.
fn seed_for(tag: &str) -> u64 {
    Args {
        trials: 0,
        seed: PAPER_SEED,
        threads: 0,
        decoder: None,
        backend: itqc_backend::BackendChoice::Auto,
        csv: false,
        fast: false,
        cost_report: false,
        metrics: None,
    }
    .seed_for(tag)
}

/// One Table II cell at the binary's own per-cell seed.
fn table2_cell(n: usize, k: usize, trials: usize) -> f64 {
    table2_identification_rate(
        n,
        k,
        trials,
        0,
        DecoderPolicy::Ranked,
        seed_for(&format!("t2/{n}/{k}")),
    )
}

// ---------------------------------------------------------------------
// Table II — multi-fault identification probability (ranked decoder).
// ---------------------------------------------------------------------

#[test]
fn table2_one_fault_row_is_exact() {
    // Paper: 100 % / 100 % / 100 %. A lone fault has a unique maximal
    // syndrome once amplified, so identification is deterministic — the
    // tolerance is zero at any trial count. Trial counts shrink with
    // machine size only to bound runtime (the per-trial cost grows with
    // the coupling count, not the success variance).
    for (n, trials) in [(8usize, 120usize), (16, 60), (32, 24)] {
        let p = table2_cell(n, 1, trials);
        assert_eq!(p, 1.0, "1-fault identification must be exact at {n} qubits, got {p}");
    }
}

#[test]
fn table2_two_fault_8q_tracks_fused_decoder_value() {
    // Paper: 47 %; PR 3's ranked decoder measured 49.7 %; the
    // evidence-fusion decoder measures 57.0 % — the ~7-point jump is
    // the over-long (non-conflicting) union syndromes the earlier
    // pipeline abandoned as Inconclusive and the fused posterior now
    // resolves (same upgrade already visible on the 16/32-qubit cells,
    // 30.7 vs 23 and 17.0 vs 12; see EXPERIMENTS.md). The floor is
    // PR 3's measured value (the fused decoder must never cost
    // identifications); the ceiling is the measured value plus the
    // binomial 95 % half-width at n = 300 (≈ 5.6 points).
    let p = table2_cell(8, 2, 300);
    assert!(p >= 0.497, "2-fault 8-qubit cell {p:.3} regressed below PR 3's 49.7 %");
    assert!(p <= 0.63, "2-fault 8-qubit cell {p:.3} above the pinned 57.0 % + CI half-width");
}

#[test]
fn table2_three_fault_8q_meets_acceptance_floor() {
    // Paper: 22 %; the fused decoder measures 24.7 % (up from PR 3's
    // 18.7 %, which sat one binomial half-width *below* the paper).
    // Binomial 95 % half-width at p ≈ 0.23, n = 300 is ≈ 4.8 points.
    // The floor is this PR's acceptance bound (≥ 19 %); the ceiling is
    // the measured value plus one half-width plus slack — the
    // consensus-gated decoder must stay in the paper's regime (the
    // interrogation *extension* measures 95 % here and is deliberately
    // not the default).
    let p = table2_cell(8, 3, 300);
    assert!(p >= 0.19, "3-fault 8-qubit cell {p:.3} under the 19 % acceptance floor");
    assert!(p <= 0.31, "3-fault 8-qubit cell {p:.3} implausibly above the paper's 22 %");
}

#[test]
fn table2_fused_evidence_never_costs_accuracy_and_pays_under_noise() {
    // The evidence-fusion property sweep, pinned at the suite seed over
    // per-trial seed streams ("across seeds"): with 300-shot binomial
    // noise on every test score, fusing each extra adaptive round's
    // class battery into the cover posterior must identify at least as
    // many planted 3-fault sets as the round-1-only ranking
    // (fusion_rounds = 0, PR 3's behaviour) on the *same* trial seeds —
    // and strictly more here (measured 46 % vs 43 %), because fresh
    // rungs carry independent shot noise the joint-magnitude profile
    // averages down.
    let seed = seed_for("fusion/shots");
    let fused_cfg = table2_config(3, DecoderPolicy::Ranked);
    let mut unfused_cfg = fused_cfg.clone();
    unfused_cfg.fusion_rounds = 0;
    let fused = identification_rate_with(8, 3, 150, 0, &fused_cfg, true, seed);
    let unfused = identification_rate_with(8, 3, 150, 0, &unfused_cfg, true, seed);
    assert!(
        fused >= unfused,
        "fused isolation accuracy {fused:.3} must not fall below round-1-only {unfused:.3}"
    );
}

#[test]
fn table2_aliasing_decays_with_machine_size() {
    // Paper rows: 2 faults 47/23/12 %, 3 faults 22/5/1 %. The bigger
    // label space dilutes syndrome coverage, so identification must
    // decay monotonically in machine size. Reduced trial counts keep
    // the 16/32-qubit cells affordable; the monotonicity claim needs no
    // tight absolute tolerance, and the absolute windows below are the
    // paper value ± the 95 % half-width at the trial count used
    // (n = 100: ±8.3 points at p = 0.23, ±6.4 at p = 0.12; 3-fault
    // cells at small p get a pure ceiling).
    let p2_8 = table2_cell(8, 2, 100);
    let p2_16 = table2_cell(16, 2, 100);
    let p2_32 = table2_cell(32, 2, 100);
    assert!(
        p2_8 > p2_16 && p2_16 >= p2_32,
        "2-fault identification must decay with size: {p2_8:.2} / {p2_16:.2} / {p2_32:.2}"
    );
    assert!(
        (0.15..=0.40).contains(&p2_16),
        "2-fault 16-qubit cell {p2_16:.3} far from the paper's 0.23"
    );
    assert!(
        (0.03..=0.25).contains(&p2_32),
        "2-fault 32-qubit cell {p2_32:.3} far from the paper's 0.12"
    );
    let p3_16 = table2_cell(16, 3, 100);
    assert!(p3_16 <= 0.20, "3-fault 16-qubit cell {p3_16:.3} implausibly above the paper's 0.05");
}

// ---------------------------------------------------------------------
// Fig. 8 — contrast & detectability at scale (string-sampled shots via
// the simulation-backend subsystem).
// ---------------------------------------------------------------------

/// One Fig. 8 panel at the binary's own seeds and reduced trials.
fn fig8_min_u95(n: usize, reps: usize, trials: usize) -> Option<f64> {
    let tag = format!("fig8/n={n}/r={reps}");
    let threshold =
        fig8_threshold(n, reps, 60, 0, BackendChoice::Auto, seed_for(&format!("{tag}/threshold")));
    fig8_curve(n, reps, threshold, trials, 0, BackendChoice::Auto, seed_for(&tag)).min_u_at(0.95)
}

#[test]
fn fig8_8q_and_16q_knees_match_paper_exactly() {
    // Paper: minimum under-rotation at 95 % identification is 25/30 %
    // (2-MS) and 20/25 % (4-MS) for 8/16 qubits. All four knees measure
    // exactly on the paper values at the binary's seeds — pinned to the
    // exact 5 %-grid point (the knee is a plateau crossing: the plateau
    // sits at ≈ 0.98–1.00, comfortably above the 95 % bar even at the
    // 60-trial binomial half-width, so the crossing point is stable).
    for (n, reps, paper) in [(8, 2, 0.25), (16, 2, 0.30), (8, 4, 0.20), (16, 4, 0.25)] {
        let min_u = fig8_min_u95(n, reps, 60).expect("knee must exist below 50%");
        assert!(
            (min_u - paper).abs() < 1e-9,
            "{n}q {reps}MS: min-u {min_u:.2} vs paper {paper:.2}"
        );
    }
}

#[test]
fn fig8_32q_knees_match_paper_exactly() {
    // Paper: 35 % at 2-MS and 30 % at 4-MS on 32 qubits. Both knees
    // used to sit one 5 %-grid step high (40/35 %) because the
    // verification point test — the highest-scoring faulty test, with
    // no ambient co-factors — sat ~1.7σ from the class-calibrated
    // threshold; per-run contrast verification
    // (`SingleFaultProtocol::with_contrast_verification`) fixed the
    // 2-MS knee. The 4-MS knee then still measured one miss in 120
    // short of the 95 % bar at the paper's 30 % point: the interpolated
    // calibration quantile sat strictly *inside* the 1/300-shot score
    // band above its own lowest healthy level, so healthy first-round
    // tests at that level false-failed at ~5× the calibrated rate and
    // one corrupted syndrome per ~20 trials sent the decoder to the
    // wrong coupling. Snapping the threshold onto the shot grid
    // (`itqc_core::threshold::snap_to_shot_grid`) removes those false
    // fails and lands both knees exactly on the paper values, measured
    // P(identify) = 0.975 at 4-MS u = 30 % over 120 trials. Reduced to
    // 30 trials to keep the 32-qubit cells inside the CI budget (the
    // knee is a plateau crossing, far less trial-sensitive than the
    // plateau height).
    for (reps, paper) in [(2, 0.35), (4, 0.30)] {
        let min_u = fig8_min_u95(32, reps, 30).expect("32q knee must exist below 50%");
        assert!((min_u - paper).abs() < 1e-9, "32q {reps}MS knee {min_u:.2} vs paper {paper:.2}");
    }
}

// ---------------------------------------------------------------------
// Beyond-paper scale (fig8_xl / table2_xl): chain-sampled 32-qubit
// components, common-mode ambient — see EXPERIMENTS.md.
// ---------------------------------------------------------------------

#[test]
fn fig8_xl_64q_knees_are_pinned() {
    // EXPERIMENTS.md fig8_xl row (120 trials, seed 20220402): 20 % at
    // 2-MS and 15 % at 4-MS on 64 qubits — every first-round class is a
    // 32-qubit complete component, answered by the chain sampler (no
    // joint table exists above 20 qubits). The knees are plateau
    // crossings (P(identify) ≈ 0.77 one grid step below the 2-MS knee,
    // ≈ 1.00 on it), so the reduced 30-trial count crosses at the same
    // grid points.
    for (reps, pinned) in [(2, 0.20), (4, 0.15)] {
        let min_u = fig8_min_u95(64, reps, 30).expect("64q knee must exist below 50%");
        assert!(
            (min_u - pinned).abs() < 1e-9,
            "64q {reps}MS knee {min_u:.2} vs pinned {pinned:.2}"
        );
    }
}

#[test]
fn fig8_xl_chain_path_is_thread_invariant() {
    // The chain descent consumes exactly one uniform per component per
    // shot, so the 64-qubit panel must stay bit-identical across worker
    // counts like every paper-size panel.
    let tag = "fig8/n=64/r=2";
    let threshold =
        fig8_threshold(64, 2, 30, 0, BackendChoice::Auto, seed_for(&format!("{tag}/threshold")));
    let a = fig8_curve(64, 2, threshold, 6, 1, BackendChoice::Auto, seed_for(tag));
    let b = fig8_curve(64, 2, threshold, 6, 8, BackendChoice::Auto, seed_for(tag));
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x.p_identify, y.p_identify);
        assert_eq!(x.faulty_mean.to_bits(), y.faulty_mean.to_bits());
        assert_eq!(x.healthy_mean.to_bits(), y.healthy_mean.to_bits());
    }
}

#[test]
fn table2_xl_64q_row_tracks_recorded_values() {
    // EXPERIMENTS.md table2_xl row (seed 20220402): 100 / 12.7 / 1.3 %
    // for 1/2/3 faults at N = 64 — the backend-routed pipeline answers
    // every ExactTarget score from the chain sampler's (z_T, k) tables.
    // Windows are the recorded value ± the 95 % half-width at the
    // reduced trial counts (n = 60: ±8.4 points at p = 0.127; the
    // 3-fault cell at p ≈ 0.01 gets a pure ceiling).
    let cell = |k: usize, trials: usize| {
        itqc_bench::table2_identification_rate_backed(
            64,
            k,
            trials,
            0,
            DecoderPolicy::Ranked,
            BackendChoice::Auto,
            seed_for(&format!("t2xl/64/{k}")),
        )
    };
    assert_eq!(cell(1, 25), 1.0, "single faults must always be identified at N = 64");
    let p2 = cell(2, 60);
    assert!((0.03..=0.25).contains(&p2), "2-fault 64q cell {p2:.3} far from the recorded 0.127");
    let p3 = cell(3, 40);
    assert!(p3 <= 0.15, "3-fault 64q cell {p3:.3} implausibly above the recorded 0.013");
}

#[test]
fn fig8_contrast_shape_matches_paper_reading() {
    // The qualitative claims of the figure, at the binary's seeds: the
    // healthy baseline stays flat across the sweep while the faulty
    // curve opens monotonically; deeper tests amplify (4-MS faulty
    // scores sit below 2-MS at the same u); and a noise-floor fault is
    // never 95 %-identifiable.
    let tag = "fig8/n=8/r=2";
    let t2 =
        fig8_threshold(8, 2, 60, 0, BackendChoice::Auto, seed_for(&format!("{tag}/threshold")));
    let c2 = fig8_curve(8, 2, t2, 60, 0, BackendChoice::Auto, seed_for(tag));
    let tag4 = "fig8/n=8/r=4";
    let t4 =
        fig8_threshold(8, 4, 60, 0, BackendChoice::Auto, seed_for(&format!("{tag4}/threshold")));
    let c4 = fig8_curve(8, 4, t4, 60, 0, BackendChoice::Auto, seed_for(tag4));
    for c in [&c2, &c4] {
        let healthy_drift =
            (c.points.last().unwrap().healthy_mean - c.points.first().unwrap().healthy_mean).abs();
        assert!(healthy_drift < 0.03, "healthy baseline drifted {healthy_drift:.3}");
        assert!(c.points.first().unwrap().p_identify < 0.1, "u=0 must not be 'identified'");
    }
    for (p2, p4) in c2.points.iter().zip(&c4.points).skip(2) {
        assert!(
            p4.faulty_mean < p2.faulty_mean + 1e-9,
            "4-MS must amplify at u={:.2}: {:.3} vs {:.3}",
            p2.under_rotation,
            p4.faulty_mean,
            p2.faulty_mean
        );
    }
}

// ---------------------------------------------------------------------
// Fig. 2 — duty-cycle split of the two maintenance policies.
// ---------------------------------------------------------------------

#[test]
fn fig2_duty_cycle_split_matches_paper() {
    // Paper: ~53 % jobs / ~47 % test+calibration for the periodic
    // policy (excluding idle). The split is a ratio of accumulated
    // wall-clock, not a Bernoulli rate, so the tolerance is the ±4-point
    // day-to-day spread observed across seeds, wide enough for the
    // 4-day mean used here (EXPERIMENTS.md pins 52.2 % over 8 days).
    let days = 4;
    let periodic = mean_duty(
        0,
        days,
        |t| seed_for(&format!("fig2/periodic/trial{t}")),
        |seed| periodic_policy(seed, 5.0),
    );
    let jobs = jobs_share_excluding_idle(&periodic);
    assert!(
        (0.49..=0.57).contains(&jobs),
        "periodic-policy jobs share {jobs:.3} outside the paper's ~0.53 window"
    );

    // The paper's qualitative claim for its test-driven policy: the
    // maintenance share shrinks decisively. EXPERIMENTS.md pins 91.5 %
    // jobs; assert a ≥ 20-point improvement so the claim survives any
    // re-tuning of the drift model.
    let driven =
        mean_duty(0, days, |t| seed_for(&format!("fig2/driven/trial{t}")), test_driven_policy);
    let driven_jobs = jobs_share_excluding_idle(&driven);
    assert!(
        driven_jobs >= jobs + 0.20,
        "test-driven jobs share {driven_jobs:.3} must beat periodic {jobs:.3} by ≥ 20 points"
    );
}

// ---------------------------------------------------------------------
// Fig. 3 — echoed vs non-echoed MS sequences.
// ---------------------------------------------------------------------

#[test]
fn fig3_echo_ordering_matches_paper() {
    // Paper orderings at 20 gates: non-echoed infidelity sits well above
    // echoed for both pairs (coherent ~quadratic accumulation vs pairwise
    // cancellation), and the edge pair {0,10} sits above {3,8} without
    // echo. EXPERIMENTS.md pins no-echo 0.040/0.098 vs echo 0.005/0.002;
    // at 200 trajectories the trajectory-noise spread on each mean is
    // under a point, so a 2× separation factor is conservative.
    let residuals = chain_residuals();
    let k = 20;
    let cell = |pair: usize, echoed: bool| {
        let mut rng =
            SmallRng::seed_from_u64(seed_for(&format!("fig3/k={k}/pair={pair}/echo={echoed}")));
        infidelity(k, echoed, FIG3_CALIB[pair], FIG3_PHASE_RMS, residuals[pair], 200, &mut rng)
    };
    let no_echo = [cell(0, false), cell(1, false)];
    let echo = [cell(0, true), cell(1, true)];
    for p in 0..2 {
        assert!(
            no_echo[p] > 2.0 * echo[p],
            "pair {p}: no-echo {:.4} must exceed echo {:.4} decisively",
            no_echo[p],
            echo[p]
        );
    }
    assert!(
        no_echo[1] > no_echo[0],
        "edge pair {{0,10}} ({:.4}) must sit above {{3,8}} ({:.4}) without echo",
        no_echo[1],
        no_echo[0]
    );
}

// ---------------------------------------------------------------------
// Fig. 6 — single-output tests with planted 47 % / 22 % errors.
// ---------------------------------------------------------------------

#[test]
fn fig6_battery_verdicts_match_paper_reading() {
    // Paper: {0,4} (47 %) trips exactly the two classes containing it —
    // (0,0) and (1,0) — while the bit-complementary {0,7} (22 %) is
    // invisible to round 1; thresholds 0.45 / 0.25 separate faulty from
    // healthy tests. Pinned at the binary's own panel seeds: at 4-MS
    // depth the verdict split must be exact in both panels (at 2-MS the
    // 47 % fault sits near the threshold, so only the ordering is
    // asserted: every faulty-class score below every healthy one).
    for (panel, shots) in
        [("A (simulation, exact)", 200_000usize), ("B (experiment, 300 shots)", 300usize)]
    {
        let rows = fig6_battery(seed_for(panel), shots, fig6_jitter(), 0);
        let expected = fig6_expected_failing();
        for row in &rows {
            let (_, fail4) = row.verdicts();
            assert_eq!(
                fail4,
                expected.contains(&row.class),
                "panel {panel}: 4-MS verdict of {} (fid {:.3}) wrong",
                row.class,
                row.fid4
            );
        }
        let worst_healthy_2ms = rows
            .iter()
            .filter(|r| !expected.contains(&r.class))
            .map(|r| r.fid2)
            .fold(f64::INFINITY, f64::min);
        for row in rows.iter().filter(|r| expected.contains(&r.class)) {
            assert!(
                row.fid2 < worst_healthy_2ms,
                "panel {panel}: faulty {} at 2-MS ({:.3}) must undercut every healthy test \
                 ({worst_healthy_2ms:.3})",
                row.class,
                row.fid2
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fig. 7 — natural miscalibrations after idling.
// ---------------------------------------------------------------------

#[test]
fn fig7_single_day_recovers_all_three_outliers() {
    // The paper's observed day: {3,4}, {2,5}, {5,7} drift out of the
    // ±6 % band and all three are recovered — including the two
    // bit-complementary pairs the first round cannot see. Deterministic
    // at the binary's seeds (300-shot streams included).
    let mut trap = fig7_trap(seed_for("fig7"), seed_for("fig7/ambient"));
    let report = fig7_diagnose(&mut trap);
    assert!(report.converged, "{report:?}");
    assert_eq!(report.couplings(), fig7_expected());
}

#[test]
fn fig7_recovery_rate_over_redrawn_drifts() {
    // EXPERIMENTS.md pins 79.2 % over the binary's 24 re-drawn ambient
    // drifts. The binomial 95 % half-width at p ≈ 0.79, n = 24 is
    // ≈ 16 points; the floor sits one half-width under the pinned
    // value. (The paper reports its single day qualitatively.)
    let rate = fig7_recovery_rate(24, 0, seed_for("fig7/mc"));
    assert!(rate >= 0.62, "fig7 recovery rate {rate:.3} under the pinned 79.2 % − CI half-width");
}

// ---------------------------------------------------------------------
// Fig. 10 — speed-up over point checks (deterministic cost model).
// ---------------------------------------------------------------------

#[test]
fn fig10_speedup_reference_points_match_paper() {
    let rows = fig10_rows(0);
    let at = |n: usize| rows.iter().find(|r| r.qubits == n).expect("size in sweep");
    // Paper: an 11-qubit machine takes "over a minute" to characterise
    // by point checks and ~10 s to diagnose non-adaptively.
    assert!(
        (60.0..600.0).contains(&at(11).point_check_s),
        "11-qubit point check {:.1} s must be minutes-scale",
        at(11).point_check_s
    );
    assert!(
        (5.0..20.0).contains(&at(11).non_adaptive_s),
        "11-qubit non-adaptive diagnosis {:.1} s must be ~10 s",
        at(11).non_adaptive_s
    );
    // Paper: the adaptive speed-up plateaus near 10³ (compile-bound)…
    assert!(
        (500.0..2000.0).contains(&at(4096).speedup_adaptive),
        "adaptive speed-up {:.0} must plateau near 10^3",
        at(4096).speedup_adaptive
    );
    assert!(
        at(4096).speedup_adaptive / at(1024).speedup_adaptive < 1.1,
        "the adaptive curve must be flat between N = 1024 and N = 4096"
    );
    // …while the non-adaptive speed-up keeps growing like N²/log N.
    let measured = at(1024).speedup_non_adaptive / at(256).speedup_non_adaptive;
    let predicted = (1024.0f64 * 1024.0 / 10.0) / (256.0 * 256.0 / 8.0);
    assert!(
        (measured / predicted - 1.0).abs() < 0.15,
        "non-adaptive growth x{measured:.1} must track N²/log N (x{predicted:.1})"
    );
}

// ---------------------------------------------------------------------
// Fig. 11 — coupling utilisation of real circuits.
// ---------------------------------------------------------------------

#[test]
fn fig11_suite_average_utilisation_near_one_third() {
    // Paper: real workloads exercise ~1/3 of all C(N,2) couplings on
    // average (the map-around headroom of §VIII). EXPERIMENTS.md pins
    // 35.0 % at the binary's seed; the window spans the paper's
    // qualitative "about a third".
    let rows = fig11_rows(seed_for("fig11"), 0);
    let avg = suite_average_fraction(&rows);
    assert!(
        (0.28..=0.42).contains(&avg),
        "suite-average utilised fraction {avg:.3} far from the paper's ~1/3"
    );
    // Chain-structured circuits bound the low end exactly.
    for row in rows.iter().filter(|r| r.name.starts_with("ghz-")) {
        assert_eq!(row.used, row.qubits - 1, "{} must lower to a CX chain", row.name);
    }
}

// ---------------------------------------------------------------------
// §II-B — randomized benchmarking (extension).
// ---------------------------------------------------------------------

#[test]
fn rb_error_brackets_paper_fidelity_and_grows_with_noise() {
    // Paper: ~99.5 % single-qubit fidelity (error per Clifford 0.005).
    // At the binary's seed the σ = 0.02 row implies ≥ 99.9 % fidelity,
    // and the paper's quoted error sits inside the σ = 0.1 … 0.2 band
    // (EXPERIMENTS.md pins 0.0021 / 0.0086); coherent angle jitter must
    // grow the error monotonically across the three levels.
    let rows = rb_summary(seed_for("rb"), 8, 300, 0);
    assert_eq!(rows.len(), 3);
    assert!(
        rows[0].result.error_per_clifford < 0.002,
        "low-noise error {:.4} must beat the paper's 0.005",
        rows[0].result.error_per_clifford
    );
    assert!(
        rows[1].result.error_per_clifford < 0.005 && 0.005 < rows[2].result.error_per_clifford,
        "the paper's 0.5 % error must sit inside the σ = 0.1 … 0.2 band ({:.4} … {:.4})",
        rows[1].result.error_per_clifford,
        rows[2].result.error_per_clifford
    );
    assert!(
        rows[0].result.error_per_clifford < rows[1].result.error_per_clifford
            && rows[1].result.error_per_clifford < rows[2].result.error_per_clifford,
        "RB error must grow with rotation noise"
    );
}

// ---------------------------------------------------------------------
// Determinism — the parallel trial engine behind every row above.
// ---------------------------------------------------------------------

#[test]
fn par_trials_aggregate_is_byte_identical_across_threads() {
    // The CI shell check diffs full binary stdout at two thread counts;
    // this is the same guarantee as an in-repo test, on the estimators
    // the binaries aggregate — including the extracted library modules
    // (fig6, fig7, fig8/detectability, fig10, fig11, rb). Per-trial
    // seed streams make each trial's RNG independent of the worker that
    // runs it, so every aggregate must be bit-identical — not merely
    // close — at any thread count.
    let runs: Vec<String> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let mut s = String::new();
            let mut push = |tag: &str, v: f64| s.push_str(&format!("{tag}={};", v.to_bits()));
            let rate = table2_identification_rate(
                8,
                2,
                24,
                threads,
                DecoderPolicy::Ranked,
                seed_for("t2/8/2"),
            );
            push("t2", rate);
            let duty = mean_duty(
                threads,
                2,
                |t| seed_for(&format!("fig2/periodic/trial{t}")),
                |seed| periodic_policy(seed, 5.0),
            );
            for d in duty {
                push("fig2", d);
            }
            for row in fig6_battery(seed_for("A (simulation, exact)"), 64, fig6_jitter(), threads) {
                push("fig6.2", row.fid2);
                push("fig6.4", row.fid4);
            }
            push("fig7", fig7_recovery_rate(2, threads, seed_for("fig7/mc")));
            let t8 = fig8_threshold(
                8,
                2,
                4,
                threads,
                BackendChoice::Auto,
                seed_for("fig8/n=8/r=2/threshold"),
            );
            push("fig8.t", t8);
            for p in fig8_curve(8, 2, t8, 3, threads, BackendChoice::Auto, seed_for("fig8/n=8/r=2"))
                .points
            {
                push("fig8.f", p.faulty_mean);
                push("fig8.h", p.healthy_mean);
                push("fig8.p", p.p_identify);
            }
            for row in fig10_rows(threads) {
                push("fig10", row.speedup_non_adaptive);
            }
            for row in fig11_rows(seed_for("fig11"), threads) {
                push("fig11", row.used as f64);
            }
            for row in rb_summary(seed_for("rb"), 4, 100, threads) {
                push("rb", row.result.decay_p);
            }
            for class in ConfigClass::ALL {
                let adv = adversarial_score(
                    8,
                    class,
                    8,
                    threads,
                    true,
                    seed_for(&format!("fig_adv/n=8/{class}/rotating")),
                );
                push("adv.p", adv.identification);
                push("adv.k", adv.mean_faults);
                push("adv.f", adv.false_accusations as f64);
            }
            s
        })
        .collect();
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            run,
            &runs[0],
            "aggregated output at threads={} differs from threads=1",
            [1, 2, 8][i]
        );
    }
}
