//! Tier-2 statistical paper-regression suite.
//!
//! Every filled row of `EXPERIMENTS.md` is pinned here to the paper's
//! value (Maksymov et al., HPCA 2022, arXiv:2108.03708) within a stated
//! tolerance, so a decoder or noise-model change that silently moves a
//! reproduced number fails the build (the `tier2-stats` CI job runs
//! exactly this file: `cargo test --release --test paper_regression`).
//!
//! Methodology: each Monte-Carlo assertion quotes the binomial 95 %
//! confidence half-width `1.96·√(p(1−p)/n)` at the trial count it runs,
//! and the accepted window is the paper value (or the pinned measured
//! value where the paper's own number is qualitative) widened by that
//! half-width. Seeds are derived exactly as the bench binaries derive
//! them (`Args::seed_for` with the master seed 20220402), so a bound
//! here is a bound on the published `EXPERIMENTS.md` row itself, not on
//! a lookalike workload. Trial counts are capped so the whole suite
//! stays within the CI job's ~5-minute budget on one vCPU.

use itqc_bench::duty_cycle::{
    jobs_share_excluding_idle, mean_duty, periodic_policy, test_driven_policy,
};
use itqc_bench::echo::{chain_residuals, infidelity, FIG3_CALIB, FIG3_PHASE_RMS};
use itqc_bench::{table2_identification_rate, Args};
use itqc_core::DecoderPolicy;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The master seed every `EXPERIMENTS.md` row was captured at.
const PAPER_SEED: u64 = 20220402;

/// Seeds derived exactly as the bench binaries derive them.
fn seed_for(tag: &str) -> u64 {
    Args { trials: 0, seed: PAPER_SEED, threads: 0, decoder: None, csv: false, fast: false }
        .seed_for(tag)
}

/// One Table II cell at the binary's own per-cell seed.
fn table2_cell(n: usize, k: usize, trials: usize) -> f64 {
    table2_identification_rate(
        n,
        k,
        trials,
        0,
        DecoderPolicy::Ranked,
        seed_for(&format!("t2/{n}/{k}")),
    )
}

// ---------------------------------------------------------------------
// Table II — multi-fault identification probability (ranked decoder).
// ---------------------------------------------------------------------

#[test]
fn table2_one_fault_row_is_exact() {
    // Paper: 100 % / 100 % / 100 %. A lone fault has a unique maximal
    // syndrome once amplified, so identification is deterministic — the
    // tolerance is zero at any trial count. Trial counts shrink with
    // machine size only to bound runtime (the per-trial cost grows with
    // the coupling count, not the success variance).
    for (n, trials) in [(8usize, 120usize), (16, 60), (32, 24)] {
        let p = table2_cell(n, 1, trials);
        assert_eq!(p, 1.0, "1-fault identification must be exact at {n} qubits, got {p}");
    }
}

#[test]
fn table2_two_fault_8q_within_5_points_of_paper() {
    // Paper: 47 %. At n = 300 trials the binomial 95 % half-width at
    // p = 0.47 is 1.96·√(0.47·0.53/300) ≈ 5.6 points; the acceptance
    // window is the slightly stricter ±5 points (≈ 1.77 σ) fixed by the
    // reproduction target.
    let p = table2_cell(8, 2, 300);
    assert!(
        (0.42..=0.52).contains(&p),
        "2-fault 8-qubit cell {p:.3} outside the ±5-point window around the paper's 0.47"
    );
}

#[test]
fn table2_three_fault_8q_meets_acceptance_floor() {
    // Paper: 22 %. Binomial 95 % half-width at p = 0.22, n = 300 is
    // ≈ 4.7 points. The floor is the reproduction's acceptance bound
    // (≥ 18 %, i.e. within one half-width below the paper); the ceiling
    // is the paper plus two half-widths — a decoder "improving" past
    // 32 % would no longer be reproducing the paper's pipeline.
    let p = table2_cell(8, 3, 300);
    assert!(p >= 0.18, "3-fault 8-qubit cell {p:.3} under the 18 % acceptance floor");
    assert!(p <= 0.32, "3-fault 8-qubit cell {p:.3} implausibly above the paper's 22 %");
}

#[test]
fn table2_aliasing_decays_with_machine_size() {
    // Paper rows: 2 faults 47/23/12 %, 3 faults 22/5/1 %. The bigger
    // label space dilutes syndrome coverage, so identification must
    // decay monotonically in machine size. Reduced trial counts keep
    // the 16/32-qubit cells affordable; the monotonicity claim needs no
    // tight absolute tolerance, and the absolute windows below are the
    // paper value ± the 95 % half-width at the trial count used
    // (n = 100: ±8.3 points at p = 0.23, ±6.4 at p = 0.12; 3-fault
    // cells at small p get a pure ceiling).
    let p2_8 = table2_cell(8, 2, 100);
    let p2_16 = table2_cell(16, 2, 100);
    let p2_32 = table2_cell(32, 2, 100);
    assert!(
        p2_8 > p2_16 && p2_16 >= p2_32,
        "2-fault identification must decay with size: {p2_8:.2} / {p2_16:.2} / {p2_32:.2}"
    );
    assert!(
        (0.15..=0.40).contains(&p2_16),
        "2-fault 16-qubit cell {p2_16:.3} far from the paper's 0.23"
    );
    assert!(
        (0.03..=0.25).contains(&p2_32),
        "2-fault 32-qubit cell {p2_32:.3} far from the paper's 0.12"
    );
    let p3_16 = table2_cell(16, 3, 100);
    assert!(p3_16 <= 0.20, "3-fault 16-qubit cell {p3_16:.3} implausibly above the paper's 0.05");
}

// ---------------------------------------------------------------------
// Fig. 2 — duty-cycle split of the two maintenance policies.
// ---------------------------------------------------------------------

#[test]
fn fig2_duty_cycle_split_matches_paper() {
    // Paper: ~53 % jobs / ~47 % test+calibration for the periodic
    // policy (excluding idle). The split is a ratio of accumulated
    // wall-clock, not a Bernoulli rate, so the tolerance is the ±4-point
    // day-to-day spread observed across seeds, wide enough for the
    // 4-day mean used here (EXPERIMENTS.md pins 52.2 % over 8 days).
    let days = 4;
    let periodic = mean_duty(
        0,
        days,
        |t| seed_for(&format!("fig2/periodic/trial{t}")),
        |seed| periodic_policy(seed, 5.0),
    );
    let jobs = jobs_share_excluding_idle(&periodic);
    assert!(
        (0.49..=0.57).contains(&jobs),
        "periodic-policy jobs share {jobs:.3} outside the paper's ~0.53 window"
    );

    // The paper's qualitative claim for its test-driven policy: the
    // maintenance share shrinks decisively. EXPERIMENTS.md pins 91.5 %
    // jobs; assert a ≥ 20-point improvement so the claim survives any
    // re-tuning of the drift model.
    let driven =
        mean_duty(0, days, |t| seed_for(&format!("fig2/driven/trial{t}")), test_driven_policy);
    let driven_jobs = jobs_share_excluding_idle(&driven);
    assert!(
        driven_jobs >= jobs + 0.20,
        "test-driven jobs share {driven_jobs:.3} must beat periodic {jobs:.3} by ≥ 20 points"
    );
}

// ---------------------------------------------------------------------
// Fig. 3 — echoed vs non-echoed MS sequences.
// ---------------------------------------------------------------------

#[test]
fn fig3_echo_ordering_matches_paper() {
    // Paper orderings at 20 gates: non-echoed infidelity sits well above
    // echoed for both pairs (coherent ~quadratic accumulation vs pairwise
    // cancellation), and the edge pair {0,10} sits above {3,8} without
    // echo. EXPERIMENTS.md pins no-echo 0.040/0.098 vs echo 0.005/0.002;
    // at 200 trajectories the trajectory-noise spread on each mean is
    // under a point, so a 2× separation factor is conservative.
    let residuals = chain_residuals();
    let k = 20;
    let cell = |pair: usize, echoed: bool| {
        let mut rng =
            SmallRng::seed_from_u64(seed_for(&format!("fig3/k={k}/pair={pair}/echo={echoed}")));
        infidelity(k, echoed, FIG3_CALIB[pair], FIG3_PHASE_RMS, residuals[pair], 200, &mut rng)
    };
    let no_echo = [cell(0, false), cell(1, false)];
    let echo = [cell(0, true), cell(1, true)];
    for p in 0..2 {
        assert!(
            no_echo[p] > 2.0 * echo[p],
            "pair {p}: no-echo {:.4} must exceed echo {:.4} decisively",
            no_echo[p],
            echo[p]
        );
    }
    assert!(
        no_echo[1] > no_echo[0],
        "edge pair {{0,10}} ({:.4}) must sit above {{3,8}} ({:.4}) without echo",
        no_echo[1],
        no_echo[0]
    );
}

// ---------------------------------------------------------------------
// Determinism — the parallel trial engine behind every row above.
// ---------------------------------------------------------------------

#[test]
fn par_trials_aggregate_is_byte_identical_across_threads() {
    // The CI shell check diffs full binary stdout at two thread counts;
    // this is the same guarantee as an in-repo test, on the estimators
    // the binaries aggregate. Per-trial seed streams make each trial's
    // RNG independent of the worker that runs it, so the aggregate must
    // be bit-identical — not merely close — at any thread count.
    let runs: Vec<(f64, [f64; 5])> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let rate = table2_identification_rate(
                8,
                2,
                24,
                threads,
                DecoderPolicy::Ranked,
                seed_for("t2/8/2"),
            );
            let duty = mean_duty(
                threads,
                2,
                |t| seed_for(&format!("fig2/periodic/trial{t}")),
                |seed| periodic_policy(seed, 5.0),
            );
            (rate, duty)
        })
        .collect();
    let render = |(rate, duty): &(f64, [f64; 5])| {
        let mut s = format!("rate={}", rate.to_bits());
        for d in duty {
            s.push_str(&format!(",duty={}", d.to_bits()));
        }
        s
    };
    let reference = render(&runs[0]);
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            render(run),
            reference,
            "aggregated output at threads={} differs from threads=1",
            [1, 2, 8][i]
        );
    }
}
