//! Backend-equivalence property suite: the pluggable simulation
//! backends must be interchangeable wherever both apply.
//!
//! On seeded random commuting-XX circuits at `N ≤ 12`, the
//! `XxAnalyticBackend` (component-factorized Gray-code/Walsh–Hadamard
//! engine) and the `DenseBackend` (support-compressed state vector)
//! must agree on per-qubit marginals and exact output probabilities to
//! `1e-9` — and, because both draw through the canonical
//! component-ordered inverse-CDF sampler, their shot strings must match
//! **bit for bit** under a shared RNG seed. The same holds one level
//! up, through the backend-routed executor and the string-sampling shot
//! wrapper the Fig. 8 study runs on.

use itqc::prelude::*;
use itqc_bench::StringSampled;
use itqc_core::testplan::ScoreMode;
use itqc_core::TestSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 40;

/// A random pure-XX circuit on 2–12 qubits with 1–17 gates.
fn random_xx_circuit(rng: &mut SmallRng) -> Circuit {
    let n = rng.gen_range(2usize..=12);
    let count = rng.gen_range(1usize..18);
    let mut c = Circuit::new(n);
    for _ in 0..count {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            c.xx(a, b, rng.gen_range(-3.0f64..3.0));
        }
    }
    c
}

#[test]
fn marginals_and_probabilities_agree_to_1e9() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xBAC0 + case);
        let circuit = random_xx_circuit(&mut rng);
        let n = circuit.n_qubits();
        let dense = Backend::new(BackendChoice::Dense).prepare(&circuit).unwrap();
        let analytic = Backend::new(BackendChoice::Analytic).prepare(&circuit).unwrap();
        assert_eq!(dense.support(), analytic.support(), "case {case}");
        for q in 0..n {
            assert!(
                (dense.marginal_one(q) - analytic.marginal_one(q)).abs() < 1e-9,
                "case {case}, qubit {q}"
            );
        }
        for _ in 0..8 {
            let target = (rng.gen::<usize>() & ((1 << n) - 1)) as u128;
            assert!(
                (dense.probability(target) - analytic.probability(target)).abs() < 1e-9,
                "case {case}, target {target:b}"
            );
            assert!(
                (dense.min_qubit_agreement(target) - analytic.min_qubit_agreement(target)).abs()
                    < 1e-9,
                "case {case}, worst-qubit at {target:b}"
            );
        }
    }
}

#[test]
fn shot_sampling_matches_bit_for_bit_under_a_shared_seed() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5A3D + case);
        let circuit = random_xx_circuit(&mut rng);
        let dense = Backend::new(BackendChoice::Dense).prepare(&circuit).unwrap();
        let analytic = Backend::new(BackendChoice::Analytic).prepare(&circuit).unwrap();
        let shot_seed = rng.gen::<u64>();
        let mut r1 = SmallRng::seed_from_u64(shot_seed);
        let mut r2 = SmallRng::seed_from_u64(shot_seed);
        let s1 = dense.sample(&mut r1, 128);
        let s2 = analytic.sample(&mut r2, 128);
        assert_eq!(s1, s2, "case {case}: shot strings diverged");
        // Both RNG streams must have consumed identically (one draw per
        // component per shot), so the next draw agrees too.
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>(), "case {case}: RNG stream desynced");
    }
}

#[test]
fn routed_executors_and_string_sampler_agree_across_backends() {
    // The full Fig. 8 stack: faulty executor → backend → sampled score.
    for case in 0..12 {
        let mut rng = SmallRng::seed_from_u64(0xE8EC + case);
        let n = rng.gen_range(4usize..=10);
        let fault = Coupling::new(rng.gen_range(0..n / 2), rng.gen_range(n / 2..n));
        let u = rng.gen_range(0.05..0.45);
        let couplings: Vec<Coupling> = {
            let mut cs = vec![fault];
            while cs.len() < 3 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b && !cs.contains(&Coupling::new(a, b)) {
                    cs.push(Coupling::new(a, b));
                }
            }
            cs
        };
        let shot_seed = rng.gen::<u64>();
        let score_with = |choice: BackendChoice, score: ScoreMode| {
            let exec = ExactExecutor::new(n).with_fault(fault, u).with_backend(choice);
            let spec = TestSpec::for_couplings("eq", &couplings, 4).with_score(score);
            let exact = exec.exact_score(&spec);
            let mut sampler = StringSampled::new(exec, shot_seed);
            (exact, sampler.run_test(&spec, 300))
        };
        for score in [ScoreMode::ExactTarget, ScoreMode::WorstQubit] {
            let (exact_d, shot_d) = score_with(BackendChoice::Dense, score);
            let (exact_a, shot_a) = score_with(BackendChoice::Analytic, score);
            assert!((exact_d - exact_a).abs() < 1e-9, "case {case} {score:?} exact");
            assert_eq!(
                shot_d.to_bits(),
                shot_a.to_bits(),
                "case {case} {score:?}: sampled scores must be identical"
            );
        }
    }
}

#[test]
fn adversarial_scenarios_agree_across_backends() {
    // The adversarial harness's configurations stack several faulty
    // couplings on shared qubits, so their scores hinge on multi-fault
    // interference — the even-degree parity cancellation (Π cos over a
    // qubit's faults) that no single-fault case exercises. Both
    // backends must agree on the exact scores to 1e-9 and bit-for-bit
    // through the shot sampler, on the full-machine canary spec (where
    // the cancellation happens) and on each planted point test.
    use itqc_faults::adversarial::{sample_scenario, ConfigClass};
    let mut rng = SmallRng::seed_from_u64(0xAD5E);
    for case in 0..6 {
        let class = if case % 2 == 0 { ConfigClass::EvenDegree } else { ConfigClass::TiedCover };
        let n = 8;
        let scenario = sample_scenario(class, n, &mut rng);
        let all: Vec<Coupling> =
            (0..n).flat_map(|a| (a + 1..n).map(move |b| Coupling::new(a, b))).collect();
        let mut specs =
            vec![TestSpec::for_couplings("canary", &all, 2).with_score(ScoreMode::WorstQubit)];
        for (i, &c) in scenario.faults.iter().enumerate() {
            specs.push(
                TestSpec::for_couplings(format!("point{i}"), &[c], 4)
                    .with_score(ScoreMode::ExactTarget),
            );
        }
        let shot_seed = rng.gen::<u64>();
        for spec in &specs {
            let score_with = |choice: BackendChoice| {
                let exec = ExactExecutor::new(n)
                    .with_faults(scenario.faults.iter().map(|&c| (c, 0.30)))
                    .with_backend(choice);
                let exact = exec.exact_score(spec);
                let mut sampler = StringSampled::new(exec, shot_seed);
                (exact, sampler.run_test(spec, 300))
            };
            let (exact_d, shot_d) = score_with(BackendChoice::Dense);
            let (exact_a, shot_a) = score_with(BackendChoice::Analytic);
            assert!(
                (exact_d - exact_a).abs() < 1e-9,
                "case {case} ({class}) spec {}: exact scores diverged",
                spec.label
            );
            assert_eq!(
                shot_d.to_bits(),
                shot_a.to_bits(),
                "case {case} ({class}) spec {}: sampled scores diverged",
                spec.label
            );
        }
    }
}

#[test]
fn batched_prepare_and_blocked_sampling_match_the_unbatched_path_bit_for_bit() {
    // The batch-first seam: `prepare_batch` must hand back circuits
    // whose `sample_block` output — the path fig8/fig9/table2 and the
    // fleet ride — is bit-identical to per-circuit `prepare` +
    // per-shot `sample` from the same RNG state, at shot counts
    // straddling the 4096-shot block boundary, on every backend.
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xBA7C + case);
        let circuits: Vec<Circuit> = (0..3).map(|_| random_xx_circuit(&mut rng)).collect();
        for choice in [BackendChoice::Dense, BackendChoice::Analytic, BackendChoice::Auto] {
            let backend = Backend::new(choice);
            let batched = backend.prepare_batch(&circuits);
            for (circuit, batch_prep) in circuits.iter().zip(batched) {
                let batch_prep = batch_prep.expect("pure-XX circuits prepare on every backend");
                let single = backend.prepare(circuit).unwrap();
                let seed = rng.gen::<u64>();
                for shots in [0usize, 1, 300, 4095, 4099] {
                    let mut r1 = SmallRng::seed_from_u64(seed);
                    let mut r2 = SmallRng::seed_from_u64(seed);
                    let a = single.sample(&mut r1, shots);
                    let b = batch_prep.sample_block(&mut r2, shots);
                    assert_eq!(a, b, "case {case} {choice:?} shots {shots}");
                    assert_eq!(
                        r1.gen::<u64>(),
                        r2.gen::<u64>(),
                        "case {case} {choice:?} shots {shots}: RNG stream desynced"
                    );
                }
            }
        }
    }
}

#[test]
fn blocked_sampler_is_block_size_invariant_on_prepared_distributions() {
    // Block 1 (the per-shot access pattern) and block 4096 (the
    // production block) must produce identical strings from a real
    // prepared circuit's component tables, across the block boundary.
    use itqc_backend::dist::{sample_strings, sample_strings_blocked_with};
    use itqc_backend::XxPrepared;
    let mut xx = itqc_sim::XxCircuit::new(9);
    xx.add_xx(0, 1, 0.31);
    xx.add_xx(1, 2, -0.62);
    xx.add_xx(3, 4, 1.17);
    xx.add_xx(6, 7, 0.05);
    xx.add_xx(7, 8, 2.41);
    let prep = XxPrepared::prepare(xx).unwrap();
    let dists = prep.distributions();
    for shots in [1usize, 4095, 4096, 4097, 8200] {
        let mut r_ref = SmallRng::seed_from_u64(0xB10C);
        let reference = sample_strings(dists, &mut r_ref, shots);
        for block in [1usize, 7, 4096] {
            let mut r = SmallRng::seed_from_u64(0xB10C);
            let got = sample_strings_blocked_with(dists, &mut r, shots, block);
            assert_eq!(got, reference, "shots {shots} block {block}");
            assert_eq!(
                r.gen::<u64>(),
                r_ref.clone().gen::<u64>(),
                "shots {shots} block {block}: RNG stream desynced"
            );
        }
    }
}

#[test]
fn cost_model_prediction_brackets_measured_build_and_sample_time() {
    // Sanity bounds, not a microbenchmark: on a single-component
    // 14-qubit chain the static model's build + sample prediction must
    // sit within 50× of the measured wall-clock either way (the CI
    // cost gate holds the end-to-end fig8 run to a much tighter
    // [0.25, 4.0]; this pins the per-primitive constants against
    // bit-rot at integration level, with slack for noisy runners).
    use itqc_backend::{SimCostModel, XxPrepared};
    const BUILDS: usize = 8;
    const SHOTS: usize = 100_000;
    let model = SimCostModel::new();
    let sizes = [14usize];
    let predicted_build = BUILDS as f64 * model.table_build_seconds(&sizes);
    let predicted_sample = model.sample_seconds(&sizes, SHOTS as u64);
    let mut rng = SmallRng::seed_from_u64(0xC057);

    let t0 = std::time::Instant::now();
    let preps: Vec<XxPrepared> = (0..BUILDS)
        .map(|i| {
            let mut xx = itqc_sim::XxCircuit::new(14);
            for q in 0..13 {
                // Distinct angles per build so the component cache
                // cannot short-circuit the work being measured.
                xx.add_xx(q, q + 1, 0.1 + 0.01 * (i * 13 + q) as f64);
            }
            let prep = XxPrepared::prepare(xx).unwrap();
            prep.distributions(); // force the table build
            prep
        })
        .collect();
    let measured_build = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let strings = preps[0].distributions();
    let drawn = sample_via(strings, &mut rng, SHOTS);
    let measured_sample = t1.elapsed().as_secs_f64();
    assert_eq!(drawn.len(), SHOTS);

    for (label, predicted, measured) in
        [("build", predicted_build, measured_build), ("sample", predicted_sample, measured_sample)]
    {
        let ratio = predicted / measured.max(1e-12);
        assert!(
            (1.0 / 50.0..=50.0).contains(&ratio),
            "{label}: predicted {predicted:.6} s vs measured {measured:.6} s (ratio {ratio:.3})"
        );
    }
}

fn sample_via<S: itqc_backend::SampleComponent>(
    dists: &[S],
    rng: &mut SmallRng,
    shots: usize,
) -> Vec<itqc_backend::BitString> {
    itqc_backend::sample_strings_blocked(dists, rng, shots)
}

#[test]
fn auto_choice_matches_forced_analytic_on_xx_circuits() {
    for case in 0..8 {
        let mut rng = SmallRng::seed_from_u64(0xA070 + case);
        let circuit = random_xx_circuit(&mut rng);
        let auto = Backend::new(BackendChoice::Auto).prepare(&circuit).unwrap();
        let analytic = Backend::new(BackendChoice::Analytic).prepare(&circuit).unwrap();
        let seed = rng.gen::<u64>();
        let mut r1 = SmallRng::seed_from_u64(seed);
        let mut r2 = SmallRng::seed_from_u64(seed);
        assert_eq!(auto.sample(&mut r1, 32), analytic.sample(&mut r2, 32), "case {case}");
    }
}
