//! Property tests for the paper's §V combinatorics — the lemmas and
//! theorems, enforced over randomly drawn machine sizes and fault
//! placements.

use itqc::core::classes::{
    decode_pair, first_round_classes, second_round_classes, LabelSpace,
};
use itqc::core::{Diagnosis, ExactExecutor, SingleFaultProtocol, Syndrome};
use itqc::prelude::Coupling;
use itqc_math::bits;
use proptest::prelude::*;

/// A strategy for (n_qubits, coupling) pairs on machines of 4..=32 qubits.
fn machine_and_coupling() -> impl Strategy<Value = (usize, usize, usize)> {
    (4usize..=32).prop_flat_map(|n| {
        (Just(n), 0..n, 0..n).prop_filter("distinct endpoints", |(_, a, b)| a != b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma V.1 + V.3: every non-complementary pair is in at least one
    /// and at most n−1 first-round classes; complementary pairs in none.
    #[test]
    fn lemma_v1_v3_class_coverage((n, a, b) in machine_and_coupling()) {
        let space = LabelSpace::new(n);
        let nb = space.n_bits();
        let covering = first_round_classes(&space)
            .iter()
            .filter(|c| c.contains(a) && c.contains(b))
            .count();
        if bits::is_complementary(a, b, nb) {
            prop_assert_eq!(covering, 0);
        } else {
            prop_assert!(covering >= 1);
            prop_assert!(covering <= nb as usize - 1);
        }
    }

    /// Lemma V.2: the complementary classes (i,0)/(i,1) never both
    /// contain a pair.
    #[test]
    fn lemma_v2_partition((n, a, b) in machine_and_coupling()) {
        let space = LabelSpace::new(n);
        for i in 0..space.n_bits() {
            let in0 = !bits::bit(a, i) && !bits::bit(b, i);
            let in1 = bits::bit(a, i) && bits::bit(b, i);
            prop_assert!(!(in0 && in1));
        }
    }

    /// Lemma V.9: a length-L syndrome on n bits admits exactly 2^{n−L−1}
    /// candidate pairs on an unpadded register.
    #[test]
    fn lemma_v9_candidate_count(n_bits in 2u32..=6, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let n = 1usize << n_bits;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        while b == a { b = rng.gen_range(0..n); }
        let syn = Syndrome::of_coupling(Coupling::new(a, b), n_bits);
        let l = syn.len() as u32;
        let cands = syn.candidates(n_bits, n);
        prop_assert_eq!(cands.len(), 1usize << (n_bits - l - 1));
        prop_assert!(cands.contains(&Coupling::new(a, b)));
    }

    /// Theorem V.7 (via decode): syndrome + second-round answers identify
    /// every pair uniquely, including on padded registers.
    #[test]
    fn theorem_v7_decode_round_trip((n, a, b) in machine_and_coupling()) {
        let space = LabelSpace::new(n);
        let nb = space.n_bits();
        let truth = Coupling::new(a, b);
        let syn = Syndrome::of_coupling(truth, nb);
        let free = syn.free_positions(nb);
        let flags: Vec<bool> = free
            .windows(2)
            .map(|w| bits::bit(a, w[0]) == bits::bit(a, w[1]))
            .collect();
        prop_assert_eq!(decode_pair(&syn, &flags, &space), Some(truth));
    }

    /// Theorem V.10 end to end: a planted single fault of detectable
    /// magnitude is identified on machines of any size, within the
    /// 3n−1 (+1 verification) test budget and ≤2 adaptations.
    #[test]
    fn theorem_v10_protocol_round_trip((n, a, b) in machine_and_coupling()) {
        let truth = Coupling::new(a, b);
        let mut exec = ExactExecutor::new(n).with_fault(truth, 0.40);
        let protocol = SingleFaultProtocol::new(n, 4, 0.5, 1);
        let report = protocol.diagnose(&mut exec);
        let nb = LabelSpace::new(n).n_bits() as usize;
        prop_assert!(report.tests_run() <= 3 * nb, "budget: {} > 3n", report.tests_run());
        prop_assert!(report.adaptations <= 2);
        prop_assert_eq!(report.diagnosis, Diagnosis::Fault(truth));
    }

    /// Corollary V.12: identification is unaffected by excluding an
    /// arbitrary set of other couplings.
    #[test]
    fn corollary_v12_exclusions(
        (n, a, b) in machine_and_coupling(),
        excl_seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let truth = Coupling::new(a, b);
        let space = LabelSpace::new(n);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(excl_seed);
        let excluded: Vec<Coupling> = space
            .all_couplings()
            .into_iter()
            .filter(|&c| c != truth && rng.gen_bool(0.25))
            .collect();
        let mut exec = ExactExecutor::new(n).with_fault(truth, 0.40);
        let protocol = SingleFaultProtocol::new(n, 4, 0.5, 1).exclude(excluded);
        let diagnosis = protocol.diagnose(&mut exec).diagnosis;
        prop_assert_eq!(diagnosis, Diagnosis::Fault(truth));
    }

    /// Second-round classes honour the syndrome's fixed bits and pair the
    /// consecutive free positions (k−1 tests for k free bits).
    #[test]
    fn second_round_structure((n, a, b) in machine_and_coupling()) {
        let space = LabelSpace::new(n);
        let nb = space.n_bits();
        let syn = Syndrome::of_coupling(Coupling::new(a, b), nb);
        let classes = second_round_classes(&syn, &space);
        let free = syn.free_positions(nb);
        prop_assert_eq!(classes.len(), free.len().saturating_sub(1));
        for class in &classes {
            for q in class.members(&space) {
                prop_assert!(syn.matches(q), "member violates fixed bits");
                prop_assert_eq!(
                    bits::bit(q, class.pos_lo),
                    bits::bit(q, class.pos_hi)
                );
            }
        }
    }
}
