//! Property tests for the paper's §V combinatorics — the lemmas and
//! theorems, enforced over randomly drawn machine sizes and fault
//! placements.
//!
//! Originally written against `proptest`; rewritten as seeded randomized
//! sweeps (64 cases per property, mirroring the old
//! `ProptestConfig::with_cases(64)`) because the workspace builds fully
//! offline and vendoring proptest's macro DSL is not worth it.

use itqc::core::classes::{decode_pair, first_round_classes, second_round_classes, LabelSpace};
use itqc::core::{Diagnosis, ExactExecutor, SingleFaultProtocol, Syndrome};
use itqc::prelude::Coupling;
use itqc_math::bits;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// Draws (n_qubits, a, b) with distinct endpoints on machines of 4..=32
/// qubits.
fn machine_and_coupling(rng: &mut SmallRng) -> (usize, usize, usize) {
    let n = rng.gen_range(4usize..=32);
    let a = rng.gen_range(0..n);
    let mut b = rng.gen_range(0..n);
    while b == a {
        b = rng.gen_range(0..n);
    }
    (n, a, b)
}

/// Lemma V.1 + V.3: every non-complementary pair is in at least one
/// and at most n−1 first-round classes; complementary pairs in none.
#[test]
fn lemma_v1_v3_class_coverage() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1113 + case);
        let (n, a, b) = machine_and_coupling(&mut rng);
        let space = LabelSpace::new(n);
        let nb = space.n_bits();
        let covering =
            first_round_classes(&space).iter().filter(|c| c.contains(a) && c.contains(b)).count();
        if bits::is_complementary(a, b, nb) {
            assert_eq!(covering, 0, "case {case}: n={n} pair=({a},{b})");
        } else {
            assert!(covering >= 1, "case {case}: n={n} pair=({a},{b})");
            assert!(covering < nb as usize, "case {case}: n={n} pair=({a},{b})");
        }
    }
}

/// Lemma V.2: the complementary classes (i,0)/(i,1) never both contain a
/// pair.
#[test]
fn lemma_v2_partition() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1120 + case);
        let (n, a, b) = machine_and_coupling(&mut rng);
        let space = LabelSpace::new(n);
        for i in 0..space.n_bits() {
            let in0 = !bits::bit(a, i) && !bits::bit(b, i);
            let in1 = bits::bit(a, i) && bits::bit(b, i);
            assert!(!(in0 && in1), "case {case}: n={n} pair=({a},{b}) bit {i}");
        }
    }
}

/// Lemma V.9: a length-L syndrome on n bits admits exactly 2^{n−L−1}
/// candidate pairs on an unpadded register.
#[test]
fn lemma_v9_candidate_count() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1909 + case);
        let n_bits = rng.gen_range(2u32..=6);
        let n = 1usize << n_bits;
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        while b == a {
            b = rng.gen_range(0..n);
        }
        let syn = Syndrome::of_coupling(Coupling::new(a, b), n_bits);
        let l = syn.len() as u32;
        let cands = syn.candidates(n_bits, n);
        assert_eq!(cands.len(), 1usize << (n_bits - l - 1), "case {case}");
        assert!(cands.contains(&Coupling::new(a, b)), "case {case}");
    }
}

/// Theorem V.7 (via decode): syndrome + second-round answers identify
/// every pair uniquely, including on padded registers.
#[test]
fn theorem_v7_decode_round_trip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x0707 + case);
        let (n, a, b) = machine_and_coupling(&mut rng);
        let space = LabelSpace::new(n);
        let nb = space.n_bits();
        let truth = Coupling::new(a, b);
        let syn = Syndrome::of_coupling(truth, nb);
        let free = syn.free_positions(nb);
        let flags: Vec<bool> =
            free.windows(2).map(|w| bits::bit(a, w[0]) == bits::bit(a, w[1])).collect();
        assert_eq!(decode_pair(&syn, &flags, &space), Some(truth), "case {case}: n={n}");
    }
}

/// Theorem V.10 end to end: a planted single fault of detectable
/// magnitude is identified on machines of any size, within the
/// 3n−1 (+1 verification) test budget and ≤2 adaptations.
#[test]
fn theorem_v10_protocol_round_trip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1010 + case);
        let (n, a, b) = machine_and_coupling(&mut rng);
        let truth = Coupling::new(a, b);
        let mut exec = ExactExecutor::new(n).with_fault(truth, 0.40);
        let protocol = SingleFaultProtocol::new(n, 4, 0.5, 1);
        let report = protocol.diagnose(&mut exec);
        let nb = LabelSpace::new(n).n_bits() as usize;
        assert!(
            report.tests_run() <= 3 * nb,
            "case {case}: budget {} > 3n (n={n})",
            report.tests_run()
        );
        assert!(report.adaptations <= 2, "case {case}");
        assert_eq!(report.diagnosis, Diagnosis::Fault(truth), "case {case}: n={n}");
    }
}

/// Corollary V.12: identification is unaffected by excluding an
/// arbitrary set of other couplings.
#[test]
fn corollary_v12_exclusions() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1212 + case);
        let (n, a, b) = machine_and_coupling(&mut rng);
        let truth = Coupling::new(a, b);
        let space = LabelSpace::new(n);
        let excluded: Vec<Coupling> = space
            .all_couplings()
            .into_iter()
            .filter(|&c| c != truth && rng.gen_bool(0.25))
            .collect();
        let mut exec = ExactExecutor::new(n).with_fault(truth, 0.40);
        let protocol = SingleFaultProtocol::new(n, 4, 0.5, 1).exclude(excluded);
        let diagnosis = protocol.diagnose(&mut exec).diagnosis;
        assert_eq!(diagnosis, Diagnosis::Fault(truth), "case {case}: n={n}");
    }
}

/// Second-round classes honour the syndrome's fixed bits and pair the
/// consecutive free positions (k−1 tests for k free bits).
#[test]
fn second_round_structure() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x2222 + case);
        let (n, a, b) = machine_and_coupling(&mut rng);
        let space = LabelSpace::new(n);
        let nb = space.n_bits();
        let syn = Syndrome::of_coupling(Coupling::new(a, b), nb);
        let classes = second_round_classes(&syn, &space);
        let free = syn.free_positions(nb);
        assert_eq!(classes.len(), free.len().saturating_sub(1), "case {case}");
        for class in &classes {
            for q in class.members(&space) {
                assert!(syn.matches(q), "case {case}: member violates fixed bits");
                assert_eq!(bits::bit(q, class.pos_lo), bits::bit(q, class.pos_hi), "case {case}");
            }
        }
    }
}
