//! Fleet-service integration suite: the determinism and cache contracts
//! `fleetd` ships under (the `fleetd-smoke` CI job runs the same checks
//! against the release binary).
//!
//! The load-bearing property is that the end-of-run `FleetSummary` is a
//! pure function of `(config minus workers, minutes, submissions)` —
//! the worker-thread count may only change wall-clock time. Everything
//! else here pins the shared prepared-circuit cache: hit/miss/eviction
//! accounting, the size budget, and the batch builder that groups
//! same-class circuits across traps.

use itqc::backend::cache::xx_key;
use itqc::backend::XxPrepared;
use itqc::fleet::cache::SharedPrepCache;
use itqc::fleet::machine_day::FIG2_QUBITS;
use itqc::prelude::*;
use itqc::sim::XxCircuit;
use std::sync::Arc;

fn exercised_config(workers: usize) -> FleetConfig {
    FleetConfig {
        traps: 6,
        workers,
        n_qubits: 7,
        canary_cadence_min: 2,
        arrival_rate_per_min: 3.0,
        ..FleetConfig::default()
    }
}

/// The ISSUE's hard requirement: one fleet, three worker counts, one
/// summary string. Mixed API submissions land mid-run so the
/// shard-ordered merge is exercised, not just the internal load.
#[test]
fn summary_bit_identical_at_one_two_and_eight_workers() {
    let mut renders = Vec::new();
    let mut reference = None;
    for workers in [1usize, 2, 8] {
        let mut fleet = Fleet::new(exercised_config(workers));
        fleet.submit(0, 25.0);
        fleet.submit(5, 4.0);
        fleet.run_minutes(20);
        for trap in 0..6 {
            fleet.submit(trap, 10.0);
        }
        fleet.run_minutes(15);
        let summary = fleet.summary();
        renders.push(summary.to_string());
        reference.get_or_insert(summary);
    }
    assert_eq!(renders[0], renders[1], "workers=2 diverged from workers=1");
    assert_eq!(renders[0], renders[2], "workers=8 diverged from workers=1");
    // And the run did real work — the equality is not vacuous.
    let s = reference.expect("three runs");
    assert!(s.canaries > 0 && s.completed > 0, "inactive fleet: {s}");
    assert_eq!(s.submitted - s.completed, s.queued as u64, "job conservation");
}

/// Re-running the same configuration must reproduce the same summary
/// (the seed pins every stream), and a different seed must not.
#[test]
fn summary_is_seeded() {
    let run = |seed: u64| {
        let mut fleet = Fleet::new(FleetConfig { seed, ..exercised_config(2) });
        fleet.run_minutes(12);
        fleet.summary().to_string()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

/// Same-class canary circuits across pristine traps are built once per
/// tick and then served from the shared cache; the counters must show
/// the grouping and the post-warmup hit rate the baselines publish.
#[test]
fn shared_cache_groups_and_then_hits() {
    let mut fleet = Fleet::new(FleetConfig { arrival_rate_per_min: 0.0, ..exercised_config(2) });
    fleet.run_minutes(1);
    let s = fleet.summary();
    assert_eq!(s.prep_requests, 6, "every trap requests its first canary");
    assert_eq!(s.prep_batch_builds, 1, "identical circuits build once");
    fleet.run_minutes(12);
    let s = fleet.summary();
    assert!(
        s.shared_cache.hit_rate() > 0.5,
        "warm canaries must be shared-cache hits: {:?}",
        s.shared_cache
    );
    // Accounting identity: the shared layer is probed once per L1 miss
    // (worker side) plus once per batch build (scheduler side).
    assert_eq!(
        s.shared_cache.hits + s.shared_cache.misses,
        s.l1_cache.misses + s.prep_batch_builds,
        "L2 lookup accounting drifted: {s}"
    );
}

/// The byte budget is enforced by LRU eviction at tick barriers, and the
/// eviction counter reports it.
#[test]
fn cache_budget_is_enforced_with_evictions() {
    let prep_for = |theta: f64| {
        let mut xx = XxCircuit::new(5);
        xx.add_xx(0, 1, theta);
        let p = Arc::new(XxPrepared::prepare(xx).expect("commuting-XX"));
        p.distributions();
        let key = xx_key(p.xx());
        (key, p)
    };
    let (_, probe) = prep_for(0.5);
    let budget = 3 * probe.table_bytes();
    let mut cache = SharedPrepCache::new(budget);
    for tick in 0..12u64 {
        let (key, prep) = prep_for(0.01 + tick as f64 * 0.001);
        cache.admit(key, prep, tick);
        cache.end_tick(tick);
        assert!(
            cache.bytes() <= budget,
            "budget exceeded after tick {tick}: {} > {budget} bytes",
            cache.bytes()
        );
    }
    let c = cache.counters();
    assert!(c.evictions >= 9, "12 one-per-tick admissions into a 3-entry budget must churn");
    assert_eq!(cache.len(), 12 - c.evictions as usize);
}

/// A fleet under a deliberately starved cache budget still produces
/// worker-count-invariant summaries (the eviction order is
/// deterministic). Short drift epochs make every epoch mint a new
/// generation of canary circuits, so the budget genuinely churns.
#[test]
fn eviction_churn_stays_deterministic() {
    let starved = |workers| FleetConfig {
        traps: 4,
        workers,
        n_qubits: 7,
        canary_cadence_min: 2,
        drift_epoch_min: 5,
        arrival_rate_per_min: 3.0,
        cache_budget_bytes: 8 << 10,
        ..FleetConfig::default()
    };
    let run = |workers: usize| {
        let mut fleet = Fleet::new(starved(workers));
        fleet.run_minutes(25);
        fleet.summary()
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a.to_string(), b.to_string());
    assert!(a.shared_cache.evictions > 0, "five circuit generations must churn 8 KiB: {a}");
    assert!(a.shared_bytes <= 8 << 10, "budget violated at rest: {} bytes", a.shared_bytes);
}

/// Regression pin for the `itqc_obs` counter migration: the `fleetd`
/// `stats` line and the full summary block below were captured from the
/// pre-migration build (bespoke counter structs) with
/// `fleetd --traps=4 --workers=3 --seed=7`, `run 30`. Now that every
/// fleet counter is a registry-backed [`itqc::obs::Counter`] handle,
/// both renderings must still be byte-identical to those captures.
#[test]
fn stats_and_summary_render_the_pre_migration_bytes() {
    let mut fleet =
        Fleet::new(FleetConfig { traps: 4, workers: 3, seed: 7, ..FleetConfig::default() });
    fleet.run_minutes(30);
    let c = fleet.cache_counters();
    let (entries, bytes) = fleet.cache_resident();
    let stats = format!(
        "minute {} shared_cache hits {} misses {} evictions {} hit_rate {:.4} \
         entries {} bytes {}",
        fleet.ticks(),
        c.hits,
        c.misses,
        c.evictions,
        c.hit_rate(),
        entries,
        bytes
    );
    assert_eq!(
        stats,
        "minute 30 shared_cache hits 60 misses 1 evictions 0 hit_rate 0.9836 \
         entries 1 bytes 17704"
    );
    let expected = "\
fleet summary
  traps 4 seed 7 minutes 30
  jobs submitted 506 completed 506 queued 0 per-machine-day 24288.0
  latency_s p50 23.867 p90 75.940 p99 175.826
  canaries 60 trips 0 diagnoses 0 tests 0 faults_fixed 0
  prep requests 60 batch_builds 1
  shared_cache hits 60 misses 1 evictions 0 hit_rate 0.9836 entries 1 bytes 17704
  l1_cache hits 0 misses 60 hit_rate 0.0000
  duty_s jobs=3830.8 testing=151.4 calibration=0.0 adaptation=0.0 idle=3217.9
";
    assert_eq!(fleet.summary().to_string(), expected);
}

/// End-to-end: a drifting fleet trips canaries, diagnoses through the
/// cached executor, and recalibrates — the maintenance loop of the
/// paper's Fig. 2, fleet-wide.
#[test]
fn fleet_maintains_itself_under_drift() {
    let mut fleet = Fleet::new(FleetConfig {
        traps: 4,
        workers: 2,
        n_qubits: FIG2_QUBITS,
        drift: itqc::faults::drift::JumpDrift {
            base: itqc::faults::drift::OrnsteinUhlenbeckDrift { tau_minutes: 240.0, sigma: 0.02 },
            jumps_per_minute: 0.02, // hot fleet: ~29 hard faults/trap/day
            jump_scale: 0.30,
        },
        ..FleetConfig::default()
    });
    fleet.run_minutes(180);
    let s = fleet.summary();
    assert!(s.trips > 0, "a hot fleet must trip canaries: {s}");
    assert_eq!(s.trips, s.diagnoses, "every trip triggers a diagnosis");
    assert!(s.faults_fixed > 0, "diagnoses must recalibrate faults: {s}");
    assert!(s.tests_run > 0);
    // Jobs kept flowing while maintenance ran.
    assert!(s.completed > 0 && s.duty[0] > 0.0);
}
