//! The gate set.
//!
//! Includes the discrete Clifford+T gates, the three Pauli-axis rotations,
//! and — centrally for this paper — the ion-trap native gates: the general
//! single-qubit rotation `R(θ, φ)` about an equatorial axis and the
//! Mølmer–Sørensen two-qubit gate in both its ideal `XX(θ)` form and the
//! full phase-parameterised `M(θ, φ₁, φ₂)` form of the paper's Fig. 4, which
//! doubles as the *fault model* for two-qubit unitary errors.

use itqc_math::{Complex64, Mat2, Mat4};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

/// A quantum gate template, instantiated on qubits by an
/// [`Op`](crate::circuit::Op).
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Gate {
    /// Pauli X (NOT).
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `P = diag(1, i)` (the paper's `P`).
    S,
    /// Inverse phase gate `diag(1, -i)`.
    Sdg,
    /// T gate `diag(1, e^{iπ/4})`.
    T,
    /// Inverse T gate.
    Tdg,
    /// Rotation about X: `exp(-iθX/2)`.
    Rx(f64),
    /// Rotation about Y: `exp(-iθY/2)`.
    Ry(f64),
    /// Rotation about Z: `exp(-iθZ/2)`.
    Rz(f64),
    /// General equatorial rotation `R(θ, φ) = exp(-iθ(cosφ·X + sinφ·Y)/2)`
    /// — the ion-trap native single-qubit gate and the paper's single-qubit
    /// fault model (Fig. 4).
    R {
        /// Rotation angle θ.
        theta: f64,
        /// Axis azimuth φ in the XY plane.
        phi: f64,
    },
    /// `diag(1, e^{iλ})` — phase shift of |1⟩.
    Phase(f64),
    /// Controlled-NOT; the first operand qubit is the control.
    Cnot,
    /// Controlled-Z (symmetric).
    Cz,
    /// SWAP.
    Swap,
    /// Ideal Mølmer–Sørensen gate `XX(θ) = exp(-iθ X⊗X/2)`.
    ///
    /// A fully entangling MS gate is `XX(π/2)`.
    Xx(f64),
    /// Phase-parameterised Mølmer–Sørensen gate `M(θ, φ₁, φ₂)` (paper
    /// Fig. 4): the physical gate including per-ion beam phases; reduces to
    /// [`Gate::Xx`] at `φ₁ = φ₂ = 0`. With small parameter deviations this
    /// is the paper's two-qubit unitary fault model.
    Ms {
        /// Entangling angle θ.
        theta: f64,
        /// Beam phase at the first ion.
        phi1: f64,
        /// Beam phase at the second ion.
        phi2: f64,
    },
    /// Controlled phase `diag(1, 1, 1, e^{iλ})` (symmetric).
    CPhase(f64),
}

impl Gate {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::R { .. }
            | Gate::Phase(_) => 1,
            Gate::Cnot
            | Gate::Cz
            | Gate::Swap
            | Gate::Xx(_)
            | Gate::Ms { .. }
            | Gate::CPhase(_) => 2,
        }
    }

    /// Short mnemonic used by `Display` impls and gate counting.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::R { .. } => "r",
            Gate::Phase(_) => "p",
            Gate::Cnot => "cnot",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
            Gate::Xx(_) => "xx",
            Gate::Ms { .. } => "ms",
            Gate::CPhase(_) => "cp",
        }
    }

    /// `true` for gates in the ion-trap native set: `R(θ,φ)`, virtual
    /// `Rz`, and the Mølmer–Sørensen family.
    pub fn is_native(&self) -> bool {
        matches!(self, Gate::R { .. } | Gate::Rz(_) | Gate::Xx(_) | Gate::Ms { .. })
    }

    /// `true` for two-qubit entangling gates (arity 2, excluding SWAP which
    /// is non-entangling but still exercises a coupling).
    pub fn is_two_qubit(&self) -> bool {
        self.arity() == 2
    }

    /// The inverse gate.
    pub fn dagger(&self) -> Gate {
        match *self {
            Gate::X | Gate::Y | Gate::Z | Gate::H | Gate::Cnot | Gate::Cz | Gate::Swap => *self,
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::R { theta, phi } => Gate::R { theta: -theta, phi },
            Gate::Phase(l) => Gate::Phase(-l),
            Gate::Xx(t) => Gate::Xx(-t),
            Gate::Ms { theta, phi1, phi2 } => Gate::Ms { theta: -theta, phi1, phi2 },
            Gate::CPhase(l) => Gate::CPhase(-l),
        }
    }

    /// The 2×2 matrix of a single-qubit gate, `None` for two-qubit gates.
    pub fn matrix1(&self) -> Option<Mat2> {
        let c = Complex64::new;
        let m = match *self {
            Gate::X => Mat2::new([[c(0., 0.), c(1., 0.)], [c(1., 0.), c(0., 0.)]]),
            Gate::Y => Mat2::new([[c(0., 0.), c(0., -1.)], [c(0., 1.), c(0., 0.)]]),
            Gate::Z => Mat2::new([[c(1., 0.), c(0., 0.)], [c(0., 0.), c(-1., 0.)]]),
            Gate::H => Mat2::new([[c(1., 0.), c(1., 0.)], [c(1., 0.), c(-1., 0.)]])
                .scale(std::f64::consts::FRAC_1_SQRT_2),
            Gate::S => Mat2::new([[c(1., 0.), c(0., 0.)], [c(0., 0.), c(0., 1.)]]),
            Gate::Sdg => Mat2::new([[c(1., 0.), c(0., 0.)], [c(0., 0.), c(0., -1.)]]),
            Gate::T => phase_mat(FRAC_PI_4),
            Gate::Tdg => phase_mat(-FRAC_PI_4),
            Gate::Phase(l) => phase_mat(l),
            Gate::Rx(t) => r_mat(t, 0.0),
            Gate::Ry(t) => r_mat(t, FRAC_PI_2),
            Gate::R { theta, phi } => r_mat(theta, phi),
            Gate::Rz(t) => {
                let h = t / 2.0;
                Mat2::new([[Complex64::cis(-h), c(0., 0.)], [c(0., 0.), Complex64::cis(h)]])
            }
            _ => return None,
        };
        Some(m)
    }

    /// The 4×4 matrix of a two-qubit gate, `None` for single-qubit gates.
    ///
    /// Index convention: the row/column index is `2·b₁ + b₀` where `b₁` is
    /// the basis bit of the *first* operand qubit.
    pub fn matrix2(&self) -> Option<Mat4> {
        let c = Complex64::new;
        let m = match *self {
            Gate::Cnot => Mat4::new([
                [c(1., 0.), c(0., 0.), c(0., 0.), c(0., 0.)],
                [c(0., 0.), c(1., 0.), c(0., 0.), c(0., 0.)],
                [c(0., 0.), c(0., 0.), c(0., 0.), c(1., 0.)],
                [c(0., 0.), c(0., 0.), c(1., 0.), c(0., 0.)],
            ]),
            Gate::Cz => {
                let mut m = Mat4::identity();
                *m.at_mut(3, 3) = c(-1., 0.);
                m
            }
            Gate::Swap => Mat4::new([
                [c(1., 0.), c(0., 0.), c(0., 0.), c(0., 0.)],
                [c(0., 0.), c(0., 0.), c(1., 0.), c(0., 0.)],
                [c(0., 0.), c(1., 0.), c(0., 0.), c(0., 0.)],
                [c(0., 0.), c(0., 0.), c(0., 0.), c(1., 0.)],
            ]),
            Gate::CPhase(l) => {
                let mut m = Mat4::identity();
                *m.at_mut(3, 3) = Complex64::cis(l);
                m
            }
            Gate::Xx(t) => ms_mat(t, 0.0, 0.0),
            Gate::Ms { theta, phi1, phi2 } => ms_mat(theta, phi1, phi2),
            _ => return None,
        };
        Some(m)
    }
}

/// `R(θ, φ)` matrix from the paper's Fig. 4:
/// `[[cos θ/2, −i e^{−iφ} sin θ/2], [−i e^{iφ} sin θ/2, cos θ/2]]`.
fn r_mat(theta: f64, phi: f64) -> Mat2 {
    let (s, c) = (theta / 2.0).sin_cos();
    let mi = Complex64::new(0.0, -1.0);
    Mat2::new([
        [Complex64::real(c), mi * Complex64::cis(-phi) * s],
        [mi * Complex64::cis(phi) * s, Complex64::real(c)],
    ])
}

fn phase_mat(l: f64) -> Mat2 {
    Mat2::new([[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, Complex64::cis(l)]])
}

/// `M(θ, φ₁, φ₂)` matrix from the paper's Fig. 4.
fn ms_mat(theta: f64, phi1: f64, phi2: f64) -> Mat4 {
    let (s, c) = (theta / 2.0).sin_cos();
    let z = Complex64::ZERO;
    let cc = Complex64::real(c);
    let mi = Complex64::new(0.0, -1.0);
    let sum = phi1 + phi2;
    let dif = phi1 - phi2;
    let a = mi * Complex64::cis(-sum) * s; // row 00, col 11
    let b = mi * Complex64::cis(-dif) * s; // row 01, col 10
    let b2 = mi * Complex64::cis(dif) * s; // row 10, col 01
    let a2 = mi * Complex64::cis(sum) * s; // row 11, col 00
    Mat4::new([[cc, z, z, a], [z, cc, b, z], [z, b2, cc, z], [a2, z, z, cc]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_math::CMatrix;
    use std::f64::consts::PI;

    const ALL_1Q: [Gate; 14] = [
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::Rx(0.3),
        Gate::Ry(-1.2),
        Gate::Rz(2.1),
        Gate::R { theta: 0.7, phi: 1.9 },
        Gate::Phase(0.4),
        Gate::R { theta: -0.7, phi: -0.9 },
    ];

    const ALL_2Q: [Gate; 6] = [
        Gate::Cnot,
        Gate::Cz,
        Gate::Swap,
        Gate::Xx(0.5),
        Gate::Ms { theta: 0.5, phi1: 0.3, phi2: -0.8 },
        Gate::CPhase(1.1),
    ];

    #[test]
    fn all_gates_are_unitary() {
        for g in ALL_1Q {
            assert!(g.matrix1().unwrap().is_unitary(1e-12), "{g:?}");
            assert!(g.matrix2().is_none());
        }
        for g in ALL_2Q {
            assert!(g.matrix2().unwrap().is_unitary(1e-12), "{g:?}");
            assert!(g.matrix1().is_none());
        }
    }

    #[test]
    fn daggers_invert() {
        for g in ALL_1Q {
            let m = g.matrix1().unwrap();
            let d = g.dagger().matrix1().unwrap();
            assert!(m.mul(&d).approx_eq_up_to_phase(&Mat2::identity(), 1e-12), "{g:?}");
        }
        for g in ALL_2Q {
            let m = g.matrix2().unwrap();
            let d = g.dagger().matrix2().unwrap();
            assert!(m.mul(&d).approx_eq_up_to_phase(&Mat4::identity(), 1e-12), "{g:?}");
        }
    }

    #[test]
    fn rotations_are_special_cases_of_r() {
        let rx = Gate::Rx(0.9).matrix1().unwrap();
        let r0 = Gate::R { theta: 0.9, phi: 0.0 }.matrix1().unwrap();
        assert!(rx.approx_eq(&r0, 1e-12));
        let ry = Gate::Ry(0.9).matrix1().unwrap();
        let r90 = Gate::R { theta: 0.9, phi: FRAC_PI_2 }.matrix1().unwrap();
        assert!(ry.approx_eq(&r90, 1e-12));
    }

    #[test]
    fn pauli_gates_match_rotations_up_to_phase() {
        // X = e^{iπ/2} Rx(π), etc.
        for (pauli, rot) in
            [(Gate::X, Gate::Rx(PI)), (Gate::Y, Gate::Ry(PI)), (Gate::Z, Gate::Rz(PI))]
        {
            let p = pauli.matrix1().unwrap();
            let r = rot.matrix1().unwrap();
            assert!(p.approx_eq_up_to_phase(&r, 1e-12), "{pauli:?}");
        }
    }

    #[test]
    fn xx_is_ms_with_zero_phases() {
        let a = Gate::Xx(0.77).matrix2().unwrap();
        let b = Gate::Ms { theta: 0.77, phi1: 0.0, phi2: 0.0 }.matrix2().unwrap();
        assert!(a.approx_eq(&b, 1e-15));
    }

    #[test]
    fn fully_entangling_ms_creates_bell_state() {
        // XX(π/2)|00⟩ = (|00⟩ - i|11⟩)/√2 — the state in §III of the paper.
        let m = Gate::Xx(FRAC_PI_2).matrix2().unwrap();
        let out = m.mul_vec([Complex64::ONE, Complex64::ZERO, Complex64::ZERO, Complex64::ZERO]);
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!(out[0].approx_eq(Complex64::real(inv_sqrt2), 1e-12));
        assert!(out[1].approx_eq(Complex64::ZERO, 1e-12));
        assert!(out[2].approx_eq(Complex64::ZERO, 1e-12));
        assert!(out[3].approx_eq(Complex64::new(0.0, -inv_sqrt2), 1e-12));
    }

    #[test]
    fn four_ms_gates_return_to_identity() {
        // XX(π/2)⁴ = XX(2π) = -I: identity up to global phase (the paper's
        // four-MS-gate single-output test rationale).
        let m = Gate::Xx(FRAC_PI_2).matrix2().unwrap();
        let m4 = m.mul(&m).mul(&m).mul(&m);
        assert!(m4.approx_eq_up_to_phase(&Mat4::identity(), 1e-12));
    }

    #[test]
    fn two_ms_gates_give_xx_flip() {
        // XX(π/2)² = XX(π) = -i X⊗X: both qubits flip (the two-MS test's
        // all-ones expected output).
        let m = Gate::Xx(FRAC_PI_2).matrix2().unwrap();
        let m2 = m.mul(&m);
        let xx: CMatrix = CMatrix::from(&Gate::X.matrix1().unwrap())
            .kron(&CMatrix::from(&Gate::X.matrix1().unwrap()));
        let m2d: CMatrix = (&m2).into();
        assert!(m2d.approx_eq_up_to_phase(&xx, 1e-12));
    }

    #[test]
    fn cnot_from_paper_ms_identity() {
        // CNOT = (Ry(π/2)⊗I)(Rx(−π/2)⊗Rx(π/2)) XX(π/2) (Ry(−π/2)⊗I)  [§II-B]
        let i2 = Mat2::identity();
        let lhs = Mat4::kron(&Gate::Ry(FRAC_PI_2).matrix1().unwrap(), &i2)
            .mul(&Mat4::kron(
                &Gate::Rx(-FRAC_PI_2).matrix1().unwrap(),
                &Gate::Rx(FRAC_PI_2).matrix1().unwrap(),
            ))
            .mul(&Gate::Xx(FRAC_PI_2).matrix2().unwrap())
            .mul(&Mat4::kron(&Gate::Ry(-FRAC_PI_2).matrix1().unwrap(), &i2));
        let cnot = Gate::Cnot.matrix2().unwrap();
        assert!(lhs.approx_eq_up_to_phase(&cnot, 1e-12));
    }

    #[test]
    fn ms_phase_conventions() {
        // M(θ, φ₁, φ₂) entries carry e^{∓i(φ₁±φ₂)} exactly as in Fig. 4.
        let th = 0.9;
        let (p1, p2) = (0.4, -0.7);
        let m = Gate::Ms { theta: th, phi1: p1, phi2: p2 }.matrix2().unwrap();
        let s = (th / 2.0).sin();
        let expect = Complex64::new(0.0, -1.0) * Complex64::cis(-(p1 + p2)) * s;
        assert!(m.at(0, 3).approx_eq(expect, 1e-12));
        let expect_mid = Complex64::new(0.0, -1.0) * Complex64::cis(p1 - p2) * s;
        assert!(m.at(2, 1).approx_eq(expect_mid, 1e-12));
    }

    #[test]
    fn arity_and_nativeness() {
        assert_eq!(Gate::H.arity(), 1);
        assert_eq!(Gate::Cnot.arity(), 2);
        assert!(Gate::Xx(0.1).is_native());
        assert!(Gate::R { theta: 0.1, phi: 0.0 }.is_native());
        assert!(Gate::Rz(0.1).is_native());
        assert!(!Gate::H.is_native());
        assert!(!Gate::Cnot.is_native());
    }

    #[test]
    fn echoed_ms_pair_cancels() {
        // Shifting one ion's beam phase by π reverses the XX rotation:
        // M(θ,0,0)·M(θ,π,0) = I — the echo mechanism behind Fig. 3.
        let a = Gate::Ms { theta: 0.8, phi1: 0.0, phi2: 0.0 }.matrix2().unwrap();
        let b = Gate::Ms { theta: 0.8, phi1: PI, phi2: 0.0 }.matrix2().unwrap();
        assert!(a.mul(&b).approx_eq_up_to_phase(&Mat4::identity(), 1e-12));
    }
}
