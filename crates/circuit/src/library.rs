//! A library of standard quantum algorithms.
//!
//! These are the "real-life quantum circuits" used for the paper's Fig. 11
//! coupling-utilisation census (stand-in for the workload suite of
//! reference \[27\]) and by the examples. Each generator returns a plain
//! [`Circuit`] in the generic gate set; transpile with
//! [`crate::transpile::to_native`] to obtain ion-trap native gates.

use crate::circuit::Circuit;
use rand::Rng;
use std::f64::consts::PI;

/// Quantum Fourier transform on `n` qubits (with final bit-reversal swaps).
///
/// Uses all `C(n,2)` controlled-phase couplings — the densest workload in
/// the suite.
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in (0..n).rev() {
        c.h(q);
        for (k, ctl) in (0..q).rev().enumerate() {
            c.cphase(ctl, q, PI / (1 << (k + 1)) as f64);
        }
    }
    for q in 0..n / 2 {
        c.swap(q, n - 1 - q);
    }
    c
}

/// GHZ state preparation: H on qubit 0 then a CNOT chain.
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cnot(q - 1, q);
    }
    c
}

/// Bernstein–Vazirani circuit for an `n`-bit secret (the last qubit is the
/// oracle ancilla, so the register has `n + 1` qubits).
pub fn bernstein_vazirani(secret: usize, n: usize) -> Circuit {
    let mut c = Circuit::new(n + 1);
    c.x(n).h(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        if (secret >> q) & 1 == 1 {
            c.cnot(q, n);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// One QAOA layer pair (cost + mixer) per `(gamma, beta)` element, for
/// MaxCut on the given edge list.
///
/// # Panics
///
/// Panics if an edge references a qubit `>= n`.
pub fn qaoa_maxcut(n: usize, edges: &[(usize, usize)], angles: &[(f64, f64)]) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for &(gamma, beta) in angles {
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            // exp(-iγ Z_a Z_b) via CNOT–Rz–CNOT.
            c.cnot(a, b).rz(b, 2.0 * gamma).cnot(a, b);
        }
        for q in 0..n {
            c.rx(q, 2.0 * beta);
        }
    }
    c
}

/// A random 3-regular graph on `n` vertices (n even), for QAOA workloads.
/// Uses repeated perfect matchings with collision retries.
pub fn random_3_regular<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<(usize, usize)> {
    assert!(n >= 4 && n.is_multiple_of(2), "3-regular graph needs even n >= 4");
    loop {
        let mut edges = std::collections::BTreeSet::new();
        let mut ok = true;
        for _ in 0..3 {
            // Random perfect matching.
            let mut verts: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                verts.swap(i, j);
            }
            for pair in verts.chunks(2) {
                let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
                if !edges.insert((a, b)) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                break;
            }
        }
        if ok {
            return edges.into_iter().collect();
        }
    }
}

/// Hardware-efficient VQE ansatz: `layers` rounds of per-qubit `Ry`+`Rz`
/// rotations followed by a linear CNOT entangling chain.
///
/// `params` supplies rotation angles round-robin (cycled if short).
pub fn vqe_ansatz(n: usize, layers: usize, params: &[f64]) -> Circuit {
    let mut c = Circuit::new(n);
    let mut k = 0usize;
    let next = |k: &mut usize| {
        let v = if params.is_empty() { 0.1 } else { params[*k % params.len()] };
        *k += 1;
        v
    };
    for _ in 0..layers {
        for q in 0..n {
            let a = next(&mut k);
            let b = next(&mut k);
            c.ry(q, a).rz(q, b);
        }
        for q in 0..n.saturating_sub(1) {
            c.cnot(q, q + 1);
        }
    }
    c
}

/// Cuccaro ripple-carry adder computing `b += a` on two `bits`-bit
/// registers, with a carry-in ancilla and an explicit carry-out qubit.
///
/// Register layout: `a` occupies qubits `0..bits`, `b` occupies
/// `bits..2·bits`, carry-in is qubit `2·bits` (|0⟩), carry-out is qubit
/// `2·bits + 1`.
pub fn cuccaro_adder(bits: usize) -> Circuit {
    assert!(bits >= 1, "adder needs at least one bit");
    let n = 2 * bits + 2;
    let mut c = Circuit::new(n);
    let a = |i: usize| i;
    let b = |i: usize| bits + i;
    let carry_in = 2 * bits;
    let carry_out = 2 * bits + 1;

    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cnot(z, y).cnot(z, x).toffoli(x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.toffoli(x, y, z).cnot(z, x).cnot(x, y);
    };

    maj(&mut c, carry_in, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    // After the MAJ cascade the top `a` qubit holds the carry; copy it out.
    c.cnot(a(bits - 1), carry_out);
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, carry_in, b(0), a(0));
    c
}

/// Grover search on `n` qubits for a single `marked` basis state, with
/// `iters` Grover iterations. Oracle and diffusion use a multi-controlled-Z
/// built from Toffoli cascades with `n − 2` work qubits appended.
pub fn grover(n: usize, marked: usize, iters: usize) -> Circuit {
    assert!(n >= 2, "grover needs at least two qubits");
    assert!(marked < (1 << n), "marked state out of range");
    let anc = n.saturating_sub(2);
    let mut c = Circuit::new(n + anc);
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..iters {
        phase_flip_on(&mut c, n, marked);
        // Diffusion: reflection about |s⟩ = H^{⊗n} (2|0⟩⟨0| − I) H^{⊗n},
        // realised as a phase flip of the all-zeros pattern (global sign
        // aside).
        for q in 0..n {
            c.h(q);
        }
        phase_flip_on(&mut c, n, 0);
        for q in 0..n {
            c.h(q);
        }
    }
    c
}

/// Applies a phase flip to exactly the `pattern` basis state of the first
/// `n` qubits (multi-controlled-Z with X conjugation), using work qubits
/// `n..` for the Toffoli cascade.
fn phase_flip_on(c: &mut Circuit, n: usize, pattern: usize) {
    for q in 0..n {
        if (pattern >> q) & 1 == 0 {
            c.x(q);
        }
    }
    match n {
        1 => {
            c.z(0);
        }
        2 => {
            c.cz(0, 1);
        }
        _ => {
            // AND-tree into ancillas, CZ, then uncompute.
            c.toffoli(0, 1, n);
            for k in 2..n - 1 {
                c.toffoli(k, n + k - 2, n + k - 1);
            }
            c.cz(n - 1, n + n - 3);
            for k in (2..n - 1).rev() {
                c.toffoli(k, n + k - 2, n + k - 1);
            }
            c.toffoli(0, 1, n);
        }
    }
    for q in 0..n {
        if (pattern >> q) & 1 == 0 {
            c.x(q);
        }
    }
}

/// First-order Trotterised transverse-field Ising evolution on a chain:
/// `steps` steps of `exp(-i J Z_q Z_{q+1} dt)` + `exp(-i h X_q dt)`.
pub fn trotter_ising(n: usize, steps: usize, j_coupling: f64, field: f64, dt: f64) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..steps {
        for q in 0..n.saturating_sub(1) {
            c.cnot(q, q + 1).rz(q + 1, 2.0 * j_coupling * dt).cnot(q, q + 1);
        }
        for q in 0..n {
            c.rx(q, 2.0 * field * dt);
        }
    }
    c
}

/// W-state preparation on `n` qubits via the standard cascade of
/// controlled rotations: `|W⟩ = (|100…⟩ + |010…⟩ + … + |0…01⟩)/√n`.
pub fn w_state(n: usize) -> Circuit {
    assert!(n >= 2, "W state needs at least two qubits");
    let mut c = Circuit::new(n);
    c.x(0);
    for k in 1..n {
        // Rotate amplitude from qubit k−1 onto qubit k with the angle that
        // leaves 1/(n−k+1) of the remaining weight behind, via a
        // controlled-Ry built from two CNOTs and half-angle rotations.
        let remaining = (n - k + 1) as f64;
        let theta = 2.0 * (1.0 / remaining.sqrt()).acos();
        c.ry(k, theta / 2.0);
        c.cnot(k - 1, k);
        c.ry(k, -theta / 2.0);
        c.cnot(k - 1, k);
        c.cnot(k, k - 1);
    }
    c
}

/// Quantum phase estimation of `Phase(2π·phase)` acting on one target
/// qubit prepared in `|1⟩`, with `bits` counting qubits. Register layout:
/// counting qubits `0..bits`, target is qubit `bits`.
pub fn phase_estimation(bits: usize, phase: f64) -> Circuit {
    assert!(bits >= 1, "need at least one counting qubit");
    let n = bits + 1;
    let target = bits;
    let mut c = Circuit::new(n);
    c.x(target);
    for q in 0..bits {
        c.h(q);
    }
    // Controlled powers U^{2^q}.
    for q in 0..bits {
        let angle = 2.0 * PI * phase * (1u64 << q) as f64;
        c.cphase(q, target, angle);
    }
    // Inverse QFT on the counting register.
    let iqft = {
        let mut f = Circuit::new(n);
        for q in 0..bits / 2 {
            f.swap(q, bits - 1 - q);
        }
        for q in 0..bits {
            for k in 0..q {
                f.cphase(k, q, -PI / (1 << (q - k)) as f64);
            }
            f.h(q);
        }
        f
    };
    c.append(&iqft);
    c
}

/// The 24-element single-qubit Clifford group, each element as a short
/// `H`/`S` gate word (applied left to right). Generated by breadth-first
/// search over products, deduplicated up to global phase.
///
/// Used by randomized benchmarking (paper §II-B): RB draws random
/// sequences from exactly this restricted gate set.
pub fn single_qubit_cliffords() -> Vec<Vec<crate::gates::Gate>> {
    use crate::gates::Gate;
    use itqc_math::Mat2;
    let gens = [Gate::H, Gate::S];
    let mut reps: Vec<(Vec<Gate>, Mat2)> = vec![(Vec::new(), Mat2::identity())];
    let mut frontier = vec![0usize];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &idx in &frontier {
            let (word, mat) = reps[idx].clone();
            for &g in &gens {
                let m = g.matrix1().expect("1q gate").mul(&mat);
                if !reps.iter().any(|(_, known)| known.approx_eq_up_to_phase(&m, 1e-9)) {
                    let mut w = word.clone();
                    w.push(g);
                    reps.push((w, m));
                    next.push(reps.len() - 1);
                }
            }
        }
        frontier = next;
    }
    debug_assert_eq!(reps.len(), 24, "the 1q Clifford group has 24 elements");
    reps.into_iter().map(|(w, _)| w).collect()
}

/// The composed 2×2 unitary of a Clifford gate word.
pub fn clifford_matrix(word: &[crate::gates::Gate]) -> itqc_math::Mat2 {
    let mut m = itqc_math::Mat2::identity();
    for g in word {
        m = g.matrix1().expect("1q gate").mul(&m);
    }
    m
}

/// A random circuit: alternating layers of random single-qubit rotations
/// and `XX(π/4)` gates on a random qubit pairing.
pub fn random_circuit<R: Rng + ?Sized>(n: usize, layers: usize, rng: &mut R) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.r(q, rng.gen_range(0.0..PI), rng.gen_range(0.0..2.0 * PI));
        }
        let mut verts: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            verts.swap(i, j);
        }
        for pair in verts.chunks(2) {
            if pair.len() == 2 {
                c.xx(pair[0], pair[1], PI / 4.0);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_math::{CMatrix, Complex64};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn amplitude_of(c: &Circuit, basis: usize) -> Complex64 {
        let u = c.unitary();
        let dim = 1usize << c.n_qubits();
        let mut v = vec![Complex64::ZERO; dim];
        v[0] = Complex64::ONE;
        u.mul_vec(&v)[basis]
    }

    #[test]
    fn ghz_amplitudes() {
        let c = ghz(3);
        let a0 = amplitude_of(&c, 0);
        let a7 = amplitude_of(&c, 7);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((a0.norm() - s).abs() < 1e-12);
        assert!((a7.norm() - s).abs() < 1e-12);
    }

    #[test]
    fn qft_matches_dft_matrix() {
        let n = 3;
        let c = qft(n);
        let u = c.unitary();
        let dim = 1 << n;
        let omega = 2.0 * PI / dim as f64;
        let mut dft = CMatrix::zeros(dim, dim);
        for r in 0..dim {
            for col in 0..dim {
                *dft.at_mut(r, col) =
                    Complex64::cis(omega * (r * col) as f64) / (dim as f64).sqrt();
            }
        }
        assert!(u.approx_eq_up_to_phase(&dft, 1e-10), "QFT unitary mismatch");
    }

    #[test]
    fn bernstein_vazirani_recovers_secret() {
        let n = 4;
        let secret = 0b1011;
        let c = bernstein_vazirani(secret, n);
        let u = c.unitary();
        let dim = 1usize << (n + 1);
        let mut v = vec![Complex64::ZERO; dim];
        v[0] = Complex64::ONE;
        let out = u.mul_vec(&v);
        // Data register must read `secret` with certainty (ancilla in |−⟩).
        let mut p_secret = 0.0;
        for (idx, amp) in out.iter().enumerate() {
            if idx & ((1 << n) - 1) == secret {
                p_secret += amp.norm_sqr();
            }
        }
        assert!((p_secret - 1.0).abs() < 1e-10);
    }

    #[test]
    fn grover_amplifies_marked_state() {
        let n = 3;
        let marked = 5;
        let c = grover(n, marked, 2);
        let u = c.unitary();
        let dim = 1usize << c.n_qubits();
        let mut v = vec![Complex64::ZERO; dim];
        v[0] = Complex64::ONE;
        let out = u.mul_vec(&v);
        let mut p_marked = 0.0;
        for (idx, amp) in out.iter().enumerate() {
            if idx & ((1 << n) - 1) == marked {
                p_marked += amp.norm_sqr();
            }
        }
        // Two iterations at n=3 give ~94.5% success.
        assert!(p_marked > 0.9, "p_marked = {p_marked}");
    }

    #[test]
    fn cuccaro_adds_correctly() {
        let bits = 2;
        let c = cuccaro_adder(bits);
        let u = c.unitary();
        let dim = 1usize << c.n_qubits();
        for a_val in 0..(1 << bits) {
            for b_val in 0..(1 << bits) {
                let input = a_val | (b_val << bits);
                let mut v = vec![Complex64::ZERO; dim];
                v[input] = Complex64::ONE;
                let out = u.mul_vec(&v);
                let (idx, amp) = out
                    .iter()
                    .enumerate()
                    .max_by(|(_, x), (_, y)| x.norm_sqr().partial_cmp(&y.norm_sqr()).unwrap())
                    .unwrap();
                assert!((amp.norm() - 1.0).abs() < 1e-9, "non-classical output");
                let sum = (a_val + b_val) & ((1 << (bits + 1)) - 1);
                let b_out = (idx >> bits) & ((1 << bits) - 1);
                let carry_in = (idx >> (2 * bits)) & 1;
                let carry_out = (idx >> (2 * bits + 1)) & 1;
                assert_eq!(carry_in, 0, "carry-in ancilla must be restored");
                assert_eq!(b_out | (carry_out << bits), sum, "a={a_val} b={b_val}");
                assert_eq!(idx & ((1 << bits) - 1), a_val, "a register must be preserved");
            }
        }
    }

    #[test]
    fn qaoa_uses_exactly_graph_edges() {
        let edges = [(0, 1), (1, 2), (2, 3), (0, 3)];
        let c = qaoa_maxcut(4, &edges, &[(0.4, 0.7)]);
        let used = c.used_couplings();
        assert_eq!(used.len(), 4);
    }

    #[test]
    fn random_3_regular_has_correct_degrees() {
        let mut rng = SmallRng::seed_from_u64(17);
        let n = 10;
        let edges = random_3_regular(n, &mut rng);
        assert_eq!(edges.len(), 3 * n / 2);
        let mut deg = vec![0usize; n];
        for (a, b) in edges {
            assert_ne!(a, b);
            deg[a] += 1;
            deg[b] += 1;
        }
        assert!(deg.iter().all(|&d| d == 3));
    }

    #[test]
    fn trotter_ising_uses_chain_couplings() {
        let c = trotter_ising(5, 3, 1.0, 0.5, 0.1);
        assert_eq!(c.used_couplings().len(), 4);
    }

    #[test]
    fn vqe_ansatz_structure() {
        let c = vqe_ansatz(4, 2, &[0.1, 0.2, 0.3]);
        assert_eq!(c.used_couplings().len(), 3);
        assert!(c.gate_counts()["ry"] == 8 && c.gate_counts()["rz"] == 8);
    }

    #[test]
    fn w_state_amplitudes() {
        for n in [2usize, 3, 5] {
            let c = w_state(n);
            let u = c.unitary();
            let dim = 1usize << n;
            let mut v = vec![Complex64::ZERO; dim];
            v[0] = Complex64::ONE;
            let out = u.mul_vec(&v);
            let expect = 1.0 / (n as f64).sqrt();
            let mut weight_ones = 0.0;
            for (idx, amp) in out.iter().enumerate() {
                if idx.count_ones() == 1 {
                    assert!(
                        (amp.norm() - expect).abs() < 1e-9,
                        "n={n} idx={idx} amp={}",
                        amp.norm()
                    );
                    weight_ones += amp.norm_sqr();
                } else {
                    assert!(amp.norm() < 1e-9, "n={n}: weight outside W manifold at {idx}");
                }
            }
            assert!((weight_ones - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn phase_estimation_reads_exact_phase() {
        // phase = 3/8 is exactly representable with 3 counting bits.
        let bits = 3;
        let c = phase_estimation(bits, 3.0 / 8.0);
        let u = c.unitary();
        let dim = 1usize << c.n_qubits();
        let mut v = vec![Complex64::ZERO; dim];
        v[0] = Complex64::ONE;
        let out = u.mul_vec(&v);
        // Counting register must read 3 (little-endian bits 0..3) with the
        // target still |1⟩.
        let want = 3usize | (1 << bits);
        let p: f64 = out[want].norm_sqr();
        assert!(p > 0.99, "P(count=3) = {p}");
    }

    #[test]
    fn clifford_group_has_24_elements() {
        let cliffords = single_qubit_cliffords();
        assert_eq!(cliffords.len(), 24);
        // Pairwise distinct up to phase.
        let mats: Vec<_> = cliffords.iter().map(|w| clifford_matrix(w)).collect();
        for i in 0..24 {
            for j in (i + 1)..24 {
                assert!(
                    !mats[i].approx_eq_up_to_phase(&mats[j], 1e-9),
                    "elements {i} and {j} collide"
                );
            }
        }
    }

    #[test]
    fn clifford_group_closed_under_inverse() {
        // Every element's inverse is in the group (up to phase).
        let cliffords = single_qubit_cliffords();
        let mats: Vec<_> = cliffords.iter().map(|w| clifford_matrix(w)).collect();
        for m in &mats {
            let inv = m.adjoint();
            assert!(
                mats.iter().any(|k| k.approx_eq_up_to_phase(&inv, 1e-9)),
                "inverse missing from group"
            );
        }
    }

    #[test]
    fn random_circuit_is_reproducible() {
        let mut r1 = SmallRng::seed_from_u64(5);
        let mut r2 = SmallRng::seed_from_u64(5);
        assert_eq!(random_circuit(6, 3, &mut r1), random_circuit(6, 3, &mut r2));
    }
}
