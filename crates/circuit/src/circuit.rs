//! Circuit intermediate representation and builder.
//!
//! A [`Circuit`] is an ordered list of gate applications ([`Op`]) on a fixed
//! qubit register. Construction follows the non-consuming builder
//! convention: mutating methods return `&mut Self` for chaining.

use crate::gates::Gate;
use itqc_math::CMatrix;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// An unordered qubit pair identifying a coupling; stored with the smaller
/// index first so `{a, b}` and `{b, a}` compare equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Coupling {
    lo: usize,
    hi: usize,
}

impl Coupling {
    /// Creates the coupling `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: usize, b: usize) -> Self {
        assert_ne!(a, b, "a coupling joins two distinct qubits");
        Coupling { lo: a.min(b), hi: a.max(b) }
    }

    /// The smaller qubit index.
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// The larger qubit index.
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Both endpoints, ascending.
    pub fn endpoints(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }

    /// `true` when `q` is one of the endpoints.
    pub fn touches(&self, q: usize) -> bool {
        self.lo == q || self.hi == q
    }
}

impl fmt::Display for Coupling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{},{}}}", self.lo, self.hi)
    }
}

/// One gate application on specific qubits.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Op {
    /// The gate template.
    pub gate: Gate,
    qubits: [usize; 2],
}

impl Op {
    /// A single-qubit gate application.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not single-qubit.
    pub fn one(gate: Gate, q: usize) -> Self {
        assert_eq!(gate.arity(), 1, "gate {:?} is not single-qubit", gate);
        Op { gate, qubits: [q, usize::MAX] }
    }

    /// A two-qubit gate application. For directed gates (CNOT) `a` is the
    /// control.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not two-qubit or `a == b`.
    pub fn two(gate: Gate, a: usize, b: usize) -> Self {
        assert_eq!(gate.arity(), 2, "gate {:?} is not two-qubit", gate);
        assert_ne!(a, b, "two-qubit gate needs distinct qubits");
        Op { gate, qubits: [a, b] }
    }

    /// The qubits the op acts on (length 1 or 2; for directed gates the
    /// control comes first).
    pub fn qubits(&self) -> &[usize] {
        &self.qubits[..self.gate.arity()]
    }

    /// The coupling exercised by a two-qubit op, `None` for single-qubit.
    pub fn coupling(&self) -> Option<Coupling> {
        if self.gate.arity() == 2 {
            Some(Coupling::new(self.qubits[0], self.qubits[1]))
        } else {
            None
        }
    }

    /// The inverse op.
    pub fn dagger(&self) -> Op {
        Op { gate: self.gate.dagger(), qubits: self.qubits }
    }
}

/// A quantum circuit on `n` qubits.
///
/// # Example
///
/// ```
/// use itqc_circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.h(0).cnot(0, 1).cnot(1, 2);
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.two_qubit_gate_count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0`.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "circuit needs at least one qubit");
        Circuit { n_qubits, ops: Vec::new() }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Appends an operation.
    ///
    /// # Panics
    ///
    /// Panics if the op addresses a qubit outside the register.
    pub fn push(&mut self, op: Op) -> &mut Self {
        for &q in op.qubits() {
            assert!(q < self.n_qubits, "qubit {q} out of range (n={})", self.n_qubits);
        }
        self.ops.push(op);
        self
    }

    /// Appends all operations of `other` (registers must match).
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.n_qubits, other.n_qubits, "register size mismatch");
        self.ops.extend_from_slice(&other.ops);
        self
    }

    // ---- builder conveniences -------------------------------------------

    /// Applies X to `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Op::one(Gate::X, q))
    }

    /// Applies Y to `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Op::one(Gate::Y, q))
    }

    /// Applies Z to `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Op::one(Gate::Z, q))
    }

    /// Applies Hadamard to `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Op::one(Gate::H, q))
    }

    /// Applies the phase gate S to `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Op::one(Gate::S, q))
    }

    /// Applies T to `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Op::one(Gate::T, q))
    }

    /// Applies T† to `q`.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push(Op::one(Gate::Tdg, q))
    }

    /// Applies `Rx(theta)` to `q`.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Op::one(Gate::Rx(theta), q))
    }

    /// Applies `Ry(theta)` to `q`.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Op::one(Gate::Ry(theta), q))
    }

    /// Applies `Rz(theta)` to `q`.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Op::one(Gate::Rz(theta), q))
    }

    /// Applies the native equatorial rotation `R(theta, phi)` to `q`.
    pub fn r(&mut self, q: usize, theta: f64, phi: f64) -> &mut Self {
        self.push(Op::one(Gate::R { theta, phi }, q))
    }

    /// Applies `Phase(lambda)` to `q`.
    pub fn phase(&mut self, q: usize, lambda: f64) -> &mut Self {
        self.push(Op::one(Gate::Phase(lambda), q))
    }

    /// Applies CNOT with control `c` and target `t`.
    pub fn cnot(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Op::two(Gate::Cnot, c, t))
    }

    /// Applies CZ to `a`, `b`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Op::two(Gate::Cz, a, b))
    }

    /// Applies SWAP to `a`, `b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Op::two(Gate::Swap, a, b))
    }

    /// Applies the ideal Mølmer–Sørensen gate `XX(theta)` to `a`, `b`.
    pub fn xx(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.push(Op::two(Gate::Xx(theta), a, b))
    }

    /// Applies the phase-parameterised MS gate `M(theta, phi1, phi2)`.
    pub fn ms(&mut self, a: usize, b: usize, theta: f64, phi1: f64, phi2: f64) -> &mut Self {
        self.push(Op::two(Gate::Ms { theta, phi1, phi2 }, a, b))
    }

    /// Applies controlled-phase `CP(lambda)` to `a`, `b`.
    pub fn cphase(&mut self, a: usize, b: usize, lambda: f64) -> &mut Self {
        self.push(Op::two(Gate::CPhase(lambda), a, b))
    }

    /// Appends a Toffoli (CCX) on controls `c1`, `c2` and target `t` using
    /// the standard 6-CNOT + 7-T decomposition (the gate set is 1–2 qubit
    /// only, as on ion-trap hardware).
    ///
    /// # Panics
    ///
    /// Panics if the three qubits are not distinct.
    pub fn toffoli(&mut self, c1: usize, c2: usize, t: usize) -> &mut Self {
        assert!(c1 != c2 && c1 != t && c2 != t, "Toffoli needs distinct qubits");
        self.h(t)
            .cnot(c2, t)
            .tdg(t)
            .cnot(c1, t)
            .t(t)
            .cnot(c2, t)
            .tdg(t)
            .cnot(c1, t)
            .t(c2)
            .t(t)
            .h(t)
            .cnot(c1, c2)
            .t(c1)
            .tdg(c2)
            .cnot(c1, c2)
    }

    // ---- analysis --------------------------------------------------------

    /// The inverse circuit (ops reversed, each inverted).
    pub fn inverse(&self) -> Circuit {
        Circuit { n_qubits: self.n_qubits, ops: self.ops.iter().rev().map(Op::dagger).collect() }
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.ops.iter().filter(|o| o.gate.arity() == 2).count()
    }

    /// The set of distinct couplings exercised by two-qubit gates —
    /// the quantity censused in the paper's Fig. 11.
    pub fn used_couplings(&self) -> BTreeSet<Coupling> {
        self.ops.iter().filter_map(Op::coupling).collect()
    }

    /// Gate-name histogram.
    pub fn gate_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for op in &self.ops {
            *m.entry(op.gate.name()).or_insert(0) += 1;
        }
        m
    }

    /// Circuit depth: the length of the longest qubit-dependency chain,
    /// computed by greedy levelisation.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for op in &self.ops {
            let start = op.qubits().iter().map(|&q| level[q]).max().unwrap_or(0);
            for &q in op.qubits() {
                level[q] = start + 1;
            }
            depth = depth.max(start + 1);
        }
        depth
    }

    /// `true` when every gate belongs to the ion-trap native set.
    pub fn is_native(&self) -> bool {
        self.ops.iter().all(|o| o.gate.is_native())
    }

    /// Computes the full `2^n × 2^n` unitary of the circuit. Qubit 0 is the
    /// least-significant index bit.
    ///
    /// Intended for verification at small `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 12` (the matrix would not fit in memory
    /// budgets appropriate for verification).
    pub fn unitary(&self) -> CMatrix {
        assert!(self.n_qubits <= 12, "unitary() is for verification-sized circuits");
        let dim = 1usize << self.n_qubits;
        let mut u = CMatrix::identity(dim);
        for op in &self.ops {
            let g = match op.gate.arity() {
                1 => CMatrix::embed_1q(self.n_qubits, op.qubits()[0], &op.gate.matrix1().unwrap()),
                2 => CMatrix::embed_2q(
                    self.n_qubits,
                    op.qubits()[0],
                    op.qubits()[1],
                    &op.gate.matrix2().unwrap(),
                ),
                _ => unreachable!(),
            };
            u = g.mul(&u);
        }
        u
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit[{} qubits, {} ops]", self.n_qubits, self.ops.len())?;
        for op in &self.ops {
            match op.gate.arity() {
                1 => writeln!(f, "  {:<5} q{}", op.gate.name(), op.qubits()[0])?,
                _ => {
                    writeln!(f, "  {:<5} q{} q{}", op.gate.name(), op.qubits()[0], op.qubits()[1])?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_math::Complex64;

    #[test]
    fn coupling_is_unordered() {
        assert_eq!(Coupling::new(3, 1), Coupling::new(1, 3));
        assert_eq!(Coupling::new(1, 3).endpoints(), (1, 3));
        assert!(Coupling::new(1, 3).touches(3));
        assert!(!Coupling::new(1, 3).touches(2));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn degenerate_coupling_panics() {
        let _ = Coupling::new(2, 2);
    }

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.two_qubit_gate_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.x(2);
    }

    #[test]
    fn inverse_cancels() {
        let mut c = Circuit::new(2);
        c.h(0).t(1).cnot(0, 1).rx(0, 0.3).xx(0, 1, 0.7);
        let mut whole = c.clone();
        whole.append(&c.inverse());
        let u = whole.unitary();
        assert!(u.approx_eq_up_to_phase(&CMatrix::identity(4), 1e-10));
    }

    #[test]
    fn bell_circuit_unitary() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let u = c.unitary();
        // |00⟩ → (|00⟩+|11⟩)/√2
        let v = u.mul_vec(&[Complex64::ONE, Complex64::ZERO, Complex64::ZERO, Complex64::ZERO]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(v[0].approx_eq(Complex64::real(s), 1e-12));
        assert!(v[3].approx_eq(Complex64::real(s), 1e-12));
        assert!(v[1].norm() < 1e-12 && v[2].norm() < 1e-12);
    }

    #[test]
    fn toffoli_truth_table() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        let u = c.unitary();
        // |011⟩ (q0=1,q1=1,q2=0 → index 3) maps to |111⟩ (index 7).
        for input in 0..8usize {
            let mut v = vec![Complex64::ZERO; 8];
            v[input] = Complex64::ONE;
            let out = u.mul_vec(&v);
            let expected = if input & 0b011 == 0b011 { input ^ 0b100 } else { input };
            let (idx, amp) = out
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.norm_sqr().partial_cmp(&b.norm_sqr()).unwrap())
                .unwrap();
            assert_eq!(idx, expected, "input {input}");
            assert!((amp.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn used_couplings_census() {
        let mut c = Circuit::new(4);
        c.cnot(0, 1).cnot(1, 0).xx(2, 3, 0.5).h(0);
        let used = c.used_couplings();
        assert_eq!(used.len(), 2);
        assert!(used.contains(&Coupling::new(0, 1)));
        assert!(used.contains(&Coupling::new(2, 3)));
    }

    #[test]
    fn gate_counts_histogram() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cnot(0, 1);
        let counts = c.gate_counts();
        assert_eq!(counts["h"], 2);
        assert_eq!(counts["cnot"], 1);
    }

    #[test]
    fn depth_accounts_for_parallelism() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3); // all parallel
        assert_eq!(c.depth(), 1);
        c.cnot(0, 1).cnot(2, 3); // still one extra layer
        assert_eq!(c.depth(), 2);
        c.cnot(1, 2); // serialises
        assert_eq!(c.depth(), 3);
    }
}
