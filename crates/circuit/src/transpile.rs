//! Transpilation to the ion-trap native gate set.
//!
//! The native set is `{R(θ, φ), Rz(θ), XX(θ)}` — equatorial single-qubit
//! rotations (laser-driven), virtual Z rotations (frame updates), and
//! arbitrary-angle Mølmer–Sørensen gates. `CNOT` lowers through the MS
//! identity quoted in the paper's §II-B:
//!
//! `CNOT = (Ry(π/2)⊗I)·(Rx(−π/2)⊗Rx(π/2))·XX(π/2)·(Ry(−π/2)⊗I)`
//!
//! (up to global phase), and everything else lowers through `CNOT`/`CZ` or
//! direct `Rz`/`R` synthesis. A fusion pass collapses runs of single-qubit
//! gates into at most `R(θ,φ)·Rz(ζ)` via ZXZ resynthesis.

use crate::circuit::{Circuit, Op};
use crate::gates::Gate;
use itqc_math::Mat2;
use std::f64::consts::{FRAC_PI_2, PI};

/// Lowers a circuit to the native gate set. Output contains only
/// `R(θ,φ)`, `Rz`, and `Xx` gates (every `Ms` is kept as-is: it is native).
///
/// The result is unitarily equivalent to the input up to global phase.
pub fn to_native(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    for op in circuit.ops() {
        lower_op(op, &mut out);
    }
    out
}

/// Lowers and then fuses adjacent single-qubit gates; the typical entry
/// point for the Fig. 11 census and the examples.
pub fn to_native_optimized(circuit: &Circuit) -> Circuit {
    fuse_single_qubit_runs(&to_native(circuit))
}

fn lower_op(op: &Op, out: &mut Circuit) {
    let qs = op.qubits();
    match op.gate {
        // Already native.
        Gate::R { theta, phi } => {
            out.r(qs[0], theta, phi);
        }
        Gate::Rz(t) => {
            out.rz(qs[0], t);
        }
        Gate::Xx(t) => {
            out.xx(qs[0], qs[1], t);
        }
        Gate::Ms { theta, phi1, phi2 } => {
            out.ms(qs[0], qs[1], theta, phi1, phi2);
        }
        // Single-qubit rewrites.
        Gate::X => {
            out.r(qs[0], PI, 0.0);
        }
        Gate::Y => {
            out.r(qs[0], PI, FRAC_PI_2);
        }
        Gate::Z => {
            out.rz(qs[0], PI);
        }
        Gate::H => {
            // H = Ry(π/2)·Z (apply Z first, then Ry(π/2)).
            out.rz(qs[0], PI);
            out.r(qs[0], FRAC_PI_2, FRAC_PI_2);
        }
        Gate::S => {
            out.rz(qs[0], FRAC_PI_2);
        }
        Gate::Sdg => {
            out.rz(qs[0], -FRAC_PI_2);
        }
        Gate::T => {
            out.rz(qs[0], PI / 4.0);
        }
        Gate::Tdg => {
            out.rz(qs[0], -PI / 4.0);
        }
        Gate::Phase(l) => {
            out.rz(qs[0], l);
        }
        Gate::Rx(t) => {
            out.r(qs[0], t, 0.0);
        }
        Gate::Ry(t) => {
            out.r(qs[0], t, FRAC_PI_2);
        }
        // Two-qubit rewrites.
        Gate::Cnot => {
            lower_cnot(qs[0], qs[1], out);
        }
        Gate::Cz => {
            // CZ = (I⊗H)·CNOT·(I⊗H).
            lower_op(&Op::one(Gate::H, qs[1]), out);
            lower_cnot(qs[0], qs[1], out);
            lower_op(&Op::one(Gate::H, qs[1]), out);
        }
        Gate::Swap => {
            lower_cnot(qs[0], qs[1], out);
            lower_cnot(qs[1], qs[0], out);
            lower_cnot(qs[0], qs[1], out);
        }
        Gate::CPhase(l) => {
            // CP(λ) ∝ Rz(λ/2)⊗Rz(λ/2) · ZZ(−λ/2), with
            // ZZ(θ) = (Ry(−π/2)⊗Ry(−π/2))·XX(θ)·(Ry(π/2)⊗Ry(π/2)).
            out.r(qs[0], FRAC_PI_2, FRAC_PI_2);
            out.r(qs[1], FRAC_PI_2, FRAC_PI_2);
            out.xx(qs[0], qs[1], -l / 2.0);
            out.r(qs[0], -FRAC_PI_2, FRAC_PI_2);
            out.r(qs[1], -FRAC_PI_2, FRAC_PI_2);
            out.rz(qs[0], l / 2.0);
            out.rz(qs[1], l / 2.0);
        }
    }
}

/// The paper's MS-based CNOT (§II-B), control `c`, target `t`.
fn lower_cnot(c: usize, t: usize, out: &mut Circuit) {
    out.r(c, -FRAC_PI_2, FRAC_PI_2); // Ry(−π/2) on control
    out.xx(c, t, FRAC_PI_2);
    out.r(c, -FRAC_PI_2, 0.0); // Rx(−π/2) on control
    out.r(t, FRAC_PI_2, 0.0); // Rx(π/2) on target
    out.r(c, FRAC_PI_2, FRAC_PI_2); // Ry(π/2) on control
}

/// Collapses maximal runs of consecutive single-qubit gates on each qubit
/// into at most two native ops (`R(θ,φ)` then `Rz(ζ)`) via ZXZ
/// resynthesis; identity runs are dropped entirely.
///
/// Two-qubit gates act as barriers on their operand qubits.
pub fn fuse_single_qubit_runs(circuit: &Circuit) -> Circuit {
    let n = circuit.n_qubits();
    let mut out = Circuit::new(n);
    // Accumulated single-qubit unitary per qubit (None = identity).
    let mut pending: Vec<Option<Mat2>> = vec![None; n];

    let flush = |q: usize, pending: &mut Vec<Option<Mat2>>, out: &mut Circuit| {
        if let Some(u) = pending[q].take() {
            for op in synthesize_1q(&u, q) {
                out.push(op);
            }
        }
    };

    for op in circuit.ops() {
        match op.gate.arity() {
            1 => {
                let q = op.qubits()[0];
                let m = op.gate.matrix1().expect("arity-1 gate has a 2x2 matrix");
                let acc = match pending[q] {
                    Some(prev) => m.mul(&prev),
                    None => m,
                };
                pending[q] = Some(acc);
            }
            _ => {
                for &q in op.qubits() {
                    flush(q, &mut pending, &mut out);
                }
                out.push(*op);
            }
        }
    }
    for q in 0..n {
        flush(q, &mut pending, &mut out);
    }
    out
}

/// Synthesises an arbitrary 2×2 unitary as `Rz(ζ) · R(θ, φ)` (R applied
/// first), dropping factors that are identity to tolerance. Returns 0–2 ops.
///
/// Uses the ZXZ decomposition `U = e^{iδ}·Rz(a)·Rx(θ)·Rz(b)` and the
/// identity `Rz(a)·Rx(θ)·Rz(b) = Rz(a+b)·R(θ, −b)`. Because `a+b` and
/// `a−b` are each recovered only modulo 2π, `b` carries a π ambiguity; we
/// resolve it by verifying the reconstruction and flipping to the
/// alternative branch when needed.
///
/// # Panics
///
/// Panics if `u` is not unitary (reconstruction then fails both branches).
pub fn synthesize_1q(u: &Mat2, qubit: usize) -> Vec<Op> {
    const TOL: f64 = 1e-12;
    let u00 = u.at(0, 0);
    let u01 = u.at(0, 1);
    let u10 = u.at(1, 0);
    let u11 = u.at(1, 1);

    let cos_half = u00.norm().min(1.0);
    let sin_half = u01.norm().min(1.0);
    let theta = 2.0 * sin_half.atan2(cos_half);

    // With U = e^{iδ} Rz(a) Rx(θ) Rz(b):
    //   arg U11 − arg U00 = a + b   (mod 2π, valid when cos ≠ 0)
    //   arg U10 − arg U01 = a − b   (mod 2π, valid when sin ≠ 0)
    let (zeta, phi) = if sin_half < 1e-9 {
        // Diagonal: U ∝ Rz(a+b); the R factor is identity.
        (u11.arg() - u00.arg(), 0.0)
    } else if cos_half < 1e-9 {
        // Anti-diagonal: only a−b matters; pick a+b = 0.
        let a_minus_b = u10.arg() - u01.arg();
        (0.0, a_minus_b / 2.0)
    } else {
        let a_plus_b = u11.arg() - u00.arg();
        let a_minus_b = u10.arg() - u01.arg();
        let b = (a_plus_b - a_minus_b) / 2.0;
        (a_plus_b, -b)
    };

    // The branch cut in a−b can offset b by π; test both candidates.
    for cand_phi in [phi, phi + PI] {
        let mut ops = Vec::with_capacity(2);
        if theta.abs() > TOL {
            ops.push(Op::one(Gate::R { theta, phi: wrap_angle(cand_phi) }, qubit));
        }
        if wrap_angle(zeta).abs() > TOL {
            ops.push(Op::one(Gate::Rz(wrap_angle(zeta)), qubit));
        }
        if ops_unitary_1q(&ops).approx_eq_up_to_phase(u, 1e-9) {
            return ops;
        }
    }
    panic!("single-qubit synthesis failed; input was not unitary?");
}

/// Wraps an angle into `(−π, π]`.
fn wrap_angle(t: f64) -> f64 {
    let mut x = t % (2.0 * PI);
    if x > PI {
        x -= 2.0 * PI;
    } else if x <= -PI {
        x += 2.0 * PI;
    }
    x
}

/// Checks the synthesis invariant used in debug assertions and tests:
/// the op list reproduces `u` up to global phase.
#[doc(hidden)]
pub fn ops_unitary_1q(ops: &[Op]) -> Mat2 {
    let mut m = Mat2::identity();
    for op in ops {
        m = op.gate.matrix1().expect("1q op").mul(&m);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use itqc_math::CMatrix;
    use itqc_math::Complex64;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn assert_equiv(a: &Circuit, b: &Circuit) {
        assert!(
            a.unitary().approx_eq_up_to_phase(&b.unitary(), 1e-8),
            "circuits are not equivalent"
        );
    }

    #[test]
    fn cnot_lowering_is_exact() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        assert_equiv(&c, &to_native(&c));
        let mut c2 = Circuit::new(2);
        c2.cnot(1, 0);
        assert_equiv(&c2, &to_native(&c2));
    }

    #[test]
    fn all_basic_gates_lower_correctly() {
        type GateApplier = Box<dyn Fn(&mut Circuit)>;
        let gates: Vec<GateApplier> = vec![
            Box::new(|c| {
                c.x(0);
            }),
            Box::new(|c| {
                c.y(0);
            }),
            Box::new(|c| {
                c.z(0);
            }),
            Box::new(|c| {
                c.h(0);
            }),
            Box::new(|c| {
                c.s(0);
            }),
            Box::new(|c| {
                c.t(1);
            }),
            Box::new(|c| {
                c.rx(0, 0.7);
            }),
            Box::new(|c| {
                c.ry(1, -0.4);
            }),
            Box::new(|c| {
                c.rz(0, 2.2);
            }),
            Box::new(|c| {
                c.phase(1, 0.9);
            }),
            Box::new(|c| {
                c.cz(0, 1);
            }),
            Box::new(|c| {
                c.swap(0, 1);
            }),
            Box::new(|c| {
                c.cphase(0, 1, 1.3);
            }),
        ];
        for (i, build) in gates.iter().enumerate() {
            let mut c = Circuit::new(2);
            build(&mut c);
            let native = to_native(&c);
            assert!(native.is_native(), "case {i} not native");
            assert_equiv(&c, &native);
        }
    }

    #[test]
    fn whole_algorithms_survive_lowering() {
        let circuits = [library::ghz(4), library::qft(3), library::bernstein_vazirani(0b101, 3)];
        for c in &circuits {
            let native = to_native(c);
            assert!(native.is_native());
            assert_equiv(c, &native);
        }
    }

    #[test]
    fn fusion_preserves_unitary() {
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..10 {
            let c = library::random_circuit(4, 4, &mut rng);
            let native = to_native(&c);
            let fused = fuse_single_qubit_runs(&native);
            assert_equiv(&native, &fused);
            assert!(fused.len() <= native.len(), "fusion must not grow the circuit");
        }
    }

    #[test]
    fn fusion_drops_identity_runs() {
        let mut c = Circuit::new(1);
        c.h(0).h(0); // H² = I
        let fused = fuse_single_qubit_runs(&c);
        assert!(fused.is_empty(), "got {fused}");
    }

    #[test]
    fn fusion_respects_two_qubit_barriers() {
        let mut c = Circuit::new(2);
        c.h(0).xx(0, 1, 0.5).h(0);
        let fused = fuse_single_qubit_runs(&c);
        // The two H's must not merge across the XX gate.
        assert_equiv(&c, &fused);
        assert_eq!(fused.two_qubit_gate_count(), 1);
        assert!(fused.len() >= 3);
    }

    #[test]
    fn synthesize_random_unitaries() {
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..200 {
            // Random SU(2) via three rotations.
            let u = Gate::Rz(rng.gen_range(-PI..PI))
                .matrix1()
                .unwrap()
                .mul(&Gate::Rx(rng.gen_range(-PI..PI)).matrix1().unwrap())
                .mul(&Gate::Rz(rng.gen_range(-PI..PI)).matrix1().unwrap());
            let ops = synthesize_1q(&u, 0);
            assert!(ops.len() <= 2);
            let v = ops_unitary_1q(&ops);
            assert!(v.approx_eq_up_to_phase(&u, 1e-9), "resynthesis failed");
        }
    }

    #[test]
    fn synthesize_identity_is_empty() {
        let ops = synthesize_1q(&Mat2::identity(), 0);
        assert!(ops.is_empty());
        // Global phase only — still identity physically.
        let phased = Mat2::identity().scale_c(Complex64::cis(1.234));
        assert!(synthesize_1q(&phased, 0).is_empty());
    }

    #[test]
    fn native_circuit_unchanged_by_lowering() {
        let mut c = Circuit::new(3);
        c.r(0, 0.3, 0.4).xx(0, 2, 0.5).rz(1, 0.7).ms(1, 2, 0.2, 0.1, -0.1);
        let native = to_native(&c);
        assert_eq!(c, native);
    }

    #[test]
    fn lowering_uses_same_couplings() {
        // The transpiler must not change which couplings a circuit touches
        // (it introduces no SWAP routing — ion traps are all-to-all).
        let c = library::qft(4);
        let native = to_native(&c);
        assert_eq!(c.used_couplings(), native.used_couplings());
    }

    #[test]
    fn ghz_native_matches_cmatrix_reference() {
        let c = library::ghz(3);
        let u: CMatrix = c.unitary();
        let v: CMatrix = to_native_optimized(&c).unitary();
        assert!(u.approx_eq_up_to_phase(&v, 1e-8));
    }
}
