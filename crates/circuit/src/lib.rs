//! Quantum circuit layer for the `itqc` workspace.
//!
//! Provides the gate set (including the ion-trap native Mølmer–Sørensen
//! family and the paper's Fig. 4 fault-model gates), a circuit IR with a
//! chaining builder, a library of standard algorithms used as "real-life"
//! workloads (Fig. 11), and a transpiler lowering arbitrary circuits to the
//! native `{R(θ,φ), Rz, XX}` set via the paper's §II-B CNOT identity.
//!
//! # Example
//!
//! ```
//! use itqc_circuit::{library, transpile};
//!
//! // Build a GHZ circuit, lower it to native ion-trap gates, and census
//! // the couplings it exercises (the paper's Fig. 11 measurement).
//! let ghz = library::ghz(4);
//! let native = transpile::to_native_optimized(&ghz);
//! assert!(native.is_native());
//! assert_eq!(native.used_couplings().len(), 3);
//! ```

#![warn(missing_docs)]

pub mod circuit;
pub mod gates;
pub mod library;
pub mod transpile;

pub use circuit::{Circuit, Coupling, Op};
pub use gates::Gate;
