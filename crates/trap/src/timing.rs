//! Machine timing model (paper §VIII, Fig. 10 assumptions).
//!
//! The cost of a test is dominated by qubit initialisation and readout —
//! not by gate count — while the cost of an *adaptive* step is dominated by
//! classical decision and pulse compilation/upload. Fig. 10 assumes the
//! two-qubit gate time grows as `N²` from 0.2 ms at 8 qubits (gate *speed*
//! scales as `1/N²`). All knobs are explicit so the Fig. 10 sweep can vary
//! them.

/// Wall-clock model for a trapped-ion machine. All times in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimingModel {
    /// Qubit (re-)initialisation per circuit run: cooling + optical
    /// pumping.
    pub prep: f64,
    /// State readout per circuit run.
    pub readout: f64,
    /// Two-qubit gate time at the reference register size.
    pub two_qubit_gate_ref: f64,
    /// Reference register size for the gate-time scaling (8 in the paper).
    pub gate_ref_qubits: usize,
    /// Single-qubit gate time (independent of N).
    pub single_qubit_gate: f64,
    /// Classical decision latency per adaptive round (syndrome decode +
    /// next-test selection on the control computer).
    pub decision: f64,
    /// Pulse compilation time per coupling appearing in the next batch.
    pub compile_per_coupling: f64,
    /// Control-system upload latency per adaptive round.
    pub upload: f64,
}

impl TimingModel {
    /// Defaults calibrated so an 11-qubit full point-check characterisation
    /// takes on the order of a minute and the diagnosis protocols take
    /// ~10 s — the operating points quoted in the paper's §IX.
    pub fn paper_defaults() -> Self {
        TimingModel {
            prep: 0.5e-3,
            readout: 0.4e-3,
            two_qubit_gate_ref: 0.2e-3,
            gate_ref_qubits: 8,
            single_qubit_gate: 10e-6,
            decision: 50e-3,
            compile_per_coupling: 5e-3,
            upload: 100e-3,
        }
    }

    /// Two-qubit gate time on an `n`-qubit register:
    /// `t(N) = t_ref · (N/N_ref)²`.
    pub fn two_qubit_gate(&self, n_qubits: usize) -> f64 {
        let ratio = n_qubits as f64 / self.gate_ref_qubits as f64;
        self.two_qubit_gate_ref * ratio * ratio
    }

    /// Wall-clock of one circuit execution (a single shot).
    pub fn circuit_run(
        &self,
        n_qubits: usize,
        two_qubit_gates: usize,
        one_qubit_gates: usize,
    ) -> f64 {
        self.prep
            + self.readout
            + two_qubit_gates as f64 * self.two_qubit_gate(n_qubits)
            + one_qubit_gates as f64 * self.single_qubit_gate
    }

    /// Wall-clock of `shots` repetitions of the same circuit (no
    /// re-compilation between shots).
    pub fn shots(
        &self,
        n_qubits: usize,
        two_qubit_gates: usize,
        one_qubit_gates: usize,
        shots: usize,
    ) -> f64 {
        shots as f64 * self.circuit_run(n_qubits, two_qubit_gates, one_qubit_gates)
    }

    /// Wall-clock of one adaptation round compiling pulses for
    /// `couplings_compiled` couplings.
    pub fn adaptation(&self, couplings_compiled: usize) -> f64 {
        self.decision + self.upload + couplings_compiled as f64 * self.compile_per_coupling
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_time_scales_quadratically() {
        let t = TimingModel::paper_defaults();
        assert!((t.two_qubit_gate(8) - 0.2e-3).abs() < 1e-12);
        assert!((t.two_qubit_gate(16) - 0.8e-3).abs() < 1e-12);
        assert!((t.two_qubit_gate(32) - 3.2e-3).abs() < 1e-12);
    }

    #[test]
    fn run_time_dominated_by_prep_and_readout_for_shallow_tests() {
        // The paper's §IV premise: a few-gate test costs mostly init+readout.
        let t = TimingModel::paper_defaults();
        let total = t.circuit_run(8, 4, 2);
        let overhead = t.prep + t.readout;
        assert!(overhead / total > 0.5, "overhead {overhead} of {total}");
    }

    #[test]
    fn point_check_scale_matches_paper_quote() {
        // Full characterisation of all 55 couplings of an 11-qubit machine
        // with a few hundred shots each should take on the order of a
        // minute (paper: "over a minute").
        let t = TimingModel::paper_defaults();
        let per_coupling = t.shots(11, 4, 0, 300) + t.adaptation(1);
        let total = 55.0 * per_coupling;
        assert!(total > 20.0 && total < 300.0, "total {total} s");
    }

    #[test]
    fn adaptation_grows_with_compiled_couplings() {
        let t = TimingModel::paper_defaults();
        assert!(t.adaptation(496) > t.adaptation(28));
        assert!((t.adaptation(0) - 0.15).abs() < 1e-12);
    }
}
