//! Virtual ion-trap machine for the `itqc` workspace.
//!
//! Substitutes for the paper's commercial 11-qubit device (§VI): a
//! machine model with hidden per-coupling miscalibration, drift, the full
//! §III noise stack, finite-shot execution, and duty-cycle/timing
//! accounting ([`machine`], [`timing`], [`duty`]); plus the underlying
//! ion-chain physics — equilibrium, normal modes, Lamb–Dicke couplings,
//! pulse decoupling residuals — feeding the paper's Eq. (1) ([`chain`]).

#![warn(missing_docs)]

pub mod chain;
pub mod duty;
pub mod machine;
pub mod rb;
pub mod timing;

pub use duty::{Activity, DutyLedger};
pub use machine::{TrapConfig, VirtualTrap};
pub use timing::TimingModel;
