//! Duty-cycle accounting (paper Fig. 2).
//!
//! A commercial ion trap splits its up-time between customer jobs and
//! testing/calibration (the paper measures roughly 53% / 47%). The
//! [`DutyLedger`] accumulates wall-clock per activity so experiments can
//! report how a diagnosis strategy changes the split.

use std::collections::BTreeMap;
use std::fmt;

/// What the machine is spending time on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Activity {
    /// Running customer/application circuits.
    Jobs,
    /// Running fault-detection test circuits.
    Testing,
    /// Recalibrating couplings (measure + correct).
    Calibration,
    /// Classical adaptation overhead (decide + compile + upload).
    Adaptation,
    /// Idle / other.
    Idle,
}

impl Activity {
    /// All activity categories in display order.
    pub const ALL: [Activity; 5] = [
        Activity::Jobs,
        Activity::Testing,
        Activity::Calibration,
        Activity::Adaptation,
        Activity::Idle,
    ];
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Activity::Jobs => "jobs",
            Activity::Testing => "testing",
            Activity::Calibration => "calibration",
            Activity::Adaptation => "adaptation",
            Activity::Idle => "idle",
        };
        f.write_str(s)
    }
}

/// Accumulated seconds per activity.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DutyLedger {
    seconds: BTreeMap<Activity, f64>,
}

impl DutyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `seconds` of `activity`.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or non-finite.
    pub fn record(&mut self, activity: Activity, seconds: f64) {
        assert!(seconds >= 0.0 && seconds.is_finite(), "bad duration {seconds}");
        *self.seconds.entry(activity).or_insert(0.0) += seconds;
    }

    /// Total seconds recorded for `activity`.
    pub fn seconds(&self, activity: Activity) -> f64 {
        self.seconds.get(&activity).copied().unwrap_or(0.0)
    }

    /// Total seconds across all activities.
    pub fn total(&self) -> f64 {
        self.seconds.values().sum()
    }

    /// Fraction of total time spent on `activity` (0 if nothing recorded).
    pub fn fraction(&self, activity: Activity) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.seconds(activity) / total
        }
    }

    /// Fraction of time producing value (jobs) — the paper's duty-cycle
    /// headline number (~53% for the machine of Fig. 2).
    pub fn uptime_fraction(&self) -> f64 {
        self.fraction(Activity::Jobs)
    }

    /// Maintenance overhead: testing + calibration + adaptation.
    pub fn overhead_fraction(&self) -> f64 {
        self.fraction(Activity::Testing)
            + self.fraction(Activity::Calibration)
            + self.fraction(Activity::Adaptation)
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &DutyLedger) {
        for (&k, &v) in &other.seconds {
            *self.seconds.entry(k).or_insert(0.0) += v;
        }
    }
}

impl fmt::Display for DutyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "duty cycle over {:.1} s:", self.total())?;
        for a in Activity::ALL {
            writeln!(
                f,
                "  {:<12} {:>10.2} s  ({:>5.1}%)",
                a.to_string(),
                self.seconds(a),
                100.0 * self.fraction(a)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let mut d = DutyLedger::new();
        d.record(Activity::Jobs, 53.0);
        d.record(Activity::Testing, 20.0);
        d.record(Activity::Calibration, 27.0);
        let s: f64 = Activity::ALL.iter().map(|&a| d.fraction(a)).sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((d.uptime_fraction() - 0.53).abs() < 1e-12);
        assert!((d.overhead_fraction() - 0.47).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let d = DutyLedger::new();
        assert_eq!(d.total(), 0.0);
        assert_eq!(d.uptime_fraction(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DutyLedger::new();
        a.record(Activity::Jobs, 10.0);
        let mut b = DutyLedger::new();
        b.record(Activity::Jobs, 5.0);
        b.record(Activity::Idle, 5.0);
        a.merge(&b);
        assert_eq!(a.seconds(Activity::Jobs), 15.0);
        assert_eq!(a.total(), 20.0);
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn negative_duration_panics() {
        DutyLedger::new().record(Activity::Idle, -1.0);
    }
}
