//! Randomized benchmarking (paper §II-B).
//!
//! "RB essentially applies a random sequence of gates drawn from a
//! restricted set of gates" and, assuming non-systematic Markovian errors,
//! extracts the per-gate error from the exponential decay of the survival
//! probability. This module implements standard single-qubit RB against
//! the virtual machine: random Clifford words, a computed inversion
//! element, native transpilation (so laser-driven `R` gates pick up the
//! machine's rotation noise while virtual `Rz` stays exact), shot-sampled
//! survival, and the `F(m) = A·p^m + 1/2` fit.

use crate::machine::VirtualTrap;
use crate::Activity;
use itqc_circuit::transpile::to_native;
use itqc_circuit::{library, Circuit, Op};
use itqc_math::lstsq::least_squares;
use itqc_math::Mat2;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of a single-qubit RB run.
#[derive(Clone, Debug)]
pub struct RbResult {
    /// Sequence lengths (number of random Cliffords, excluding inversion).
    pub lengths: Vec<usize>,
    /// Mean survival probability per length.
    pub survival: Vec<f64>,
    /// Fitted depolarising parameter `p` of `F(m) = A·p^m + 1/2`.
    pub decay_p: f64,
    /// Error per Clifford `r = (1 − p)/2`.
    pub error_per_clifford: f64,
}

/// Configuration of an RB run.
#[derive(Clone, Debug)]
pub struct RbConfig {
    /// The benchmarked qubit.
    pub qubit: usize,
    /// Sequence lengths to sample.
    pub lengths: Vec<usize>,
    /// Random sequences per length.
    pub sequences_per_length: usize,
    /// Shots per sequence.
    pub shots: usize,
    /// RNG seed for sequence sampling.
    pub seed: u64,
}

impl RbConfig {
    /// A sensible default: lengths 1..~40, 8 sequences each, 200 shots.
    pub fn standard(qubit: usize, seed: u64) -> Self {
        RbConfig {
            qubit,
            lengths: vec![1, 2, 4, 8, 16, 32],
            sequences_per_length: 8,
            shots: 200,
            seed,
        }
    }
}

/// Runs single-qubit randomized benchmarking on the machine.
///
/// # Panics
///
/// Panics if the qubit is out of range, lengths are empty, or the fit is
/// degenerate (e.g. survival at 0.5 everywhere — noise too strong for the
/// chosen lengths).
pub fn single_qubit_rb(trap: &mut VirtualTrap, config: &RbConfig) -> RbResult {
    assert!(config.qubit < trap.n_qubits(), "qubit out of range");
    assert!(!config.lengths.is_empty(), "need at least one sequence length");
    let cliffords = library::single_qubit_cliffords();
    let matrices: Vec<Mat2> = cliffords.iter().map(|w| library::clifford_matrix(w)).collect();
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let mut survival = Vec::with_capacity(config.lengths.len());
    for &m in &config.lengths {
        let mut acc = 0.0;
        for _ in 0..config.sequences_per_length {
            // Random word of m Cliffords.
            let mut composed = Mat2::identity();
            let mut circuit = Circuit::new(trap.n_qubits());
            for _ in 0..m {
                let k = rng.gen_range(0..cliffords.len());
                for &g in &cliffords[k] {
                    circuit.push(Op::one(g, config.qubit));
                }
                composed = matrices[k].mul(&composed);
            }
            // Inversion element: the group member undoing the word.
            let inverse = composed.adjoint();
            let inv_idx = matrices
                .iter()
                .position(|k| k.approx_eq_up_to_phase(&inverse, 1e-9))
                .expect("Clifford group is closed under inversion");
            for &g in &cliffords[inv_idx] {
                circuit.push(Op::one(g, config.qubit));
            }
            // Native gates: H/S lower to R(θ,φ) + virtual Rz; only the R
            // pulses see rotation noise. Deliberately *not* fused: RB
            // benchmarks the physical per-Clifford pulses, and whole-word
            // fusion would collapse the sequence to a single rotation.
            let native = to_native(&circuit);
            let counts = trap.run_circuit(&native, config.shots, Activity::Testing);
            let zeros: usize = counts
                .iter()
                .filter(|(&basis, _)| (basis >> config.qubit) & 1 == 0)
                .map(|(_, &c)| c)
                .sum();
            acc += zeros as f64 / config.shots as f64;
        }
        survival.push(acc / config.sequences_per_length as f64);
    }

    // Fit log(F − 1/2) = log A + m·log p on points above the floor.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (&m, &f) in config.lengths.iter().zip(&survival) {
        if f > 0.52 {
            xs.extend_from_slice(&[1.0, m as f64]);
            ys.push((f - 0.5).ln());
        }
    }
    assert!(ys.len() >= 2, "not enough decaying points to fit (noise too strong?)");
    let beta = least_squares(&xs, &ys, 2).expect("RB fit design is nonsingular");
    let decay_p = beta[1].exp().clamp(0.0, 1.0);
    RbResult {
        lengths: config.lengths.clone(),
        survival,
        decay_p,
        error_per_clifford: (1.0 - decay_p) / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::TrapConfig;

    #[test]
    fn noiseless_machine_has_unit_survival() {
        let mut trap = VirtualTrap::new(TrapConfig::ideal(2, 3));
        let config = RbConfig {
            qubit: 0,
            lengths: vec![1, 4, 8],
            sequences_per_length: 4,
            shots: 200,
            seed: 5,
        };
        let result = single_qubit_rb(&mut trap, &config);
        for &f in &result.survival {
            assert!(f > 0.995, "noiseless survival {f}");
        }
        assert!(result.error_per_clifford < 5e-3);
    }

    #[test]
    fn rotation_noise_produces_decay() {
        let mut cfg = TrapConfig::ideal(2, 7);
        cfg.one_qubit_jitter_std = 0.10;
        let mut trap = VirtualTrap::new(cfg);
        let config = RbConfig {
            qubit: 0,
            lengths: vec![1, 4, 8, 16, 32],
            sequences_per_length: 8,
            shots: 300,
            seed: 11,
        };
        let result = single_qubit_rb(&mut trap, &config);
        // Survival decays with length…
        assert!(result.survival.first().unwrap() > result.survival.last().unwrap());
        // …and the fitted error is positive and plausible for σ = 0.1
        // (a σ-jittered rotation depolarises by ~σ²/4 per pulse; ~1
        // laser pulse per Clifford element on average).
        assert!(result.decay_p < 1.0);
        assert!(
            result.error_per_clifford > 5e-4 && result.error_per_clifford < 0.05,
            "error per Clifford {}",
            result.error_per_clifford
        );
    }

    #[test]
    fn stronger_noise_means_faster_decay() {
        let run = |sigma: f64, seed: u64| -> f64 {
            let mut cfg = TrapConfig::ideal(2, seed);
            cfg.one_qubit_jitter_std = sigma;
            let mut trap = VirtualTrap::new(cfg);
            let config = RbConfig {
                qubit: 0,
                lengths: vec![1, 4, 8, 16],
                sequences_per_length: 8,
                shots: 300,
                seed,
            };
            single_qubit_rb(&mut trap, &config).error_per_clifford
        };
        let weak = run(0.05, 21);
        let strong = run(0.20, 22);
        assert!(strong > weak, "strong {strong} vs weak {weak}");
    }
}
