//! The virtual ion-trap machine.
//!
//! [`VirtualTrap`] stands in for the commercial 11-qubit ion trap of the
//! paper's §VI (see `DESIGN.md` §1 for the substitution argument). It keeps
//! a hidden per-coupling miscalibration state, evolves it under drift,
//! executes circuits with the full §III noise model and finite shots, and
//! bills every operation to a duty-cycle ledger through the §VIII timing
//! model.
//!
//! Two execution paths are provided, matching the paper's own methodology:
//!
//! * [`VirtualTrap::run_circuit`] — dense trajectory simulation with every
//!   noise channel (amplitude, 1/f phase, residual bus, SPAM); used at
//!   hardware scale (≤ ~14 qubits).
//! * [`VirtualTrap::run_xx_test`] — the exact commuting-XX engine for test
//!   circuits, with amplitude-type channels and SPAM attenuation; scales to
//!   32+ qubits exactly like the paper's scaling study, which "suppresses
//!   phase noise and residual couplings" (§VII).

use crate::duty::{Activity, DutyLedger};
use crate::timing::TimingModel;
use itqc_circuit::{Circuit, Coupling};
use itqc_faults::drift::DriftProcess;
use itqc_faults::models::CouplingFault;
use itqc_faults::phase_noise::OneOverF;
use itqc_faults::{IonTrapNoise, SpamModel};
use itqc_math::rng::standard_normal;
use itqc_sim::trajectory::run_trajectory;
use itqc_sim::{shots, XxCircuit};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Configuration of a [`VirtualTrap`].
#[derive(Clone, Debug)]
pub struct TrapConfig {
    /// Register size.
    pub n_qubits: usize,
    /// RNG seed (the machine is fully deterministic given the seed).
    pub seed: u64,
    /// Per-gate random relative amplitude jitter (std of a zero-mean
    /// normal). 0 disables.
    pub amplitude_jitter_std: f64,
    /// Additive angle jitter on single-qubit rotation gates (radians).
    /// 0 disables.
    pub one_qubit_jitter_std: f64,
    /// RMS of 1/f phase noise on MS beam phases (radians). 0 disables.
    pub phase_noise_rms: f64,
    /// Odd-population leakage per MS gate from residual bus coupling.
    /// 0 disables.
    pub residual_odd_population: f64,
    /// Readout error model.
    pub spam: SpamModel,
    /// Residual |under-rotation| remaining immediately after a coupling is
    /// recalibrated (drawn uniformly in `[−r, r]`).
    pub recalibration_residual: f64,
    /// Wall-clock cost of recalibrating one coupling, seconds.
    pub recalibration_seconds: f64,
    /// Timing model for everything else.
    pub timing: TimingModel,
}

impl TrapConfig {
    /// A machine with the paper's §VI noise operating point: 1% residual
    /// odd population, 1/f phase noise, sub-1% SPAM, and no ambient
    /// amplitude jitter (add it per experiment).
    pub fn paper_like(n_qubits: usize, seed: u64) -> Self {
        TrapConfig {
            n_qubits,
            seed,
            amplitude_jitter_std: 0.0,
            one_qubit_jitter_std: 0.02,
            phase_noise_rms: 0.03,
            residual_odd_population: 0.01,
            spam: SpamModel::new(0.004, 0.006),
            recalibration_residual: 0.01,
            recalibration_seconds: 1.0,
            timing: TimingModel::paper_defaults(),
        }
    }

    /// A noiseless ideal machine (useful for protocol logic tests).
    pub fn ideal(n_qubits: usize, seed: u64) -> Self {
        TrapConfig {
            n_qubits,
            seed,
            amplitude_jitter_std: 0.0,
            one_qubit_jitter_std: 0.0,
            phase_noise_rms: 0.0,
            residual_odd_population: 0.0,
            spam: SpamModel::IDEAL,
            recalibration_residual: 0.0,
            recalibration_seconds: 1.0,
            timing: TimingModel::paper_defaults(),
        }
    }
}

/// The virtual machine. See the module docs.
#[derive(Clone, Debug)]
pub struct VirtualTrap {
    config: TrapConfig,
    calibration: BTreeMap<Coupling, f64>,
    rng: SmallRng,
    clock_seconds: f64,
    duty: DutyLedger,
}

impl VirtualTrap {
    /// Builds a perfectly calibrated machine.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits < 2`.
    pub fn new(config: TrapConfig) -> Self {
        assert!(config.n_qubits >= 2, "a trap needs at least two qubits");
        let mut calibration = BTreeMap::new();
        for a in 0..config.n_qubits {
            for b in (a + 1)..config.n_qubits {
                calibration.insert(Coupling::new(a, b), 0.0);
            }
        }
        let rng = SmallRng::seed_from_u64(config.seed);
        VirtualTrap { config, calibration, rng, clock_seconds: 0.0, duty: DutyLedger::new() }
    }

    /// Register size.
    pub fn n_qubits(&self) -> usize {
        self.config.n_qubits
    }

    /// The machine configuration.
    pub fn config(&self) -> &TrapConfig {
        &self.config
    }

    /// All `C(N,2)` couplings, ascending.
    pub fn couplings(&self) -> Vec<Coupling> {
        self.calibration.keys().copied().collect()
    }

    /// Machine wall clock, seconds since construction.
    pub fn clock_seconds(&self) -> f64 {
        self.clock_seconds
    }

    /// The duty-cycle ledger accumulated so far.
    pub fn duty(&self) -> &DutyLedger {
        &self.duty
    }

    /// Ground-truth under-rotation of a coupling. Hidden from the
    /// protocols (they must discover it through tests); exposed for
    /// validation and oracles.
    ///
    /// # Panics
    ///
    /// Panics if the coupling does not exist on this machine.
    pub fn true_under_rotation(&self, coupling: Coupling) -> f64 {
        *self.calibration.get(&coupling).expect("coupling not on this machine")
    }

    /// Sets the miscalibration of one coupling (the paper's "artificially
    /// introduced errors", §VI).
    ///
    /// # Panics
    ///
    /// Panics if the coupling does not exist on this machine.
    pub fn inject_fault(&mut self, coupling: Coupling, under_rotation: f64) {
        let slot = self.calibration.get_mut(&coupling).expect("coupling not on this machine");
        *slot = under_rotation;
    }

    /// Draws an ambient miscalibration for every coupling: zero-mean
    /// normal with `E|u| = mean_abs` (the paper's "10% average calibration
    /// error" convention — see DESIGN.md §3.3).
    pub fn randomize_calibration(&mut self, mean_abs: f64) {
        let sigma = mean_abs * (std::f64::consts::PI / 2.0).sqrt();
        for v in self.calibration.values_mut() {
            *v = sigma * standard_normal(&mut self.rng);
        }
    }

    /// Draws every coupling's under-rotation from an arbitrary law (e.g.
    /// the Fig. 9 composite distribution).
    pub fn calibration_from_law<D: itqc_math::rng::Distribution>(&mut self, law: &D) {
        for v in self.calibration.values_mut() {
            *v = law.sample(&mut self.rng);
        }
    }

    /// Recalibrates one coupling: its error drops to the configured
    /// post-calibration residual, and the ledger is billed.
    ///
    /// # Panics
    ///
    /// Panics if the coupling does not exist on this machine.
    pub fn recalibrate(&mut self, coupling: Coupling) {
        let r = self.config.recalibration_residual;
        let residual = if r > 0.0 { self.rng.gen_range(-r..r) } else { 0.0 };
        let slot = self.calibration.get_mut(&coupling).expect("coupling not on this machine");
        *slot = residual;
        let dt = self.config.recalibration_seconds;
        self.clock_seconds += dt;
        self.duty.record(Activity::Calibration, dt);
    }

    /// Advances the wall clock by `minutes`, applying `drift` to every
    /// coupling and billing the time as idle.
    pub fn advance_time<D: DriftProcess>(&mut self, minutes: f64, drift: &D) {
        self.apply_drift(minutes, drift);
        self.clock_seconds += minutes * 60.0;
        self.duty.record(Activity::Idle, minutes * 60.0);
    }

    /// Applies `minutes` worth of drift to every coupling *without*
    /// billing wall clock — for callers that already billed the elapsed
    /// time to a specific activity (e.g. job execution).
    pub fn apply_drift<D: DriftProcess>(&mut self, minutes: f64, drift: &D) {
        for v in self.calibration.values_mut() {
            *v = drift.advance(*v, minutes, &mut self.rng);
        }
    }

    /// Bills job time (customer circuits) without simulating them — used
    /// by duty-cycle studies.
    pub fn bill_job_time(&mut self, seconds: f64) {
        self.clock_seconds += seconds;
        self.duty.record(Activity::Jobs, seconds);
    }

    /// Bills idle wall clock without applying drift — for schedulers
    /// that manage drift on their own cadence (cf. [`Self::advance_time`],
    /// which couples the two).
    pub fn bill_idle_time(&mut self, seconds: f64) {
        self.clock_seconds += seconds;
        self.duty.record(Activity::Idle, seconds);
    }

    /// Draws `shots` Bernoulli(`p`) outcomes from the machine's own RNG
    /// stream and returns the hit count — the sampling half of
    /// [`Self::run_xx_test`] for external executors that computed `p`
    /// elsewhere (e.g. through a shared prepared-circuit cache). The
    /// caller is responsible for billing the test time (see
    /// [`Self::bill_test_time`]); keeping the draw on the trap's RNG
    /// keeps the machine fully deterministic in its seed no matter which
    /// executor runs its tests.
    pub fn observe_binomial(&mut self, shot_count: usize, p: f64) -> usize {
        shots::binomial(&mut self.rng, shot_count, p.clamp(0.0, 1.0))
    }

    /// Bills one classical adaptation round that compiles pulses for
    /// `couplings_compiled` couplings.
    pub fn bill_adaptation(&mut self, couplings_compiled: usize) {
        let dt = self.config.timing.adaptation(couplings_compiled);
        self.clock_seconds += dt;
        self.duty.record(Activity::Adaptation, dt);
    }

    /// Bills testing time computed externally (e.g. a characterisation
    /// procedure modelled analytically rather than simulated shot by
    /// shot) without running circuits.
    pub fn bill_test_time(&mut self, seconds: f64) {
        self.clock_seconds += seconds;
        self.duty.record(Activity::Testing, seconds);
    }

    fn noise_model(&mut self) -> IonTrapNoise {
        let faults: Vec<CouplingFault> =
            self.calibration.iter().map(|(&c, &u)| CouplingFault::new(c, u)).collect();
        let mut model = IonTrapNoise::new()
            .with_coupling_faults(faults)
            .with_amplitude_noise(self.config.amplitude_jitter_std)
            .with_one_qubit_noise(self.config.one_qubit_jitter_std);
        if self.config.phase_noise_rms > 0.0 {
            model = model.with_phase_noise(OneOverF::new(self.config.phase_noise_rms, 1.0, 8), 0.2);
        }
        if self.config.residual_odd_population > 0.0 {
            model = model.with_residual_coupling(self.config.residual_odd_population);
        }
        model
    }

    /// Executes `circuit` for `shots` shots with the full noise model and
    /// per-shot trajectory sampling (dense backend). Outcomes include SPAM
    /// corruption. Time is billed to `activity`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit register exceeds the machine or the dense
    /// backend limit.
    pub fn run_circuit(
        &mut self,
        circuit: &Circuit,
        shot_count: usize,
        activity: Activity,
    ) -> BTreeMap<usize, usize> {
        assert!(circuit.n_qubits() <= self.config.n_qubits, "circuit does not fit the machine");
        let mut model = self.noise_model();
        let mut counts = BTreeMap::new();
        for _ in 0..shot_count {
            let state = run_trajectory(circuit, &mut model, &mut self.rng);
            let raw = state.sample(&mut self.rng);
            let read = self.config.spam.corrupt(raw, circuit.n_qubits(), &mut self.rng);
            *counts.entry(read).or_insert(0) += 1;
        }
        let dt = self.config.timing.shots(
            self.config.n_qubits,
            circuit.two_qubit_gate_count(),
            circuit.len() - circuit.two_qubit_gate_count(),
            shot_count,
        );
        self.clock_seconds += dt;
        self.duty.record(activity, dt);
        counts
    }

    /// Executes a pure-XX test circuit on the exact commuting-XX engine
    /// and returns the number of shots observed on `target`.
    ///
    /// Includes deterministic coupling faults, quasi-static per-gate
    /// amplitude jitter, and SPAM attenuation of the target string; phase
    /// noise and residual bus coupling are not representable in the XX
    /// engine (the paper's scaling study suppresses them too, §VII).
    ///
    /// `gates` lists `(coupling, θ)` in program order.
    pub fn run_xx_test(
        &mut self,
        gates: &[(Coupling, f64)],
        target: itqc_sim::BitString,
        shot_count: usize,
        activity: Activity,
    ) -> usize {
        let mut xx = XxCircuit::new(self.config.n_qubits);
        for &(coupling, theta) in gates {
            let u_static = self.true_under_rotation(coupling);
            let jitter = if self.config.amplitude_jitter_std > 0.0 {
                self.config.amplitude_jitter_std * standard_normal(&mut self.rng)
            } else {
                0.0
            };
            let (a, b) = coupling.endpoints();
            xx.add_xx(a, b, theta * (1.0 - u_static - jitter));
        }
        let fidelity = xx.fidelity(target);
        let retention = self.config.spam.retention(target, self.config.n_qubits);
        let hits = shots::binomial(&mut self.rng, shot_count, fidelity * retention);
        let dt = self.config.timing.shots(self.config.n_qubits, gates.len(), 0, shot_count);
        self.clock_seconds += dt;
        self.duty.record(activity, dt);
        hits
    }

    /// Population-scored variant of [`Self::run_xx_test`]: computes every
    /// support qubit's marginal agreement with `target`, samples each with
    /// `shot_count` shots, and returns the hit count of the *worst* qubit.
    ///
    /// This is the statistic that survives ambient miscalibration at
    /// 32-qubit class sizes, where the exact-string probability collapses
    /// (see `itqc_sim::xx::XxCircuit::min_qubit_agreement`). Per-qubit
    /// samples are drawn independently; correlations between qubit
    /// readouts shift the minimum statistic only at second order.
    pub fn run_xx_test_population(
        &mut self,
        gates: &[(Coupling, f64)],
        target: itqc_sim::BitString,
        shot_count: usize,
        activity: Activity,
    ) -> usize {
        let mut xx = XxCircuit::new(self.config.n_qubits);
        for &(coupling, theta) in gates {
            let u_static = self.true_under_rotation(coupling);
            let jitter = if self.config.amplitude_jitter_std > 0.0 {
                self.config.amplitude_jitter_std * standard_normal(&mut self.rng)
            } else {
                0.0
            };
            let (a, b) = coupling.endpoints();
            xx.add_xx(a, b, theta * (1.0 - u_static - jitter));
        }
        let spam_keep = 1.0 - (self.config.spam.p01 + self.config.spam.p10) / 2.0;
        let mut worst = shot_count;
        for q in xx.support() {
            let p = xx.qubit_agreement(q, target) * spam_keep;
            let hits = shots::binomial(&mut self.rng, shot_count, p.clamp(0.0, 1.0));
            worst = worst.min(hits);
        }
        let dt = self.config.timing.shots(self.config.n_qubits, gates.len(), 0, shot_count);
        self.clock_seconds += dt;
        self.duty.record(activity, dt);
        worst
    }

    /// Directly monitors every coupling's XX angle with `shot_count` shots
    /// each (single fully-entangling MS per coupling, populations →
    /// angle): the paper's Fig. 7C "MS-gate quality snapshot".
    ///
    /// Returns `(coupling, estimated under-rotation)` pairs.
    pub fn snapshot_under_rotations(&mut self, shot_count: usize) -> Vec<(Coupling, f64)> {
        let couplings = self.couplings();
        let mut out = Vec::with_capacity(couplings.len());
        for coupling in couplings {
            let u = self.true_under_rotation(coupling);
            let theta = std::f64::consts::FRAC_PI_2 * (1.0 - u);
            let p11_true = (theta / 2.0).sin().powi(2);
            let ones = shots::binomial(&mut self.rng, shot_count, p11_true);
            let p11 = ones as f64 / shot_count.max(1) as f64;
            let est = itqc_faults::estimator::estimate_xx_angle(1.0 - p11, p11);
            out.push((coupling, itqc_faults::estimator::under_rotation_from_angle(est)));
            let dt = self.config.timing.shots(self.config.n_qubits, 1, 0, shot_count);
            self.clock_seconds += dt;
            self.duty.record(Activity::Testing, dt);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn four_ms_gates(c: Coupling) -> Vec<(Coupling, f64)> {
        vec![(c, FRAC_PI_2); 4]
    }

    #[test]
    fn ideal_machine_passes_perfect_tests() {
        let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 1));
        let c = Coupling::new(0, 4);
        let hits = trap.run_xx_test(&four_ms_gates(c), 0, 300, Activity::Testing);
        assert_eq!(hits, 300);
    }

    #[test]
    fn injected_fault_shows_in_xx_test() {
        let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 2));
        let c = Coupling::new(0, 4);
        trap.inject_fault(c, 0.47);
        let hits = trap.run_xx_test(&four_ms_gates(c), 0, 300, Activity::Testing);
        let expect = (std::f64::consts::PI * 0.47).cos().powi(2);
        let p = hits as f64 / 300.0;
        assert!((p - expect).abs() < 0.08, "p {p} vs {expect}");
    }

    #[test]
    fn dense_and_xx_paths_agree_on_amplitude_faults() {
        let mut cfg = TrapConfig::ideal(4, 3);
        cfg.spam = SpamModel::IDEAL;
        let mut trap = VirtualTrap::new(cfg);
        let c = Coupling::new(1, 3);
        trap.inject_fault(c, 0.22);
        // XX path.
        let hits = trap.run_xx_test(&four_ms_gates(c), 0, 4000, Activity::Testing);
        // Dense path.
        let mut circuit = Circuit::new(4);
        for _ in 0..4 {
            circuit.xx(1, 3, FRAC_PI_2);
        }
        let counts = trap.run_circuit(&circuit, 4000, Activity::Testing);
        let dense_p = *counts.get(&0).unwrap_or(&0) as f64 / 4000.0;
        let xx_p = hits as f64 / 4000.0;
        assert!((dense_p - xx_p).abs() < 0.05, "dense {dense_p} vs xx {xx_p}");
    }

    #[test]
    fn recalibration_clears_faults() {
        let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 4));
        let c = Coupling::new(2, 5);
        trap.inject_fault(c, 0.3);
        assert_eq!(trap.true_under_rotation(c), 0.3);
        trap.recalibrate(c);
        assert_eq!(trap.true_under_rotation(c), 0.0);
        assert!(trap.duty().seconds(Activity::Calibration) > 0.0);
    }

    #[test]
    fn randomize_calibration_has_requested_spread() {
        let mut trap = VirtualTrap::new(TrapConfig::ideal(16, 5));
        trap.randomize_calibration(0.10);
        let mean_abs: f64 =
            trap.couplings().iter().map(|&c| trap.true_under_rotation(c).abs()).sum::<f64>()
                / trap.couplings().len() as f64;
        assert!((mean_abs - 0.10).abs() < 0.02, "mean |u| = {mean_abs}");
    }

    #[test]
    fn drift_moves_calibration() {
        use itqc_faults::drift::OrnsteinUhlenbeckDrift;
        let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 6));
        let d = OrnsteinUhlenbeckDrift { tau_minutes: 30.0, sigma: 0.05 };
        trap.advance_time(15.0, &d);
        let moved =
            trap.couplings().iter().filter(|&&c| trap.true_under_rotation(c).abs() > 1e-6).count();
        assert!(moved > 20, "most couplings should have drifted, moved = {moved}");
        assert!(trap.clock_seconds() >= 15.0 * 60.0);
    }

    #[test]
    fn observe_binomial_matches_run_xx_test_on_same_seed() {
        // Same seed, same p → the external-executor sampling path draws
        // the exact shot sequence run_xx_test would have drawn.
        let c = Coupling::new(0, 1);
        let mut a = VirtualTrap::new(TrapConfig::ideal(4, 77));
        a.inject_fault(c, 0.2);
        let via_test = a.run_xx_test(&four_ms_gates(c), 0, 500, Activity::Testing);
        let mut b = VirtualTrap::new(TrapConfig::ideal(4, 77));
        b.inject_fault(c, 0.2);
        let mut xx = itqc_sim::XxCircuit::new(4);
        for _ in 0..4 {
            xx.add_xx(0, 1, FRAC_PI_2 * 0.8);
        }
        let p = xx.fidelity(0);
        assert_eq!(b.observe_binomial(500, p), via_test);
    }

    #[test]
    fn bill_idle_time_records_without_drift() {
        let mut trap = VirtualTrap::new(TrapConfig::ideal(4, 12));
        trap.bill_idle_time(42.0);
        assert_eq!(trap.duty().seconds(Activity::Idle), 42.0);
        assert_eq!(trap.clock_seconds(), 42.0);
        // No drift was applied: calibration stays exactly zero.
        for c in trap.couplings() {
            assert_eq!(trap.true_under_rotation(c), 0.0);
        }
    }

    #[test]
    fn duty_ledger_tracks_activities() {
        let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 7));
        trap.bill_job_time(100.0);
        let c = Coupling::new(0, 1);
        let _ = trap.run_xx_test(&four_ms_gates(c), 0, 300, Activity::Testing);
        trap.bill_adaptation(28);
        assert!(trap.duty().uptime_fraction() > 0.9);
        assert!(trap.duty().seconds(Activity::Testing) > 0.0);
        assert!(trap.duty().seconds(Activity::Adaptation) > 0.0);
    }

    #[test]
    fn snapshot_recovers_injected_faults() {
        let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 8));
        trap.inject_fault(Coupling::new(3, 4), 0.15);
        let snap = trap.snapshot_under_rotations(2000);
        for (c, u_est) in snap {
            let truth = trap.true_under_rotation(c);
            assert!((u_est - truth).abs() < 0.03, "{c}: {u_est} vs {truth}");
        }
    }

    #[test]
    fn spam_attenuates_test_fidelity() {
        let mut cfg = TrapConfig::ideal(8, 9);
        cfg.spam = SpamModel::new(0.01, 0.01);
        let mut trap = VirtualTrap::new(cfg);
        let c = Coupling::new(0, 1);
        let hits = trap.run_xx_test(&four_ms_gates(c), 0, 20_000, Activity::Testing);
        let p = hits as f64 / 20_000.0;
        let expect = 0.99f64.powi(8);
        assert!((p - expect).abs() < 0.01, "p {p} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "not on this machine")]
    fn foreign_coupling_panics() {
        let trap = VirtualTrap::new(TrapConfig::ideal(4, 10));
        let _ = trap.true_under_rotation(Coupling::new(0, 7));
    }
}
