//! Linear Paul-trap ion-chain physics.
//!
//! Computes what the paper's Eq. (1) fidelity model consumes: equilibrium
//! ion positions, normal-mode frequencies and eigenvectors (the
//! "vibrational bus"), Lamb–Dicke couplings `η_{p,i}`, and the residual
//! mode displacements `α_p = ∫ g(t)·e^{iω_p t} dt` left behind by an
//! amplitude-modulated MS pulse.
//!
//! Units: lengths in `ℓ = (e²/(4πε₀ M ω_z²))^{1/3}`, frequencies in units
//! of the axial trap frequency `ω_z`, so the maths is dimensionless and the
//! classic exact results (axial mode eigenvalues 1 and 3, two-ion spacing
//! `2·(1/4)^{1/3}`) hold verbatim.

use itqc_math::eig::sym_eig;
use itqc_math::lstsq::solve_linear;
use itqc_math::Complex64;

/// An ion chain with solved equilibrium positions.
#[derive(Clone, Debug)]
pub struct IonChain {
    positions: Vec<f64>,
}

impl IonChain {
    /// Solves the `n`-ion equilibrium by damped Newton iteration on the
    /// force balance `u_i = Σ_{j<i} (u_i−u_j)^{−2} − Σ_{j>i} (u_j−u_i)^{−2}`,
    /// using homotopy in the ion count (each chain starts from the solved
    /// `n−1`-ion equilibrium plus one appended ion), which keeps Newton in
    /// its convergence basin for arbitrarily long chains.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the iteration fails to converge (does not
    /// happen for physical n ≤ hundreds).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "chain needs at least one ion");
        if n == 1 {
            return IonChain { positions: vec![0.0] };
        }
        let r2 = 0.25f64.powf(1.0 / 3.0);
        let mut u = vec![-r2, r2];
        Self::relax(&mut u);
        for _m in 3..=n {
            // Append one ion past the current edge, recentre, re-solve.
            let gap = u[u.len() - 1] - u[u.len() - 2];
            u.push(u[u.len() - 1] + gap);
            let mean = u.iter().sum::<f64>() / u.len() as f64;
            for x in &mut u {
                *x -= mean;
            }
            Self::relax(&mut u);
        }
        IonChain { positions: u }
    }

    /// Damped Newton to force-balance, in place.
    ///
    /// # Panics
    ///
    /// Panics on non-convergence (not reachable from the homotopy path).
    fn relax(u: &mut Vec<f64>) {
        let n = u.len();
        for _iter in 0..200 {
            // Residual force and Hessian.
            let mut f = vec![0.0; n];
            let mut h = vec![0.0; n * n];
            for i in 0..n {
                let mut fi = u[i];
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let d = u[i] - u[j];
                    fi -= d.signum() / (d * d);
                    let w = 2.0 / d.abs().powi(3);
                    h[i * n + i] += w;
                    h[i * n + j] = -w;
                }
                h[i * n + i] += 1.0;
                f[i] = fi;
            }
            let err = f.iter().map(|x| x * x).sum::<f64>().sqrt();
            // Scale-aware tolerance: the residual floor grows with chain
            // length and extent (double-precision cancellation).
            let tol = 1e-12 * (n as f64).sqrt();
            if err < tol {
                return;
            }
            let mut delta = f.clone();
            let mut hm = h.clone();
            assert!(solve_linear(&mut hm, &mut delta, n), "singular chain Hessian");
            // Damped step: ions must stay ordered AND the residual must
            // not grow (plain Newton diverges from a uniform guess for
            // long chains).
            let residual = |pos: &[f64]| -> f64 {
                let mut acc = 0.0;
                for i in 0..n {
                    let mut fi = pos[i];
                    for j in 0..n {
                        if i != j {
                            let d = pos[i] - pos[j];
                            fi -= d.signum() / (d * d);
                        }
                    }
                    acc += fi * fi;
                }
                acc.sqrt()
            };
            let mut step = 1.0;
            'damp: loop {
                let trial: Vec<f64> = u.iter().zip(&delta).map(|(x, d)| x - step * d).collect();
                let ordered = trial.windows(2).all(|w| w[1] - w[0] > 1e-6);
                if ordered && residual(&trial) < err {
                    *u = trial;
                    break 'damp;
                }
                step *= 0.5;
                if step <= 1e-10 {
                    // Line search exhausted: accept if we are at the
                    // numerical noise floor, otherwise this is a real
                    // divergence.
                    assert!(err < 1e-8, "Newton damping failed at residual {err}");
                    return;
                }
            }
        }
        panic!("chain equilibrium failed to converge");
    }

    /// Number of ions.
    pub fn n_ions(&self) -> usize {
        self.positions.len()
    }

    /// Equilibrium positions in units of `ℓ`, ascending.
    pub fn positions(&self) -> &[f64] {
        &self.positions
    }

    /// Axial normal modes (frequencies in units of `ω_z`).
    pub fn axial_modes(&self) -> ModeSpectrum {
        let n = self.n_ions();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            let mut diag = 1.0;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = 2.0 / (self.positions[i] - self.positions[j]).abs().powi(3);
                diag += w;
                a[i * n + j] = -w;
            }
            a[i * n + i] = diag;
        }
        ModeSpectrum::from_hessian(&a, n)
    }

    /// Transverse normal modes for trap anisotropy
    /// `a = (ω_transverse/ω_z)²`.
    ///
    /// The highest mode is the transverse COM at `ω = √a`; the spectrum
    /// softens toward the zigzag instability as `a` decreases.
    ///
    /// # Panics
    ///
    /// Panics if the chain is transversally unstable at this anisotropy
    /// (a mode frequency would be imaginary).
    pub fn transverse_modes(&self, anisotropy: f64) -> ModeSpectrum {
        let n = self.n_ions();
        let mut b = vec![0.0; n * n];
        for i in 0..n {
            let mut diag = anisotropy;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = 1.0 / (self.positions[i] - self.positions[j]).abs().powi(3);
                diag -= w;
                b[i * n + j] = w;
            }
            b[i * n + i] = diag;
        }
        ModeSpectrum::from_hessian(&b, n)
    }
}

/// A set of normal modes: frequencies (ascending, units of `ω_z`) and
/// orthonormal mode vectors.
#[derive(Clone, Debug)]
pub struct ModeSpectrum {
    frequencies: Vec<f64>,
    vectors: Vec<Vec<f64>>,
}

impl ModeSpectrum {
    fn from_hessian(h: &[f64], n: usize) -> Self {
        let eig = sym_eig(h, n);
        for &l in &eig.values {
            assert!(l > 0.0, "unstable chain: eigenvalue {l} <= 0 (zigzag threshold crossed)");
        }
        ModeSpectrum {
            frequencies: eig.values.iter().map(|l| l.sqrt()).collect(),
            vectors: eig.vectors,
        }
    }

    /// Number of modes (= number of ions).
    pub fn n_modes(&self) -> usize {
        self.frequencies.len()
    }

    /// Mode frequencies in units of `ω_z`, ascending.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Mode vector of mode `p` (orthonormal).
    pub fn vector(&self, p: usize) -> &[f64] {
        &self.vectors[p]
    }

    /// Lamb–Dicke parameters `η_{p,i} = η_ref·b_{p,i}·√(ω_ref/ω_p)`, where
    /// `η_ref` is the single-ion Lamb–Dicke parameter at reference
    /// frequency `ω_ref` (both in the same units as [`Self::frequencies`]).
    ///
    /// Returned as `eta[p][i]`.
    pub fn lamb_dicke(&self, eta_ref: f64, omega_ref: f64) -> Vec<Vec<f64>> {
        self.frequencies
            .iter()
            .zip(&self.vectors)
            .map(|(&w, v)| {
                let scale = eta_ref * (omega_ref / w).sqrt();
                v.iter().map(|b| scale * b).collect()
            })
            .collect()
    }
}

/// One piecewise-constant segment of an amplitude-modulated MS pulse.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PulseSegment {
    /// Drive amplitude during the segment (arbitrary units).
    pub amplitude: f64,
    /// Segment duration (in units of `1/ω_z`).
    pub duration: f64,
}

/// The residual displacement `α_p = ∫₀^τ g(t)·e^{iω_p t} dt` of mode `p`
/// under a piecewise-constant pulse — the quantity whose non-zero value is
/// "the amount of quantum information unintentionally left behind in a
/// memory bus" (paper §III).
pub fn pulse_alpha(segments: &[PulseSegment], omega: f64) -> Complex64 {
    let mut t = 0.0;
    let mut acc = Complex64::ZERO;
    for seg in segments {
        let t1 = t + seg.duration;
        if omega.abs() < 1e-12 {
            acc += Complex64::real(seg.amplitude * seg.duration);
        } else {
            // ∫ A e^{iωt} dt = A·(e^{iωt₁} − e^{iωt₀})/(iω)
            let num = Complex64::cis(omega * t1) - Complex64::cis(omega * t);
            acc += num * seg.amplitude / Complex64::new(0.0, omega);
        }
        t = t1;
    }
    acc
}

/// `|α_p|²` for every mode in a spectrum.
pub fn pulse_alpha_sqr(segments: &[PulseSegment], modes: &ModeSpectrum) -> Vec<f64> {
    modes.frequencies().iter().map(|&w| pulse_alpha(segments, w).norm_sqr()).collect()
}

/// Designs an amplitude-modulated pulse that *exactly decouples* the
/// selected modes: `α_p = 0` for every `p ∈ null_modes` at the end of the
/// pulse. This is the amplitude-modulation flavour of the power-optimal
/// stabilised-gate construction the paper builds on (its refs. \[3\], \[4\]):
/// `α_p` is linear in the segment amplitudes, so nulling `K` complex
/// residuals is `2K` real linear constraints on the `n_segments` unknowns.
///
/// The first segment's amplitude is pinned to 1 (overall power is
/// calibrated separately by the entangling-angle condition) and the rest
/// solve the constraints in the least-squares sense; with
/// `n_segments ≥ 2·K + 1` the solution is exact.
///
/// Returns `None` if the constraint system is singular (e.g. duplicate
/// frequencies in `null_modes`).
///
/// # Panics
///
/// Panics if `n_segments < 2`, `duration <= 0`, or a mode index is out of
/// range.
pub fn design_decoupled_pulse(
    modes: &ModeSpectrum,
    null_modes: &[usize],
    duration: f64,
    n_segments: usize,
) -> Option<Vec<PulseSegment>> {
    assert!(n_segments >= 2, "need at least two segments to shape anything");
    assert!(duration > 0.0, "pulse duration must be positive");
    for &p in null_modes {
        assert!(p < modes.n_modes(), "mode index {p} out of range");
    }
    let seg_t = duration / n_segments as f64;
    // Influence of segment s on mode p: I_{p,s} = ∫_{t_s}^{t_{s+1}} e^{iωt} dt.
    let influence = |p: usize, s: usize| -> Complex64 {
        // ∫ e^{iωt} dt over [t₀, t₀ + seg_t].
        let w = modes.frequencies()[p];
        let t0 = s as f64 * seg_t;
        let t1 = t0 + seg_t;
        if w.abs() < 1e-12 {
            Complex64::real(seg_t)
        } else {
            (Complex64::cis(w * t1) - Complex64::cis(w * t0)) / Complex64::new(0.0, w)
        }
    };
    // Rows: Re/Im of α_p for each nulled mode. Unknowns: amplitudes 1..n.
    // Fixed: A_0 = 1 contributes the right-hand side.
    let rows = 2 * null_modes.len();
    let cols = n_segments - 1;
    let mut design = vec![0.0; rows * cols];
    let mut rhs = vec![0.0; rows];
    for (k, &p) in null_modes.iter().enumerate() {
        let base = influence(p, 0);
        rhs[2 * k] = -base.re;
        rhs[2 * k + 1] = -base.im;
        for s in 1..n_segments {
            let i = influence(p, s);
            design[(2 * k) * cols + (s - 1)] = i.re;
            design[(2 * k + 1) * cols + (s - 1)] = i.im;
        }
    }
    let solution = itqc_math::lstsq::least_squares(&design, &rhs, cols)?;
    let mut segments = Vec::with_capacity(n_segments);
    segments.push(PulseSegment { amplitude: 1.0, duration: seg_t });
    for a in solution {
        segments.push(PulseSegment { amplitude: a, duration: seg_t });
    }
    // Exactness check: if the system was over-constrained the residuals
    // stay finite — report failure rather than a half-decoupled pulse.
    let ok =
        null_modes.iter().all(|&p| pulse_alpha(&segments, modes.frequencies()[p]).norm() < 1e-8);
    ok.then_some(segments)
}

/// Predicts the Eq. (1) MS-gate fidelity for ions `i`, `j` of a chain with
/// the given transverse anisotropy and pulse.
pub fn eq1_fidelity_for_pair(
    chain: &IonChain,
    anisotropy: f64,
    eta_ref: f64,
    segments: &[PulseSegment],
    ion_i: usize,
    ion_j: usize,
) -> f64 {
    let modes = chain.transverse_modes(anisotropy);
    let omega_com = *modes.frequencies().last().expect("chain has at least one mode");
    let eta = modes.lamb_dicke(eta_ref, omega_com);
    let alpha2 = pulse_alpha_sqr(segments, &modes);
    let eta_i: Vec<f64> = eta.iter().map(|row| row[ion_i]).collect();
    let eta_j: Vec<f64> = eta.iter().map(|row| row[ion_j]).collect();
    itqc_faults::estimator::eq1_ms_fidelity(&eta_i, &eta_j, &alpha2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_ion_equilibrium_is_exact() {
        let chain = IonChain::new(2);
        let expect = 0.25f64.powf(1.0 / 3.0);
        assert!((chain.positions()[1] - expect).abs() < 1e-10);
        assert!((chain.positions()[0] + expect).abs() < 1e-10);
    }

    #[test]
    fn three_ion_equilibrium_is_exact() {
        let chain = IonChain::new(3);
        let expect = (5.0f64 / 4.0).powf(1.0 / 3.0);
        assert!(chain.positions()[1].abs() < 1e-10);
        assert!((chain.positions()[2] - expect).abs() < 1e-9);
    }

    #[test]
    fn equilibrium_is_symmetric_and_ordered() {
        let chain = IonChain::new(11);
        let u = chain.positions();
        for w in u.windows(2) {
            assert!(w[1] > w[0]);
        }
        for i in 0..11 {
            assert!((u[i] + u[10 - i]).abs() < 1e-9, "chain must be mirror-symmetric");
        }
    }

    #[test]
    fn axial_com_and_stretch_modes_are_exact() {
        // Classic results: axial eigenvalues are exactly 1 (COM) and 3
        // (stretch) independent of N for the lowest two modes.
        for n in [2usize, 3, 5, 11] {
            let modes = IonChain::new(n).axial_modes();
            let f = modes.frequencies();
            assert!((f[0] - 1.0).abs() < 1e-8, "COM at ω_z (n={n})");
            assert!((f[1] - 3.0f64.sqrt()).abs() < 1e-8, "stretch at √3·ω_z (n={n})");
        }
    }

    #[test]
    fn axial_com_vector_is_uniform() {
        let modes = IonChain::new(5).axial_modes();
        let v = modes.vector(0);
        let expect = 1.0 / 5.0f64.sqrt();
        for &x in v {
            assert!((x.abs() - expect).abs() < 1e-8);
        }
    }

    #[test]
    fn transverse_com_at_anisotropy() {
        let chain = IonChain::new(4);
        let a = 20.0;
        let modes = chain.transverse_modes(a);
        let top = *modes.frequencies().last().unwrap();
        assert!((top - a.sqrt()).abs() < 1e-8, "transverse COM at √a");
        // All transverse modes below COM.
        for &f in &modes.frequencies()[..3] {
            assert!(f < top);
        }
    }

    #[test]
    #[should_panic(expected = "zigzag")]
    fn weak_transverse_confinement_goes_unstable() {
        // Long chain + weak transverse trap → zigzag instability.
        let chain = IonChain::new(10);
        let _ = chain.transverse_modes(1.05);
    }

    #[test]
    fn lamb_dicke_scaling() {
        let chain = IonChain::new(3);
        let modes = chain.axial_modes();
        let eta = modes.lamb_dicke(0.1, 1.0);
        // COM mode: η = 0.1·(1/√3)·√(1/1) per ion.
        let expect = 0.1 / 3.0f64.sqrt();
        for e in &eta[0] {
            assert!((e.abs() - expect).abs() < 1e-9);
        }
        // Higher modes have smaller √(ω_ref/ω_p) factors.
        assert!(eta[1][0].abs() < eta[0][0].abs() + 1e-12);
    }

    #[test]
    fn pulse_alpha_of_zero_frequency_is_area() {
        let segs = [
            PulseSegment { amplitude: 2.0, duration: 1.5 },
            PulseSegment { amplitude: -1.0, duration: 0.5 },
        ];
        let a = pulse_alpha(&segs, 0.0);
        assert!((a.re - 2.5).abs() < 1e-12 && a.im.abs() < 1e-15);
    }

    #[test]
    fn pulse_alpha_matches_numeric_integration() {
        let segs = [
            PulseSegment { amplitude: 1.0, duration: 2.0 },
            PulseSegment { amplitude: -0.5, duration: 1.0 },
        ];
        let omega = 3.7;
        let analytic = pulse_alpha(&segs, omega);
        // Riemann sum.
        let mut num = Complex64::ZERO;
        let dt: f64 = 1e-5;
        let mut t = 0.0;
        for seg in &segs {
            let end = t + seg.duration;
            while t < end {
                num += Complex64::cis(omega * t) * seg.amplitude * dt.min(end - t);
                t += dt;
            }
            t = end;
        }
        assert!(analytic.approx_eq(num, 1e-4), "{analytic} vs {num}");
    }

    #[test]
    fn commensurate_pulse_decouples_single_mode() {
        // A constant pulse of duration 2πk/ω leaves α = 0 for that mode —
        // the textbook decoupling condition.
        let omega = 2.0;
        let tau = 2.0 * std::f64::consts::PI / omega * 3.0;
        let segs = [PulseSegment { amplitude: 1.0, duration: tau }];
        assert!(pulse_alpha(&segs, omega).norm() < 1e-12);
        // …but not for an incommensurate mode.
        assert!(pulse_alpha(&segs, 2.3).norm() > 1e-3);
    }

    #[test]
    fn designed_pulse_nulls_selected_modes() {
        let chain = IonChain::new(11);
        let modes = chain.transverse_modes(25.0);
        // Null the five highest modes (closest to a COM-tuned drive).
        let null: Vec<usize> = (6..11).collect();
        let pulse = design_decoupled_pulse(&modes, &null, 40.0, 12)
            .expect("12 segments suffice for 5 complex constraints");
        for &p in &null {
            let a = pulse_alpha(&pulse, modes.frequencies()[p]);
            assert!(a.norm() < 1e-8, "mode {p} residual {}", a.norm());
        }
        // Non-nulled modes generically keep residuals.
        let leftover: f64 =
            (0..6).map(|p| pulse_alpha(&pulse, modes.frequencies()[p]).norm()).sum();
        assert!(leftover > 1e-6);
    }

    #[test]
    fn designed_pulse_beats_constant_pulse_on_eq1() {
        let chain = IonChain::new(11);
        let a = 25.0;
        let modes = chain.transverse_modes(a);
        let duration = 40.0;
        let constant = [PulseSegment { amplitude: 1.0, duration }];
        // Null every mode that couples strongly to ions 3 and 8.
        let null: Vec<usize> = (5..11).collect();
        let designed = design_decoupled_pulse(&modes, &null, duration, 14).unwrap();
        // Rescale both pulses to equal energy so the comparison is fair.
        let scale = |segs: &[PulseSegment]| -> f64 {
            segs.iter().map(|s| s.amplitude * s.amplitude * s.duration).sum::<f64>()
        };
        let ratio = (scale(&constant) / scale(&designed)).sqrt() * 0.05;
        let designed_scaled: Vec<PulseSegment> = designed
            .iter()
            .map(|s| PulseSegment { amplitude: s.amplitude * ratio, duration: s.duration })
            .collect();
        let constant_scaled = [PulseSegment { amplitude: 0.05, duration }];
        let f_const = eq1_fidelity_for_pair(&chain, a, 0.08, &constant_scaled, 3, 8);
        let f_designed = eq1_fidelity_for_pair(&chain, a, 0.08, &designed_scaled, 3, 8);
        assert!(
            f_designed > f_const,
            "decoupled pulse must improve Eq.(1) fidelity: {f_designed} vs {f_const}"
        );
        assert!(f_designed > 0.999, "nulled modes should leave near-unit fidelity");
    }

    #[test]
    fn design_rejects_overconstrained_systems() {
        let chain = IonChain::new(4);
        let modes = chain.transverse_modes(25.0);
        // 4 modes → 8 real constraints, but only 3 free amplitudes.
        let result = design_decoupled_pulse(&modes, &[0, 1, 2, 3], 10.0, 4);
        assert!(result.is_none());
    }

    #[test]
    fn eq1_fidelity_realistic_setup() {
        // 11-ion chain, strong transverse trap, small Lamb–Dicke, pulse
        // commensurate with the COM mode: high but imperfect fidelity
        // (residuals on the other modes), dropping when the pulse is
        // detuned from commensurability.
        let chain = IonChain::new(11);
        let a = 25.0;
        let modes = chain.transverse_modes(a);
        let omega_com = *modes.frequencies().last().unwrap();
        let tau = 2.0 * std::f64::consts::PI / omega_com * 40.0;
        let good = [PulseSegment { amplitude: 0.05, duration: tau }];
        let bad = [PulseSegment { amplitude: 0.05, duration: tau * 1.013 }];
        let f_good = eq1_fidelity_for_pair(&chain, a, 0.08, &good, 3, 8);
        let f_bad = eq1_fidelity_for_pair(&chain, a, 0.08, &bad, 3, 8);
        assert!(f_good > 0.9, "f_good {f_good}");
        assert!(f_good <= 1.0 + 1e-12);
        assert!(f_bad < f_good, "detuned pulse must be worse: {f_bad} vs {f_good}");
    }
}
