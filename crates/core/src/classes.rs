//! The combinatorial test classes of §V-A.
//!
//! Qubits are labelled `0..2^n` (an `N`-qubit machine is padded to
//! `n = ⌈log₂ N⌉` bits; unused labels simply never occur — Corollary
//! V.12). Two families of classes drive the protocol:
//!
//! * **Subcube classes** `(i, b)` — all labels whose `i`-th bit is `b`.
//!   Every non-complementary pair lies in at least one (Lemma V.1) and at
//!   most `n − 1` (Lemma V.3) of them; the complementary classes `(i,0)`,
//!   `(i,1)` partition pairs (Lemma V.2).
//! * **Equal-bits classes** `[j, =]` — labels whose bits at two chosen
//!   positions agree, optionally restricted by fixed bits. Every
//!   bit-complementary pair lies in exactly one of `[j,=]`, `[j,≠]`
//!   (Lemma V.5) and distinct complementary pairs have distinct `[·,=]`
//!   membership signatures (Theorem V.7).

use crate::syndrome::Syndrome;
use itqc_circuit::Coupling;
use itqc_math::bits;
use std::collections::BTreeSet;
use std::fmt;

/// The label space of a machine: `n_qubits` physical qubits on
/// `⌈log₂ n_qubits⌉` index bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LabelSpace {
    n_qubits: usize,
    n_bits: u32,
}

impl LabelSpace {
    /// Creates the label space for an `n_qubits` machine.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits < 2`.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits >= 2, "need at least two qubits to have a coupling");
        LabelSpace { n_qubits, n_bits: bits::label_bits(n_qubits) }
    }

    /// Number of physical qubits `N`.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of index bits `n = ⌈log₂ N⌉`.
    pub fn n_bits(&self) -> u32 {
        self.n_bits
    }

    /// `true` for labels that exist on the machine.
    pub fn is_physical(&self, label: usize) -> bool {
        label < self.n_qubits
    }

    /// All `C(N,2)` physical couplings, ascending.
    pub fn all_couplings(&self) -> Vec<Coupling> {
        let mut out = Vec::with_capacity(self.n_qubits * (self.n_qubits - 1) / 2);
        for a in 0..self.n_qubits {
            for b in (a + 1)..self.n_qubits {
                out.push(Coupling::new(a, b));
            }
        }
        out
    }
}

/// A first-round subcube class `(i, b)`: labels with bit `i` equal to `b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SubcubeClass {
    /// The tested bit position `i`.
    pub bit: u32,
    /// The tested bit value `b`.
    pub value: bool,
}

impl SubcubeClass {
    /// The flat test index `2·i + b` used to order first-round tests.
    pub fn test_index(&self) -> usize {
        2 * self.bit as usize + usize::from(self.value)
    }

    /// `true` when `label` belongs to the class.
    pub fn contains(&self, label: usize) -> bool {
        bits::bit(label, self.bit) == self.value
    }

    /// `true` when both endpoints of `coupling` belong to the class,
    /// i.e. the coupling appears in this class's test circuit (and a
    /// fault on it degrades this test's score) — the membership relation
    /// behind the ranked decoder's forward model.
    pub fn contains_coupling(&self, coupling: Coupling) -> bool {
        let (a, b) = coupling.endpoints();
        self.contains(a) && self.contains(b)
    }

    /// The physical member labels, ascending.
    pub fn members(&self, space: &LabelSpace) -> Vec<usize> {
        (0..space.n_qubits()).filter(|&q| self.contains(q)).collect()
    }

    /// All couplings internal to the class, minus `excluded` —
    /// the coupling set of one first-round test circuit.
    pub fn couplings(&self, space: &LabelSpace, excluded: &BTreeSet<Coupling>) -> Vec<Coupling> {
        let members = self.members(space);
        let mut out = Vec::new();
        for (k, &a) in members.iter().enumerate() {
            for &b in &members[k + 1..] {
                let c = Coupling::new(a, b);
                if !excluded.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }
}

impl fmt::Display for SubcubeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.bit, u8::from(self.value))
    }
}

/// The `2n` first-round classes in test-index order:
/// `(0,0), (0,1), (1,0), …`.
pub fn first_round_classes(space: &LabelSpace) -> Vec<SubcubeClass> {
    let mut out = Vec::with_capacity(2 * space.n_bits() as usize);
    for bit in 0..space.n_bits() {
        for value in [false, true] {
            out.push(SubcubeClass { bit, value });
        }
    }
    out
}

/// A second-round equal-bits class: labels whose bits at `pos_lo` and
/// `pos_hi` agree *and* whose fixed bits match the first-round syndrome
/// (§V-A's `[i,=]` classes "adapted to the k bits not specified by the
/// syndrome", Theorem V.10).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EqualBitsClass {
    /// Lower of the two compared free positions.
    pub pos_lo: u32,
    /// Higher of the two compared free positions.
    pub pos_hi: u32,
    /// Bits fixed by the observed syndrome.
    pub fixed: Syndrome,
}

impl EqualBitsClass {
    /// `true` when `label` belongs to the class.
    pub fn contains(&self, label: usize) -> bool {
        self.fixed.matches(label) && bits::bit(label, self.pos_lo) == bits::bit(label, self.pos_hi)
    }

    /// The physical member labels, ascending.
    pub fn members(&self, space: &LabelSpace) -> Vec<usize> {
        (0..space.n_qubits()).filter(|&q| self.contains(q)).collect()
    }

    /// All couplings internal to the class, minus `excluded`.
    pub fn couplings(&self, space: &LabelSpace, excluded: &BTreeSet<Coupling>) -> Vec<Coupling> {
        let members = self.members(space);
        let mut out = Vec::new();
        for (k, &a) in members.iter().enumerate() {
            for &b in &members[k + 1..] {
                let c = Coupling::new(a, b);
                if !excluded.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }
}

impl fmt::Display for EqualBitsClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}={}|{}]", self.pos_lo, self.pos_hi, self.fixed)
    }
}

/// The second-round adaptive tests for an observed syndrome: one
/// equal-bits class per *consecutive pair of free positions* — `k − 1`
/// tests for `k` free bits (Theorem V.10).
pub fn second_round_classes(syndrome: &Syndrome, space: &LabelSpace) -> Vec<EqualBitsClass> {
    let free = syndrome.free_positions(space.n_bits());
    free.windows(2)
        .map(|w| EqualBitsClass { pos_lo: w[0], pos_hi: w[1], fixed: syndrome.clone() })
        .collect()
}

/// Decodes the faulty pair from a syndrome plus the second-round pass/fail
/// pattern. `equal_flags[j]` is `true` when the `j`-th second-round test
/// (over free positions `j`, `j+1`) *failed*, i.e. the pair's bits there
/// are equal.
///
/// Returns `None` when the reconstructed pair is unphysical (padding) —
/// which a caller should treat as "no fault found" (footnote 9's zero-
/// fault caveat is handled by a verification test).
pub fn decode_pair(
    syndrome: &Syndrome,
    equal_flags: &[bool],
    space: &LabelSpace,
) -> Option<Coupling> {
    let free = syndrome.free_positions(space.n_bits());
    assert_eq!(
        equal_flags.len() + 1,
        free.len().max(1),
        "need exactly k−1 second-round answers for k free bits"
    );
    if free.is_empty() {
        return None;
    }
    // Anchor the first free bit to 0, then propagate: equal → same bit,
    // unequal → flipped bit.
    let mut a = 0usize;
    for (i, v) in syndrome.iter() {
        if v {
            a |= 1 << i;
        }
    }
    let mut prev = false;
    for (j, &pos) in free.iter().enumerate().skip(1) {
        let equal = equal_flags[j - 1];
        let bit = if equal { prev } else { !prev };
        if bit {
            a |= 1 << pos;
        }
        prev = bit;
    }
    let mut b = a;
    for &pos in &free {
        b ^= 1 << pos;
    }
    if space.is_physical(a) && space.is_physical(b) && a != b {
        Some(Coupling::new(a, b))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space8() -> LabelSpace {
        LabelSpace::new(8)
    }

    #[test]
    fn example_v4_class_members() {
        // Paper Example V.4 (n = 3).
        let s = space8();
        let rows = [
            (0, false, vec![0, 2, 4, 6]),
            (0, true, vec![1, 3, 5, 7]),
            (1, false, vec![0, 1, 4, 5]),
            (1, true, vec![2, 3, 6, 7]),
            (2, false, vec![0, 1, 2, 3]),
            (2, true, vec![4, 5, 6, 7]),
        ];
        for (bit, value, expect) in rows {
            let class = SubcubeClass { bit, value };
            assert_eq!(class.members(&s), expect, "class {class}");
        }
    }

    #[test]
    fn example_v6_equal_bits_members() {
        // Paper Example V.6: [1,=] = {0,3,4,7}; [2,=] = {0,1,6,7}.
        let s = space8();
        let c1 = EqualBitsClass { pos_lo: 0, pos_hi: 1, fixed: Syndrome::empty() };
        assert_eq!(c1.members(&s), vec![0, 3, 4, 7]);
        let c2 = EqualBitsClass { pos_lo: 1, pos_hi: 2, fixed: Syndrome::empty() };
        assert_eq!(c2.members(&s), vec![0, 1, 6, 7]);
    }

    #[test]
    fn footnote7_gray_code_relation() {
        // [i,=] = (GrayCode-related subcube): the equal-bits class over
        // positions (i−1, i) has the same members as the set of labels
        // whose XOR of those bits is 0 — verify against gray-coded masks.
        for i in 1..3u32 {
            let eq = EqualBitsClass { pos_lo: i - 1, pos_hi: i, fixed: Syndrome::empty() };
            for q in 0..8usize {
                let g = itqc_math::gray(q);
                // gray(q) bit i equals q_i ⊕ q_{i+1}; the paper's footnote
                // states [i,=] corresponds to a gray-code subcube. Verify
                // membership is equivalent to the XOR test.
                let xor = itqc_math::bits::bit(q, i - 1) ^ itqc_math::bits::bit(q, i);
                assert_eq!(eq.contains(q), !xor, "q={q} gray={g}");
            }
        }
    }

    #[test]
    fn lemma_v1_every_noncomplementary_pair_covered() {
        let s = space8();
        let classes = first_round_classes(&s);
        for a in 0..8usize {
            for b in (a + 1)..8 {
                let complementary = a ^ b == 7;
                let covering = classes.iter().filter(|cl| cl.contains(a) && cl.contains(b)).count();
                if complementary {
                    assert_eq!(covering, 0, "{{{a},{b}}}");
                } else {
                    assert!(covering >= 1, "{{{a},{b}}} uncovered");
                    // Lemma V.3: at most n−1 classes.
                    assert!(covering <= 2, "{{{a},{b}}} covered {covering} times");
                }
            }
        }
    }

    #[test]
    fn lemma_v2_complementary_classes_partition() {
        for bit in 0..3u32 {
            let c0 = SubcubeClass { bit, value: false };
            let c1 = SubcubeClass { bit, value: true };
            for a in 0..8usize {
                for b in (a + 1)..8 {
                    let in0 = c0.contains(a) && c0.contains(b);
                    let in1 = c1.contains(a) && c1.contains(b);
                    assert!(!(in0 && in1), "pair cannot be in both");
                }
            }
        }
    }

    #[test]
    fn lemma_v5_complementary_pairs_in_equal_or_unequal() {
        // For each complementary pair and each consecutive position pair,
        // both endpoints agree on the (=/≠) relation.
        for a in 0..8usize {
            let b = a ^ 7;
            if a >= b {
                continue;
            }
            for i in 1..3u32 {
                let a_eq = bits::bit(a, i - 1) == bits::bit(a, i);
                let b_eq = bits::bit(b, i - 1) == bits::bit(b, i);
                assert_eq!(a_eq, b_eq, "pair {{{a},{b}}} at i={i}");
            }
        }
    }

    #[test]
    fn theorem_v7_signatures_distinguish_complementary_pairs() {
        // Distinct complementary pairs have distinct (=/≠) signatures.
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..8usize {
            let b = a ^ 7;
            if a >= b {
                continue;
            }
            let sig: Vec<bool> =
                (1..3u32).map(|i| bits::bit(a, i - 1) == bits::bit(a, i)).collect();
            assert!(seen.insert(sig.clone()), "signature {sig:?} repeated");
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn second_round_class_count() {
        // k free bits → k−1 second-round tests.
        let s = space8();
        let syn = Syndrome::from_entries([(1, true)]);
        let classes = second_round_classes(&syn, &s);
        assert_eq!(classes.len(), 1); // free = {0, 2}
        let empty = Syndrome::empty();
        assert_eq!(second_round_classes(&empty, &s).len(), 2);
    }

    #[test]
    fn decode_pair_round_trip_all_pairs() {
        // For every coupling: compute its syndrome, answer the second-round
        // tests truthfully, and check decode returns exactly it.
        let s = space8();
        for a in 0..8usize {
            for b in (a + 1)..8 {
                let truth = Coupling::new(a, b);
                let syn = Syndrome::of_coupling(truth, 3);
                let free = syn.free_positions(3);
                let flags: Vec<bool> =
                    free.windows(2).map(|w| bits::bit(a, w[0]) == bits::bit(a, w[1])).collect();
                let decoded = decode_pair(&syn, &flags, &s);
                assert_eq!(decoded, Some(truth), "pair {{{a},{b}}}");
            }
        }
    }

    #[test]
    fn decode_rejects_padding_labels() {
        // 6 physical qubits on 3 bits: labels 6, 7 are padding. The
        // complementary pair {2, 5} exists, {0, 7} and {1, 6} do not.
        let s = LabelSpace::new(6);
        let syn = Syndrome::empty();
        // flags for pair {0,7}: bits of 0 are all equal → [true, true]
        assert_eq!(decode_pair(&syn, &[true, true], &s), None);
        // flags for pair {1,6}: label 6 = 110 is padding → rejected
        assert_eq!(decode_pair(&syn, &[false, true], &s), None);
        // flags for pair {2,5}: label 2 = 010: bit0≠bit1, bit1≠bit2
        assert_eq!(decode_pair(&syn, &[false, false], &s), Some(Coupling::new(2, 5)));
    }

    #[test]
    fn class_couplings_respect_exclusions() {
        let s = space8();
        let class = SubcubeClass { bit: 0, value: false }; // {0,2,4,6}
        let mut excluded = BTreeSet::new();
        excluded.insert(Coupling::new(0, 2));
        let cs = class.couplings(&s, &excluded);
        assert_eq!(cs.len(), 5); // C(4,2) − 1
        assert!(!cs.contains(&Coupling::new(0, 2)));
    }

    #[test]
    fn label_space_padding() {
        let s = LabelSpace::new(11);
        assert_eq!(s.n_bits(), 4);
        assert!(s.is_physical(10));
        assert!(!s.is_physical(11));
        assert_eq!(s.all_couplings().len(), 55);
    }
}
