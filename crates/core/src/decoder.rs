//! Multi-fault syndrome analysis: the set-cover decoder.
//!
//! With `k` simultaneous same-magnitude faults, the first round observes
//! the *union* of the individual syndromes (a test fails when it contains
//! at least one faulty coupling). This module quantifies the resulting
//! aliasing — "how syndromes start repeating with the increased number of
//! faults" (§VII) — via exact set cover: find the fault sets whose
//! syndrome union equals the observed failing set, restricted to couplings
//! *consistent* with it (a coupling whose syndrome hits any passing test
//! cannot be faulty).
//!
//! Note the first round alone cannot uniquely identify even a single
//! fault in general: Lemma V.9 gives `2^{n−L−1}` pairs per length-`L`
//! syndrome, and bit-complementary pairs are invisible entirely. The
//! paper's Table II therefore corresponds to the full *adaptive* pipeline
//! (see [`crate::multi_fault`]); this decoder serves two other purposes:
//! it measures raw round-1 aliasing, and — as an optional extension
//! beyond the paper (`DESIGN.md`) — it can propose candidate fault sets
//! for point-verification when syndromes conflict.

use crate::classes::LabelSpace;
use crate::syndrome::Syndrome;
use itqc_circuit::Coupling;
use rand::Rng;
use std::collections::BTreeSet;

/// A failing-test set, as `(bit, value)` pairs.
pub type FailingSet = BTreeSet<(u32, bool)>;

/// The failing set a fault set produces (OR semantics, all faults assumed
/// above threshold).
pub fn failing_set_of(faults: &[Coupling], space: &LabelSpace) -> FailingSet {
    let mut out = FailingSet::new();
    for &f in faults {
        for (i, v) in Syndrome::of_coupling(f, space.n_bits()).iter() {
            out.insert((i, v));
        }
    }
    out
}

/// All couplings whose syndrome is a subset of the failing set (i.e. they
/// do not contradict any passing test), excluding `excluded`.
pub fn consistent_couplings(
    failing: &FailingSet,
    space: &LabelSpace,
    excluded: &BTreeSet<Coupling>,
) -> Vec<Coupling> {
    space
        .all_couplings()
        .into_iter()
        .filter(|c| !excluded.contains(c))
        .filter(|&c| {
            Syndrome::of_coupling(c, space.n_bits()).iter().all(|(i, v)| failing.contains(&(i, v)))
        })
        .collect()
}

/// Finds exact covers of `failing` by syndromes of consistent couplings,
/// of minimum cardinality, returning at most `cap` distinct covers
/// (2 suffices to decide uniqueness). Searches sizes `0..=max_size`.
pub fn minimal_covers(
    failing: &FailingSet,
    space: &LabelSpace,
    excluded: &BTreeSet<Coupling>,
    max_size: usize,
    cap: usize,
) -> Vec<Vec<Coupling>> {
    if failing.is_empty() {
        // The empty explanation covers an empty failing set.
        return vec![Vec::new()];
    }
    let candidates = consistent_couplings(failing, space, excluded);
    // Precompute syndromes; drop couplings with empty syndromes — they
    // can never help cover anything.
    let cands: Vec<(Coupling, Vec<(u32, bool)>)> = candidates
        .into_iter()
        .map(|c| {
            let syn: Vec<(u32, bool)> = Syndrome::of_coupling(c, space.n_bits()).iter().collect();
            (c, syn)
        })
        .filter(|(_, syn)| !syn.is_empty())
        .collect();

    let mut found: Vec<Vec<Coupling>> = Vec::new();
    for size in 1..=max_size {
        search_covers(failing, &cands, size, &mut Vec::new(), 0, &mut found, cap);
        if !found.is_empty() {
            break; // minimal size reached
        }
    }
    found
}

fn search_covers(
    uncovered: &FailingSet,
    cands: &[(Coupling, Vec<(u32, bool)>)],
    budget: usize,
    chosen: &mut Vec<Coupling>,
    start: usize,
    found: &mut Vec<Vec<Coupling>>,
    cap: usize,
) {
    if found.len() >= cap {
        return;
    }
    if uncovered.is_empty() {
        found.push(chosen.clone());
        return;
    }
    if budget == 0 {
        return;
    }
    // Choose couplings in index order to enumerate each subset once.
    for idx in start..cands.len() {
        let (c, syn) = &cands[idx];
        // Must make progress on the uncovered set.
        if !syn.iter().any(|e| uncovered.contains(e)) {
            continue;
        }
        let mut next: FailingSet = uncovered.clone();
        for e in syn {
            next.remove(e);
        }
        chosen.push(*c);
        search_covers(&next, cands, budget - 1, chosen, idx + 1, found, cap);
        chosen.pop();
        if found.len() >= cap {
            return;
        }
    }
}

/// Decodes a failing set: returns `Some(fault set)` when there is a
/// *unique* minimum-cardinality explanation, `None` otherwise.
pub fn identify(
    failing: &FailingSet,
    space: &LabelSpace,
    excluded: &BTreeSet<Coupling>,
    max_size: usize,
) -> Option<Vec<Coupling>> {
    let covers = minimal_covers(failing, space, excluded, max_size, 2);
    if covers.len() == 1 {
        Some(covers.into_iter().next().unwrap())
    } else {
        None
    }
}

/// Monte-Carlo estimate of the probability that `k` random simultaneous
/// faults are identified (Table II): plants `k` distinct faulty couplings
/// uniformly, observes the failing set, and scores a success when
/// [`identify`] returns exactly the planted set.
pub fn identification_probability<R: Rng + ?Sized>(
    n_qubits: usize,
    k: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let space = LabelSpace::new(n_qubits);
    let all = space.all_couplings();
    let none = BTreeSet::new();
    let mut successes = 0usize;
    for _ in 0..trials {
        // Sample k distinct couplings.
        let mut chosen: BTreeSet<usize> = BTreeSet::new();
        while chosen.len() < k {
            chosen.insert(rng.gen_range(0..all.len()));
        }
        let faults: Vec<Coupling> = chosen.iter().map(|&i| all[i]).collect();
        let failing = failing_set_of(&faults, &space);
        if let Some(mut decoded) = identify(&failing, &space, &none, k) {
            decoded.sort();
            let mut truth = faults.clone();
            truth.sort();
            if decoded == truth {
                successes += 1;
            }
        }
    }
    successes as f64 / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn space8() -> LabelSpace {
        LabelSpace::new(8)
    }

    #[test]
    fn single_fault_covers_match_lemma_v9() {
        // Round 1 alone: a single fault's minimal explanations are exactly
        // the 2^{n−L−1} pairs sharing its syndrome (Lemma V.9); the truth
        // is always among them, and uniqueness holds exactly when L = n−1.
        let space = space8();
        let none = BTreeSet::new();
        for c in space.all_couplings() {
            let failing = failing_set_of(&[c], &space);
            if failing.is_empty() {
                continue; // complementary pair: invisible to round 1
            }
            let l = failing.len() as u32;
            let covers = minimal_covers(&failing, &space, &none, 1, 100);
            assert_eq!(covers.len(), 1usize << (3 - l - 1), "coupling {c}");
            assert!(covers.iter().any(|cv| cv == &vec![c]), "truth missing for {c}");
            let unique = identify(&failing, &space, &none, 1);
            if l == 2 {
                assert_eq!(unique, Some(vec![c]));
            } else {
                assert_eq!(unique, None, "L={l} cannot be unique");
            }
        }
    }

    #[test]
    fn consistency_filter_respects_passing_tests() {
        let space = space8();
        let none = BTreeSet::new();
        // Fault {0,2}: syndrome (0,0),(2,0). Coupling {1,3} has syndrome
        // (0,1),(2,0) — the (0,1) test passed, so {1,3} is inconsistent.
        let failing = failing_set_of(&[Coupling::new(0, 2)], &space);
        let consistent = consistent_couplings(&failing, &space, &none);
        assert!(consistent.contains(&Coupling::new(0, 2)));
        assert!(!consistent.contains(&Coupling::new(1, 3)));
    }

    #[test]
    fn aliased_two_fault_sets_are_rejected() {
        // Find a two-fault set whose failing set admits another minimal
        // explanation and check identify() returns None.
        // {0,1} syndrome: shares bits 1,2 → (1,0),(2,0). {2,3}: 010/011
        // share bits 1(1),2(0) → (1,1),(2,0). Union: (1,0),(1,1),(2,0).
        // Alternative covers of the same set exist (e.g. {0,3}&{1,2}?):
        // {0,3}=000/011: share bit 2 → (2,0). {1,2}=001/010: share bit
        // 2 → (2,0). Those don't cover (1,0). But {4,5}… — regardless,
        // the decoder must agree with brute-force uniqueness.
        let space = space8();
        let none = BTreeSet::new();
        let faults = vec![Coupling::new(0, 1), Coupling::new(2, 3)];
        let failing = failing_set_of(&faults, &space);
        let covers = minimal_covers(&failing, &space, &none, 2, 10);
        // Brute force all 1- and 2-subsets for reference.
        let all = space.all_couplings();
        let mut brute: Vec<Vec<Coupling>> = Vec::new();
        for (i, &a) in all.iter().enumerate() {
            if failing_set_of(&[a], &space) == failing {
                brute.push(vec![a]);
            }
            for &b in &all[i + 1..] {
                if failing_set_of(&[a, b], &space) == failing {
                    brute.push(vec![a, b]);
                }
            }
        }
        let min_len = brute.iter().map(Vec::len).min().unwrap();
        let brute_min: BTreeSet<Vec<Coupling>> = brute
            .into_iter()
            .filter(|c| c.len() == min_len)
            .map(|mut c| {
                c.sort();
                c
            })
            .collect();
        let got: BTreeSet<Vec<Coupling>> = covers
            .into_iter()
            .map(|mut c| {
                c.sort();
                c
            })
            .collect();
        assert_eq!(got, brute_min, "decoder must enumerate exactly the minimal explanations");
    }

    #[test]
    fn complementary_member_makes_set_unidentifiable() {
        // {3,4} is complementary (empty syndrome): any set containing it
        // can never be the unique minimal explanation.
        let space = space8();
        let none = BTreeSet::new();
        let faults = vec![Coupling::new(3, 4), Coupling::new(0, 2)];
        let failing = failing_set_of(&faults, &space);
        let decoded = identify(&failing, &space, &none, 2);
        assert_ne!(decoded, Some(faults));
    }

    #[test]
    fn exhaustive_two_fault_identification_rate_8q() {
        // Exact identification rate over every 2-subset at 8 qubits.
        // The paper reports 47%; our round-1 uniqueness criterion lands in
        // the same regime (see EXPERIMENTS.md for the comparison).
        let space = space8();
        let none = BTreeSet::new();
        let all = space.all_couplings();
        let mut total = 0usize;
        let mut ok = 0usize;
        for (i, &a) in all.iter().enumerate() {
            for &b in &all[i + 1..] {
                total += 1;
                let truth = {
                    let mut t = vec![a, b];
                    t.sort();
                    t
                };
                let failing = failing_set_of(&truth, &space);
                if let Some(mut d) = identify(&failing, &space, &none, 2) {
                    d.sort();
                    if d == truth {
                        ok += 1;
                    }
                }
            }
        }
        let rate = ok as f64 / total as f64;
        // At n = 3 bits, *no* two-fault set is uniquely recoverable from
        // round 1 alone: every union syndrome admits either a smaller
        // cover or an alternative same-size cover (verified exhaustively
        // here). This is precisely why the paper's pipeline leans on the
        // adaptive second round and magnitude separation — the Table II
        // probabilities come from `multi_fault`, not from this decoder.
        assert_eq!(rate, 0.0, "2-fault round-1-only rate {rate}");
    }

    #[test]
    fn monte_carlo_matches_exhaustive_at_8q() {
        let mut rng = SmallRng::seed_from_u64(77);
        let p = identification_probability(8, 1, 400, &mut rng);
        // Round-1-only identification succeeds exactly for the 12 of 28
        // couplings with maximal syndromes (L = n−1) → 42.9%.
        assert!((p - 12.0 / 28.0).abs() < 0.07, "p = {p}");
    }

    #[test]
    fn identification_decays_with_fault_count() {
        let mut rng = SmallRng::seed_from_u64(78);
        let p1 = identification_probability(8, 1, 200, &mut rng);
        let p2 = identification_probability(8, 2, 200, &mut rng);
        let p3 = identification_probability(8, 3, 150, &mut rng);
        assert!(p1 > p2 && p2 >= p3, "{p1} > {p2} >= {p3} expected");
    }
}
