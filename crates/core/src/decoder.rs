//! Multi-fault syndrome analysis: the set-cover decoder.
//!
//! With `k` simultaneous same-magnitude faults, the first round observes
//! the *union* of the individual syndromes (a test fails when it contains
//! at least one faulty coupling). This module quantifies the resulting
//! aliasing — "how syndromes start repeating with the increased number of
//! faults" (§VII) — via exact set cover: find the fault sets whose
//! syndrome union equals the observed failing set, restricted to couplings
//! *consistent* with it (a coupling whose syndrome hits any passing test
//! cannot be faulty).
//!
//! Note the first round alone cannot uniquely identify even a single
//! fault in general: Lemma V.9 gives `2^{n−L−1}` pairs per length-`L`
//! syndrome, and bit-complementary pairs are invisible entirely. The
//! paper's Table II therefore corresponds to the full *adaptive* pipeline
//! (see [`crate::multi_fault`]); this decoder serves three purposes
//! there:
//!
//! * it measures raw round-1 aliasing ([`minimal_covers`],
//!   [`identification_probability`]);
//! * it powers the **cross-round evidence-fusion decoder**
//!   ([`DecoderPolicy::Ranked`], the reproduction default): candidate
//!   covers up to the fault budget ([`covers_up_to`]) are ranked by a
//!   posterior that scores each cover's *predicted analog scores*
//!   against the observed ones — accumulated across every adaptive
//!   round under a joint fault-magnitude profile ([`CoverPosterior`],
//!   single-round convenience [`rank_covers`]). Pass/fail patterns
//!   alias far earlier than the analog score vectors do, because a test
//!   containing two faults sits measurably below one containing one;
//! * as optional extensions beyond the paper (`DESIGN.md`) it proposes
//!   candidate fault sets for targeted disputed-member interrogation
//!   ([`DecoderPolicy::Interrogate`], [`marginal_accusation`]) or
//!   exhaustive point-verification
//!   ([`DecoderPolicy::SetCoverFallback`]).

use crate::classes::{LabelSpace, SubcubeClass};
use crate::executor::{predicted_class_score, ClassScorePredictor};
use crate::syndrome::Syndrome;
use crate::testplan::ScoreMode;
use itqc_circuit::Coupling;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A failing-test set, as `(bit, value)` pairs.
pub type FailingSet = BTreeSet<(u32, bool)>;

/// How the multi-fault loop disambiguates equal-magnitude syndrome
/// collisions (conflicting round-1 results).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DecoderPolicy {
    /// Fig. 5's greedy threshold peel: retry the single-fault protocol at
    /// thresholds placed in the gaps of the observed round-1 scores and
    /// accept the first magnitude-verified isolate. Collisions the peel
    /// cannot split are abandoned.
    Greedy,
    /// The cross-round evidence-fusion decoder (this workspace's paper
    /// reproduction default): enumerate candidate covers of the failing
    /// set up to the fault budget and rank them by the posterior
    /// accumulated over every adaptive round's class scores
    /// ([`CoverPosterior`] — per-round log-likelihoods sum under a
    /// joint fault-magnitude profile). Ambiguous rounds gather fresh
    /// class batteries at other ladder rungs, each with a re-calibrated
    /// pass/fail cut; accusations are consensus-gated and
    /// magnitude-verified.
    #[default]
    Ranked,
    /// The fused ranked decoder plus **disputed-member interrogation**
    /// (an extension beyond the paper's pipeline): when the fused
    /// posterior still has no consensus after every ladder rung has been
    /// probed, the disputed coupling with the highest posterior-weighted
    /// marginal ([`marginal_accusation`]) is point-tested — a faulty
    /// outcome is a diagnosis, a healthy one eliminates every cover
    /// containing it. Resolves aliasing families the paper's pipeline
    /// reports as failures, at one targeted test per round (compare the
    /// test-everything [`DecoderPolicy::SetCoverFallback`]).
    Interrogate,
    /// The greedy peel plus the set-cover + point-verification fallback
    /// (an extension beyond the paper's pipeline: every coupling
    /// implicated by any minimal cover is point-tested individually).
    SetCoverFallback,
}

impl DecoderPolicy {
    /// All policies, in ablation order (paper-faithful first, then the
    /// extensions).
    pub const ALL: [DecoderPolicy; 4] = [
        DecoderPolicy::Greedy,
        DecoderPolicy::Ranked,
        DecoderPolicy::Interrogate,
        DecoderPolicy::SetCoverFallback,
    ];

    /// `true` for the policies that run the likelihood-ranked
    /// evidence-fusion loop ([`CoverPosterior`]) on collisions.
    pub fn uses_ranked_fusion(self) -> bool {
        matches!(self, DecoderPolicy::Ranked | DecoderPolicy::Interrogate)
    }
}

impl fmt::Display for DecoderPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DecoderPolicy::Greedy => "greedy",
            DecoderPolicy::Ranked => "ranked",
            DecoderPolicy::Interrogate => "interrogate",
            DecoderPolicy::SetCoverFallback => "set-cover",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for DecoderPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "greedy" => Ok(DecoderPolicy::Greedy),
            "ranked" => Ok(DecoderPolicy::Ranked),
            "interrogate" => Ok(DecoderPolicy::Interrogate),
            "set-cover" | "set_cover" | "cover" => Ok(DecoderPolicy::SetCoverFallback),
            other => Err(format!(
                "unknown decoder policy '{other}' (greedy|ranked|interrogate|set-cover)"
            )),
        }
    }
}

/// The failing set a fault set produces (OR semantics, all faults assumed
/// above threshold).
pub fn failing_set_of(faults: &[Coupling], space: &LabelSpace) -> FailingSet {
    let mut out = FailingSet::new();
    for &f in faults {
        for (i, v) in Syndrome::of_coupling(f, space.n_bits()).iter() {
            out.insert((i, v));
        }
    }
    out
}

/// All couplings whose syndrome is a subset of the failing set (i.e. they
/// do not contradict any passing test), excluding `excluded`.
pub fn consistent_couplings(
    failing: &FailingSet,
    space: &LabelSpace,
    excluded: &BTreeSet<Coupling>,
) -> Vec<Coupling> {
    space
        .all_couplings()
        .into_iter()
        .filter(|c| !excluded.contains(c))
        .filter(|&c| {
            Syndrome::of_coupling(c, space.n_bits()).iter().all(|(i, v)| failing.contains(&(i, v)))
        })
        .collect()
}

/// Packs a failing-set element into its bit position: `(bit, value)` →
/// `bit*2 + value`. A `LabelSpace` has `log2(n)` bits, so even a
/// 2³²-qubit machine fits the resulting index in a `u64` — the whole
/// failing set becomes one machine word, and the cover search's
/// clone/remove churn becomes two bitwise ops per candidate.
#[inline]
fn element_bit(bit: u32, value: bool) -> u64 {
    debug_assert!(bit < 32, "failing-set bit index {bit} exceeds the u64 mask width");
    1u64 << (bit * 2 + value as u32)
}

/// The bitmask form of a failing set (order-independent OR of
/// [`element_bit`]s).
fn failing_mask(failing: &FailingSet) -> u64 {
    failing.iter().fold(0u64, |m, &(bit, value)| m | element_bit(bit, value))
}

/// The bitmask form of one coupling's syndrome.
fn syndrome_mask(c: Coupling, n_bits: u32) -> u64 {
    Syndrome::of_coupling(c, n_bits)
        .iter()
        .fold(0u64, |m, (bit, value)| m | element_bit(bit, value))
}

/// Finds exact covers of `failing` by syndromes of consistent couplings,
/// of minimum cardinality, returning at most `cap` distinct covers
/// (2 suffices to decide uniqueness). Searches sizes `0..=max_size`.
pub fn minimal_covers(
    failing: &FailingSet,
    space: &LabelSpace,
    excluded: &BTreeSet<Coupling>,
    max_size: usize,
    cap: usize,
) -> Vec<Vec<Coupling>> {
    if failing.is_empty() {
        // The empty explanation covers an empty failing set.
        return vec![Vec::new()];
    }
    let candidates = consistent_couplings(failing, space, excluded);
    // Precompute syndrome masks; drop couplings with empty syndromes —
    // they can never help cover anything.
    let cands: Vec<(Coupling, u64)> = candidates
        .into_iter()
        .map(|c| (c, syndrome_mask(c, space.n_bits())))
        .filter(|&(_, syn)| syn != 0)
        .collect();

    let mut found: Vec<Vec<Coupling>> = Vec::new();
    for size in 1..=max_size {
        search_covers(failing_mask(failing), &cands, size, &mut Vec::new(), 0, &mut found, cap);
        if !found.is_empty() {
            break; // minimal size reached
        }
    }
    found
}

fn search_covers(
    uncovered: u64,
    cands: &[(Coupling, u64)],
    budget: usize,
    chosen: &mut Vec<Coupling>,
    start: usize,
    found: &mut Vec<Vec<Coupling>>,
    cap: usize,
) {
    if found.len() >= cap {
        return;
    }
    if uncovered == 0 {
        found.push(chosen.clone());
        return;
    }
    if budget == 0 {
        return;
    }
    // Choose couplings in index order to enumerate each subset once.
    for idx in start..cands.len() {
        let (c, syn) = cands[idx];
        // Must make progress on the uncovered set.
        if syn & uncovered == 0 {
            continue;
        }
        chosen.push(c);
        search_covers(uncovered & !syn, cands, budget - 1, chosen, idx + 1, found, cap);
        chosen.pop();
        if found.len() >= cap {
            return;
        }
    }
}

/// Enumerates exact covers of `failing` of **every** size up to
/// `max_size` (not just the minimal cardinality), smallest sizes first,
/// returning at most `cap` covers. This is the candidate pool for the
/// likelihood-ranked decoder: with `k` equal-magnitude faults the true
/// fault set is frequently *non*-minimal (two syndromes can already
/// cover the third's), so ranking must see larger covers too.
///
/// Each enumerated cover is irredundant in index order (every member
/// contributes at least one new failing test at the moment it is
/// chosen); covers whose trailing members are fully shadowed by earlier
/// ones are not proposed — the sequential exclusion loop picks such
/// faults up after the shadowing members are diagnosed and excluded.
pub fn covers_up_to(
    failing: &FailingSet,
    space: &LabelSpace,
    excluded: &BTreeSet<Coupling>,
    max_size: usize,
    cap: usize,
) -> Vec<Vec<Coupling>> {
    if failing.is_empty() {
        return vec![Vec::new()];
    }
    let cands: Vec<(Coupling, u64)> = consistent_couplings(failing, space, excluded)
        .into_iter()
        .map(|c| (c, syndrome_mask(c, space.n_bits())))
        .filter(|&(_, syn)| syn != 0)
        .collect();
    let mut found: Vec<Vec<Coupling>> = Vec::new();
    for size in 1..=max_size {
        if found.len() >= cap {
            break;
        }
        search_covers_sized(
            failing_mask(failing),
            &cands,
            size,
            &mut Vec::new(),
            0,
            &mut found,
            cap,
        );
    }
    found
}

/// Like [`search_covers`], but records only covers of exactly the
/// remaining `budget` (so size-by-size enumeration never duplicates a
/// smaller cover found in an earlier pass).
fn search_covers_sized(
    uncovered: u64,
    cands: &[(Coupling, u64)],
    budget: usize,
    chosen: &mut Vec<Coupling>,
    start: usize,
    found: &mut Vec<Vec<Coupling>>,
    cap: usize,
) {
    if found.len() >= cap {
        return;
    }
    if uncovered == 0 {
        if budget == 0 {
            found.push(chosen.clone());
        }
        return;
    }
    if budget == 0 {
        return;
    }
    for idx in start..cands.len() {
        let (c, syn) = cands[idx];
        if syn & uncovered == 0 {
            continue;
        }
        chosen.push(c);
        search_covers_sized(uncovered & !syn, cands, budget - 1, chosen, idx + 1, found, cap);
        chosen.pop();
        if found.len() >= cap {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Likelihood-ranked cover scoring (the `DecoderPolicy::Ranked` engine).
// ---------------------------------------------------------------------

/// Per-fault log-prior of the cover posterior: every extra member costs
/// `ln(0.135) ≈ −2`, so a larger cover must fit the observed scores
/// decisively better than a smaller one to outrank it (the Bayesian
/// reading of the paper's minimum-cardinality preference).
pub const COVER_LOG_FAULT_PRIOR: f64 = -2.0;

/// Profile grid for the common fault magnitude `|u|`: the posterior of
/// each cover is maximised over this range. Bounded at 0.5 so the
/// point-test response stays on its principal branch for the 2-/4-MS
/// ladders (footnote 8's aliasing concern).
pub const COVER_U_GRID: (f64, f64, usize) = (0.02, 0.50, 33);

/// The observation model behind the ranked decoder's posterior: how a
/// candidate cover predicts the analog round-1 scores, and how much the
/// observed scores may deviate (shot noise + ambient calibration spread
/// + forward-model truncation — see [`crate::threshold::observation_sigma`]).
#[derive(Clone, Copy, Debug)]
pub struct CoverModel {
    /// Gate repetitions of the observed round-1 tests.
    pub reps: usize,
    /// The pass/fail statistic those tests scored.
    pub score: ScoreMode,
    /// Gaussian observation-noise scale for a single test score.
    pub sigma: f64,
    /// Log-prior per cover member (defaults to [`COVER_LOG_FAULT_PRIOR`]).
    pub log_fault_prior: f64,
}

impl CoverModel {
    /// A model for round-1 tests at `reps` repetitions scored by `score`,
    /// with observation noise `sigma`.
    pub fn new(reps: usize, score: ScoreMode, sigma: f64) -> Self {
        CoverModel { reps, score, sigma: sigma.max(1e-6), log_fault_prior: COVER_LOG_FAULT_PRIOR }
    }
}

/// One scored candidate explanation of a conflicted first round.
#[derive(Clone, Debug)]
pub struct RankedCover {
    /// The candidate fault set, sorted.
    pub couplings: Vec<Coupling>,
    /// Profiled log-posterior: max over the magnitude grid of the
    /// Gaussian score log-likelihood, plus the per-fault size prior.
    pub log_posterior: f64,
    /// The magnitude at which the profile peaks.
    pub magnitude: f64,
}

/// Gaussian log-likelihood of the observed round-1 scores under the
/// hypothesis "exactly the couplings of `cover` are faulty, all with
/// under-rotation `u`". Predicted per-class scores come from the
/// product forward model ([`predicted_class_score`]).
pub fn cover_log_likelihood(
    cover: &[Coupling],
    u: f64,
    observed: &[(SubcubeClass, f64)],
    model: &CoverModel,
) -> f64 {
    log_likelihood_of_partition(&partition_by_class(cover, observed), u, model)
}

/// The cover's members per observed class, paired with that class's
/// observed score — the `u`-independent part of the likelihood, hoisted
/// out of the magnitude-grid profiling loop.
fn partition_by_class(
    cover: &[Coupling],
    observed: &[(SubcubeClass, f64)],
) -> Vec<(Vec<Coupling>, f64)> {
    observed
        .iter()
        .map(|&(class, obs)| {
            (cover.iter().copied().filter(|&c| class.contains_coupling(c)).collect(), obs)
        })
        .collect()
}

fn log_likelihood_of_partition(parts: &[(Vec<Coupling>, f64)], u: f64, model: &CoverModel) -> f64 {
    let inv = 0.5 / (model.sigma * model.sigma);
    parts
        .iter()
        .map(|(members, obs)| {
            let d = obs - predicted_class_score(members, u, model.reps, model.score);
            -d * d * inv
        })
        .sum()
}

/// Ranks candidate covers by profiled log-posterior, best first.
/// Ties break on smaller cover, then lexicographic coupling order, so
/// the ranking is deterministic. Single-round convenience wrapper over
/// [`CoverPosterior`].
pub fn rank_covers(
    covers: &[Vec<Coupling>],
    observed: &[(SubcubeClass, f64)],
    model: &CoverModel,
) -> Vec<RankedCover> {
    let mut posterior = CoverPosterior::new();
    posterior.observe(observed.to_vec(), *model);
    posterior.rank(covers)
}

// ---------------------------------------------------------------------
// Cross-round evidence fusion (the §V second-adaptive-round upgrade).
// ---------------------------------------------------------------------

/// One adaptive round's worth of analog evidence: the per-class scores
/// it observed, the observation model they were scored under (gate
/// repetitions, statistic, per-round re-calibrated noise width — see
/// [`crate::threshold::rescale_sigma`]), and optionally the round's
/// re-calibrated pass/fail threshold used to *narrow* the cover set
/// (covers whose prediction lands decisively on the wrong side of the
/// cut for a class are eliminated rather than merely down-weighted).
#[derive(Clone, Debug)]
pub struct EvidenceRound {
    /// The analog score of every class test this round ran.
    pub observed: Vec<(SubcubeClass, f64)>,
    /// The observation model the scores were produced under.
    pub model: CoverModel,
    /// The round's re-calibrated pass/fail cut
    /// ([`crate::threshold::contrast_threshold`]); `None` disables
    /// contradiction pruning for the round.
    pub veto_threshold: Option<f64>,
}

/// The cross-round evidence-fusion posterior over candidate covers.
///
/// PR 3's ranked decoder re-ranked every disambiguation round from the
/// *round-1* scores alone; this ledger instead accumulates each
/// adaptive round's per-class scores and ranks covers by the **fused**
/// posterior: the common fault magnitude is profiled *jointly* — one
/// `u` grid point sums the Gaussian log-likelihood of every observed
/// round before the maximum is taken — so a cover can no longer buy a
/// good round-1 fit with a magnitude that round 2's amplification
/// contradicts. Two fault multiplicities that alias at one repetition
/// count (`cos²(r·u·π/4)^m` surfaces cross) separate once a second
/// rung pins the magnitude, which is precisely the residual Table II
/// gap ROADMAP tracked after PR 3.
#[derive(Clone, Debug, Default)]
pub struct CoverPosterior {
    rounds: Vec<EvidenceRound>,
}

impl CoverPosterior {
    /// An empty ledger (no evidence yet).
    pub fn new() -> Self {
        CoverPosterior { rounds: Vec::new() }
    }

    /// Accumulates one round of per-class scores without a veto cut.
    pub fn observe(&mut self, observed: Vec<(SubcubeClass, f64)>, model: CoverModel) {
        self.observe_round(EvidenceRound { observed, model, veto_threshold: None });
    }

    /// Accumulates one full evidence round.
    pub fn observe_round(&mut self, round: EvidenceRound) {
        self.rounds.push(round);
    }

    /// Number of accumulated evidence rounds.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The fused log-likelihood profile of one cover: at each magnitude
    /// grid point the per-round log-likelihoods *sum* (joint-magnitude
    /// profiling), and the returned pair is the profile maximum and its
    /// grid location.
    fn fused_profile(&self, cover: &[Coupling]) -> (f64, f64) {
        type RoundPredictors = (Vec<(ClassScorePredictor, f64)>, f64);
        let (u_lo, u_hi, steps) = COVER_U_GRID;
        // Hoist the u-independent work — class membership, forward-model
        // branch selection, degree/mask construction — out of the
        // magnitude grid; each grid point pays only the trigonometry.
        // The per-u arithmetic matches `log_likelihood_of_partition`
        // exactly (same values, same summation order).
        let rounds: Vec<RoundPredictors> = self
            .rounds
            .iter()
            .map(|r| {
                let inv = 0.5 / (r.model.sigma * r.model.sigma);
                let preds = partition_by_class(cover, &r.observed)
                    .into_iter()
                    .map(|(members, obs)| {
                        (ClassScorePredictor::new(&members, r.model.reps, r.model.score), obs)
                    })
                    .collect();
                (preds, inv)
            })
            .collect();
        let mut best = f64::NEG_INFINITY;
        let mut best_u = u_lo;
        for s in 0..steps {
            let u = u_lo + (u_hi - u_lo) * s as f64 / (steps - 1) as f64;
            let ll: f64 = rounds
                .iter()
                .map(|(preds, inv)| {
                    preds
                        .iter()
                        .map(|(pred, obs)| {
                            let d = obs - pred.at(u);
                            -d * d * inv
                        })
                        .sum::<f64>()
                })
                .sum();
            if ll > best {
                best = ll;
                best_u = u;
            }
        }
        (best, best_u)
    }

    /// `true` when a round with a veto cut decisively contradicts the
    /// cover at its own fused-MAP magnitude: the cover predicts a class
    /// a full noise width *below* the round's re-calibrated threshold
    /// (a fault it insists on) while the round observed that class a
    /// full noise width *above* it (clean). Such covers are eliminated
    /// from the candidate set — the "narrowing" half of evidence
    /// fusion.
    ///
    /// Only this overreach direction prunes. The converse — a cover
    /// predicting clean where the round observed a failure — is *not* a
    /// contradiction: the gap-threshold walk deliberately ranks partial
    /// covers that explain only the deepest-scoring band of the failing
    /// set (the magnitude-peel reading of Fig. 5), and those
    /// legitimately leave shallower failures unexplained.
    pub fn contradicted(&self, cover: &[Coupling]) -> bool {
        let (_, u_hat) = self.fused_profile(cover);
        self.contradicted_at(cover, u_hat)
    }

    /// [`Self::contradicted`] at a pre-computed fused-MAP magnitude
    /// (so [`Self::rank`] profiles each cover exactly once).
    fn contradicted_at(&self, cover: &[Coupling], u_hat: f64) -> bool {
        self.rounds.iter().any(|round| {
            let Some(t) = round.veto_threshold else {
                return false;
            };
            let margin = round.model.sigma;
            round.observed.iter().any(|&(class, obs)| {
                if obs < t + margin {
                    return false; // class not decisively clean this round
                }
                let members: Vec<Coupling> =
                    cover.iter().copied().filter(|&c| class.contains_coupling(c)).collect();
                !members.is_empty()
                    && predicted_class_score(&members, u_hat, round.model.reps, round.model.score)
                        <= t - margin
            })
        })
    }

    /// Ranks a candidate pool by fused log-posterior, best first, after
    /// eliminating covers contradicted by any veto round. Tie-breaking
    /// matches [`rank_covers`] (smaller cover, then lexicographic), so
    /// with a single vetoless round this *is* `rank_covers`.
    pub fn rank(&self, covers: &[Vec<Coupling>]) -> Vec<RankedCover> {
        let prior =
            self.rounds.first().map(|r| r.model.log_fault_prior).unwrap_or(COVER_LOG_FAULT_PRIOR);
        let has_veto = self.rounds.iter().any(|r| r.veto_threshold.is_some());
        let mut out: Vec<RankedCover> = covers
            .iter()
            .filter_map(|cover| {
                let (best, best_u) = self.fused_profile(cover);
                if has_veto && self.contradicted_at(cover, best_u) {
                    return None;
                }
                let mut couplings = cover.clone();
                couplings.sort();
                Some(RankedCover {
                    couplings,
                    log_posterior: best + prior * cover.len() as f64,
                    magnitude: best_u,
                })
            })
            .collect();
        out.sort_by(|a, b| {
            b.log_posterior
                .partial_cmp(&a.log_posterior)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.couplings.len().cmp(&b.couplings.len()))
                .then(a.couplings.cmp(&b.couplings))
        });
        out
    }

    /// [`consensus_accusation`] over the fused ranking of `covers`.
    pub fn consensus(&self, covers: &[Vec<Coupling>]) -> Option<Coupling> {
        consensus_accusation(&self.rank(covers))
    }
}

/// Posterior margin (in log units) within which two covers count as
/// statistically indistinguishable: covers whose predicted score
/// vectors differ by less than about one observation-noise width tie
/// under this margin, while a single resolved score gap (≈ 0.1 at
/// σ ≈ 0.04) separates decisively.
pub const COVER_TIE_MARGIN: f64 = 1.0;

/// The coupling the ranked posterior *decisively* implicates, if any:
/// the posterior-marginal-best member among those shared by **every**
/// cover within [`COVER_TIE_MARGIN`] of the MAP cover.
///
/// This is the honest reading of aliasing: when the near-optimal covers
/// disagree about a member, the analog scores genuinely cannot tell the
/// explanations apart and the decoder must report ambiguity (`None`)
/// rather than guess — the residual failure probability Table II
/// quantifies. When they *agree* on a member, that coupling is faulty
/// under every surviving explanation and can be accused, verified, and
/// excluded, after which the sequential loop re-diagnoses the rest.
pub fn consensus_accusation(ranked: &[RankedCover]) -> Option<Coupling> {
    consensus_accusation_within(ranked, COVER_TIE_MARGIN)
}

/// [`consensus_accusation`] at an explicit tie margin: wider margins
/// demand agreement across more near-optimal covers, so accusations get
/// rarer but stronger. The multi-fault loop uses a wider margin on
/// internally *inconsistent* (non-conflicting) first rounds, which lack
/// the corroborating bit-conflict a collision record carries.
pub fn consensus_accusation_within(ranked: &[RankedCover], margin: f64) -> Option<Coupling> {
    let top = ranked.first()?.log_posterior;
    let tied: Vec<&RankedCover> =
        ranked.iter().take_while(|rc| top - rc.log_posterior <= margin).collect();
    let mut common: BTreeSet<Coupling> = tied[0].couplings.iter().copied().collect();
    for rc in &tied[1..] {
        common.retain(|c| rc.couplings.contains(c));
    }
    // Posterior-weighted marginal over ALL ranked covers, restricted to
    // the consensus members; ties break on the smallest coupling.
    let mut weight: BTreeMap<Coupling, f64> = BTreeMap::new();
    for rc in ranked {
        let w = (rc.log_posterior - top).exp();
        for &c in &rc.couplings {
            if common.contains(&c) {
                *weight.entry(c).or_insert(0.0) += w;
            }
        }
    }
    weight
        .into_iter()
        .max_by(|(ca, wa), (cb, wb)| {
            wa.partial_cmp(wb).unwrap_or(std::cmp::Ordering::Equal).then(cb.cmp(ca))
        })
        .map(|(c, _)| c)
}

/// The coupling to *interrogate next* when the ranked posterior has no
/// consensus: the posterior-weighted marginal-best member over **all**
/// ranked covers, with no agreement requirement. Unlike
/// [`consensus_accusation`] this is not a diagnosis — it is the
/// highest-information point test available, the evidence-fusion
/// counterpart of Fig. 5's adaptive verification round: a faulty
/// outcome confirms the member under every explanation containing it,
/// a healthy outcome eliminates all of them, and either way the cover
/// set narrows decisively. Ties break on the smallest coupling.
pub fn marginal_accusation(ranked: &[RankedCover]) -> Option<Coupling> {
    let top = ranked.first()?.log_posterior;
    let mut weight: BTreeMap<Coupling, f64> = BTreeMap::new();
    for rc in ranked {
        let w = (rc.log_posterior - top).exp();
        for &c in &rc.couplings {
            *weight.entry(c).or_insert(0.0) += w;
        }
    }
    weight
        .into_iter()
        .max_by(|(ca, wa), (cb, wb)| {
            wa.partial_cmp(wb).unwrap_or(std::cmp::Ordering::Equal).then(cb.cmp(ca))
        })
        .map(|(c, _)| c)
}

/// The *disputed* members of a tie: couplings appearing in at least one
/// but not every cover within `margin` of the MAP cover, ordered by
/// descending posterior-weighted marginal (ties on the smaller
/// coupling). These are exactly the members [`consensus_accusation_within`]
/// cannot rule on — for genuinely tied disjoint perfect-fit covers the
/// tie set shares *no* member and every member is disputed — and
/// therefore the targets of the interrogation extension's point tests:
/// each healthy outcome eliminates every cover containing the member,
/// collapsing the tie family one test at a time.
pub fn disputed_members(ranked: &[RankedCover], margin: f64) -> Vec<Coupling> {
    let Some(first) = ranked.first() else {
        return Vec::new();
    };
    let top = first.log_posterior;
    let tied: Vec<&RankedCover> =
        ranked.iter().take_while(|rc| top - rc.log_posterior <= margin).collect();
    let mut count: BTreeMap<Coupling, usize> = BTreeMap::new();
    for rc in &tied {
        for &c in &rc.couplings {
            *count.entry(c).or_insert(0) += 1;
        }
    }
    let mut weight: BTreeMap<Coupling, f64> = BTreeMap::new();
    for rc in ranked {
        let w = (rc.log_posterior - top).exp();
        for &c in &rc.couplings {
            *weight.entry(c).or_insert(0.0) += w;
        }
    }
    let mut disputed: Vec<Coupling> =
        count.into_iter().filter(|&(_, n)| n < tied.len()).map(|(c, _)| c).collect();
    disputed.sort_by(|a, b| {
        let wa = weight.get(a).copied().unwrap_or(0.0);
        let wb = weight.get(b).copied().unwrap_or(0.0);
        wb.partial_cmp(&wa).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(b))
    });
    disputed
}

/// Decodes a failing set: returns `Some(fault set)` when there is a
/// *unique* minimum-cardinality explanation, `None` otherwise.
pub fn identify(
    failing: &FailingSet,
    space: &LabelSpace,
    excluded: &BTreeSet<Coupling>,
    max_size: usize,
) -> Option<Vec<Coupling>> {
    let covers = minimal_covers(failing, space, excluded, max_size, 2);
    if covers.len() == 1 {
        Some(covers.into_iter().next().unwrap())
    } else {
        None
    }
}

/// Monte-Carlo estimate of the probability that `k` random simultaneous
/// faults are identified (Table II): plants `k` distinct faulty couplings
/// uniformly, observes the failing set, and scores a success when
/// [`identify`] returns exactly the planted set.
pub fn identification_probability<R: Rng + ?Sized>(
    n_qubits: usize,
    k: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let space = LabelSpace::new(n_qubits);
    let all = space.all_couplings();
    let none = BTreeSet::new();
    let mut successes = 0usize;
    for _ in 0..trials {
        // Sample k distinct couplings.
        let mut chosen: BTreeSet<usize> = BTreeSet::new();
        while chosen.len() < k {
            chosen.insert(rng.gen_range(0..all.len()));
        }
        let faults: Vec<Coupling> = chosen.iter().map(|&i| all[i]).collect();
        let failing = failing_set_of(&faults, &space);
        if let Some(mut decoded) = identify(&failing, &space, &none, k) {
            decoded.sort();
            let mut truth = faults.clone();
            truth.sort();
            if decoded == truth {
                successes += 1;
            }
        }
    }
    successes as f64 / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn space8() -> LabelSpace {
        LabelSpace::new(8)
    }

    #[test]
    fn single_fault_covers_match_lemma_v9() {
        // Round 1 alone: a single fault's minimal explanations are exactly
        // the 2^{n−L−1} pairs sharing its syndrome (Lemma V.9); the truth
        // is always among them, and uniqueness holds exactly when L = n−1.
        let space = space8();
        let none = BTreeSet::new();
        for c in space.all_couplings() {
            let failing = failing_set_of(&[c], &space);
            if failing.is_empty() {
                continue; // complementary pair: invisible to round 1
            }
            let l = failing.len() as u32;
            let covers = minimal_covers(&failing, &space, &none, 1, 100);
            assert_eq!(covers.len(), 1usize << (3 - l - 1), "coupling {c}");
            assert!(covers.iter().any(|cv| cv == &vec![c]), "truth missing for {c}");
            let unique = identify(&failing, &space, &none, 1);
            if l == 2 {
                assert_eq!(unique, Some(vec![c]));
            } else {
                assert_eq!(unique, None, "L={l} cannot be unique");
            }
        }
    }

    #[test]
    fn consistency_filter_respects_passing_tests() {
        let space = space8();
        let none = BTreeSet::new();
        // Fault {0,2}: syndrome (0,0),(2,0). Coupling {1,3} has syndrome
        // (0,1),(2,0) — the (0,1) test passed, so {1,3} is inconsistent.
        let failing = failing_set_of(&[Coupling::new(0, 2)], &space);
        let consistent = consistent_couplings(&failing, &space, &none);
        assert!(consistent.contains(&Coupling::new(0, 2)));
        assert!(!consistent.contains(&Coupling::new(1, 3)));
    }

    #[test]
    fn aliased_two_fault_sets_are_rejected() {
        // Find a two-fault set whose failing set admits another minimal
        // explanation and check identify() returns None.
        // {0,1} syndrome: shares bits 1,2 → (1,0),(2,0). {2,3}: 010/011
        // share bits 1(1),2(0) → (1,1),(2,0). Union: (1,0),(1,1),(2,0).
        // Alternative covers of the same set exist (e.g. {0,3}&{1,2}?):
        // {0,3}=000/011: share bit 2 → (2,0). {1,2}=001/010: share bit
        // 2 → (2,0). Those don't cover (1,0). But {4,5}… — regardless,
        // the decoder must agree with brute-force uniqueness.
        let space = space8();
        let none = BTreeSet::new();
        let faults = vec![Coupling::new(0, 1), Coupling::new(2, 3)];
        let failing = failing_set_of(&faults, &space);
        let covers = minimal_covers(&failing, &space, &none, 2, 10);
        // Brute force all 1- and 2-subsets for reference.
        let all = space.all_couplings();
        let mut brute: Vec<Vec<Coupling>> = Vec::new();
        for (i, &a) in all.iter().enumerate() {
            if failing_set_of(&[a], &space) == failing {
                brute.push(vec![a]);
            }
            for &b in &all[i + 1..] {
                if failing_set_of(&[a, b], &space) == failing {
                    brute.push(vec![a, b]);
                }
            }
        }
        let min_len = brute.iter().map(Vec::len).min().unwrap();
        let brute_min: BTreeSet<Vec<Coupling>> = brute
            .into_iter()
            .filter(|c| c.len() == min_len)
            .map(|mut c| {
                c.sort();
                c
            })
            .collect();
        let got: BTreeSet<Vec<Coupling>> = covers
            .into_iter()
            .map(|mut c| {
                c.sort();
                c
            })
            .collect();
        assert_eq!(got, brute_min, "decoder must enumerate exactly the minimal explanations");
    }

    #[test]
    fn complementary_member_makes_set_unidentifiable() {
        // {3,4} is complementary (empty syndrome): any set containing it
        // can never be the unique minimal explanation.
        let space = space8();
        let none = BTreeSet::new();
        let faults = vec![Coupling::new(3, 4), Coupling::new(0, 2)];
        let failing = failing_set_of(&faults, &space);
        let decoded = identify(&failing, &space, &none, 2);
        assert_ne!(decoded, Some(faults));
    }

    #[test]
    fn exhaustive_two_fault_identification_rate_8q() {
        // Exact identification rate over every 2-subset at 8 qubits.
        // The paper reports 47%; our round-1 uniqueness criterion lands in
        // the same regime (see EXPERIMENTS.md for the comparison).
        let space = space8();
        let none = BTreeSet::new();
        let all = space.all_couplings();
        let mut total = 0usize;
        let mut ok = 0usize;
        for (i, &a) in all.iter().enumerate() {
            for &b in &all[i + 1..] {
                total += 1;
                let truth = {
                    let mut t = vec![a, b];
                    t.sort();
                    t
                };
                let failing = failing_set_of(&truth, &space);
                if let Some(mut d) = identify(&failing, &space, &none, 2) {
                    d.sort();
                    if d == truth {
                        ok += 1;
                    }
                }
            }
        }
        let rate = ok as f64 / total as f64;
        // At n = 3 bits, *no* two-fault set is uniquely recoverable from
        // round 1 alone: every union syndrome admits either a smaller
        // cover or an alternative same-size cover (verified exhaustively
        // here). This is precisely why the paper's pipeline leans on the
        // adaptive second round and magnitude separation — the Table II
        // probabilities come from `multi_fault`, not from this decoder.
        assert_eq!(rate, 0.0, "2-fault round-1-only rate {rate}");
    }

    #[test]
    fn monte_carlo_matches_exhaustive_at_8q() {
        let mut rng = SmallRng::seed_from_u64(77);
        let p = identification_probability(8, 1, 400, &mut rng);
        // Round-1-only identification succeeds exactly for the 12 of 28
        // couplings with maximal syndromes (L = n−1) → 42.9%.
        assert!((p - 12.0 / 28.0).abs() < 0.07, "p = {p}");
    }

    #[test]
    fn identification_decays_with_fault_count() {
        let mut rng = SmallRng::seed_from_u64(78);
        let p1 = identification_probability(8, 1, 200, &mut rng);
        let p2 = identification_probability(8, 2, 200, &mut rng);
        let p3 = identification_probability(8, 3, 150, &mut rng);
        assert!(p1 > p2 && p2 >= p3, "{p1} > {p2} >= {p3} expected");
    }

    // -----------------------------------------------------------------
    // Cover-scoring math (the `DecoderPolicy::Ranked` posterior).
    // -----------------------------------------------------------------

    use crate::classes::first_round_classes;
    use crate::executor::ExactExecutor;
    use crate::testplan::TestSpec;

    /// Exact (noiseless, shot-free) first-round scores of a machine with
    /// the given planted faults — the observation vector the ranked
    /// decoder consumes.
    fn noiseless_observed(
        faults: &[(Coupling, f64)],
        n: usize,
        reps: usize,
    ) -> Vec<(SubcubeClass, f64)> {
        let space = LabelSpace::new(n);
        let exec = ExactExecutor::new(n).with_faults(faults.iter().copied());
        let none = BTreeSet::new();
        first_round_classes(&space)
            .into_iter()
            .map(|class| {
                let couplings = class.couplings(&space, &none);
                let spec = TestSpec::for_couplings("obs", &couplings, reps);
                (class, exec.exact_fidelity(&spec))
            })
            .collect()
    }

    fn ranked_for(faults: &[Coupling], u: f64, n: usize, reps: usize) -> Vec<RankedCover> {
        let planted: Vec<(Coupling, f64)> = faults.iter().map(|&c| (c, u)).collect();
        let observed = noiseless_observed(&planted, n, reps);
        let failing: FailingSet = observed
            .iter()
            .filter(|&&(_, s)| s < 0.5)
            .map(|&(class, _)| (class.bit, class.value))
            .collect();
        let space = LabelSpace::new(n);
        let none = BTreeSet::new();
        let covers = covers_up_to(&failing, &space, &none, faults.len() + 2, 96);
        let model = CoverModel::new(reps, ScoreMode::ExactTarget, 0.04);
        rank_covers(&covers, &observed, &model)
    }

    #[test]
    fn covers_up_to_includes_non_minimal_explanations() {
        // Three faults whose union syndrome also admits 2-covers: the
        // ranked candidate pool must contain the size-3 truth, which
        // `minimal_covers` (by construction) never proposes.
        let space = space8();
        let none = BTreeSet::new();
        let truth = vec![Coupling::new(0, 2), Coupling::new(1, 3), Coupling::new(4, 6)];
        let failing = failing_set_of(&truth, &space);
        let minimal = minimal_covers(&failing, &space, &none, 3, 96);
        let min_size = minimal[0].len();
        let all = covers_up_to(&failing, &space, &none, 3, 96);
        assert!(all.iter().any(|c| c.len() == min_size), "minimal covers present");
        let mut sorted_truth = truth.clone();
        sorted_truth.sort();
        assert!(
            all.iter().any(|c| {
                let mut s = c.clone();
                s.sort();
                s == sorted_truth
            }),
            "the size-3 truth must be in the candidate pool"
        );
        // Every enumerated cover is an exact cover of the failing set.
        for c in &all {
            assert_eq!(failing_set_of(c, &space), failing, "{c:?}");
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn aliased_two_fault_set_ranks_planted_first() {
        // {0,1} and {2,3} produce the aliased union (1,0),(1,1),(2,0)
        // (the fixture of `aliased_two_fault_sets_are_rejected`, which
        // pass/fail cover counting alone cannot decide). The analog
        // scores resolve it: the planted set must rank first, at its
        // planted magnitude.
        let truth = vec![Coupling::new(0, 1), Coupling::new(2, 3)];
        let ranked = ranked_for(&truth, 0.30, 8, 4);
        assert!(ranked.len() > 1, "fixture must actually alias");
        assert_eq!(ranked[0].couplings, truth);
        assert!((ranked[0].magnitude - 0.30).abs() < 0.02, "fitted u {}", ranked[0].magnitude);
    }

    #[test]
    fn aliased_three_fault_set_ranks_planted_first() {
        // A conflicted 3-fault union — (0,0)/(0,1) and (2,0)/(2,1) all
        // fail — with multiple candidate covers.
        let truth = vec![Coupling::new(0, 2), Coupling::new(1, 3), Coupling::new(4, 6)];
        let ranked = ranked_for(&truth, 0.30, 8, 4);
        assert!(ranked.len() > 1, "fixture must actually alias");
        assert_eq!(ranked[0].couplings, truth);
    }

    #[test]
    fn consensus_respects_genuine_ambiguity() {
        // A decisive fixture accuses a planted member; and whatever the
        // consensus returns must be planted (never a healthy coupling).
        let truth = vec![Coupling::new(0, 1), Coupling::new(2, 3)];
        let ranked = ranked_for(&truth, 0.30, 8, 4);
        let accused = consensus_accusation(&ranked).expect("fixture is decisive");
        assert!(truth.contains(&accused));
    }

    #[test]
    fn tied_fixtures_never_yield_an_accusation_outside_the_tied_families() {
        // Generator-driven sweep over the adversarial tied-cover pool
        // (`itqc_faults::adversarial::tied_cover_scenarios`): plant one
        // member each of two conflicting same-syndrome families, at
        // exactly equal magnitudes and at a seeded near-tied
        // perturbation. Within a family the members are interchangeable
        // in every first-round observation, so the decoder cannot be
        // asked to find the truth — but every statistic it exposes
        // (consensus, posterior-weighted marginal, disputed-member
        // ordering) must stay inside the planted-or-syndrome-tied set.
        // Honest abstention is allowed; naming an unrelated healthy
        // coupling is the one unforgivable failure. On the exact tie,
        // consensus specifically must abstain: the conflicting families
        // share no common member across the tied covers.
        use itqc_faults::adversarial::tied_cover_scenarios;
        let mut rng = SmallRng::seed_from_u64(0x71ED);
        for n in [8usize, 16] {
            let space = LabelSpace::new(n);
            let none = BTreeSet::new();
            let model = CoverModel::new(4, ScoreMode::ExactTarget, 0.04);
            let mut scenarios = tied_cover_scenarios(n);
            if n == 16 {
                // The 16-qubit pool holds 64 cross pairs; sweep a seeded
                // sample to keep the tier-1 budget.
                while scenarios.len() > 8 {
                    let drop = rng.gen_range(0..scenarios.len());
                    scenarios.remove(drop);
                }
            }
            for scenario in scenarios {
                let allowed: BTreeSet<Coupling> = scenario
                    .faults
                    .iter()
                    .chain(scenario.tied_alternatives.iter().flatten())
                    .copied()
                    .collect();
                let near_tied = 0.30 + rng.gen_range(0.02..0.06);
                for second_u in [0.30, near_tied] {
                    let planted = vec![(scenario.faults[0], 0.30), (scenario.faults[1], second_u)];
                    let observed = noiseless_observed(&planted, n, 4);
                    let failing: FailingSet = observed
                        .iter()
                        .filter(|&&(_, s)| s < 0.5)
                        .map(|&(class, _)| (class.bit, class.value))
                        .collect();
                    let covers = covers_up_to(&failing, &space, &none, 4, 96);
                    let ranked = rank_covers(&covers, &observed, &model);
                    assert!(!ranked.is_empty(), "n={n} {:?}: no covers", scenario.faults);
                    if second_u == 0.30 {
                        assert_eq!(
                            consensus_accusation(&ranked),
                            None,
                            "n={n} {:?}: exact ties admit no consensus",
                            scenario.faults
                        );
                    } else if let Some(c) = consensus_accusation(&ranked) {
                        assert!(allowed.contains(&c), "n={n} consensus fabricated {c}");
                    }
                    if let Some(c) = marginal_accusation(&ranked) {
                        assert!(allowed.contains(&c), "n={n} marginal fabricated {c}");
                    }
                    for c in disputed_members(&ranked, COVER_TIE_MARGIN) {
                        assert!(allowed.contains(&c), "n={n} disputed list fabricated {c}");
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Cross-round evidence fusion (the `CoverPosterior` ledger).
    // -----------------------------------------------------------------

    #[test]
    fn single_round_posterior_is_exactly_rank_covers() {
        // The fused posterior with one vetoless round must reproduce
        // `rank_covers` bit-for-bit — PR 3's ranking is the fusion base
        // case, not a separate code path.
        let truth = vec![Coupling::new(0, 1), Coupling::new(2, 3)];
        let planted: Vec<(Coupling, f64)> = truth.iter().map(|&c| (c, 0.30)).collect();
        let observed = noiseless_observed(&planted, 8, 4);
        let space = space8();
        let none = BTreeSet::new();
        let failing = failing_set_of(&truth, &space);
        let covers = covers_up_to(&failing, &space, &none, 4, 96);
        let model = CoverModel::new(4, ScoreMode::ExactTarget, 0.04);
        let direct = rank_covers(&covers, &observed, &model);
        let mut posterior = CoverPosterior::new();
        posterior.observe(observed, model);
        let fused = posterior.rank(&covers);
        assert_eq!(direct.len(), fused.len());
        for (a, b) in direct.iter().zip(&fused) {
            assert_eq!(a.couplings, b.couplings);
            assert_eq!(a.log_posterior.to_bits(), b.log_posterior.to_bits());
            assert_eq!(a.magnitude.to_bits(), b.magnitude.to_bits());
        }
    }

    #[test]
    fn fusing_a_round_never_worsens_the_true_covers_rank() {
        // Seeded property sweep: plant 2-3 equal-magnitude faults,
        // observe the noiseless class battery at 4-MS, then fuse the
        // 2-MS battery. The truth predicts both rounds exactly, so
        // accumulating evidence can only hold or improve its position;
        // wrong covers can only lose ground under the joint-magnitude
        // profile.
        let mut rng = SmallRng::seed_from_u64(20260729);
        let space = space8();
        let none = BTreeSet::new();
        let all = space.all_couplings();
        let mut checked = 0usize;
        let mut improved = 0usize;
        for trial in 0..60 {
            let k = 2 + rng.gen_range(0..2usize);
            let mut chosen: BTreeSet<usize> = BTreeSet::new();
            while chosen.len() < k {
                chosen.insert(rng.gen_range(0..all.len()));
            }
            let truth: Vec<Coupling> = chosen.iter().map(|&i| all[i]).collect();
            let u = 0.22 + 0.16 * rng.gen::<f64>();
            let planted: Vec<(Coupling, f64)> = truth.iter().map(|&c| (c, u)).collect();
            let observed4 = noiseless_observed(&planted, 8, 4);
            let failing: FailingSet = observed4
                .iter()
                .filter(|&&(_, s)| s < 0.5)
                .map(|&(class, _)| (class.bit, class.value))
                .collect();
            if failing.is_empty() {
                continue; // all-complementary plant: nothing to rank
            }
            let covers = covers_up_to(&failing, &space, &none, k + 1, 256);
            if !covers.iter().any(|c| {
                let mut s = c.clone();
                s.sort();
                s == truth
            }) {
                continue; // truth shadowed out of the candidate pool
            }
            let rank_of = |ranked: &[RankedCover]| {
                ranked.iter().position(|rc| rc.couplings == truth).expect("truth must be ranked")
            };
            let mut posterior = CoverPosterior::new();
            posterior.observe(observed4.clone(), CoverModel::new(4, ScoreMode::ExactTarget, 0.04));
            let before = rank_of(&posterior.rank(&covers));
            posterior.observe(
                noiseless_observed(&planted, 8, 2),
                CoverModel::new(2, ScoreMode::ExactTarget, 0.04),
            );
            let after = rank_of(&posterior.rank(&covers));
            assert!(
                after <= before,
                "trial {trial}: fusing 2-MS evidence demoted the truth {before} -> {after}"
            );
            checked += 1;
            if after < before {
                improved += 1;
            }
        }
        assert!(checked >= 25, "sweep must exercise enough fixtures: {checked}");
        assert!(improved > 0, "fusion must strictly improve at least one fixture");
    }

    #[test]
    fn veto_round_eliminates_overreaching_covers_only() {
        // A veto round prunes covers that insist on a fault in a class
        // the round observed decisively clean, and never prunes the
        // truth (whose predictions match every round).
        let truth = vec![Coupling::new(0, 1), Coupling::new(2, 3)];
        let planted: Vec<(Coupling, f64)> = truth.iter().map(|&c| (c, 0.30)).collect();
        let space = space8();
        let none = BTreeSet::new();
        let failing = failing_set_of(&truth, &space);
        let covers = covers_up_to(&failing, &space, &none, 4, 96);
        let mut posterior = CoverPosterior::new();
        posterior.observe(
            noiseless_observed(&planted, 8, 4),
            CoverModel::new(4, ScoreMode::ExactTarget, 0.04),
        );
        let baseline = posterior.rank(&covers).len();
        posterior.observe_round(EvidenceRound {
            observed: noiseless_observed(&planted, 8, 2),
            model: CoverModel::new(2, ScoreMode::ExactTarget, 0.04),
            veto_threshold: Some(crate::threshold::contrast_threshold(0.30, 2)),
        });
        let pruned = posterior.rank(&covers);
        assert!(pruned.len() <= baseline);
        assert!(
            pruned.iter().any(|rc| rc.couplings == truth),
            "the truth must survive every veto round"
        );
        for rc in &pruned {
            assert!(!posterior.contradicted(&rc.couplings));
        }
    }

    #[test]
    fn marginal_accusation_targets_a_planted_member() {
        // On the aliased fixture the marginal interrogation must pick a
        // member of some surviving cover — and with the truth ranked
        // first, a planted coupling.
        let truth = vec![Coupling::new(0, 1), Coupling::new(2, 3)];
        let ranked = ranked_for(&truth, 0.30, 8, 4);
        let accused = marginal_accusation(&ranked).expect("non-empty ranking");
        assert!(truth.contains(&accused), "marginal accusation {accused} must be planted");
        assert!(marginal_accusation(&[]).is_none());
    }

    #[test]
    fn cover_score_peaks_at_planted_magnitude() {
        // Property-style seeded sweep: for disjoint planted faults the
        // truth's log-likelihood, profiled over the magnitude grid, must
        // peak at the planted magnitude and fall off monotonically on
        // both sides (the forward model is exact and monotone here).
        let mut rng = SmallRng::seed_from_u64(2022);
        let space = space8();
        let all = space.all_couplings();
        let model = CoverModel::new(4, ScoreMode::ExactTarget, 0.04);
        let (u_lo, u_hi, steps) = COVER_U_GRID;
        let step = (u_hi - u_lo) / (steps - 1) as f64;
        for trial in 0..25 {
            // Two faults on disjoint qubits, random magnitude.
            let (a, b) = loop {
                let a = all[rng.gen_range(0..all.len())];
                let b = all[rng.gen_range(0..all.len())];
                let (a0, a1) = a.endpoints();
                let (b0, b1) = b.endpoints();
                if a0 != b0 && a0 != b1 && a1 != b0 && a1 != b1 {
                    break (a, b);
                }
            };
            let u_true = 0.12 + 0.30 * rng.gen::<f64>();
            let truth = vec![a, b];
            let observed = noiseless_observed(&[(a, u_true), (b, u_true)], 8, 4);
            let lls: Vec<f64> = (0..steps)
                .map(|s| {
                    let u = u_lo + step * s as f64;
                    cover_log_likelihood(&truth, u, &observed, &model)
                })
                .collect();
            let peak = lls
                .iter()
                .enumerate()
                .max_by(|(_, x), (_, y)| x.partial_cmp(y).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            let u_peak = u_lo + step * peak as f64;
            assert!((u_peak - u_true).abs() <= step, "trial {trial}: peak {u_peak} vs {u_true}");
            for i in 1..=peak {
                assert!(lls[i] >= lls[i - 1] - 1e-9, "trial {trial}: rise violated at {i}");
            }
            for i in (peak + 1)..lls.len() {
                assert!(lls[i] <= lls[i - 1] + 1e-9, "trial {trial}: fall violated at {i}");
            }
        }
    }

    #[test]
    fn ranking_margins_are_monotone_in_magnitude() {
        // Monotonicity in fault magnitude at the ranking level, swept
        // over the threshold-tripping band (a 4-MS class test first
        // fails the 0.5 threshold at u ≈ 0.25). Three properties fall
        // out of the forward model and all are asserted:
        //
        // (i) the planted cover ranks first everywhere and its fitted
        //     magnitude tracks the planted one monotonically;
        // (ii) supersets of the truth's aliasing family predict the
        //      *identical* analog score vector, so their posterior gap
        //      is pinned at exactly the per-member size prior at every
        //      magnitude — the prior, not the likelihood, is what keeps
        //      them ranked below the truth;
        // (iii) the margin over the best same-size wrong cover is
        //       decisive everywhere but shrinks monotonically as the
        //       magnitude approaches the 0.5 saturation point, where
        //       all class scores compress (footnote 8): bigger faults
        //       are *harder*, not easier, to tell apart near
        //       saturation.
        let truth = vec![Coupling::new(0, 1), Coupling::new(2, 3)];
        let mut last_mag = f64::NEG_INFINITY;
        let mut last_margin = f64::INFINITY;
        for &u in &[0.27, 0.30, 0.33, 0.36] {
            let ranked = ranked_for(&truth, u, 8, 4);
            assert_eq!(ranked[0].couplings, truth, "u={u}");
            assert!((ranked[0].magnitude - u).abs() < 0.02, "fitted u {}", ranked[0].magnitude);
            assert!(ranked[0].magnitude > last_mag, "fitted magnitude must track planted (u={u})");
            last_mag = ranked[0].magnitude;

            let superset = ranked
                .iter()
                .filter(|rc| rc.couplings.len() > truth.len())
                .max_by(|a, b| a.log_posterior.partial_cmp(&b.log_posterior).unwrap())
                .expect("an analog-exact superset alias exists");
            let prior_gap = ranked[0].log_posterior - superset.log_posterior;
            assert!(
                (prior_gap + COVER_LOG_FAULT_PRIOR).abs() < 1e-9,
                "superset gap must be exactly the size prior: {prior_gap} (u={u})"
            );

            let wrong = ranked
                .iter()
                .filter(|rc| rc.couplings.len() == truth.len() && rc.couplings != truth)
                .max_by(|a, b| a.log_posterior.partial_cmp(&b.log_posterior).unwrap())
                .expect("a same-size aliased wrong cover exists");
            let margin = ranked[0].log_posterior - wrong.log_posterior;
            assert!(margin > 2.0 * COVER_TIE_MARGIN, "must be decisive at u={u}: margin {margin}");
            assert!(
                margin < last_margin,
                "margin must shrink toward saturation: {margin} !< {last_margin} (u={u})"
            );
            last_margin = margin;
        }
    }
}
