//! Syndromes: which first-round tests a faulty coupling trips (§V-B).
//!
//! A coupling `{a, b}` is included in first-round test `(i, v)` exactly
//! when bit `i` of *both* endpoints is `v`. Its syndrome is therefore the
//! set `{(i, a_i) : a_i = b_i}` — one entry per shared bit position
//! (Corollary V.8: at most `n − 1` entries, no repeated positions).

use itqc_circuit::Coupling;
use itqc_math::bits;
use std::collections::BTreeMap;
use std::fmt;

/// A syndrome: failing first-round tests, keyed by bit position.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Syndrome {
    entries: BTreeMap<u32, bool>,
}

impl Syndrome {
    /// The empty syndrome (a bit-complementary pair, or no fault at all).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The syndrome a single faulty coupling produces on an `n_bits`-bit
    /// label space.
    pub fn of_coupling(coupling: Coupling, n_bits: u32) -> Self {
        let (a, b) = coupling.endpoints();
        let mut entries = BTreeMap::new();
        for i in bits::shared_bit_positions(a, b, n_bits) {
            entries.insert(i, bits::bit(a, i));
        }
        Syndrome { entries }
    }

    /// Builds a syndrome from explicit `(bit, value)` entries.
    ///
    /// # Panics
    ///
    /// Panics if a bit position repeats (a single-fault syndrome never
    /// repeats positions — Lemma V.2).
    pub fn from_entries<I: IntoIterator<Item = (u32, bool)>>(iter: I) -> Self {
        let mut entries = BTreeMap::new();
        for (i, v) in iter {
            assert!(
                entries.insert(i, v).is_none(),
                "bit position {i} repeated: not a single-fault syndrome"
            );
        }
        Syndrome { entries }
    }

    /// Adds one failing test `(bit, value)`. Returns `false` (and leaves
    /// the syndrome unchanged) if the position is already present with the
    /// *other* value — the signature of multiple faults.
    pub fn insert(&mut self, bit: u32, value: bool) -> bool {
        match self.entries.get(&bit) {
            Some(&v) if v != value => false,
            _ => {
                self.entries.insert(bit, value);
                true
            }
        }
    }

    /// Number of entries (the paper's syndrome length `L`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no test failed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(bit, value)` entries in ascending bit order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, bool)> + '_ {
        self.entries.iter().map(|(&i, &v)| (i, v))
    }

    /// The value fixed at `bit`, if any.
    pub fn value_at(&self, bit: u32) -> Option<bool> {
        self.entries.get(&bit).copied()
    }

    /// Bit positions *not* fixed by the syndrome, ascending.
    pub fn free_positions(&self, n_bits: u32) -> Vec<u32> {
        (0..n_bits).filter(|i| !self.entries.contains_key(i)).collect()
    }

    /// `true` if `label` has every fixed bit at its syndrome value.
    pub fn matches(&self, label: usize) -> bool {
        self.entries.iter().all(|(&i, &v)| bits::bit(label, i) == v)
    }

    /// `true` when this syndrome is a subset of `other` (every entry of
    /// `self` appears in `other`) — the consistency relation used by the
    /// multi-fault decoder.
    pub fn is_subset_of(&self, other: &Syndrome) -> bool {
        self.entries.iter().all(|(&i, &v)| other.value_at(i) == Some(v))
    }

    /// All candidate faulty couplings consistent with this syndrome on an
    /// `n_qubits` machine (labels `>= n_qubits` are padding and excluded).
    ///
    /// Lemma V.9: without padding there are exactly `2^{n−L−1}` candidates.
    pub fn candidates(&self, n_bits: u32, n_qubits: usize) -> Vec<Coupling> {
        let free = self.free_positions(n_bits);
        let k = free.len();
        if k == 0 {
            // All n bits fixed: impossible for a pair of *distinct* labels.
            return Vec::new();
        }
        let mut fixed_base = 0usize;
        for (i, v) in self.iter() {
            if v {
                fixed_base |= 1 << i;
            }
        }
        let mut out = Vec::new();
        // Enumerate assignments of the free bits for one endpoint; the
        // partner complements every free bit. Fixing free bit `free[0]` of
        // `a` to 0 dedupes {a,b} vs {b,a}.
        for assign in 0..(1usize << (k - 1)) {
            let mut a = fixed_base;
            for (j, &pos) in free.iter().enumerate().skip(1) {
                if (assign >> (j - 1)) & 1 == 1 {
                    a |= 1 << pos;
                }
            }
            let mut b = a;
            for &pos in &free {
                b ^= 1 << pos;
            }
            if a < n_qubits && b < n_qubits {
                out.push(Coupling::new(a, b));
            }
        }
        out
    }
}

impl fmt::Display for Syndrome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(empty syndrome)");
        }
        let parts: Vec<String> =
            self.iter().map(|(i, v)| format!("({i},{})", u8::from(v))).collect();
        write!(f, "{}", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_v4_syndromes() {
        // {2,7} = {010, 111} share bit 1 with value 1 → syndrome {(1,1)}.
        let s = Syndrome::of_coupling(Coupling::new(2, 7), 3);
        assert_eq!(s.len(), 1);
        assert_eq!(s.value_at(1), Some(true));
        // Complementary pairs have empty syndromes.
        for (a, b) in [(0, 7), (1, 6), (2, 5), (3, 4)] {
            assert!(Syndrome::of_coupling(Coupling::new(a, b), 3).is_empty());
        }
    }

    #[test]
    fn syndrome_length_bounded_by_n_minus_1() {
        // Corollary V.8 over every pair at n = 4.
        for a in 0..16usize {
            for b in (a + 1)..16 {
                let s = Syndrome::of_coupling(Coupling::new(a, b), 4);
                assert!(s.len() <= 3);
            }
        }
    }

    #[test]
    fn candidates_count_matches_lemma_v9() {
        // Lemma V.9: a length-L syndrome on n bits has 2^{n−L−1} candidate
        // pairs (full label space, no padding).
        let n_bits = 4;
        let n_qubits = 16;
        for a in 0..n_qubits {
            for b in (a + 1)..n_qubits {
                let s = Syndrome::of_coupling(Coupling::new(a, b), n_bits);
                let l = s.len() as u32;
                let cands = s.candidates(n_bits, n_qubits);
                assert_eq!(cands.len(), 1usize << (n_bits - l - 1), "pair {{{a},{b}}}");
                assert!(cands.contains(&Coupling::new(a, b)));
            }
        }
    }

    #[test]
    fn paper_example_v11_candidates() {
        // Syndrome (0,0) ∧ (1,1): labels *10b → candidates {2,6} only.
        let s = Syndrome::from_entries([(0, false), (1, true)]);
        let c = s.candidates(3, 8);
        assert_eq!(c, vec![Coupling::new(2, 6)]);
        // Syndrome (0,0) alone: **0b → {0,6} and {2,4}.
        let s = Syndrome::from_entries([(0, false)]);
        let mut c = s.candidates(3, 8);
        c.sort();
        assert_eq!(c, vec![Coupling::new(0, 6), Coupling::new(2, 4)]);
    }

    #[test]
    fn padding_excludes_unphysical_candidates() {
        // 11 physical qubits on 4 bits: labels 11..16 never appear.
        let s = Syndrome::empty();
        let cands = s.candidates(4, 11);
        for c in &cands {
            assert!(c.hi() < 11);
        }
        // Complementary pairs {a, 15−a}: only those with both < 11, i.e.
        // a ∈ {5..7} ∪ partner — pairs {5,10},{6,9},{7,8}.
        assert_eq!(cands.len(), 3);
    }

    #[test]
    fn insert_detects_conflicts() {
        let mut s = Syndrome::empty();
        assert!(s.insert(2, true));
        assert!(s.insert(0, false));
        assert!(!s.insert(2, false), "conflicting value must be rejected");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn subset_relation() {
        let small = Syndrome::from_entries([(1, true)]);
        let big = Syndrome::from_entries([(0, false), (1, true)]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(Syndrome::empty().is_subset_of(&small));
    }

    #[test]
    fn matches_checks_fixed_bits() {
        let s = Syndrome::from_entries([(0, false), (2, true)]);
        assert!(s.matches(0b100));
        assert!(s.matches(0b110));
        assert!(!s.matches(0b101));
        assert!(!s.matches(0b000));
    }

    #[test]
    fn display_formats() {
        let s = Syndrome::from_entries([(0, false), (1, true)]);
        assert_eq!(s.to_string(), "(0,0) (1,1)");
        assert_eq!(Syndrome::empty().to_string(), "(empty syndrome)");
    }
}
