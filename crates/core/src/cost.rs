//! Wall-clock cost model for testing strategies (§VIII, Fig. 10).
//!
//! Reproduces the paper's speed-up analysis of adaptive and non-adaptive
//! testing over all-couplings point checks, under its stated assumptions:
//!
//! * gate *speed* improves quadratically with machine generation, so
//!   `t_gate(N) = t₈·(8/N)²` starting from 0.2 ms at 8 qubits;
//! * a shallow circuit's run time is dominated by preparation + readout;
//! * the non-adaptive protocol's fixed test family is compiled offline
//!   (selection costs one decision + upload), while adaptive strategies
//!   must compile each data-dependent test program on the fly — the cost
//!   `∝` couplings that makes the adaptive speed-up plateau (Fig. 10's
//!   blue line), roughly 10³ below the per-point-check processing cost.

/// Parameters of the Fig. 10 study. All times in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostModel {
    /// Preparation + readout per circuit run.
    pub prep_readout: f64,
    /// Two-qubit gate time at 8 qubits (scales as `(8/N)²`).
    pub gate_time_8q: f64,
    /// Shots per test circuit.
    pub shots: usize,
    /// Circuits per full point-check characterisation (the Eq.-2 fidelity
    /// estimate needs the bare-XX circuit plus a parity scan).
    pub characterization_circuits: usize,
    /// MS repetitions per coupling in a test.
    pub reps: usize,
    /// Classical decision latency per adaptive round.
    pub decision: f64,
    /// Compilation time per coupling in an on-the-fly-compiled program.
    pub compile_per_coupling: f64,
    /// Control-program upload latency.
    pub upload: f64,
}

impl CostModel {
    /// The paper's Fig. 10 operating point.
    pub fn paper_defaults() -> Self {
        CostModel {
            prep_readout: 1e-3,
            gate_time_8q: 0.2e-3,
            shots: 300,
            characterization_circuits: 11,
            reps: 2,
            decision: 50e-3,
            compile_per_coupling: 4e-3,
            upload: 100e-3,
        }
    }

    /// `t_gate(N) = t₈·(8/N)²` — Fig. 10's "gate time scales as 1/N²".
    pub fn gate_time(&self, n_qubits: usize) -> f64 {
        let r = 8.0 / n_qubits as f64;
        self.gate_time_8q * r * r
    }

    /// Number of couplings `C(N,2)`.
    pub fn couplings(&self, n_qubits: usize) -> usize {
        n_qubits * (n_qubits - 1) / 2
    }

    /// One shot of a test circuit containing `gates` two-qubit gates.
    fn run_once(&self, n_qubits: usize, gates: usize) -> f64 {
        self.prep_readout + gates as f64 * self.gate_time(n_qubits)
    }

    /// Wall-clock of the brute-force strategy: point-check every coupling
    /// (`shots` shots of a `reps`-gate circuit each, compiled per
    /// coupling).
    pub fn point_check_time(&self, n_qubits: usize) -> f64 {
        let c = self.couplings(n_qubits) as f64;
        let per_check = self.characterization_circuits as f64
            * self.shots as f64
            * self.run_once(n_qubits, self.reps)
            + self.compile_per_coupling;
        c * per_check + self.upload
    }

    /// Wall-clock of adaptive binary search for one fault: `⌈log₂C⌉`
    /// halving tests plus verification, each an adaptation whose program
    /// must be compiled for its suspect half.
    pub fn adaptive_time(&self, n_qubits: usize) -> f64 {
        let c = self.couplings(n_qubits);
        let mut total = 0.0;
        let mut size = c;
        while size > 1 {
            let half = size / 2;
            total += self.decision + self.upload + half as f64 * self.compile_per_coupling;
            total += self.shots as f64 * self.run_once(n_qubits, half * self.reps);
            size -= half;
        }
        // Final verification of the surviving coupling.
        total += self.decision + self.upload + self.compile_per_coupling;
        total += self.shots as f64 * self.run_once(n_qubits, self.reps);
        total
    }

    /// Wall-clock of the paper's non-adaptive protocol (§V-B): `3n − 1`
    /// class tests plus one verification, with the fixed test family
    /// precompiled offline and a single decision+upload for the adapted
    /// round.
    pub fn non_adaptive_time(&self, n_qubits: usize) -> f64 {
        let n_bits = itqc_math::bits::label_bits(n_qubits);
        let class_size = n_qubits / 2;
        let class_couplings = class_size * class_size.saturating_sub(1) / 2;
        let mut total = 0.0;
        // Round 1: 2n class tests.
        total += 2.0
            * n_bits as f64
            * self.shots as f64
            * self.run_once(n_qubits, class_couplings * self.reps);
        // Round 2: up to n−1 tests of comparable size, one adaptation.
        total += self.decision + self.upload;
        total += (n_bits as f64 - 1.0)
            * self.shots as f64
            * self.run_once(n_qubits, class_couplings * self.reps);
        // Verification.
        total += self.shots as f64 * self.run_once(n_qubits, self.reps);
        total
    }

    /// Fig. 10's blue curve: point-check time over adaptive-search time.
    pub fn speedup_adaptive(&self, n_qubits: usize) -> f64 {
        self.point_check_time(n_qubits) / self.adaptive_time(n_qubits)
    }

    /// Fig. 10's orange curve: point-check time over non-adaptive
    /// protocol time (grows as `N²/log N`).
    pub fn speedup_non_adaptive(&self, n_qubits: usize) -> f64 {
        self.point_check_time(n_qubits) / self.non_adaptive_time(n_qubits)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_time_shrinks_quadratically() {
        let m = CostModel::paper_defaults();
        assert!((m.gate_time(8) - 0.2e-3).abs() < 1e-12);
        assert!((m.gate_time(16) - 0.05e-3).abs() < 1e-12);
        assert!((m.gate_time(32) - 0.0125e-3).abs() < 1e-12);
    }

    #[test]
    fn eleven_qubit_operating_points() {
        // §IX: full characterisation takes "over a minute"; the paper's
        // strategy diagnoses the 11-qubit system "in ten seconds".
        let m = CostModel::paper_defaults();
        let point = m.point_check_time(11);
        let ours = m.non_adaptive_time(11);
        assert!(point > 60.0, "point check {point} s");
        assert!(ours > 3.0 && ours < 20.0, "protocol {ours} s (paper: ~10 s)");
    }

    #[test]
    fn adaptive_speedup_plateaus() {
        let m = CostModel::paper_defaults();
        let s64 = m.speedup_adaptive(64);
        let s1024 = m.speedup_adaptive(1024);
        let s4096 = m.speedup_adaptive(4096);
        // Grows early, then saturates near the ratio of per-point-check
        // processing to per-coupling compile time ≈ 10³.
        assert!(s1024 > s64);
        assert!((s4096 / s1024) < 1.3, "should be flattening: {s1024} → {s4096}");
        assert!(s4096 > 300.0 && s4096 < 3000.0, "plateau level {s4096}");
    }

    #[test]
    fn non_adaptive_speedup_grows_like_n2_over_logn() {
        let m = CostModel::paper_defaults();
        let s = |n: usize| m.speedup_non_adaptive(n);
        // Strictly increasing…
        assert!(s(16) > s(8));
        assert!(s(64) > s(16));
        assert!(s(1024) > s(256));
        // …and roughly N²/log N: quadrupling N should gain ~16×/(log ratio).
        let ratio = s(1024) / s(256);
        assert!(ratio > 8.0 && ratio < 24.0, "scaling ratio {ratio}");
        // Non-adaptive overtakes adaptive at scale (the paper's headline).
        assert!(s(1024) > m.speedup_adaptive(1024) * 5.0);
    }

    #[test]
    fn non_adaptive_always_beats_point_checks() {
        let m = CostModel::paper_defaults();
        for n in [8usize, 11, 16, 32, 64, 128] {
            assert!(m.speedup_non_adaptive(n) > 1.0, "n={n}");
        }
    }
}
