//! The executor boundary between protocol logic and hardware.
//!
//! Protocols only ever ask "run this test, give me the observed fidelity".
//! Everything machine-specific (noise, shots, wall-clock billing) hides
//! behind [`TestExecutor`], keeping `single_fault`/`multi_fault` free of
//! hardware detail and directly checkable against oracles.

use crate::testplan::{ScoreMode, TestSpec};
use itqc_backend::memo::{cached_score, ScoreKind, SCORE_MEMO_MIN_GATES};
use itqc_backend::{cache::xx_key, Backend, BackendChoice, PreparedCircuit, SimBackend as _};
use itqc_circuit::{Circuit, Coupling};
use itqc_sim::XxCircuit;
use itqc_trap::{Activity, VirtualTrap};
use std::collections::BTreeMap;
use std::f64::consts::FRAC_PI_2;
use std::rc::Rc;

/// Runs test circuits and reports observed target-state fidelity.
pub trait TestExecutor {
    /// Register size of the machine under test.
    fn n_qubits(&self) -> usize;

    /// Runs `spec` for `shots` repetitions and returns the observed
    /// fraction of shots on the expected output.
    fn run_test(&mut self, spec: &TestSpec, shots: usize) -> f64;

    /// Bills one classical adaptation round that compiles pulses for
    /// `couplings_compiled` couplings. Default: no-op (oracles have no
    /// clock).
    fn note_adaptation(&mut self, _couplings_compiled: usize) {}
}

/// A noiseless, shot-free oracle executor driven by a known fault map —
/// used by property tests and the Table II decoder study. Fidelities are
/// computed exactly on the commuting-XX engine.
///
/// By default scores are evaluated on an inline commuting-XX fast path
/// (bit-identical to the historical behaviour every pinned experiment
/// seed depends on). [`ExactExecutor::with_backend`] routes evaluation
/// through the pluggable [`itqc_backend`] subsystem instead, which adds
/// a prepared-circuit cache and genuine output-string sampling for the
/// scaling studies.
#[derive(Clone, Debug)]
pub struct ExactExecutor {
    n_qubits: usize,
    faults: BTreeMap<Coupling, f64>,
    backend: Option<Backend>,
}

impl ExactExecutor {
    /// Creates a fault-free oracle.
    pub fn new(n_qubits: usize) -> Self {
        ExactExecutor { n_qubits, faults: BTreeMap::new(), backend: None }
    }

    /// Routes score evaluation through a simulation backend
    /// (`dense`/`analytic`/`auto`) instead of the inline fast path.
    /// Clones of this executor share the backend's preparation cache.
    pub fn with_backend(mut self, choice: BackendChoice) -> Self {
        self.backend = Some(Backend::new(choice));
        self
    }

    /// The routed backend, if [`Self::with_backend`] selected one.
    pub fn backend(&self) -> Option<&Backend> {
        self.backend.as_ref()
    }

    /// Sets the under-rotation of one coupling.
    pub fn with_fault(mut self, coupling: Coupling, under_rotation: f64) -> Self {
        self.faults.insert(coupling, under_rotation);
        self
    }

    /// Sets many faults at once.
    pub fn with_faults<I: IntoIterator<Item = (Coupling, f64)>>(mut self, faults: I) -> Self {
        self.faults.extend(faults);
        self
    }

    /// The noisy XX circuit a spec compiles to on this machine.
    fn noisy_xx(&self, spec: &TestSpec) -> XxCircuit {
        let mut xx = XxCircuit::new(self.n_qubits);
        for &(coupling, theta) in &spec.gates {
            let u = self.faults.get(&coupling).copied().unwrap_or(0.0);
            let (a, b) = coupling.endpoints();
            xx.add_xx(a, b, theta * (1.0 - u));
        }
        xx
    }

    /// The noisy [`Circuit`] a spec compiles to on this machine — every
    /// gate's angle scaled by its coupling's under-rotation. This is
    /// what the simulation backends consume.
    pub fn noisy_circuit(&self, spec: &TestSpec) -> Circuit {
        let mut circuit = Circuit::new(self.n_qubits);
        for &(coupling, theta) in &spec.gates {
            let u = self.faults.get(&coupling).copied().unwrap_or(0.0);
            let (a, b) = coupling.endpoints();
            circuit.xx(a, b, theta * (1.0 - u));
        }
        circuit
    }

    /// Prepares a spec's noisy circuit on the routed backend (shot
    /// samplers use this to draw genuine output strings).
    ///
    /// # Panics
    ///
    /// Panics if no backend was selected ([`Self::with_backend`]) or the
    /// backend refuses the circuit (forced `dense` beyond the register
    /// wall, forced `analytic` on non-XX gates — `auto` never refuses a
    /// protocol test circuit).
    pub fn prepare(&self, spec: &TestSpec) -> Rc<dyn PreparedCircuit> {
        let backend = self.backend.as_ref().expect("no backend routed; call with_backend first");
        match backend.prepare(&self.noisy_circuit(spec)) {
            Ok(prepared) => prepared,
            Err(e) => panic!("backend '{}' refused test '{}': {e}", backend.name(), spec.label),
        }
    }

    /// The exact target-state fidelity of a spec on this machine
    /// (ExactTarget scoring regardless of the spec's score mode).
    pub fn exact_fidelity(&self, spec: &TestSpec) -> f64 {
        match &self.backend {
            None => {
                let xx = self.noisy_xx(spec);
                if spec.gates.len() >= SCORE_MEMO_MIN_GATES {
                    cached_score(xx_key(&xx), spec.target, ScoreKind::ExactTarget, || {
                        record_gray_walk(&xx);
                        xx.fidelity(spec.target)
                    })
                } else {
                    record_gray_walk(&xx);
                    xx.fidelity(spec.target)
                }
            }
            Some(_) => {
                itqc_obs::event::add("core.exact.queries", 1);
                self.prepare(spec).probability(spec.target)
            }
        }
    }

    /// The exact score of a spec under its own [`ScoreMode`].
    ///
    /// On the inline oracle path scores of non-trivial circuits are
    /// memoised across trials through [`itqc_backend::memo`] — the
    /// Monte-Carlo sweeps replay byte-identical class batteries both
    /// within a trial (threshold re-tunes) and across trials (classes
    /// untouched by the planted faults), and the memo returns the first
    /// evaluation's float verbatim, so every pinned output is unchanged.
    pub fn exact_score(&self, spec: &TestSpec) -> f64 {
        match &self.backend {
            None => {
                let xx = self.noisy_xx(spec);
                let eval = |xx: &XxCircuit| match spec.score {
                    ScoreMode::ExactTarget => {
                        record_gray_walk(xx);
                        xx.fidelity(spec.target)
                    }
                    ScoreMode::WorstQubit => {
                        record_agreement_eval(xx);
                        xx.min_qubit_agreement(spec.target)
                    }
                };
                if spec.gates.len() >= SCORE_MEMO_MIN_GATES {
                    let kind = match spec.score {
                        ScoreMode::ExactTarget => ScoreKind::ExactTarget,
                        ScoreMode::WorstQubit => ScoreKind::WorstQubit,
                    };
                    cached_score(xx_key(&xx), spec.target, kind, || eval(&xx))
                } else {
                    eval(&xx)
                }
            }
            Some(_) => {
                itqc_obs::event::add("core.exact.queries", 1);
                let prepared = self.prepare(spec);
                match spec.score {
                    ScoreMode::ExactTarget => prepared.probability(spec.target),
                    ScoreMode::WorstQubit => prepared.min_qubit_agreement(spec.target),
                }
            }
        }
    }
}

/// Records one actual `2^m` Gray-code walk (an unmemoised ExactTarget
/// evaluation) into the observed-cost histogram. Which evaluations the
/// per-thread score memo absorbs depends on the sharding, so this is
/// nondeterministic telemetry.
fn record_gray_walk(xx: &XxCircuit) {
    if itqc_obs::enabled() {
        itqc_obs::event::observe_nd("core.walk.support_qubits", xx.support().len() as u64, 1);
    }
}

/// Records one closed-form worst-qubit evaluation (`O(support·gates)`,
/// no exponential walk) — priced separately from Gray walks by the
/// observed cost report.
fn record_agreement_eval(xx: &XxCircuit) {
    if itqc_obs::enabled() {
        itqc_obs::event::observe_nd("core.agreement.support_qubits", xx.support().len() as u64, 1);
    }
}

impl TestExecutor for ExactExecutor {
    fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn run_test(&mut self, spec: &TestSpec, _shots: usize) -> f64 {
        self.exact_score(spec)
    }
}

/// [`TestExecutor`] for the virtual machine: tests run on the exact
/// commuting-XX path with shot sampling, adaptations are billed to the
/// duty ledger.
impl TestExecutor for VirtualTrap {
    fn n_qubits(&self) -> usize {
        VirtualTrap::n_qubits(self)
    }

    fn run_test(&mut self, spec: &TestSpec, shots: usize) -> f64 {
        if shots == 0 {
            return 0.0;
        }
        let hits = match spec.score {
            ScoreMode::ExactTarget => {
                self.run_xx_test(&spec.gates, spec.target, shots, Activity::Testing)
            }
            ScoreMode::WorstQubit => {
                self.run_xx_test_population(&spec.gates, spec.target, shots, Activity::Testing)
            }
        };
        hits as f64 / shots as f64
    }

    fn note_adaptation(&mut self, couplings_compiled: usize) {
        self.bill_adaptation(couplings_compiled);
    }
}

/// Convenience oracle: the exact fidelity a single faulty coupling of
/// under-rotation `u` produces on an isolated `reps`-MS point test —
/// `cos²(reps·u·π/4)` — used for threshold reasoning.
pub fn point_test_fidelity(u: f64, reps: usize) -> f64 {
    // Total missing angle: reps·u·(π/2); P(target) = cos²(missing/2).
    let missing = reps as f64 * u * FRAC_PI_2;
    (missing / 2.0).cos().powi(2)
}

/// Largest faulty-set size for which [`predicted_class_score`] runs the
/// exact even-subgraph interference sum (`2^m` subsets); beyond it the
/// product truncation is used. Candidate covers are bounded by the fault
/// budget, so realistic calls stay far below this.
pub const INTERFERENCE_SUM_LIMIT: usize = 16;

/// Forward model of the ranked aliasing decoder: the score a class test
/// is predicted to produce when exactly the couplings in `faulty` (all
/// members of the class) carry under-rotation `u`.
///
/// * [`ScoreMode::ExactTarget`] — for even `reps` every healthy coupling
///   contributes an exact bit-flip, so only the faulty couplings'
///   residual rotations `exp(∓i·δ_f·X_aX_b)` with `δ_f = reps·u·π/4`
///   remain. Expanding each residual into `cos δ·𝟙 − i·sin δ·X_aX_b`
///   terms, a product term survives on the target string exactly when
///   its chosen flips cancel — when the chosen couplings form an
///   even-degree subgraph (a cycle union). The amplitude is therefore
///
///   `A = Σ_{S ⊆ faulty, S even} (−i·sin δ)^{|S|}·(cos δ)^{m−|S|}`
///
///   and the score is `|A|²`. Only `S = ∅` survives for `m ≤ 2`
///   (reproducing the plain product `cos²(δ)^m`), while cycle-closing
///   covers from three faults up pick up interference terms the product
///   truncation misses — e.g. a fault triangle inside one class scores
///   `cos⁶δ + sin⁶δ`, not `cos⁶δ`. The sum is exact for any cover the
///   decoder scores (sets larger than [`INTERFERENCE_SUM_LIMIT`] fall
///   back to the product).
/// * [`ScoreMode::WorstQubit`] — exact for any fault multiset: the
///   qubit marginal `⟨Z_q⟩` multiplies `cos(reps·u·π/2)` per incident
///   fault, so the worst agreement is `(1 + c^{d_q})/2` minimised over
///   the per-qubit incident-fault counts `d_q`.
pub fn predicted_class_score(faulty: &[Coupling], u: f64, reps: usize, score: ScoreMode) -> f64 {
    if faulty.is_empty() {
        return 1.0;
    }
    match score {
        ScoreMode::ExactTarget => {
            let m = faulty.len();
            // The interference sum indexes qubits as u128 bits; labels
            // beyond the mask width (or oversized sets) fall back to
            // the product truncation rather than aliasing bits.
            let maskable = faulty.iter().all(|f| {
                let (a, b) = f.endpoints();
                a < 128 && b < 128
            });
            if m <= 2 || m > INTERFERENCE_SUM_LIMIT || !maskable {
                return point_test_fidelity(u, reps).powi(m as i32);
            }
            interference_class_score(faulty, u, reps)
        }
        ScoreMode::WorstQubit => {
            let c = (reps as f64 * u * FRAC_PI_2).cos();
            let mut degree: BTreeMap<usize, i32> = BTreeMap::new();
            for f in faulty {
                let (a, b) = f.endpoints();
                *degree.entry(a).or_insert(0) += 1;
                *degree.entry(b).or_insert(0) += 1;
            }
            degree.values().map(|&d| (1.0 + c.powi(d)) / 2.0).fold(1.0, f64::min)
        }
    }
}

/// The exact even-subgraph interference sum behind
/// [`predicted_class_score`]'s `ExactTarget` branch (see its docs for
/// the derivation). `2^m` subsets; callers bound `m`.
fn interference_class_score(faulty: &[Coupling], u: f64, reps: usize) -> f64 {
    let masks: Vec<u128> = faulty
        .iter()
        .map(|f| {
            let (a, b) = f.endpoints();
            (1u128 << a) | (1u128 << b)
        })
        .collect();
    interference_sum(&masks, u, reps)
}

/// The per-`u` half of [`interference_class_score`], over pre-built
/// endpoint masks (one per fault).
fn interference_sum(masks: &[u128], u: f64, reps: usize) -> f64 {
    let m = masks.len();
    let delta = reps as f64 * u * FRAC_PI_2 / 2.0;
    let (sin_d, cos_d) = delta.sin_cos();
    let (mut re, mut im) = (0.0f64, 0.0f64);
    for subset in 0u32..(1u32 << m) {
        let mut flips = 0u128;
        for (i, &mask) in masks.iter().enumerate() {
            if subset >> i & 1 == 1 {
                flips ^= mask;
            }
        }
        if flips != 0 {
            continue; // odd-degree subgraph: flips land off the target
        }
        let k = subset.count_ones() as i32;
        let w = cos_d.powi(m as i32 - k) * sin_d.powi(k);
        // (−i)^k walks the quadrants 1, −i, −1, i.
        match k % 4 {
            0 => re += w,
            1 => im -= w,
            2 => re -= w,
            _ => im += w,
        }
    }
    re * re + im * im
}

/// [`predicted_class_score`] with the `u`-independent work hoisted out:
/// branch selection, worst-qubit degree counting, and interference mask
/// construction happen once at build time, so the magnitude-profiling
/// grid pays only the per-`u` trigonometry. Guaranteed bit-identical to
/// `predicted_class_score(faulty, u, reps, score)` at every `u` — the
/// per-`u` arithmetic is the same instruction sequence.
#[derive(Clone, Debug)]
pub struct ClassScorePredictor {
    reps: usize,
    kind: PredictorKind,
}

#[derive(Clone, Debug)]
enum PredictorKind {
    /// No faulty members in the class: the test scores exactly 1.
    Clean,
    /// `ExactTarget` product truncation: `cos²(δ)^m`.
    Product { m: i32 },
    /// `ExactTarget` even-subgraph interference sum over pre-built
    /// endpoint masks.
    Interference { masks: Vec<u128> },
    /// `WorstQubit`: per-qubit incident-fault degrees, in ascending
    /// qubit order (matching the `BTreeMap` iteration of the unhoisted
    /// path, so the min-fold visits identical values in identical
    /// order).
    WorstQubit { degrees: Vec<i32> },
}

impl ClassScorePredictor {
    /// Builds the evaluator for one class's cover members.
    pub fn new(faulty: &[Coupling], reps: usize, score: ScoreMode) -> Self {
        let kind = if faulty.is_empty() {
            PredictorKind::Clean
        } else {
            match score {
                ScoreMode::ExactTarget => {
                    let m = faulty.len();
                    let maskable = faulty.iter().all(|f| {
                        let (a, b) = f.endpoints();
                        a < 128 && b < 128
                    });
                    if m <= 2 || m > INTERFERENCE_SUM_LIMIT || !maskable {
                        PredictorKind::Product { m: m as i32 }
                    } else {
                        PredictorKind::Interference {
                            masks: faulty
                                .iter()
                                .map(|f| {
                                    let (a, b) = f.endpoints();
                                    (1u128 << a) | (1u128 << b)
                                })
                                .collect(),
                        }
                    }
                }
                ScoreMode::WorstQubit => {
                    let mut degree: BTreeMap<usize, i32> = BTreeMap::new();
                    for f in faulty {
                        let (a, b) = f.endpoints();
                        *degree.entry(a).or_insert(0) += 1;
                        *degree.entry(b).or_insert(0) += 1;
                    }
                    PredictorKind::WorstQubit { degrees: degree.into_values().collect() }
                }
            }
        };
        ClassScorePredictor { reps, kind }
    }

    /// The predicted class score at magnitude `u`.
    pub fn at(&self, u: f64) -> f64 {
        match &self.kind {
            PredictorKind::Clean => 1.0,
            PredictorKind::Product { m } => point_test_fidelity(u, self.reps).powi(*m),
            PredictorKind::Interference { masks } => interference_sum(masks, u, self.reps),
            PredictorKind::WorstQubit { degrees } => {
                let c = (self.reps as f64 * u * FRAC_PI_2).cos();
                degrees.iter().map(|&d| (1.0 + c.powi(d)) / 2.0).fold(1.0, f64::min)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testplan::TestSpec;
    use itqc_trap::TrapConfig;

    #[test]
    fn exact_executor_perfect_machine() {
        let mut exec = ExactExecutor::new(8);
        let spec = TestSpec::for_couplings("t", &[Coupling::new(0, 1)], 4);
        assert!((exec.run_test(&spec, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_executor_matches_point_formula() {
        for &u in &[0.1, 0.22, 0.47] {
            for reps in [2usize, 4] {
                let mut exec = ExactExecutor::new(4).with_fault(Coupling::new(1, 2), u);
                let spec = TestSpec::for_couplings("t", &[Coupling::new(1, 2)], reps);
                let f = exec.run_test(&spec, 1);
                let expect = point_test_fidelity(u, reps);
                assert!((f - expect).abs() < 1e-12, "u={u} reps={reps}: {f} vs {expect}");
            }
        }
    }

    #[test]
    fn class_score_predictor_is_bit_identical_to_the_unhoisted_path() {
        // Every branch — empty, product truncation, interference sum,
        // worst-qubit degrees — across the full magnitude grid, both
        // score modes, both ladder rungs.
        let covers: Vec<Vec<Coupling>> = vec![
            vec![],
            vec![Coupling::new(0, 1)],
            vec![Coupling::new(0, 1), Coupling::new(2, 3)],
            vec![Coupling::new(0, 1), Coupling::new(1, 2), Coupling::new(0, 2)],
            vec![
                Coupling::new(0, 1),
                Coupling::new(1, 2),
                Coupling::new(2, 3),
                Coupling::new(0, 3),
            ],
            vec![Coupling::new(0, 5), Coupling::new(0, 5), Coupling::new(2, 7)],
        ];
        for cover in &covers {
            for reps in [2usize, 4] {
                for score in [ScoreMode::ExactTarget, ScoreMode::WorstQubit] {
                    let pred = ClassScorePredictor::new(cover, reps, score);
                    for s in 0..33 {
                        let u = 0.02 + 0.48 * s as f64 / 32.0;
                        assert_eq!(
                            pred.at(u).to_bits(),
                            predicted_class_score(cover, u, reps, score).to_bits(),
                            "cover {cover:?} reps={reps} score={score:?} u={u}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn paper_figure6_operating_points() {
        // Repetition amplifies faults (§V-C): at fixed u, deeper tests sit
        // lower; at fixed depth, bigger faults sit lower. The isolated
        // point fidelities for Fig. 6's faults are 0.55 (47% @ 2MS) and
        // 0.59 (22% @ 4MS) — the class tests of Fig. 6 drop further below
        // the 0.45/0.25 thresholds because ambient noise multiplies in.
        assert!((point_test_fidelity(0.47, 2) - 0.547).abs() < 0.01);
        assert!((point_test_fidelity(0.22, 4) - 0.595).abs() < 0.01);
        assert!(point_test_fidelity(0.22, 4) < point_test_fidelity(0.22, 2));
        assert!(point_test_fidelity(0.47, 2) < point_test_fidelity(0.22, 2));
        // A 47% fault under 4-MS amplification is unmistakable.
        assert!(point_test_fidelity(0.47, 4) < 0.05);
        // Healthy couplings pass with margin.
        assert!(point_test_fidelity(0.02, 2) > 0.99);
        assert!(point_test_fidelity(0.02, 4) > 0.97);
    }

    #[test]
    fn forward_model_matches_exact_engine_on_cycle_covers() {
        // Cycle-closing fault sets pick up interference the product
        // truncation misses; the even-subgraph sum must agree with the
        // exact commuting-XX engine to machine precision, with healthy
        // couplings in the same test contributing nothing but flips.
        use crate::testplan::ScoreMode;
        let c = Coupling::new;
        let cases: [&[Coupling]; 4] = [
            &[c(0, 1), c(1, 2), c(0, 2)],          // triangle
            &[c(0, 1), c(1, 2), c(2, 3), c(0, 3)], // 4-cycle
            &[c(0, 1), c(1, 2), c(0, 2), c(4, 5)], // triangle + isolated edge
            &[c(0, 1), c(2, 3), c(4, 5)],          // acyclic: must equal the product
        ];
        for faults in cases {
            for &u in &[0.12, 0.30, 0.45] {
                for reps in [2usize, 4] {
                    let exec = ExactExecutor::new(8).with_faults(faults.iter().map(|&f| (f, u)));
                    let mut tested = faults.to_vec();
                    tested.push(c(6, 7)); // healthy coupling in the same test
                    let spec = TestSpec::for_couplings("t", &tested, reps);
                    let expect = exec.exact_fidelity(&spec);
                    let got = predicted_class_score(faults, u, reps, ScoreMode::ExactTarget);
                    assert!(
                        (got - expect).abs() < 1e-12,
                        "{faults:?} u={u} reps={reps}: {got} vs {expect}"
                    );
                }
            }
        }
        // The triangle's closed form: |cos³δ + i·sin³δ|² = cos⁶δ + sin⁶δ.
        let d = 4.0 * 0.30 * FRAC_PI_2 / 2.0;
        let tri =
            predicted_class_score(&[c(0, 1), c(1, 2), c(0, 2)], 0.30, 4, ScoreMode::ExactTarget);
        assert!((tri - (d.cos().powi(6) + d.sin().powi(6))).abs() < 1e-12);
    }

    #[test]
    fn backend_routed_scores_match_inline_fast_path() {
        use itqc_backend::BackendChoice;
        let faults =
            [(Coupling::new(0, 3), 0.22), (Coupling::new(1, 2), -0.07), (Coupling::new(4, 5), 0.4)];
        let inline = ExactExecutor::new(8).with_faults(faults);
        let spec2 = TestSpec::for_couplings(
            "t",
            &[Coupling::new(0, 3), Coupling::new(1, 2), Coupling::new(4, 5), Coupling::new(6, 7)],
            2,
        );
        let spec4 = spec2.clone().with_score(crate::testplan::ScoreMode::WorstQubit);
        for choice in [BackendChoice::Dense, BackendChoice::Analytic, BackendChoice::Auto] {
            let routed = inline.clone().with_backend(choice);
            for spec in [&spec2, &spec4] {
                assert!(
                    (inline.exact_score(spec) - routed.exact_score(spec)).abs() < 1e-9,
                    "{choice:?} disagrees on {}",
                    spec.label
                );
                assert!((inline.exact_fidelity(spec) - routed.exact_fidelity(spec)).abs() < 1e-9);
            }
        }
        // The analytic route reuses one preparation per distinct circuit.
        let routed = inline.with_backend(BackendChoice::Analytic);
        let _ = routed.exact_score(&spec2);
        let _ = routed.exact_score(&spec2);
        let (hits, _) = routed.backend().unwrap().analytic().cache_stats();
        assert!(hits >= 1, "repeated spec must hit the preparation cache");
    }

    #[test]
    fn trap_executor_agrees_with_exact_executor() {
        let coupling = Coupling::new(2, 5);
        let u = 0.30;
        let mut trap = VirtualTrap::new(TrapConfig::ideal(8, 42));
        trap.inject_fault(coupling, u);
        let mut oracle = ExactExecutor::new(8).with_fault(coupling, u);
        let spec = TestSpec::for_couplings("t", &[coupling, Coupling::new(0, 1)], 4);
        let f_trap = trap.run_test(&spec, 5000);
        let f_oracle = oracle.run_test(&spec, 1);
        assert!((f_trap - f_oracle).abs() < 0.03, "{f_trap} vs {f_oracle}");
    }
}
