//! Multi-fault diagnosis: the Fig. 5 state machine (§V-C).
//!
//! The key principle: *separate faults in time and magnitude before
//! diagnosing them; diagnosed faults are separated by exclusion.* The
//! loop is: canary → pick the gate-repetition count that just trips the
//! full-coupling test (magnitude separation; larger faults trip at lower
//! amplification) → run the single-fault protocol at that amplification →
//! verify → exclude the diagnosed coupling → repeat until the canary
//! passes. Costs: `4k + 1` adaptive rounds for `k` faults (paper §V-C).
//!
//! When faults of equal magnitude collide (conflicting syndromes), the
//! paper's pipeline cannot separate them by magnitude — that residual
//! failure probability is exactly what Table II quantifies. How the loop
//! spends its disambiguation budget on such collisions is governed by
//! [`MultiFaultConfig::decoder`]:
//!
//! * [`DecoderPolicy::Greedy`] — Fig. 5's bare threshold peel
//!   ([`retune_and_isolate`]-style): retry the single-fault protocol at
//!   thresholds placed in the observed score gaps and take the first
//!   verified isolate.
//! * [`DecoderPolicy::Ranked`] — the cross-round evidence-fusion
//!   decoder (the reproduction default): enumerate candidate covers of
//!   the observed failing set, rank them by the posterior accumulated
//!   over **every** adaptive round's class scores
//!   ([`crate::decoder::CoverPosterior`]), spend
//!   [`MultiFaultConfig::fusion_rounds`] extra rounds gathering fresh
//!   class batteries at other ladder rungs when ambiguous, and accuse
//!   only consensus members (each magnitude-verified). Internally
//!   inconsistent round-1 records (union syndromes no single fault can
//!   produce) route through the same machinery.
//! * [`DecoderPolicy::Interrogate`] — the fused decoder plus
//!   disputed-member interrogation (an extension beyond the paper):
//!   with no consensus after every rung is fused, point-test the
//!   highest-marginal disputed coupling.
//! * [`DecoderPolicy::SetCoverFallback`] — the greedy peel plus the
//!   set-cover + point-verification fallback (an extension beyond the
//!   paper, documented in `DESIGN.md`).

use crate::classes::{first_round_classes, LabelSpace, SubcubeClass};
use crate::decoder::{self, CoverModel, DecoderPolicy, FailingSet};
use crate::executor::TestExecutor;
use crate::single_fault::{Diagnosis, SingleFaultProtocol};
use crate::testplan::{canary_for, canary_rotation, rotation_seed, ScoreMode, TestSpec};
use crate::threshold;
use itqc_circuit::Coupling;
use std::collections::BTreeSet;

/// Configuration of the multi-fault loop.
#[derive(Clone, Debug)]
pub struct MultiFaultConfig {
    /// Ascending even repetition counts tried for magnitude separation.
    pub reps_ladder: Vec<usize>,
    /// Pass/fail fidelity threshold for class and verification tests.
    pub threshold: f64,
    /// Pass/fail threshold for the full-coupling canary test (usually
    /// lower: it accumulates ambient error over every coupling).
    pub canary_threshold: f64,
    /// Shots per test circuit.
    pub shots: usize,
    /// Shots for the cheap canary/magnitude tripwire tests (a coarse
    /// pass/fail needs far fewer shots than a diagnosis test).
    pub canary_shots: usize,
    /// Abort after this many diagnosed faults (sanity bound).
    pub max_faults: usize,
    /// How equal-magnitude syndrome collisions are disambiguated (see
    /// the module docs and [`DecoderPolicy`]).
    pub decoder: DecoderPolicy,
    /// Observation-noise scale of the ranked decoder's posterior — how
    /// far an observed round-1 score may sit from a candidate cover's
    /// predicted score and still count as consistent. Calibrate with
    /// [`crate::threshold::observation_sigma`].
    pub ranked_sigma: f64,
    /// Pass/fail statistic for every test in the pipeline.
    pub score: ScoreMode,
    /// Pass/fail statistic for the full-coupling canary and magnitude
    /// probes. Defaults to [`ScoreMode::WorstQubit`]: a canary spans every
    /// coupling, so its exact-string statistic is both exponentially
    /// fragile and (at 32+ qubits) beyond the exact engine's support.
    pub canary_score: ScoreMode,
    /// Fig. 5's threshold adjustment: on conflicting syndromes, retry the
    /// single-fault protocol with up to this many lowered thresholds
    /// (placed in the gaps of the observed round-1 scores) so that only
    /// the largest fault trips tests. 0 disables.
    pub max_threshold_retunes: usize,
    /// Cross-round evidence-fusion budget of the ranked decoder: when
    /// the fused posterior is still ambiguous, up to this many extra
    /// adaptive rounds re-run the class battery at *another* rung of
    /// the repetition ladder and accumulate the fresh per-class scores
    /// into the cover posterior ([`crate::decoder::CoverPosterior`]) —
    /// round 2 narrows the cover set with its own evidence instead of
    /// re-ranking round-1 scores. 0 restores the PR 3 re-ranking-only
    /// behaviour. Each fusion round costs one adaptation plus one class
    /// battery (`2n` tests).
    pub fusion_rounds: usize,
    /// Minimum |under-rotation| that counts as a fault during magnitude
    /// verification of retuned diagnoses (the paper's ~10% recalibration
    /// line in Fig. 7C).
    pub fault_magnitude: f64,
    /// Rotating-canary countermeasure (an extension beyond the paper):
    /// when the fixed full-coupling canary *passes*, run up to this many
    /// seeded random-subset canaries ([`crate::testplan::canary_rotation`]).
    /// An even-degree fault configuration — every qubit touching an even
    /// number of faults, i.e. a cycle union in the coupling graph — passes
    /// the fixed worst-qubit canary at any magnitude, but a rotated subset
    /// intersects it in an odd-degree subgraph with high probability; a
    /// tripped rotation restricts one diagnosis round to the drawn subset,
    /// whose restricted class battery sees the parity broken. 0 (the
    /// paper default) disables rotation entirely: no extra tests, the
    /// Fig. 5 loop is unchanged.
    pub canary_rotations: usize,
    /// Base seed of the rotation subsets (mixed with the outer round and
    /// rotation counters via [`crate::testplan::rotation_seed`]), so the
    /// drawn subsets are deterministic in the configuration alone.
    pub canary_seed: u64,
}

impl MultiFaultConfig {
    /// Paper-flavoured defaults: 2-MS and 4-MS tests, 0.5/0.25 thresholds,
    /// 300 shots, the ranked aliasing decoder.
    pub fn paper_defaults() -> Self {
        MultiFaultConfig {
            reps_ladder: vec![2, 4],
            threshold: 0.5,
            canary_threshold: 0.25,
            shots: 300,
            canary_shots: 30,
            max_faults: 8,
            decoder: DecoderPolicy::Ranked,
            ranked_sigma: threshold::observation_sigma(300, 0.0, 4),
            score: ScoreMode::ExactTarget,
            canary_score: ScoreMode::WorstQubit,
            max_threshold_retunes: 4,
            fusion_rounds: 2,
            fault_magnitude: 0.10,
            canary_rotations: 0,
            canary_seed: 0,
        }
    }
}

/// One diagnosed coupling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiagnosedFault {
    /// The coupling found faulty (and verified).
    pub coupling: Coupling,
    /// The repetition count at which it was isolated.
    pub reps: usize,
}

/// Outcome of a full multi-fault diagnosis run.
#[derive(Clone, Debug)]
pub struct MultiFaultReport {
    /// Diagnosed (verified) faults in discovery order.
    pub diagnosed: Vec<DiagnosedFault>,
    /// Total test circuits executed.
    pub tests_run: usize,
    /// Total adaptive rounds consumed.
    pub adaptations: usize,
    /// `true` when the final canary passed (machine clean after
    /// excluding the diagnosed couplings).
    pub converged: bool,
}

impl MultiFaultReport {
    /// Just the coupling list, sorted.
    pub fn couplings(&self) -> Vec<Coupling> {
        let mut out: Vec<Coupling> = self.diagnosed.iter().map(|d| d.coupling).collect();
        out.sort();
        out
    }
}

/// Runs the full Fig. 5 loop.
///
/// # Panics
///
/// Panics if the ladder is empty or contains odd repetition counts.
pub fn diagnose_all<E: TestExecutor>(
    exec: &mut E,
    n_qubits: usize,
    config: &MultiFaultConfig,
) -> MultiFaultReport {
    diagnose_all_excluding(exec, n_qubits, config, &BTreeSet::new())
}

/// [`diagnose_all`] with couplings excluded up front — already-diagnosed
/// (quarantined/mapped-around) or physically unused couplings, per
/// Corollary V.12. Excluded couplings appear in no test and are never
/// accused.
///
/// # Panics
///
/// Panics if the ladder is empty or contains odd repetition counts.
pub fn diagnose_all_excluding<E: TestExecutor>(
    exec: &mut E,
    n_qubits: usize,
    config: &MultiFaultConfig,
    pre_excluded: &BTreeSet<Coupling>,
) -> MultiFaultReport {
    assert!(!config.reps_ladder.is_empty(), "need at least one repetition count");
    assert!(
        config.reps_ladder.iter().all(|r| r % 2 == 0 && *r >= 2),
        "repetition counts must be even"
    );
    let space = LabelSpace::new(n_qubits);
    let mut excluded: BTreeSet<Coupling> = pre_excluded.clone();
    let mut diagnosed: Vec<DiagnosedFault> = Vec::new();
    let mut tests_run = 0usize;
    let mut adaptations = 0usize;
    let max_reps = *config.reps_ladder.last().unwrap();
    let mut converged = false;
    let mut outer_round = 0u64;

    'outer: while diagnosed.len() <= config.max_faults {
        // Canary: every relevant coupling at maximal amplification.
        let relevant: Vec<Coupling> =
            space.all_couplings().into_iter().filter(|c| !excluded.contains(c)).collect();
        if relevant.is_empty() {
            converged = true;
            break;
        }
        outer_round += 1;
        let canary = canary_for(&relevant, max_reps, config.canary_score);
        tests_run += 1;
        let f = exec.run_test(&canary, config.canary_shots);
        // The round's working sets: a tripped rotation below restricts
        // both to the drawn subset for this round only.
        let mut round_relevant = relevant.clone();
        let mut round_excluded = excluded.clone();
        if f >= config.canary_threshold {
            // The fixed canary is clean — but an even-degree fault
            // configuration (a cycle union in the coupling graph) looks
            // exactly like clean to it at any magnitude. Rotate: seeded
            // random-subset canaries whose intersection with any fixed
            // parity class has odd degree with high probability.
            let mut tripped = None;
            for rot in 0..config.canary_rotations {
                let seed = rotation_seed(config.canary_seed, outer_round, rot as u64);
                let Some((spec, subset)) = canary_rotation(
                    format!("canary rotation {rot}"),
                    &relevant,
                    max_reps,
                    config.canary_score,
                    seed,
                ) else {
                    continue; // trivial draw: no parity information
                };
                tests_run += 1;
                if exec.run_test(&spec, config.canary_shots) < config.canary_threshold {
                    tripped = Some(subset);
                    break;
                }
            }
            match tripped {
                None => {
                    converged = true;
                    break;
                }
                Some(subset) => {
                    // Diagnose within the tripped subset: the restricted
                    // class battery sees the broken parity. Diagnosed
                    // couplings still join the *real* exclusion set, so
                    // the next outer round re-canaries the full residue
                    // (whose degrees are now odd).
                    round_excluded.extend(relevant.iter().filter(|c| !subset.contains(c)));
                    round_relevant = subset;
                }
            }
        }

        // Magnitude separation: smallest amplification that still trips
        // the full-coupling test (the biggest fault dominates there).
        adaptations += 1;
        exec.note_adaptation(round_relevant.len());
        let mut start_idx = config.reps_ladder.len() - 1;
        for (idx, &r) in config.reps_ladder.iter().enumerate() {
            if r == max_reps {
                break; // canary already told us it fails at max_reps
            }
            let probe = TestSpec::for_couplings(format!("magnitude x{r}MS"), &round_relevant, r)
                .with_score(config.canary_score);
            tests_run += 1;
            if exec.run_test(&probe, config.canary_shots) < config.canary_threshold {
                start_idx = idx;
                break;
            }
        }

        // Single-fault diagnosis, escalating amplification if nothing is
        // pinned down at the separation level.
        let mut progressed = false;
        for &reps in &config.reps_ladder[start_idx..] {
            let protocol = SingleFaultProtocol::new(n_qubits, reps, config.threshold, config.shots)
                .with_score(config.score)
                .exclude(round_excluded.iter().copied());
            let report = protocol.diagnose(exec);
            tests_run += report.tests_run();
            adaptations += report.adaptations;
            match report.diagnosis {
                Diagnosis::Fault(coupling) => {
                    diagnosed.push(DiagnosedFault { coupling, reps });
                    excluded.insert(coupling);
                    // Restart with the updated exclusion set (one more
                    // adaptive round: reconfigure the relevant set).
                    adaptations += 1;
                    exec.note_adaptation(1);
                    progressed = true;
                    break;
                }
                Diagnosis::MultipleFaultsSuspected => {
                    // Fig. 5: "reduce gate repetitions … the threshold is
                    // adjusted accordingly to maximise the fault vs
                    // no-fault contrast." The decoder policy decides how
                    // that adjustment budget is spent: greedy peel of the
                    // score gaps, or likelihood-ranked disambiguation.
                    let mut isolated = None;
                    if config.max_threshold_retunes > 0 {
                        if config.decoder.uses_ranked_fusion() {
                            // Score-ranked disambiguation first: accuse
                            // only what the cover posterior decisively
                            // implicates, at no extra class-test cost.
                            isolated = ranked_isolate(
                                exec,
                                &space,
                                &round_excluded,
                                config,
                                reps,
                                &report,
                                decoder::COVER_TIE_MARGIN,
                                &mut tests_run,
                                &mut adaptations,
                            );
                        }
                        if isolated.is_none() {
                            // Fig. 5's threshold peel: re-run the
                            // single-fault protocol at gap thresholds
                            // (its adaptive round 2 gathers evidence the
                            // round-1 scores alone do not carry).
                            isolated = retune_and_isolate(
                                exec,
                                n_qubits,
                                &round_excluded,
                                config,
                                reps,
                                &report,
                                &mut tests_run,
                                &mut adaptations,
                            );
                        }
                    }
                    if let Some(c) = isolated {
                        diagnosed.push(DiagnosedFault { coupling: c, reps });
                        excluded.insert(c);
                        adaptations += 1;
                        exec.note_adaptation(1);
                        progressed = true;
                        break;
                    }
                    if config.decoder == DecoderPolicy::SetCoverFallback {
                        let confirmed = cover_fallback(
                            exec,
                            &space,
                            &round_excluded,
                            config,
                            reps,
                            &mut tests_run,
                            &mut adaptations,
                        );
                        if !confirmed.is_empty() {
                            for c in confirmed {
                                diagnosed.push(DiagnosedFault { coupling: c, reps });
                                excluded.insert(c);
                            }
                            progressed = true;
                            break;
                        }
                    }
                    // Equal-magnitude collision the pipeline cannot split.
                    break 'outer;
                }
                Diagnosis::Inconclusive
                    if config.decoder.uses_ranked_fusion() && config.max_threshold_retunes > 0 =>
                {
                    // An internally inconsistent record — e.g. a union
                    // syndrome longer than any single fault can produce,
                    // which never trips the bit-conflict detector. This
                    // is *the* dominant 3-fault signature (three
                    // syndromes can union without colliding), so the
                    // evidence-fusion decoder gets the round-1 scores
                    // here too: candidate covers of the failing set are
                    // ranked by the fused posterior and the consensus
                    // member is accused and magnitude-verified exactly
                    // as on a conflict. Shadowed members of the true
                    // fault set surface on later sequential passes once
                    // the accused coupling is excluded.
                    let isolated = ranked_isolate(
                        exec,
                        &space,
                        &round_excluded,
                        config,
                        reps,
                        &report,
                        INCONSISTENT_TIE_MARGIN,
                        &mut tests_run,
                        &mut adaptations,
                    );
                    if let Some(c) = isolated {
                        diagnosed.push(DiagnosedFault { coupling: c, reps });
                        excluded.insert(c);
                        adaptations += 1;
                        exec.note_adaptation(1);
                        progressed = true;
                        break;
                    }
                    // Nothing decisively implicated: escalate the
                    // amplification like any other inconclusive round.
                }
                Diagnosis::NoFault | Diagnosis::Inconclusive => {
                    // Not visible at this amplification; escalate.
                }
            }
        }
        if !progressed {
            break;
        }
    }

    // Per-diagnosis outcome counters: a trial's diagnosis is a pure
    // function of its executor and seeds, so these totals are
    // partition-invariant and belong to the deterministic snapshot.
    if itqc_obs::enabled() {
        use itqc_obs::event;
        event::add("core.decoder.diagnoses", 1);
        event::add("core.decoder.tests_run", tests_run as u64);
        event::add("core.decoder.adaptive_rounds", adaptations as u64);
        event::add("core.decoder.faults_found", diagnosed.len() as u64);
        event::add(
            if converged { "core.decoder.converged" } else { "core.decoder.unconverged" },
            1,
        );
    }
    MultiFaultReport { diagnosed, tests_run, adaptations, converged }
}

/// Estimates the under-rotation magnitude of one coupling from a point
/// test and checks it against the configured fault line. A point test at
/// `r` repetitions scores `(1 + cos(r·u·π/2))/2`; inverted, that gives
/// `|û|`. Verification is capped at 4 repetitions so `|u| ≤ 0.5` stays on
/// the principal branch (no accidental-cancellation aliasing —
/// footnote 8's concern).
fn magnitude_verify<E: TestExecutor>(
    exec: &mut E,
    coupling: Coupling,
    reps: usize,
    config: &MultiFaultConfig,
    tests_run: &mut usize,
) -> bool {
    let verify_reps = reps.clamp(2, 4);
    let spec =
        TestSpec::for_couplings(format!("magnitude verify {coupling}"), &[coupling], verify_reps)
            .with_score(config.score);
    *tests_run += 1;
    let s = exec.run_test(&spec, config.shots).clamp(0.0, 1.0);
    let dev = (2.0 * s - 1.0).clamp(-1.0, 1.0).acos();
    let u_est = dev / (verify_reps as f64 * std::f64::consts::FRAC_PI_2);
    u_est.abs() >= config.fault_magnitude
}

/// Fig. 5's threshold-adjustment loop: take the conflicted first round's
/// observed scores, place candidate thresholds in the gaps between the
/// lowest scores (ascending), and re-run the single-fault protocol at each
/// until one isolates a coupling whose magnitude verification confirms a
/// real outlier.
#[allow(clippy::too_many_arguments)]
fn retune_and_isolate<E: TestExecutor>(
    exec: &mut E,
    n_qubits: usize,
    excluded: &BTreeSet<Coupling>,
    config: &MultiFaultConfig,
    reps: usize,
    conflicted: &crate::single_fault::DiagnosisReport,
    tests_run: &mut usize,
    adaptations: &mut usize,
) -> Option<Coupling> {
    let scores: Vec<f64> = conflicted.tests.iter().map(|t| t.fidelity).collect();
    let candidates =
        threshold::gap_thresholds(&scores, config.threshold, config.max_threshold_retunes);
    for t in candidates {
        *adaptations += 1;
        exec.note_adaptation(0);
        let protocol = SingleFaultProtocol::new(n_qubits, reps, t, config.shots)
            .with_score(config.score)
            .exclude(excluded.iter().copied());
        let report = protocol.diagnose(exec);
        *tests_run += report.tests_run();
        *adaptations += report.adaptations;
        let candidate = match report.diagnosis {
            Diagnosis::Fault(c) => Some(c),
            Diagnosis::Inconclusive | Diagnosis::NoFault => report.candidate,
            Diagnosis::MultipleFaultsSuspected => None,
        };
        if let Some(c) = candidate {
            if magnitude_verify(exec, c, reps, config, tests_run) {
                return Some(c);
            }
        }
    }
    None
}

/// How many candidate covers the ranked decoder scores per round.
const RANKED_COVER_CAP: usize = 96;

/// Consensus tie margin for internally *inconsistent* (non-conflicting)
/// first rounds: wider than [`decoder::COVER_TIE_MARGIN`] because such
/// records lack the corroborating bit-conflict, so an accusation must
/// hold across a broader band of near-optimal explanations — but kept
/// strictly inside one [`decoder::COVER_LOG_FAULT_PRIOR`] unit (2.0),
/// otherwise every equal-likelihood cover one member larger would join
/// the tie set by prior alone and veto consensus permanently.
const INCONSISTENT_TIE_MARGIN: f64 = 1.5;

/// The likelihood-ranked disambiguation loop (`DecoderPolicy::Ranked`):
/// the replacement for the greedy equal-magnitude peel, upgraded to
/// **cross-round evidence fusion**.
///
/// The conflicted first round already carries the full analog score of
/// every class test — far more information than the pass/fail pattern
/// the greedy peel consumes — and every later adaptive round adds more.
/// Each round:
///
/// 1. re-calibrates the pass/fail threshold (round 0 uses the configured
///    threshold; later rounds walk the gaps of the observed score
///    distribution, [`threshold::gap_thresholds`]),
/// 2. enumerates candidate covers of the resulting failing set up to the
///    fault budget ([`decoder::covers_up_to`]),
/// 3. ranks them by the **fused** posterior over every observed round
///    ([`decoder::CoverPosterior`]): per-round log-likelihoods sum at
///    each point of a joint magnitude profile, so covers predicting the
///    wrong per-class fault multiplicities — at *any* observed
///    amplification — are pushed down even when their round-1 pass/fail
///    pattern matches exactly,
/// 4. accuses the posterior-marginal-best coupling and point-verifies
///    its magnitude.
///
/// When the fused posterior is still ambiguous (no consensus member),
/// up to [`MultiFaultConfig::fusion_rounds`] extra adaptive rounds
/// re-run the class battery at another rung of the repetition ladder
/// and accumulate the fresh scores into the posterior — each with its
/// own re-calibrated cut ([`threshold::contrast_threshold`]) that
/// eliminates covers the new evidence decisively contradicts. Only
/// after the fusion budget is spent does the loop fall back to
/// re-interpreting round-1 scores at gap thresholds (PR 3's walk).
///
/// A verified accusation is returned for exclusion (the sequential loop
/// then re-diagnoses the remainder); a refuted one is vetoed from later
/// rounds' candidate pools.
#[allow(clippy::too_many_arguments)]
fn ranked_isolate<E: TestExecutor>(
    exec: &mut E,
    space: &LabelSpace,
    excluded: &BTreeSet<Coupling>,
    config: &MultiFaultConfig,
    reps: usize,
    conflicted: &crate::single_fault::DiagnosisReport,
    tie_margin: f64,
    tests_run: &mut usize,
    adaptations: &mut usize,
) -> Option<Coupling> {
    let classes = first_round_classes(space);
    if conflicted.tests.len() < classes.len() {
        return None; // not a round-1 conflict record
    }
    let observed: Vec<(SubcubeClass, f64)> =
        classes.iter().copied().zip(conflicted.tests.iter().map(|t| t.fidelity)).collect();
    let scores: Vec<f64> = observed.iter().map(|&(_, s)| s).collect();
    let mut posterior = decoder::CoverPosterior::new();
    posterior.observe(observed.clone(), CoverModel::new(reps, config.score, config.ranked_sigma));

    // Round thresholds: the configured one first, then the score gaps.
    let mut thresholds = vec![config.threshold];
    thresholds.extend(threshold::gap_thresholds(
        &scores,
        config.threshold,
        config.max_threshold_retunes,
    ));

    // Fresh-evidence rungs: the ladder's other repetition counts, each
    // probed at most once — re-probing a rung the posterior has already
    // absorbed adds no information on a deterministic score model. Only
    // the *spendable* fusion budget extends the round count; a ladder
    // with no other rungs keeps the plain retune budget.
    let probe_rungs: Vec<usize> =
        config.reps_ladder.iter().copied().filter(|&r| r != reps).collect();
    let fusion_budget = config.fusion_rounds.min(probe_rungs.len());
    let mut fusion_left = fusion_budget;
    let mut probe_idx = 0usize;

    // The interrogation extension resolves tied covers by successive
    // point tests: each refuted accusation vetoes one disputed member
    // and the covers re-rank, so the budget must admit several vetoes
    // before the true member is reached (a tie family of k members
    // needs up to k−1 eliminations). Cheap: each round costs one point
    // test.
    let tie_break_budget =
        if config.decoder == DecoderPolicy::Interrogate { config.max_faults.min(4) } else { 0 };
    let mut vetoed: BTreeSet<Coupling> = BTreeSet::new();
    let mut t_idx = 0usize;
    for _round in 0..config.max_threshold_retunes + fusion_budget + tie_break_budget {
        let t = thresholds[t_idx.min(thresholds.len() - 1)];
        let failing: FailingSet = observed
            .iter()
            .filter(|&&(_, s)| s < t)
            .map(|&(class, _)| (class.bit, class.value))
            .collect();
        if failing.is_empty() {
            t_idx += 1;
            if t_idx >= thresholds.len() {
                return None; // walk saturated: further rounds are identical
            }
            continue;
        }
        let mut barred = excluded.clone();
        barred.extend(vetoed.iter().copied());
        let covers = decoder::covers_up_to(
            &failing,
            space,
            &barred,
            config.max_faults.max(1),
            RANKED_COVER_CAP,
        );
        let ranked = posterior.rank(&covers);
        let accused = match decoder::consensus_accusation_within(&ranked, tie_margin) {
            Some(c) => Some(c),
            None if fusion_left > 0 => {
                // Ambiguous under all evidence so far: spend a fusion
                // round — re-run the class battery at the next unprobed
                // ladder rung and fuse its scores into the posterior,
                // with the round's own re-calibrated cut.
                let probe_reps = probe_rungs[probe_idx];
                probe_idx += 1;
                fusion_left -= 1;
                let u_hat = ranked
                    .first()
                    .map(|rc| rc.magnitude)
                    .unwrap_or_else(|| config.fault_magnitude.max(0.25));
                fuse_class_round(
                    exec,
                    space,
                    excluded,
                    config,
                    reps,
                    probe_reps,
                    u_hat,
                    &classes,
                    &mut posterior,
                    tests_run,
                    adaptations,
                );
                continue; // same threshold, fused evidence
            }
            None if config.decoder == DecoderPolicy::Interrogate => {
                // Every rung has been fused and the surviving covers
                // still disagree. The paper's pipeline stops here (the
                // Table II failure residue); the interrogation extension
                // instead point-tests the *disputed* member — in some
                // but not all near-optimal covers — that the fused
                // marginal weights highest. A faulty outcome is a
                // diagnosis; a healthy one vetoes the member and every
                // cover containing it, collapsing the tie family one
                // point test at a time (genuinely tied disjoint covers
                // share no member, so consensus alone abstains forever).
                // Only a fully empty candidate set falls through to the
                // gap walk.
                decoder::disputed_members(&ranked, tie_margin)
                    .into_iter()
                    .next()
                    .or_else(|| decoder::marginal_accusation(&ranked))
            }
            None => None,
        };
        let Some(accused) = accused else {
            // No candidate left at this cut: re-calibrate into the next
            // score gap and re-interpret the round-1 failing set.
            t_idx += 1;
            if t_idx >= thresholds.len() {
                return None; // walk saturated: further rounds are identical
            }
            continue;
        };
        *adaptations += 1;
        exec.note_adaptation(0);
        if magnitude_verify(exec, accused, reps, config, tests_run) {
            return Some(accused);
        }
        // A refuted accusation stays at this threshold: the vetoed
        // coupling leaves the candidate pool and the covers re-rank.
        vetoed.insert(accused);
    }
    None
}

/// One cross-round evidence-fusion round: runs the full first-round
/// class battery at `probe_reps` repetitions and accumulates the analog
/// scores into the cover posterior, with the round's pass/fail cut
/// re-calibrated to the fitted magnitude `u_hat`
/// ([`threshold::contrast_threshold`]) and its noise width rescaled to
/// the rung ([`threshold::rescale_sigma`]). Costs one adaptation plus
/// one class battery.
#[allow(clippy::too_many_arguments)]
fn fuse_class_round<E: TestExecutor>(
    exec: &mut E,
    space: &LabelSpace,
    excluded: &BTreeSet<Coupling>,
    config: &MultiFaultConfig,
    from_reps: usize,
    probe_reps: usize,
    u_hat: f64,
    classes: &[SubcubeClass],
    posterior: &mut decoder::CoverPosterior,
    tests_run: &mut usize,
    adaptations: &mut usize,
) {
    *adaptations += 1;
    let compiled: usize = classes.iter().map(|c| c.couplings(space, excluded).len()).sum();
    exec.note_adaptation(compiled);
    let fresh: Vec<(SubcubeClass, f64)> = classes
        .iter()
        .map(|&class| {
            let couplings = class.couplings(space, excluded);
            if couplings.is_empty() {
                return (class, 1.0); // nothing under test: trivially clean
            }
            let spec = TestSpec::for_couplings(
                format!("fusion {class} x{probe_reps}MS"),
                &couplings,
                probe_reps,
            )
            .with_score(config.score);
            *tests_run += 1;
            (class, exec.run_test(&spec, config.shots))
        })
        .collect();
    let sigma = threshold::rescale_sigma(config.ranked_sigma, from_reps, probe_reps);
    posterior.observe_round(decoder::EvidenceRound {
        observed: fresh,
        model: CoverModel::new(probe_reps, config.score, sigma),
        veto_threshold: Some(threshold::contrast_threshold(u_hat, probe_reps)),
    });
}

/// Extension path: on conflicting syndromes, re-observe the first-round
/// failing set, enumerate minimal set-cover explanations, and point-test
/// every implicated coupling individually. Returns verified faults.
fn cover_fallback<E: TestExecutor>(
    exec: &mut E,
    space: &LabelSpace,
    excluded: &BTreeSet<Coupling>,
    config: &MultiFaultConfig,
    reps: usize,
    tests_run: &mut usize,
    adaptations: &mut usize,
) -> Vec<Coupling> {
    // Re-observe round 1 as a failing set.
    let mut failing: FailingSet = FailingSet::new();
    for class in first_round_classes(space) {
        let couplings = class.couplings(space, excluded);
        if couplings.is_empty() {
            continue;
        }
        let spec = TestSpec::for_couplings(format!("fallback round1 {class}"), &couplings, reps)
            .with_score(config.score);
        *tests_run += 1;
        if exec.run_test(&spec, config.shots) < config.threshold {
            failing.insert((class.bit, class.value));
        }
    }
    *adaptations += 1;
    exec.note_adaptation(0);
    // Candidates implicated by any minimal explanation.
    let covers = decoder::minimal_covers(&failing, space, excluded, config.max_faults, 8);
    let mut implicated: BTreeSet<Coupling> = covers.into_iter().flatten().collect();
    // Complementary pairs are invisible to round 1; point-testing them all
    // would defeat the log-test budget, so only syndrome-bearing
    // candidates are checked here.
    let mut confirmed = Vec::new();
    while let Some(c) = implicated.pop_first() {
        let spec = TestSpec::for_couplings(format!("fallback verify {c}"), &[c], reps)
            .with_score(config.score);
        *tests_run += 1;
        if exec.run_test(&spec, config.shots) < config.threshold {
            confirmed.push(c);
        }
    }
    confirmed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ExactExecutor;

    fn config() -> MultiFaultConfig {
        MultiFaultConfig {
            reps_ladder: vec![2, 4],
            threshold: 0.5,
            canary_threshold: 0.5,
            shots: 1,
            canary_shots: 1,
            max_faults: 6,
            decoder: DecoderPolicy::Greedy,
            ranked_sigma: crate::threshold::MODEL_ERROR_FLOOR,
            score: ScoreMode::ExactTarget,
            canary_score: ScoreMode::ExactTarget,
            max_threshold_retunes: 0,
            fusion_rounds: 0,
            fault_magnitude: 0.10,
            canary_rotations: 0,
            canary_seed: 0,
        }
    }

    #[test]
    fn clean_machine_converges_immediately() {
        let mut exec = ExactExecutor::new(8);
        let report = diagnose_all(&mut exec, 8, &config());
        assert!(report.converged);
        assert!(report.diagnosed.is_empty());
        assert_eq!(report.tests_run, 1, "one canary only");
    }

    #[test]
    fn single_fault_end_to_end() {
        let truth = Coupling::new(2, 6);
        let mut exec = ExactExecutor::new(8).with_fault(truth, 0.35);
        let report = diagnose_all(&mut exec, 8, &config());
        assert!(report.converged);
        assert_eq!(report.couplings(), vec![truth]);
        // Cost model: ~4k+1 adaptations for k faults (§V-C).
        assert!(
            report.adaptations <= 4 + 2,
            "adaptations {} exceed the 4k+1 budget (+slack)",
            report.adaptations
        );
    }

    #[test]
    fn two_faults_of_different_magnitude_are_peeled() {
        // A big fault and a small one: magnitude separation isolates the
        // big one at low amplification, the small one after exclusion.
        let big = Coupling::new(0, 4);
        let small = Coupling::new(2, 5);
        let mut exec = ExactExecutor::new(8).with_fault(big, 0.45).with_fault(small, 0.16);
        let mut cfg = config();
        cfg.reps_ladder = vec![2, 4, 8];
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged, "did not converge: {report:?}");
        assert_eq!(report.couplings(), vec![big, small]);
        assert!(report.adaptations <= 4 * 2 + 2, "adaptations {}", report.adaptations);
    }

    #[test]
    fn three_faults_spread_in_magnitude() {
        let faults =
            [(Coupling::new(0, 7), 0.48), (Coupling::new(1, 3), 0.22), (Coupling::new(4, 6), 0.09)];
        let mut exec = ExactExecutor::new(8).with_faults(faults.iter().map(|&(c, u)| (c, u)));
        let mut cfg = config();
        cfg.reps_ladder = vec![2, 4, 8, 16];
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged, "{report:?}");
        let mut expect: Vec<Coupling> = faults.iter().map(|&(c, _)| c).collect();
        expect.sort();
        assert_eq!(report.couplings(), expect);
    }

    #[test]
    fn equal_magnitude_collision_without_fallback_fails_gracefully() {
        // Conflicting syndromes at equal magnitude: the paper pipeline
        // stops without mis-diagnosing.
        let a = Coupling::new(0, 2); // syndrome (0,0),(2,0)
        let b = Coupling::new(1, 3); // syndrome (0,1),(2,0) → conflict at bit 0
        let mut exec = ExactExecutor::new(8).with_fault(a, 0.3).with_fault(b, 0.3);
        let report = diagnose_all(&mut exec, 8, &config());
        assert!(!report.converged);
        for d in &report.diagnosed {
            assert!(d.coupling == a || d.coupling == b, "no false accusations");
        }
    }

    #[test]
    fn cover_fallback_resolves_equal_magnitude_collision() {
        let a = Coupling::new(0, 2);
        let b = Coupling::new(1, 3);
        let mut exec = ExactExecutor::new(8).with_fault(a, 0.3).with_fault(b, 0.3);
        let mut cfg = config();
        cfg.decoder = DecoderPolicy::SetCoverFallback;
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged, "{report:?}");
        assert_eq!(report.couplings(), vec![a, b]);
    }

    #[test]
    fn ranked_decoder_resolves_equal_magnitude_collision() {
        // The same collision, resolved by likelihood ranking alone: no
        // exhaustive point verification of every implicated coupling,
        // just score-ranked accusations with per-accusation verification.
        let a = Coupling::new(0, 2);
        let b = Coupling::new(1, 3);
        let mut exec = ExactExecutor::new(8).with_fault(a, 0.3).with_fault(b, 0.3);
        let mut cfg = config();
        cfg.decoder = DecoderPolicy::Ranked;
        cfg.max_threshold_retunes = 4;
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged, "{report:?}");
        assert_eq!(report.couplings(), vec![a, b]);
    }

    #[test]
    fn inconclusive_union_syndrome_is_diagnosed_by_fusion_routing() {
        // Three equal faults sharing qubit 4: the union syndrome
        // (0,0),(1,0),(2,1) has no bit conflict — the single-fault
        // protocol reports Inconclusive, the failure mode that dominated
        // the 3-fault Table II cell before the evidence-fusion decoder
        // was routed these records. PR 3's pipeline abandoned such
        // trials with zero accusations; the fused posterior's consensus
        // must now accuse and verify the member every near-optimal
        // cover shares ({0,4}). The remainder genuinely aliases
        // (several disjoint perfect-fit explanations — the paper's
        // residual failure class), so the paper-faithful policy stops
        // honestly there, while the interrogation extension point-tests
        // the dispute and recovers the full planted set.
        let truth = [Coupling::new(0, 4), Coupling::new(2, 4), Coupling::new(4, 5)];
        let mut expect = truth.to_vec();
        expect.sort();
        let mut cfg = config();
        cfg.max_threshold_retunes = 4;
        cfg.fusion_rounds = 2;

        cfg.decoder = DecoderPolicy::Ranked;
        let mut exec = ExactExecutor::new(8).with_faults(truth.iter().map(|&c| (c, 0.3)));
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert_eq!(
            report.couplings(),
            vec![Coupling::new(0, 4)],
            "consensus must verify the shared member: {report:?}"
        );
        assert!(!report.converged, "the aliased remainder must be reported, not guessed");

        cfg.decoder = DecoderPolicy::Interrogate;
        let mut exec = ExactExecutor::new(8).with_faults(truth.iter().map(|&c| (c, 0.3)));
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged, "{report:?}");
        assert_eq!(report.couplings(), expect);
    }

    #[test]
    fn interrogation_extension_splits_aliasing_family_ranked_cannot() {
        // {2,7} and {4,7} produce a length-2 union aliased against the
        // healthy {6,7} (identical class scores), plus the invisible
        // complementary {1,6}: the paper-faithful ranked policy must
        // stop without a false accusation, while the interrogation
        // extension point-tests the disputed members and recovers the
        // full planted set.
        let truth = [Coupling::new(1, 6), Coupling::new(2, 7), Coupling::new(4, 7)];
        let mut expect = truth.to_vec();
        expect.sort();

        let mut cfg = config();
        cfg.max_threshold_retunes = 4;
        cfg.fusion_rounds = 2;

        cfg.decoder = DecoderPolicy::Ranked;
        let mut exec = ExactExecutor::new(8).with_faults(truth.iter().map(|&c| (c, 0.3)));
        let ranked_report = diagnose_all(&mut exec, 8, &cfg);
        assert_ne!(ranked_report.couplings(), expect, "fixture must actually defeat ranked");
        for d in &ranked_report.diagnosed {
            assert!(truth.contains(&d.coupling), "no false accusations under ranked");
        }

        cfg.decoder = DecoderPolicy::Interrogate;
        let mut exec = ExactExecutor::new(8).with_faults(truth.iter().map(|&c| (c, 0.3)));
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged, "{report:?}");
        assert_eq!(report.couplings(), expect);
    }

    #[test]
    fn ranked_decoder_never_accuses_healthy_couplings() {
        // Every diagnosed coupling under the ranked policy passed a
        // magnitude verification, so even unresolved collisions must not
        // produce false accusations.
        let faults = [Coupling::new(0, 1), Coupling::new(2, 3), Coupling::new(4, 5)];
        let mut exec = ExactExecutor::new(8).with_faults(faults.iter().map(|&c| (c, 0.3)));
        let mut cfg = config();
        cfg.decoder = DecoderPolicy::Ranked;
        cfg.max_threshold_retunes = 4;
        let report = diagnose_all(&mut exec, 8, &cfg);
        for d in &report.diagnosed {
            assert!(faults.contains(&d.coupling), "false accusation {}", d.coupling);
        }
    }

    #[test]
    fn ranked_decoder_matches_greedy_on_spread_magnitudes() {
        // Magnitude-separated workloads never reach the collision path,
        // so ranked and greedy must agree exactly there.
        let big = Coupling::new(0, 4);
        let small = Coupling::new(2, 5);
        for decoder in [DecoderPolicy::Greedy, DecoderPolicy::Ranked] {
            let mut exec = ExactExecutor::new(8).with_fault(big, 0.45).with_fault(small, 0.16);
            let mut cfg = config();
            cfg.reps_ladder = vec![2, 4, 8];
            cfg.decoder = decoder;
            cfg.max_threshold_retunes = 4;
            let report = diagnose_all(&mut exec, 8, &cfg);
            assert!(report.converged, "{decoder}: {report:?}");
            assert_eq!(report.couplings(), vec![big, small], "{decoder}");
        }
    }

    #[test]
    fn even_degree_triangle_is_invisible_to_the_fixed_canary() {
        // The blind spot: every qubit of a fault triangle has degree 2,
        // so the worst-qubit canary agreement is (1 + cos²(r·u·π/2))/2 ≥
        // 1/2 at ANY magnitude — the loop "converges" on a faulty
        // machine without running a single diagnosis.
        let triangle = [Coupling::new(0, 2), Coupling::new(2, 4), Coupling::new(0, 4)];
        let mut cfg = config();
        cfg.canary_score = ScoreMode::WorstQubit;
        let mut exec = ExactExecutor::new(8).with_faults(triangle.iter().map(|&c| (c, 0.3)));
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged, "the fixed canary must (wrongly) report clean");
        assert!(report.diagnosed.is_empty());
        assert_eq!(report.tests_run, 1, "one canary only — the false negative is silent");
    }

    #[test]
    fn rotating_canary_exposes_the_triangle() {
        // The countermeasure: seeded random-subset canaries intersect
        // the triangle in an odd-degree subgraph with probability 3/4
        // per rotation; the tripped subset restricts one diagnosis round,
        // the excluded member breaks the parity, and the ordinary loop
        // finishes the job.
        let triangle = [Coupling::new(0, 2), Coupling::new(2, 4), Coupling::new(0, 4)];
        let mut expect = triangle.to_vec();
        expect.sort();
        let mut cfg = config();
        cfg.canary_score = ScoreMode::WorstQubit;
        cfg.decoder = DecoderPolicy::Ranked;
        cfg.max_threshold_retunes = 4;
        cfg.fusion_rounds = 2;
        cfg.canary_rotations = 4;
        cfg.canary_seed = 11;
        let mut exec = ExactExecutor::new(8).with_faults(triangle.iter().map(|&c| (c, 0.3)));
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged, "{report:?}");
        assert_eq!(report.couplings(), expect);
    }

    #[test]
    fn rotations_add_no_tests_on_a_clean_machine_beyond_the_budget() {
        // A clean machine pays exactly the rotation budget (every subset
        // passes) and still converges with zero accusations.
        let mut cfg = config();
        cfg.canary_rotations = 3;
        cfg.canary_seed = 5;
        let mut exec = ExactExecutor::new(8);
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged);
        assert!(report.diagnosed.is_empty());
        assert!(
            report.tests_run <= 1 + 3,
            "canary + at most three rotations, got {}",
            report.tests_run
        );
    }

    #[test]
    fn zero_rotations_is_byte_identical_to_the_legacy_loop() {
        // canary_rotations = 0 (the paper default) must not change a
        // single executed test: same counts, same outcome.
        let faults = [(Coupling::new(0, 4), 0.42), (Coupling::new(2, 5), 0.16)];
        let mut cfg = config();
        cfg.reps_ladder = vec![2, 4, 8];
        let mut exec = ExactExecutor::new(8).with_faults(faults.iter().copied());
        let legacy = diagnose_all(&mut exec, 8, &cfg);
        cfg.canary_seed = 777; // a seed without rotations is inert
        let mut exec = ExactExecutor::new(8).with_faults(faults.iter().copied());
        let gated = diagnose_all(&mut exec, 8, &cfg);
        assert_eq!(legacy.tests_run, gated.tests_run);
        assert_eq!(legacy.adaptations, gated.adaptations);
        assert_eq!(legacy.couplings(), gated.couplings());
    }

    #[test]
    fn tied_disjoint_covers_interrogated_to_resolution() {
        // The second blind spot: {0,3} (syndrome exactly {(2,0)}) and
        // {4,7} (exactly {(2,1)}) are planted; {1,2} and {5,6} share
        // those syndromes coupling-for-coupling, so all four cross
        // covers predict identical scores at every rung. Ranked must
        // abstain (no common member); Interrogate must point-test the
        // dispute to resolution without a false accusation.
        let truth = [Coupling::new(0, 3), Coupling::new(4, 7)];
        let mut expect = truth.to_vec();
        expect.sort();
        let mut cfg = config();
        cfg.max_threshold_retunes = 4;
        cfg.fusion_rounds = 2;
        cfg.max_faults = 4;

        cfg.decoder = DecoderPolicy::Ranked;
        let mut exec = ExactExecutor::new(8).with_faults(truth.iter().map(|&c| (c, 0.3)));
        let ranked = diagnose_all(&mut exec, 8, &cfg);
        assert!(ranked.diagnosed.is_empty(), "a genuine tie admits no consensus: {ranked:?}");
        assert!(!ranked.converged, "the abstention must be reported");

        cfg.decoder = DecoderPolicy::Interrogate;
        let mut exec = ExactExecutor::new(8).with_faults(truth.iter().map(|&c| (c, 0.3)));
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged, "{report:?}");
        assert_eq!(report.couplings(), expect);
    }

    #[test]
    fn sixteen_qubits_two_faults() {
        let big = Coupling::new(3, 12);
        let small = Coupling::new(0, 9);
        let mut exec = ExactExecutor::new(16).with_fault(big, 0.42).with_fault(small, 0.14);
        let mut cfg = config();
        cfg.reps_ladder = vec![2, 4, 8];
        let report = diagnose_all(&mut exec, 16, &cfg);
        assert!(report.converged, "{report:?}");
        assert_eq!(
            report.couplings(),
            vec![small, big]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
    }
}
