//! Multi-fault diagnosis: the Fig. 5 state machine (§V-C).
//!
//! The key principle: *separate faults in time and magnitude before
//! diagnosing them; diagnosed faults are separated by exclusion.* The
//! loop is: canary → pick the gate-repetition count that just trips the
//! full-coupling test (magnitude separation; larger faults trip at lower
//! amplification) → run the single-fault protocol at that amplification →
//! verify → exclude the diagnosed coupling → repeat until the canary
//! passes. Costs: `4k + 1` adaptive rounds for `k` faults (paper §V-C).
//!
//! When faults of equal magnitude collide (conflicting syndromes), the
//! paper's pipeline cannot separate them — that residual failure
//! probability is exactly what Table II quantifies. As an optional
//! extension beyond the paper (documented in `DESIGN.md`), the
//! [`set-cover decoder`](crate::decoder) can propose candidate sets whose
//! members are then point-verified individually; enable it with
//! [`MultiFaultConfig::use_cover_fallback`].

use crate::classes::{first_round_classes, LabelSpace};
use crate::decoder::{self, FailingSet};
use crate::executor::TestExecutor;
use crate::single_fault::{Diagnosis, SingleFaultProtocol};
use crate::testplan::{ScoreMode, TestSpec};
use itqc_circuit::Coupling;
use std::collections::BTreeSet;

/// Configuration of the multi-fault loop.
#[derive(Clone, Debug)]
pub struct MultiFaultConfig {
    /// Ascending even repetition counts tried for magnitude separation.
    pub reps_ladder: Vec<usize>,
    /// Pass/fail fidelity threshold for class and verification tests.
    pub threshold: f64,
    /// Pass/fail threshold for the full-coupling canary test (usually
    /// lower: it accumulates ambient error over every coupling).
    pub canary_threshold: f64,
    /// Shots per test circuit.
    pub shots: usize,
    /// Shots for the cheap canary/magnitude tripwire tests (a coarse
    /// pass/fail needs far fewer shots than a diagnosis test).
    pub canary_shots: usize,
    /// Abort after this many diagnosed faults (sanity bound).
    pub max_faults: usize,
    /// Enables the set-cover + point-verification fallback on syndrome
    /// conflicts (extension beyond the paper's pipeline).
    pub use_cover_fallback: bool,
    /// Pass/fail statistic for every test in the pipeline.
    pub score: ScoreMode,
    /// Pass/fail statistic for the full-coupling canary and magnitude
    /// probes. Defaults to [`ScoreMode::WorstQubit`]: a canary spans every
    /// coupling, so its exact-string statistic is both exponentially
    /// fragile and (at 32+ qubits) beyond the exact engine's support.
    pub canary_score: ScoreMode,
    /// Fig. 5's threshold adjustment: on conflicting syndromes, retry the
    /// single-fault protocol with up to this many lowered thresholds
    /// (placed in the gaps of the observed round-1 scores) so that only
    /// the largest fault trips tests. 0 disables.
    pub max_threshold_retunes: usize,
    /// Minimum |under-rotation| that counts as a fault during magnitude
    /// verification of retuned diagnoses (the paper's ~10% recalibration
    /// line in Fig. 7C).
    pub fault_magnitude: f64,
}

impl MultiFaultConfig {
    /// Paper-flavoured defaults: 2-MS and 4-MS tests, 0.5/0.25 thresholds,
    /// 300 shots, no fallback.
    pub fn paper_defaults() -> Self {
        MultiFaultConfig {
            reps_ladder: vec![2, 4],
            threshold: 0.5,
            canary_threshold: 0.25,
            shots: 300,
            canary_shots: 30,
            max_faults: 8,
            use_cover_fallback: false,
            score: ScoreMode::ExactTarget,
            canary_score: ScoreMode::WorstQubit,
            max_threshold_retunes: 4,
            fault_magnitude: 0.10,
        }
    }
}

/// One diagnosed coupling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiagnosedFault {
    /// The coupling found faulty (and verified).
    pub coupling: Coupling,
    /// The repetition count at which it was isolated.
    pub reps: usize,
}

/// Outcome of a full multi-fault diagnosis run.
#[derive(Clone, Debug)]
pub struct MultiFaultReport {
    /// Diagnosed (verified) faults in discovery order.
    pub diagnosed: Vec<DiagnosedFault>,
    /// Total test circuits executed.
    pub tests_run: usize,
    /// Total adaptive rounds consumed.
    pub adaptations: usize,
    /// `true` when the final canary passed (machine clean after
    /// excluding the diagnosed couplings).
    pub converged: bool,
}

impl MultiFaultReport {
    /// Just the coupling list, sorted.
    pub fn couplings(&self) -> Vec<Coupling> {
        let mut out: Vec<Coupling> = self.diagnosed.iter().map(|d| d.coupling).collect();
        out.sort();
        out
    }
}

/// Runs the full Fig. 5 loop.
///
/// # Panics
///
/// Panics if the ladder is empty or contains odd repetition counts.
pub fn diagnose_all<E: TestExecutor>(
    exec: &mut E,
    n_qubits: usize,
    config: &MultiFaultConfig,
) -> MultiFaultReport {
    diagnose_all_excluding(exec, n_qubits, config, &BTreeSet::new())
}

/// [`diagnose_all`] with couplings excluded up front — already-diagnosed
/// (quarantined/mapped-around) or physically unused couplings, per
/// Corollary V.12. Excluded couplings appear in no test and are never
/// accused.
///
/// # Panics
///
/// Panics if the ladder is empty or contains odd repetition counts.
pub fn diagnose_all_excluding<E: TestExecutor>(
    exec: &mut E,
    n_qubits: usize,
    config: &MultiFaultConfig,
    pre_excluded: &BTreeSet<Coupling>,
) -> MultiFaultReport {
    assert!(!config.reps_ladder.is_empty(), "need at least one repetition count");
    assert!(
        config.reps_ladder.iter().all(|r| r % 2 == 0 && *r >= 2),
        "repetition counts must be even"
    );
    let space = LabelSpace::new(n_qubits);
    let mut excluded: BTreeSet<Coupling> = pre_excluded.clone();
    let mut diagnosed: Vec<DiagnosedFault> = Vec::new();
    let mut tests_run = 0usize;
    let mut adaptations = 0usize;
    let max_reps = *config.reps_ladder.last().unwrap();
    let mut converged = false;

    'outer: while diagnosed.len() <= config.max_faults {
        // Canary: every relevant coupling at maximal amplification.
        let relevant: Vec<Coupling> =
            space.all_couplings().into_iter().filter(|c| !excluded.contains(c)).collect();
        if relevant.is_empty() {
            converged = true;
            break;
        }
        let canary =
            TestSpec::for_couplings("canary", &relevant, max_reps).with_score(config.canary_score);
        tests_run += 1;
        let f = exec.run_test(&canary, config.canary_shots);
        if f >= config.canary_threshold {
            converged = true;
            break;
        }

        // Magnitude separation: smallest amplification that still trips
        // the full-coupling test (the biggest fault dominates there).
        adaptations += 1;
        exec.note_adaptation(relevant.len());
        let mut start_idx = config.reps_ladder.len() - 1;
        for (idx, &r) in config.reps_ladder.iter().enumerate() {
            if r == max_reps {
                break; // canary already told us it fails at max_reps
            }
            let probe = TestSpec::for_couplings(format!("magnitude x{r}MS"), &relevant, r)
                .with_score(config.canary_score);
            tests_run += 1;
            if exec.run_test(&probe, config.canary_shots) < config.canary_threshold {
                start_idx = idx;
                break;
            }
        }

        // Single-fault diagnosis, escalating amplification if nothing is
        // pinned down at the separation level.
        let mut progressed = false;
        for &reps in &config.reps_ladder[start_idx..] {
            let protocol = SingleFaultProtocol::new(n_qubits, reps, config.threshold, config.shots)
                .with_score(config.score)
                .exclude(excluded.iter().copied());
            let report = protocol.diagnose(exec);
            tests_run += report.tests_run();
            adaptations += report.adaptations;
            match report.diagnosis {
                Diagnosis::Fault(coupling) => {
                    diagnosed.push(DiagnosedFault { coupling, reps });
                    excluded.insert(coupling);
                    // Restart with the updated exclusion set (one more
                    // adaptive round: reconfigure the relevant set).
                    adaptations += 1;
                    exec.note_adaptation(1);
                    progressed = true;
                    break;
                }
                Diagnosis::MultipleFaultsSuspected => {
                    // Fig. 5: "reduce gate repetitions … the threshold is
                    // adjusted accordingly to maximise the fault vs
                    // no-fault contrast." Lower the threshold into the
                    // gaps of the observed score distribution so only the
                    // largest fault trips tests.
                    if config.max_threshold_retunes > 0 {
                        if let Some(c) = retune_and_isolate(
                            exec,
                            n_qubits,
                            &excluded,
                            config,
                            reps,
                            &report,
                            &mut tests_run,
                            &mut adaptations,
                        ) {
                            diagnosed.push(DiagnosedFault { coupling: c, reps });
                            excluded.insert(c);
                            adaptations += 1;
                            exec.note_adaptation(1);
                            progressed = true;
                            break;
                        }
                    }
                    if config.use_cover_fallback {
                        let confirmed = cover_fallback(
                            exec,
                            &space,
                            &excluded,
                            config,
                            reps,
                            &mut tests_run,
                            &mut adaptations,
                        );
                        if !confirmed.is_empty() {
                            for c in confirmed {
                                diagnosed.push(DiagnosedFault { coupling: c, reps });
                                excluded.insert(c);
                            }
                            progressed = true;
                            break;
                        }
                    }
                    // Equal-magnitude collision the pipeline cannot split.
                    break 'outer;
                }
                Diagnosis::NoFault | Diagnosis::Inconclusive => {
                    // Not visible at this amplification; escalate.
                }
            }
        }
        if !progressed {
            break;
        }
    }

    MultiFaultReport { diagnosed, tests_run, adaptations, converged }
}

/// Estimates the under-rotation magnitude of one coupling from a point
/// test and checks it against the configured fault line. A point test at
/// `r` repetitions scores `(1 + cos(r·u·π/2))/2`; inverted, that gives
/// `|û|`. Verification is capped at 4 repetitions so `|u| ≤ 0.5` stays on
/// the principal branch (no accidental-cancellation aliasing —
/// footnote 8's concern).
fn magnitude_verify<E: TestExecutor>(
    exec: &mut E,
    coupling: Coupling,
    reps: usize,
    config: &MultiFaultConfig,
    tests_run: &mut usize,
) -> bool {
    let verify_reps = reps.clamp(2, 4);
    let spec =
        TestSpec::for_couplings(format!("magnitude verify {coupling}"), &[coupling], verify_reps)
            .with_score(config.score);
    *tests_run += 1;
    let s = exec.run_test(&spec, config.shots).clamp(0.0, 1.0);
    let dev = (2.0 * s - 1.0).clamp(-1.0, 1.0).acos();
    let u_est = dev / (verify_reps as f64 * std::f64::consts::FRAC_PI_2);
    u_est.abs() >= config.fault_magnitude
}

/// Fig. 5's threshold-adjustment loop: take the conflicted first round's
/// observed scores, place candidate thresholds in the gaps between the
/// lowest scores (ascending), and re-run the single-fault protocol at each
/// until one isolates a coupling whose magnitude verification confirms a
/// real outlier.
#[allow(clippy::too_many_arguments)]
fn retune_and_isolate<E: TestExecutor>(
    exec: &mut E,
    n_qubits: usize,
    excluded: &BTreeSet<Coupling>,
    config: &MultiFaultConfig,
    reps: usize,
    conflicted: &crate::single_fault::DiagnosisReport,
    tests_run: &mut usize,
    adaptations: &mut usize,
) -> Option<Coupling> {
    let mut scores: Vec<f64> = conflicted.tests.iter().map(|t| t.fidelity).collect();
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    scores.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
    let candidates: Vec<f64> = scores
        .windows(2)
        .map(|w| (w[0] + w[1]) / 2.0)
        .filter(|&t| t < config.threshold)
        .take(config.max_threshold_retunes)
        .collect();
    for t in candidates {
        *adaptations += 1;
        exec.note_adaptation(0);
        let protocol = SingleFaultProtocol::new(n_qubits, reps, t, config.shots)
            .with_score(config.score)
            .exclude(excluded.iter().copied());
        let report = protocol.diagnose(exec);
        *tests_run += report.tests_run();
        *adaptations += report.adaptations;
        let candidate = match report.diagnosis {
            Diagnosis::Fault(c) => Some(c),
            Diagnosis::Inconclusive | Diagnosis::NoFault => report.candidate,
            Diagnosis::MultipleFaultsSuspected => None,
        };
        if let Some(c) = candidate {
            if magnitude_verify(exec, c, reps, config, tests_run) {
                return Some(c);
            }
        }
    }
    None
}

/// Extension path: on conflicting syndromes, re-observe the first-round
/// failing set, enumerate minimal set-cover explanations, and point-test
/// every implicated coupling individually. Returns verified faults.
fn cover_fallback<E: TestExecutor>(
    exec: &mut E,
    space: &LabelSpace,
    excluded: &BTreeSet<Coupling>,
    config: &MultiFaultConfig,
    reps: usize,
    tests_run: &mut usize,
    adaptations: &mut usize,
) -> Vec<Coupling> {
    // Re-observe round 1 as a failing set.
    let mut failing: FailingSet = FailingSet::new();
    for class in first_round_classes(space) {
        let couplings = class.couplings(space, excluded);
        if couplings.is_empty() {
            continue;
        }
        let spec = TestSpec::for_couplings(format!("fallback round1 {class}"), &couplings, reps)
            .with_score(config.score);
        *tests_run += 1;
        if exec.run_test(&spec, config.shots) < config.threshold {
            failing.insert((class.bit, class.value));
        }
    }
    *adaptations += 1;
    exec.note_adaptation(0);
    // Candidates implicated by any minimal explanation.
    let covers = decoder::minimal_covers(&failing, space, excluded, config.max_faults, 8);
    let mut implicated: BTreeSet<Coupling> = covers.into_iter().flatten().collect();
    // Complementary pairs are invisible to round 1; point-testing them all
    // would defeat the log-test budget, so only syndrome-bearing
    // candidates are checked here.
    let mut confirmed = Vec::new();
    while let Some(c) = implicated.pop_first() {
        let spec = TestSpec::for_couplings(format!("fallback verify {c}"), &[c], reps)
            .with_score(config.score);
        *tests_run += 1;
        if exec.run_test(&spec, config.shots) < config.threshold {
            confirmed.push(c);
        }
    }
    confirmed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ExactExecutor;

    fn config() -> MultiFaultConfig {
        MultiFaultConfig {
            reps_ladder: vec![2, 4],
            threshold: 0.5,
            canary_threshold: 0.5,
            shots: 1,
            canary_shots: 1,
            max_faults: 6,
            use_cover_fallback: false,
            score: ScoreMode::ExactTarget,
            canary_score: ScoreMode::ExactTarget,
            max_threshold_retunes: 0,
            fault_magnitude: 0.10,
        }
    }

    #[test]
    fn clean_machine_converges_immediately() {
        let mut exec = ExactExecutor::new(8);
        let report = diagnose_all(&mut exec, 8, &config());
        assert!(report.converged);
        assert!(report.diagnosed.is_empty());
        assert_eq!(report.tests_run, 1, "one canary only");
    }

    #[test]
    fn single_fault_end_to_end() {
        let truth = Coupling::new(2, 6);
        let mut exec = ExactExecutor::new(8).with_fault(truth, 0.35);
        let report = diagnose_all(&mut exec, 8, &config());
        assert!(report.converged);
        assert_eq!(report.couplings(), vec![truth]);
        // Cost model: ~4k+1 adaptations for k faults (§V-C).
        assert!(
            report.adaptations <= 4 + 2,
            "adaptations {} exceed the 4k+1 budget (+slack)",
            report.adaptations
        );
    }

    #[test]
    fn two_faults_of_different_magnitude_are_peeled() {
        // A big fault and a small one: magnitude separation isolates the
        // big one at low amplification, the small one after exclusion.
        let big = Coupling::new(0, 4);
        let small = Coupling::new(2, 5);
        let mut exec = ExactExecutor::new(8).with_fault(big, 0.45).with_fault(small, 0.16);
        let mut cfg = config();
        cfg.reps_ladder = vec![2, 4, 8];
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged, "did not converge: {report:?}");
        assert_eq!(report.couplings(), vec![big, small]);
        assert!(report.adaptations <= 4 * 2 + 2, "adaptations {}", report.adaptations);
    }

    #[test]
    fn three_faults_spread_in_magnitude() {
        let faults =
            [(Coupling::new(0, 7), 0.48), (Coupling::new(1, 3), 0.22), (Coupling::new(4, 6), 0.09)];
        let mut exec = ExactExecutor::new(8).with_faults(faults.iter().map(|&(c, u)| (c, u)));
        let mut cfg = config();
        cfg.reps_ladder = vec![2, 4, 8, 16];
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged, "{report:?}");
        let mut expect: Vec<Coupling> = faults.iter().map(|&(c, _)| c).collect();
        expect.sort();
        assert_eq!(report.couplings(), expect);
    }

    #[test]
    fn equal_magnitude_collision_without_fallback_fails_gracefully() {
        // Conflicting syndromes at equal magnitude: the paper pipeline
        // stops without mis-diagnosing.
        let a = Coupling::new(0, 2); // syndrome (0,0),(2,0)
        let b = Coupling::new(1, 3); // syndrome (0,1),(2,0) → conflict at bit 0
        let mut exec = ExactExecutor::new(8).with_fault(a, 0.3).with_fault(b, 0.3);
        let report = diagnose_all(&mut exec, 8, &config());
        assert!(!report.converged);
        for d in &report.diagnosed {
            assert!(d.coupling == a || d.coupling == b, "no false accusations");
        }
    }

    #[test]
    fn cover_fallback_resolves_equal_magnitude_collision() {
        let a = Coupling::new(0, 2);
        let b = Coupling::new(1, 3);
        let mut exec = ExactExecutor::new(8).with_fault(a, 0.3).with_fault(b, 0.3);
        let mut cfg = config();
        cfg.use_cover_fallback = true;
        let report = diagnose_all(&mut exec, 8, &cfg);
        assert!(report.converged, "{report:?}");
        assert_eq!(report.couplings(), vec![a, b]);
    }

    #[test]
    fn sixteen_qubits_two_faults() {
        let big = Coupling::new(3, 12);
        let small = Coupling::new(0, 9);
        let mut exec = ExactExecutor::new(16).with_fault(big, 0.42).with_fault(small, 0.14);
        let mut cfg = config();
        cfg.reps_ladder = vec![2, 4, 8];
        let report = diagnose_all(&mut exec, 16, &cfg);
        assert!(report.converged, "{report:?}");
        assert_eq!(
            report.couplings(),
            vec![small, big]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
    }
}
