//! Single-output test circuits (§VI).
//!
//! A test over a coupling set applies `r` consecutive fully-entangling MS
//! gates to every coupling in the set. `XX(π/2)^r = XX(r·π/2)`, so with
//! even `r` the ideal circuit maps `|0…0⟩` to a *classical* basis string:
//! for `r ≡ 0 (mod 4)` each coupling contributes identity, for
//! `r ≡ 2 (mod 4)` it contributes `X⊗X`; a qubit of degree `d` in the
//! coupling multigraph therefore ends at `(r/2)·d mod 2`. The test passes
//! when the measured string matches. Gate repetition is the paper's fault
//! *amplifier*: an under-rotation `u` accumulates to `r·u·π/2` of missing
//! angle before measurement.

use itqc_circuit::{Circuit, Coupling};
use itqc_sim::{BitString, XxCircuit};
use std::collections::BTreeMap;
use std::f64::consts::FRAC_PI_2;
use std::fmt;

/// How a test's pass/fail statistic is computed from measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ScoreMode {
    /// Fraction of shots landing exactly on the expected output string —
    /// the paper's literal "the test passes if the resulting state matches
    /// the initial state" (§VI). Sharp at hardware scale, but collapses
    /// exponentially with class size under ambient miscalibration.
    #[default]
    ExactTarget,
    /// The worst per-qubit agreement with the expected string ("deviation
    /// of the output population"). Scales to 32-qubit class tests where
    /// the exact-string probability vanishes (DESIGN.md §3); used by the
    /// Fig. 8/9 and Table II scaling reproductions.
    WorstQubit,
}

/// A fully specified single-output test circuit.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TestSpec {
    /// Human-readable provenance, e.g. `"round1 (2,1) x4MS"`.
    pub label: String,
    /// The distinct couplings exercised.
    pub couplings: Vec<Coupling>,
    /// MS gates in program order: `(coupling, θ)`.
    pub gates: Vec<(Coupling, f64)>,
    /// The expected output basis string for a fault-free machine.
    pub target: BitString,
    /// Gate repetitions per coupling.
    pub reps: usize,
    /// Pass/fail statistic.
    pub score: ScoreMode,
}

impl TestSpec {
    /// Builds the test for a coupling set with `reps` MS gates per
    /// coupling (must be even so the ideal output is classical).
    ///
    /// # Panics
    ///
    /// Panics if `reps` is zero or odd.
    pub fn for_couplings(label: impl Into<String>, couplings: &[Coupling], reps: usize) -> Self {
        assert!(
            reps >= 2 && reps.is_multiple_of(2),
            "single-output tests need an even repetition count"
        );
        let mut gates = Vec::with_capacity(couplings.len() * reps);
        for &c in couplings {
            for _ in 0..reps {
                gates.push((c, FRAC_PI_2));
            }
        }
        let target = expected_output(couplings, reps);
        TestSpec {
            label: label.into(),
            couplings: couplings.to_vec(),
            gates,
            target,
            reps,
            score: ScoreMode::ExactTarget,
        }
    }

    /// Sets the pass/fail statistic (builder style).
    pub fn with_score(mut self, score: ScoreMode) -> Self {
        self.score = score;
        self
    }

    /// Number of two-qubit gates in the circuit.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Renders the spec as a [`Circuit`] (for the dense simulation path).
    pub fn as_circuit(&self, n_qubits: usize) -> Circuit {
        let mut c = Circuit::new(n_qubits);
        for &(coupling, theta) in &self.gates {
            let (a, b) = coupling.endpoints();
            c.xx(a, b, theta);
        }
        c
    }

    /// Accumulates the spec into the commuting-XX circuit a machine with
    /// the given per-coupling under-rotations would actually execute:
    /// every programmed `θ` becomes `θ·(1−u)`. This is the batching
    /// entry point for executors that dispatch test plans through the
    /// `itqc_backend` seam — the returned circuit is exactly the cache
    /// key unit (register size + couplings + noisy angle bits), so two
    /// traps with identical coupling graphs and calibration profiles
    /// map the same spec to the same prepared circuit.
    pub fn noisy_xx(&self, n_qubits: usize, under_rotation: impl Fn(Coupling) -> f64) -> XxCircuit {
        let mut xx = XxCircuit::new(n_qubits);
        for &(coupling, theta) in &self.gates {
            let (a, b) = coupling.endpoints();
            xx.add_xx(a, b, theta * (1.0 - under_rotation(coupling)));
        }
        xx
    }
}

/// The full-coupling canary test over a coupling set: every relevant
/// coupling at `reps` amplification, scored with `score`. One shared
/// constructor so the Fig. 5 loop ([`crate::diagnose_all`]) and external
/// schedulers (the fleet's per-trap diagnostic cadence) provably run the
/// *same* tripwire circuit.
pub fn canary_for(couplings: &[Coupling], reps: usize, score: ScoreMode) -> TestSpec {
    TestSpec::for_couplings("canary", couplings, reps).with_score(score)
}

impl fmt::Display for TestSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} couplings x {}MS, target {:b}]",
            self.label,
            self.couplings.len(),
            self.reps,
            self.target
        )
    }
}

/// Footnote 8's cancellation breaker: a point test whose gate repetitions
/// are re-routed through a SWAP so that a fault which *cancels itself*
/// under plain repetition (e.g. a π beam-phase error, which flips the MS
/// rotation sign and makes pairs of gates compose to identity) still shows.
///
/// The circuit is the paper's example: (i) one MS gate on the suspect
/// coupling `{a, b}`, (ii) a SWAP between `b` and `partner`, (iii) one MS
/// gate on the healthy coupling `{a, partner}` — so consecutive "faulty"
/// gates never act back-to-back on the same coupling. Returned alongside
/// the circuit is its ideal output string (qubits `a` and `partner` end in
/// `|1⟩`).
///
/// This variant contains a SWAP, so it runs on the dense path (it is not a
/// commuting-XX circuit).
///
/// # Panics
///
/// Panics if the three qubits are not distinct or out of range.
pub fn cancellation_breaker(
    n_qubits: usize,
    suspect: Coupling,
    partner: usize,
) -> (Circuit, BitString) {
    let (a, b) = suspect.endpoints();
    assert!(partner < n_qubits && a < n_qubits && b < n_qubits, "qubit out of range");
    assert!(partner != a && partner != b, "partner must be a third qubit");
    let mut c = Circuit::new(n_qubits);
    c.xx(a, b, FRAC_PI_2);
    c.swap(b, partner);
    c.xx(a, partner, FRAC_PI_2);
    // Ideal evolution: XX(π/2) entangles (a,b); the SWAP moves b's half of
    // the pair onto `partner`; the second XX(π/2) completes XX(π) on the
    // moved pair → both flip. Qubit b ends holding partner's |0⟩.
    let target = ((1 as BitString) << a) | ((1 as BitString) << partner);
    (c, target)
}

/// The ideal output string of a repetition test: qubit `q` reads
/// `(r/2)·deg(q) mod 2`.
pub fn expected_output(couplings: &[Coupling], reps: usize) -> BitString {
    assert!(reps.is_multiple_of(2), "odd repetition counts leave entangled outputs");
    let mut degree: BTreeMap<usize, usize> = BTreeMap::new();
    for c in couplings {
        *degree.entry(c.lo()).or_insert(0) += 1;
        *degree.entry(c.hi()).or_insert(0) += 1;
    }
    let half = reps / 2;
    let mut target: BitString = 0;
    for (&q, &d) in &degree {
        if (half * d) % 2 == 1 {
            target |= (1 as BitString) << q;
        }
    }
    target
}

/// One SplitMix64 step — the same generator `par_trials` uses for seed
/// splitting, reused here so rotation subsets are deterministic in the
/// configuration seed alone (never in executor or thread state).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic seed for canary rotation `rotation` of outer diagnosis
/// round `round`: a SplitMix64 mix of the configured base seed and both
/// counters, so every (round, rotation) pair draws an independent subset
/// and re-running any round reproduces its rotations exactly.
pub fn rotation_seed(base: u64, round: u64, rotation: u64) -> u64 {
    let mut s = base ^ round.wrapping_mul(0xA076_1D64_78BD_642F);
    let mixed = splitmix64(&mut s);
    let mut s2 = mixed ^ rotation.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    splitmix64(&mut s2)
}

/// A rotating-canary spec: a seeded pseudo-random subset of the machine's
/// couplings, each included with probability 1/2, tested like the fixed
/// canary. A fault configuration in which every qubit has *even* faulty
/// degree (a cycle union in the coupling graph) passes the fixed canary at
/// any magnitude, but a random subset intersects it in an odd-degree
/// subgraph with high probability (for a triangle, 6 of the 8 subsets),
/// so no fixed parity class survives every rotation.
///
/// Returns the spec together with the drawn subset, or `None` when the
/// draw is trivial (empty, or the full set — which carries no parity
/// information beyond the fixed canary).
pub fn canary_rotation(
    label: impl Into<String>,
    couplings: &[Coupling],
    reps: usize,
    score: ScoreMode,
    seed: u64,
) -> Option<(TestSpec, Vec<Coupling>)> {
    let mut state = seed;
    let mut word = 0u64;
    let mut subset = Vec::new();
    for (i, &c) in couplings.iter().enumerate() {
        let bit = i % 64;
        if bit == 0 {
            word = splitmix64(&mut state);
        }
        if (word >> bit) & 1 == 1 {
            subset.push(c);
        }
    }
    if subset.is_empty() || subset.len() == couplings.len() {
        return None;
    }
    let spec = TestSpec::for_couplings(label, &subset, reps).with_score(score);
    Some((spec, subset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_sim::run;

    #[test]
    fn four_ms_target_is_all_zero() {
        let cs = [Coupling::new(0, 1), Coupling::new(1, 2)];
        let spec = TestSpec::for_couplings("t", &cs, 4);
        assert_eq!(spec.target, 0);
        assert_eq!(spec.gate_count(), 8);
    }

    #[test]
    fn two_ms_target_flips_odd_degree_qubits() {
        // Path 0-1-2: degrees 1,2,1 → qubits 0 and 2 flip.
        let cs = [Coupling::new(0, 1), Coupling::new(1, 2)];
        let spec = TestSpec::for_couplings("t", &cs, 2);
        assert_eq!(spec.target, 0b101);
    }

    #[test]
    fn ideal_machine_reaches_target_exactly() {
        // Verify the target prediction against the dense simulator for an
        // assortment of coupling sets and repetition counts.
        let sets: Vec<Vec<Coupling>> = vec![
            vec![Coupling::new(0, 1)],
            vec![Coupling::new(0, 1), Coupling::new(2, 3)],
            vec![Coupling::new(0, 1), Coupling::new(1, 2), Coupling::new(0, 2)],
            vec![
                Coupling::new(0, 2),
                Coupling::new(2, 4),
                Coupling::new(0, 4),
                Coupling::new(1, 3),
            ],
        ];
        for reps in [2usize, 4] {
            for cs in &sets {
                let spec = TestSpec::for_couplings("t", cs, reps);
                let state = run(&spec.as_circuit(5));
                let p = state.probability(spec.target as usize);
                assert!((p - 1.0).abs() < 1e-9, "set {cs:?} reps {reps}: P(target) = {p}");
            }
        }
    }

    #[test]
    fn complete_class_test_target() {
        // A first-round class of size 4 under 2-MS: degree 3 each → all
        // four qubits flip.
        let members = [0usize, 2, 4, 6];
        let mut cs = Vec::new();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                cs.push(Coupling::new(a, b));
            }
        }
        let spec = TestSpec::for_couplings("class(0,0)", &cs, 2);
        assert_eq!(spec.target, 0b1010101 & 0b1010101);
        assert_eq!(spec.target, (1 << 0) | (1 << 2) | (1 << 4) | (1 << 6));
    }

    #[test]
    fn noisy_xx_applies_under_rotations_and_canary_for_matches_inline() {
        let cs = [Coupling::new(0, 1), Coupling::new(1, 2)];
        let spec = TestSpec::for_couplings("t", &cs, 2);
        let faulty = Coupling::new(0, 1);
        let xx = spec.noisy_xx(4, |c| if c == faulty { 0.25 } else { 0.0 });
        let mut want = XxCircuit::new(4);
        want.add_xx(0, 1, FRAC_PI_2 * 0.75)
            .add_xx(0, 1, FRAC_PI_2 * 0.75)
            .add_xx(1, 2, FRAC_PI_2)
            .add_xx(1, 2, FRAC_PI_2);
        let key =
            |x: &XxCircuit| x.terms().map(|((a, b), t)| (a, b, t.to_bits())).collect::<Vec<_>>();
        assert_eq!(key(&xx), key(&want));
        // canary_for is byte-identical to the inline construction the
        // Fig. 5 loop historically used.
        let canary = canary_for(&cs, 4, ScoreMode::WorstQubit);
        let inline = TestSpec::for_couplings("canary", &cs, 4).with_score(ScoreMode::WorstQubit);
        assert_eq!(canary, inline);
    }

    #[test]
    #[should_panic(expected = "even repetition")]
    fn odd_reps_panics() {
        let _ = TestSpec::for_couplings("t", &[Coupling::new(0, 1)], 3);
    }

    #[test]
    fn cancellation_breaker_ideal_target() {
        let (circuit, target) = cancellation_breaker(8, Coupling::new(2, 6), 5);
        assert_eq!(target, (1 << 2) | (1 << 5));
        let p = run(&circuit).probability(target as usize);
        assert!((p - 1.0).abs() < 1e-10, "ideal circuit must hit its target, p={p}");
    }

    #[test]
    fn rotation_seeds_are_distinct_and_reproducible() {
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..4u64 {
            for rot in 0..4u64 {
                let s = rotation_seed(99, round, rot);
                assert_eq!(s, rotation_seed(99, round, rot));
                assert!(seen.insert(s), "round {round} rotation {rot} repeats a seed");
            }
        }
    }

    #[test]
    fn canary_rotation_is_a_proper_seeded_subset() {
        let couplings: Vec<Coupling> =
            (0..8).flat_map(|a| ((a + 1)..8).map(move |b| Coupling::new(a, b))).collect();
        let (spec, subset) =
            canary_rotation("rot", &couplings, 4, ScoreMode::WorstQubit, 7).expect("non-trivial");
        assert_eq!(spec.couplings, subset);
        assert_eq!(spec.score, ScoreMode::WorstQubit);
        assert!(!subset.is_empty() && subset.len() < couplings.len());
        // Same seed, same subset; different seed, (almost surely) different.
        let again = canary_rotation("rot", &couplings, 4, ScoreMode::WorstQubit, 7).unwrap().1;
        assert_eq!(subset, again);
        let other = canary_rotation("rot", &couplings, 4, ScoreMode::WorstQubit, 8).unwrap().1;
        assert_ne!(subset, other);
    }

    #[test]
    fn some_rotation_breaks_every_even_degree_triangle() {
        // The blind spot: a triangle passes the fixed canary at any
        // magnitude. Across a handful of rotations, some drawn subset
        // must intersect it in an odd-degree subgraph.
        let couplings: Vec<Coupling> =
            (0..8).flat_map(|a| ((a + 1)..8).map(move |b| Coupling::new(a, b))).collect();
        let triangle = [Coupling::new(0, 2), Coupling::new(2, 4), Coupling::new(0, 4)];
        let odd_intersection = |subset: &[Coupling]| {
            let hit: Vec<Coupling> =
                triangle.iter().copied().filter(|c| subset.contains(c)).collect();
            let spec_target = expected_output(&hit, 2);
            spec_target != 0 // some qubit has odd degree in the intersection
        };
        let broken = (0..4u64).any(|rot| {
            canary_rotation("rot", &couplings, 4, ScoreMode::WorstQubit, rotation_seed(5, 0, rot))
                .is_some_and(|(_, subset)| odd_intersection(&subset))
        });
        assert!(broken, "four rotations must expose the triangle");
    }

    #[test]
    fn footnote8_sign_fault_invisible_to_repetition_but_caught_by_swap() {
        use itqc_circuit::Gate;
        // The fault: every MS gate on {2,6} carries a π beam-phase error,
        // i.e. implements XX(−π/2) instead of XX(π/2). Two consecutive
        // applications compose to XX(−π) ≡ XX(π)·(global phase): the plain
        // 2-MS repetition test cannot see it.
        let faulty = Coupling::new(2, 6);
        let inject = |c: &Circuit| -> Circuit {
            let mut noisy = Circuit::new(c.n_qubits());
            for op in c.ops() {
                match (op.gate, op.coupling()) {
                    (Gate::Xx(t), Some(cc)) if cc == faulty => {
                        noisy.push(itqc_circuit::Op::two(
                            Gate::Ms { theta: t, phi1: std::f64::consts::PI, phi2: 0.0 },
                            op.qubits()[0],
                            op.qubits()[1],
                        ));
                    }
                    _ => {
                        noisy.push(*op);
                    }
                }
            }
            noisy
        };
        // Plain repetition test: passes despite the fault.
        let spec = TestSpec::for_couplings("rep", &[faulty], 2);
        let plain = inject(&spec.as_circuit(8));
        let p_plain = run(&plain).probability(spec.target as usize);
        assert!((p_plain - 1.0).abs() < 1e-10, "sign fault self-cancels: p={p_plain}");
        // Swap-insertion test: fails loudly.
        let (breaker, target) = cancellation_breaker(8, faulty, 5);
        let noisy = inject(&breaker);
        let p_breaker = run(&noisy).probability(target as usize);
        assert!(p_breaker < 0.1, "swap insertion must expose the fault: p={p_breaker}");
    }
}
