//! Baseline testing strategies the paper compares against (§IV, §VIII).
//!
//! * **Point checks** — test every coupling individually: `C(N,2)` tests,
//!   fully non-adaptive, the "brute-force diagnosis that scales poorly".
//! * **Binary search** — adaptively halve the suspect set:
//!   `⌈log₂ C(N,2)⌉ ≈ 2·log₂N − 1` tests, but *every* test is an
//!   adaptation (the next test depends on the last outcome).

use crate::classes::LabelSpace;
use crate::executor::TestExecutor;
use crate::testplan::TestSpec;
use itqc_circuit::Coupling;
use std::collections::BTreeSet;

/// Result of a baseline diagnosis.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineReport {
    /// Couplings found faulty.
    pub faulty: Vec<Coupling>,
    /// Test circuits executed.
    pub tests_run: usize,
    /// Adaptive rounds consumed.
    pub adaptations: usize,
}

/// Tests every coupling individually with `reps` MS gates; faulty =
/// fidelity below `threshold`.
pub fn point_check_all<E: TestExecutor>(
    exec: &mut E,
    n_qubits: usize,
    reps: usize,
    threshold: f64,
    shots: usize,
) -> BaselineReport {
    let space = LabelSpace::new(n_qubits);
    let mut faulty = Vec::new();
    let mut tests_run = 0;
    for c in space.all_couplings() {
        let spec = TestSpec::for_couplings(format!("point {c}"), &[c], reps);
        tests_run += 1;
        if exec.run_test(&spec, shots) < threshold {
            faulty.push(c);
        }
    }
    BaselineReport { faulty, tests_run, adaptations: 0 }
}

/// Adaptive binary search for a *single* fault: repeatedly test half of
/// the live suspect set; a failing half keeps the fault, a passing half is
/// cleared. Needs `⌈log₂ C(N,2)⌉` tests, each preceded by an adaptation.
///
/// Returns the surviving coupling (verified by a final point test), or
/// `None` if the final verification passes (no detectable fault).
pub fn binary_search_single<E: TestExecutor>(
    exec: &mut E,
    n_qubits: usize,
    reps: usize,
    threshold: f64,
    shots: usize,
    excluded: &BTreeSet<Coupling>,
) -> (Option<Coupling>, BaselineReport) {
    let space = LabelSpace::new(n_qubits);
    let mut suspects: Vec<Coupling> =
        space.all_couplings().into_iter().filter(|c| !excluded.contains(c)).collect();
    let mut tests_run = 0;
    let mut adaptations = 0;

    while suspects.len() > 1 {
        let half: Vec<Coupling> = suspects[..suspects.len() / 2].to_vec();
        adaptations += 1;
        exec.note_adaptation(half.len());
        let spec = TestSpec::for_couplings(format!("bisect |{}|", half.len()), &half, reps);
        tests_run += 1;
        let failed = exec.run_test(&spec, shots) < threshold;
        suspects = if failed { half } else { suspects[suspects.len() / 2..].to_vec() };
    }
    let candidate = suspects.pop();
    let verified = match candidate {
        Some(c) => {
            adaptations += 1;
            exec.note_adaptation(1);
            let spec = TestSpec::for_couplings(format!("bisect verify {c}"), &[c], reps);
            tests_run += 1;
            if exec.run_test(&spec, shots) < threshold {
                Some(c)
            } else {
                None
            }
        }
        None => None,
    };
    (verified, BaselineReport { faulty: verified.into_iter().collect(), tests_run, adaptations })
}

/// Repeated binary search for multiple faults: find one, exclude it,
/// repeat (the paper's §IV extension of binary search).
pub fn binary_search_multi<E: TestExecutor>(
    exec: &mut E,
    n_qubits: usize,
    reps: usize,
    threshold: f64,
    shots: usize,
    max_faults: usize,
) -> BaselineReport {
    let mut excluded = BTreeSet::new();
    let mut faulty = Vec::new();
    let mut tests_run = 0;
    let mut adaptations = 0;
    for _ in 0..=max_faults {
        let (found, report) =
            binary_search_single(exec, n_qubits, reps, threshold, shots, &excluded);
        tests_run += report.tests_run;
        adaptations += report.adaptations;
        match found {
            Some(c) => {
                faulty.push(c);
                excluded.insert(c);
            }
            None => break,
        }
    }
    BaselineReport { faulty, tests_run, adaptations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ExactExecutor;

    #[test]
    fn point_check_finds_all_faults() {
        let a = Coupling::new(0, 3);
        let b = Coupling::new(5, 6);
        let mut exec = ExactExecutor::new(8).with_fault(a, 0.3).with_fault(b, 0.3);
        let report = point_check_all(&mut exec, 8, 4, 0.5, 1);
        assert_eq!(report.faulty, vec![a, b]);
        assert_eq!(report.tests_run, 28);
        assert_eq!(report.adaptations, 0);
    }

    #[test]
    fn binary_search_isolates_single_fault() {
        for truth in [Coupling::new(0, 1), Coupling::new(3, 4), Coupling::new(6, 7)] {
            let mut exec = ExactExecutor::new(8).with_fault(truth, 0.35);
            let (found, report) = binary_search_single(&mut exec, 8, 4, 0.5, 1, &BTreeSet::new());
            assert_eq!(found, Some(truth));
            // ⌈log₂ 28⌉ = 5 bisection tests + 1 verification.
            assert!(report.tests_run <= 6, "{}", report.tests_run);
            // Every bisection step is an adaptation — the cost the paper's
            // non-adaptive protocol avoids.
            assert!(report.adaptations >= 5);
        }
    }

    #[test]
    fn binary_search_clean_machine() {
        let mut exec = ExactExecutor::new(8);
        let (found, _) = binary_search_single(&mut exec, 8, 4, 0.5, 1, &BTreeSet::new());
        assert_eq!(found, None);
    }

    #[test]
    fn repeated_binary_search_peels_multiple_faults() {
        let a = Coupling::new(1, 2);
        let b = Coupling::new(4, 7);
        let mut exec = ExactExecutor::new(8).with_fault(a, 0.4).with_fault(b, 0.4);
        let report = binary_search_multi(&mut exec, 8, 4, 0.5, 1, 5);
        let mut got = report.faulty.clone();
        got.sort();
        assert_eq!(got, vec![a, b]);
    }

    #[test]
    fn binary_search_test_count_scales_logarithmically() {
        // 16 qubits: C(16,2) = 120 → ⌈log₂ 120⌉ = 7 tests (+1 verify).
        let truth = Coupling::new(9, 14);
        let mut exec = ExactExecutor::new(16).with_fault(truth, 0.4);
        let (found, report) = binary_search_single(&mut exec, 16, 4, 0.5, 1, &BTreeSet::new());
        assert_eq!(found, Some(truth));
        assert!(report.tests_run <= 8, "{}", report.tests_run);
    }
}
