//! Pass/fail threshold calibration.
//!
//! The paper sets test thresholds empirically (0.45/0.25 in Fig. 6,
//! 0.38/0.46 in Fig. 7) and notes the threshold "is adjusted … to maximise
//! the fault vs no-fault contrast" (Fig. 5). This module calibrates a
//! threshold by Monte-Carlo: simulate fault-free class tests under the
//! ambient calibration spread and place the threshold at a low quantile of
//! the resulting fidelity distribution, so healthy tests rarely fail.

use crate::classes::{first_round_classes, LabelSpace};
use crate::testplan::TestSpec;
use itqc_math::rng::standard_normal;
use itqc_math::stats;
use itqc_sim::XxCircuit;
use rand::Rng;
use std::collections::BTreeSet;

/// Simulated fidelities of all fault-free first-round tests with ambient
/// calibration error of mean `|u| = ambient_mean_abs`, over `trials`
/// random calibration draws.
pub fn ambient_test_fidelities<R: Rng + ?Sized>(
    n_qubits: usize,
    reps: usize,
    ambient_mean_abs: f64,
    trials: usize,
    rng: &mut R,
) -> Vec<f64> {
    let space = LabelSpace::new(n_qubits);
    let classes = first_round_classes(&space);
    let excluded = BTreeSet::new();
    let sigma = ambient_mean_abs * (std::f64::consts::PI / 2.0).sqrt();
    let mut out = Vec::with_capacity(trials * classes.len());
    for _ in 0..trials {
        // One ambient calibration draw shared by all tests of the round.
        let mut errors = std::collections::BTreeMap::new();
        for c in space.all_couplings() {
            errors.insert(c, sigma * standard_normal(rng));
        }
        for class in &classes {
            let couplings = class.couplings(&space, &excluded);
            if couplings.is_empty() {
                continue;
            }
            let spec = TestSpec::for_couplings("ambient", &couplings, reps);
            let mut xx = XxCircuit::new(n_qubits);
            for &(c, theta) in &spec.gates {
                let u = errors[&c];
                let (a, b) = c.endpoints();
                xx.add_xx(a, b, theta * (1.0 - u));
            }
            out.push(xx.fidelity(spec.target));
        }
    }
    out
}

/// Calibrates a pass/fail threshold at the `quantile` of the ambient
/// fidelity distribution (healthy tests fail with roughly that rate).
///
/// # Panics
///
/// Panics if `quantile` is outside `(0, 1)` or `trials == 0`.
pub fn calibrate_threshold<R: Rng + ?Sized>(
    n_qubits: usize,
    reps: usize,
    ambient_mean_abs: f64,
    quantile: f64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(quantile > 0.0 && quantile < 1.0, "quantile must be in (0,1)");
    assert!(trials > 0, "need at least one trial");
    let fids = ambient_test_fidelities(n_qubits, reps, ambient_mean_abs, trials, rng);
    stats::quantile(&fids, quantile)
}

/// The signed fidelity margin of a fault of magnitude `u` on an isolated
/// point test relative to a threshold — positive when the fault is
/// detectable.
pub fn detection_margin(u: f64, reps: usize, threshold: f64) -> f64 {
    threshold - crate::executor::point_test_fidelity(u, reps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_ambient_gives_unit_fidelities() {
        let mut rng = SmallRng::seed_from_u64(1);
        let fids = ambient_test_fidelities(8, 4, 0.0, 3, &mut rng);
        assert!(fids.iter().all(|&f| (f - 1.0).abs() < 1e-9));
    }

    #[test]
    fn threshold_decreases_with_ambient_noise() {
        let mut rng = SmallRng::seed_from_u64(2);
        let clean = calibrate_threshold(8, 4, 0.01, 0.05, 40, &mut rng);
        let noisy = calibrate_threshold(8, 4, 0.10, 0.05, 40, &mut rng);
        assert!(clean > noisy, "{clean} vs {noisy}");
        assert!(clean > 0.9);
        assert!(noisy < 0.9);
    }

    #[test]
    fn deeper_tests_have_lower_thresholds() {
        // Fig. 6's 0.45 (2-MS) vs 0.25 (4-MS) ordering: more amplification
        // means more ambient accumulation, so the healthy band sits lower.
        let mut rng = SmallRng::seed_from_u64(3);
        let t2 = calibrate_threshold(8, 2, 0.10, 0.05, 60, &mut rng);
        let t4 = calibrate_threshold(8, 4, 0.10, 0.05, 60, &mut rng);
        assert!(t4 < t2, "t4 {t4} must sit below t2 {t2}");
    }

    #[test]
    fn detection_margin_signs() {
        // A 47% fault under 4-MS amplification is far below threshold…
        assert!(detection_margin(0.47, 4, 0.25) > 0.0);
        // …while a 2% wobble is safely above even a high 2-MS threshold.
        assert!(detection_margin(0.02, 2, 0.45) < 0.0);
    }
}
