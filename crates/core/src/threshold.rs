//! Pass/fail threshold calibration.
//!
//! The paper sets test thresholds empirically (0.45/0.25 in Fig. 6,
//! 0.38/0.46 in Fig. 7) and notes the threshold "is adjusted … to maximise
//! the fault vs no-fault contrast" (Fig. 5). This module calibrates a
//! threshold by Monte-Carlo: simulate fault-free class tests under the
//! ambient calibration spread and place the threshold at a low quantile of
//! the resulting fidelity distribution, so healthy tests rarely fail.

use crate::classes::{first_round_classes, LabelSpace};
use crate::testplan::TestSpec;
use itqc_math::rng::standard_normal;
use itqc_math::stats;
use itqc_sim::XxCircuit;
use rand::Rng;
use std::collections::BTreeSet;

/// Simulated fidelities of all fault-free first-round tests with ambient
/// calibration error of mean `|u| = ambient_mean_abs`, over `trials`
/// random calibration draws.
pub fn ambient_test_fidelities<R: Rng + ?Sized>(
    n_qubits: usize,
    reps: usize,
    ambient_mean_abs: f64,
    trials: usize,
    rng: &mut R,
) -> Vec<f64> {
    let space = LabelSpace::new(n_qubits);
    let classes = first_round_classes(&space);
    let excluded = BTreeSet::new();
    let sigma = ambient_mean_abs * (std::f64::consts::PI / 2.0).sqrt();
    let mut out = Vec::with_capacity(trials * classes.len());
    for _ in 0..trials {
        // One ambient calibration draw shared by all tests of the round.
        let mut errors = std::collections::BTreeMap::new();
        for c in space.all_couplings() {
            errors.insert(c, sigma * standard_normal(rng));
        }
        for class in &classes {
            let couplings = class.couplings(&space, &excluded);
            if couplings.is_empty() {
                continue;
            }
            let spec = TestSpec::for_couplings("ambient", &couplings, reps);
            let mut xx = XxCircuit::new(n_qubits);
            for &(c, theta) in &spec.gates {
                let u = errors[&c];
                let (a, b) = c.endpoints();
                xx.add_xx(a, b, theta * (1.0 - u));
            }
            out.push(xx.fidelity(spec.target));
        }
    }
    out
}

/// Calibrates a pass/fail threshold at the `quantile` of the ambient
/// fidelity distribution (healthy tests fail with roughly that rate).
///
/// # Panics
///
/// Panics if `quantile` is outside `(0, 1)` or `trials == 0`.
pub fn calibrate_threshold<R: Rng + ?Sized>(
    n_qubits: usize,
    reps: usize,
    ambient_mean_abs: f64,
    quantile: f64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(quantile > 0.0 && quantile < 1.0, "quantile must be in (0,1)");
    assert!(trials > 0, "need at least one trial");
    let fids = ambient_test_fidelities(n_qubits, reps, ambient_mean_abs, trials, rng);
    stats::quantile(&fids, quantile)
}

/// The signed fidelity margin of a fault of magnitude `u` on an isolated
/// point test relative to a threshold — positive when the fault is
/// detectable.
pub fn detection_margin(u: f64, reps: usize, threshold: f64) -> f64 {
    threshold - crate::executor::point_test_fidelity(u, reps)
}

/// Snaps a calibrated threshold down onto the `shots`-shot score grid.
///
/// Sampled scores are counts over `shots`, so they only take values
/// `k/shots` — but a quantile interpolated from calibration samples
/// lands *between* grid levels. A threshold strictly inside the band
/// above level `k/shots` fails every future healthy test that scores
/// exactly `k/shots`, even though the calibration itself observed
/// healthy scores at that level: the false-fail rate quietly multiplies
/// (measured ~5× the calibrated quantile on the 32-qubit Fig. 8 panel,
/// where one corrupted syndrome per ~20 trials held the 4-MS knee one
/// miss in 120 short of the paper's 30 % point). Flooring the cut onto
/// the grid makes "score < threshold" pass the boundary level, so the
/// cut separates exactly the levels the calibration distinguished.
/// `shots == 0` (exact scores, no grid) passes through unchanged.
pub fn snap_to_shot_grid(threshold: f64, shots: usize) -> f64 {
    if shots == 0 {
        return threshold;
    }
    (threshold * shots as f64).floor() / shots as f64
}

/// Floor of the ranked decoder's observation noise: the product forward
/// model ([`crate::executor::predicted_class_score`]) truncates the
/// interference of fault *cycles* within one class, so even exact
/// (shot-free, ambient-free) scores deviate from the prediction by up
/// to a few points when three or more faults land in one test.
pub const MODEL_ERROR_FLOOR: f64 = 0.04;

/// The per-test score noise scale the ranked decoder should tolerate:
/// binomial shot noise (worst case `0.5/√shots`; `shots == 0` means an
/// exact oracle), the ambient calibration spread's first-order score
/// shift (`reps·(π/4)·E|u|` per test), and the forward-model truncation
/// floor, combined in quadrature. This is Fig. 5's "threshold is
/// adjusted … to maximise the fault vs no-fault contrast" turned into a
/// calibrated width for the posterior instead of a hand-tuned constant.
pub fn observation_sigma(shots: usize, ambient_mean_abs: f64, reps: usize) -> f64 {
    let shot = if shots == 0 { 0.0 } else { 0.5 / (shots as f64).sqrt() };
    let ambient = reps as f64 * std::f64::consts::FRAC_PI_4 * ambient_mean_abs;
    (shot * shot + ambient * ambient).sqrt().max(MODEL_ERROR_FLOOR)
}

/// Per-round threshold re-calibration for a fused evidence round at
/// `reps` repetitions: the pass/fail cut sits at the midpoint of the
/// fault-vs-healthy contrast interval — between the score a fault of
/// the posterior's fitted magnitude `u_hat` predicts on an isolated
/// point test and the healthy band at 1. This is Fig. 5's "the
/// threshold is adjusted … to maximise the fault vs no-fault contrast"
/// applied per adaptive round, with the contrast centre supplied by the
/// evidence accumulated so far instead of a hand-tuned constant.
pub fn contrast_threshold(u_hat: f64, reps: usize) -> f64 {
    (1.0 + crate::executor::point_test_fidelity(u_hat, reps)) / 2.0
}

/// Per-round observation-noise re-calibration: rescales the round-1
/// noise width `sigma_round1` (calibrated at `from_reps`) to a fused
/// evidence round at `to_reps`. The ambient-calibration component of
/// [`observation_sigma`] grows linearly with amplification while shot
/// noise and the model floor do not, so a linear rescale clamped to the
/// floor is the conservative choice for both directions.
pub fn rescale_sigma(sigma_round1: f64, from_reps: usize, to_reps: usize) -> f64 {
    (sigma_round1 * to_reps as f64 / from_reps.max(1) as f64).max(MODEL_ERROR_FLOOR)
}

/// Candidate re-calibrated thresholds for a disambiguation round:
/// midpoints of the gaps between the distinct observed scores, ascending,
/// keeping only values below `below` and at most `max` of them. This is
/// the per-round threshold adjustment both the greedy peel and the
/// ranked decoder use — each gap separates one more magnitude band of
/// the conflicted score distribution.
pub fn gap_thresholds(scores: &[f64], below: f64, max: usize) -> Vec<f64> {
    let mut s: Vec<f64> = scores.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    s.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
    s.windows(2).map(|w| (w[0] + w[1]) / 2.0).filter(|&t| t < below).take(max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_ambient_gives_unit_fidelities() {
        let mut rng = SmallRng::seed_from_u64(1);
        let fids = ambient_test_fidelities(8, 4, 0.0, 3, &mut rng);
        assert!(fids.iter().all(|&f| (f - 1.0).abs() < 1e-9));
    }

    #[test]
    fn threshold_decreases_with_ambient_noise() {
        let mut rng = SmallRng::seed_from_u64(2);
        let clean = calibrate_threshold(8, 4, 0.01, 0.05, 40, &mut rng);
        let noisy = calibrate_threshold(8, 4, 0.10, 0.05, 40, &mut rng);
        assert!(clean > noisy, "{clean} vs {noisy}");
        assert!(clean > 0.9);
        assert!(noisy < 0.9);
    }

    #[test]
    fn deeper_tests_have_lower_thresholds() {
        // Fig. 6's 0.45 (2-MS) vs 0.25 (4-MS) ordering: more amplification
        // means more ambient accumulation, so the healthy band sits lower.
        let mut rng = SmallRng::seed_from_u64(3);
        let t2 = calibrate_threshold(8, 2, 0.10, 0.05, 60, &mut rng);
        let t4 = calibrate_threshold(8, 4, 0.10, 0.05, 60, &mut rng);
        assert!(t4 < t2, "t4 {t4} must sit below t2 {t2}");
    }

    #[test]
    fn contrast_threshold_separates_fault_from_healthy() {
        // The re-calibrated cut must sit strictly between the fault's
        // predicted point score and the healthy band, at every rung.
        for &u in &[0.10, 0.22, 0.30, 0.47] {
            for reps in [2usize, 4, 8] {
                let t = contrast_threshold(u, reps);
                let fault = crate::executor::point_test_fidelity(u, reps);
                assert!(fault < t && t < 1.0, "u={u} reps={reps}: {fault} !< {t} !< 1");
            }
        }
        // Deeper rounds amplify the fault further, so their cut drops.
        assert!(contrast_threshold(0.22, 4) < contrast_threshold(0.22, 2));
    }

    #[test]
    fn snap_to_shot_grid_passes_the_boundary_level() {
        // A cut interpolated strictly inside the band above 157/300
        // must floor onto the level itself, so a sampled score of
        // exactly 157/300 passes the strict `score < threshold` test.
        let interpolated = 0.52599;
        let snapped = snap_to_shot_grid(interpolated, 300);
        assert_eq!(snapped.to_bits(), (157.0f64 / 300.0).to_bits());
        let boundary_score = 157.0f64 / 300.0;
        assert!(boundary_score < interpolated, "the unsnapped cut fails the boundary level");
        assert!(boundary_score >= snapped, "the snapped cut must pass it");
        // A score one shot lower still fails.
        assert!(156.0 / 300.0 < snapped);
        // Already-on-grid thresholds are fixed points; exact scoring
        // (shots == 0) has no grid.
        assert_eq!(snap_to_shot_grid(snapped, 300).to_bits(), snapped.to_bits());
        assert_eq!(snap_to_shot_grid(0.5259, 0), 0.5259);
    }

    #[test]
    fn rescale_sigma_tracks_amplification_with_floor() {
        // Up-amplified rounds widen linearly; down-amplified rounds
        // narrow but never below the forward-model floor.
        assert!((rescale_sigma(0.08, 4, 8) - 0.16).abs() < 1e-12);
        assert_eq!(rescale_sigma(0.04, 4, 2), MODEL_ERROR_FLOOR);
        assert!(rescale_sigma(0.10, 4, 2) >= MODEL_ERROR_FLOOR);
    }

    #[test]
    fn detection_margin_signs() {
        // A 47% fault under 4-MS amplification is far below threshold…
        assert!(detection_margin(0.47, 4, 0.25) > 0.0);
        // …while a 2% wobble is safely above even a high 2-MS threshold.
        assert!(detection_margin(0.02, 2, 0.45) < 0.0);
    }
}
