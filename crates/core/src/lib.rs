//! The paper's primary contribution: qubit-coupling fault-testing
//! protocols for ion-trap quantum computers (HPCA 2022).
//!
//! An `N`-qubit trap exposes `C(N,2)` individually calibrated couplings;
//! this crate locates the miscalibrated ones with `O(log N)` test
//! circuits instead of `O(N²)` point checks:
//!
//! * [`classes`] / [`syndrome`] — the §V-A combinatorics: subcube classes
//!   `(i,b)`, equal-bits classes `[j,=]`, syndromes and their candidate
//!   sets (Lemmas V.1–V.9 are enforced as tests).
//! * [`testplan`] — single-output test circuits with gate-repetition
//!   fault amplification (§VI).
//! * [`single_fault`] — the `3n−1`-test, one-adaptation protocol of
//!   Theorem V.10, including the footnote-9 verification round.
//! * [`multi_fault`] — the Fig. 5 diagnosis loop: canary, magnitude
//!   separation via repetition ladder, sequential isolation by exclusion
//!   (Corollary V.12). Equal-magnitude collisions are disambiguated per
//!   [`decoder::DecoderPolicy`]: the greedy threshold peel, the
//!   cross-round evidence-fusion decoder (default — candidate covers
//!   ranked by a posterior accumulated over every adaptive round's
//!   class scores, [`decoder::CoverPosterior`]), the disputed-member
//!   interrogation extension, or the set-cover + point-verification
//!   fallback extension.
//! * [`decoder`] — multi-fault syndrome aliasing analysis (Table II):
//!   exact cover enumeration plus the fused posterior behind the
//!   ranked policy ([`decoder::CoverPosterior`], [`decoder::rank_covers`]).
//! * [`baselines`] — point checks and adaptive binary search (§IV).
//! * [`cost`] — the Fig. 10 wall-clock model; [`threshold`] — empirical
//!   pass/fail threshold calibration, per-round gap re-calibration, and
//!   the observation-noise model feeding the ranked posterior.
//!
//! Reproducing Table II: `cargo run --release -p itqc-bench --bin table2`
//! runs the full pipeline with the ranked decoder (pass
//! `--decoder=greedy|ranked|set-cover` to ablate the policies).
//!
//! Protocols talk to hardware through the [`executor::TestExecutor`]
//! trait, implemented both by the [`itqc_trap::VirtualTrap`] machine and
//! by an exact noiseless oracle for property tests.
//!
//! # Example
//!
//! ```
//! use itqc_circuit::Coupling;
//! use itqc_core::executor::ExactExecutor;
//! use itqc_core::single_fault::{Diagnosis, SingleFaultProtocol};
//!
//! // Plant a 40% under-rotation on coupling {2,6} of an 8-qubit machine.
//! let mut machine = ExactExecutor::new(8).with_fault(Coupling::new(2, 6), 0.40);
//! let protocol = SingleFaultProtocol::new(8, 4, 0.5, 1);
//! let report = protocol.diagnose(&mut machine);
//! assert_eq!(report.diagnosis, Diagnosis::Fault(Coupling::new(2, 6)));
//! assert!(report.tests_run() <= 9); // 3n − 1 = 8, plus verification
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod classes;
pub mod cost;
pub mod decoder;
pub mod executor;
pub mod multi_fault;
pub mod single_fault;
pub mod syndrome;
pub mod testplan;
pub mod threshold;

pub use classes::{first_round_classes, second_round_classes, LabelSpace, SubcubeClass};
pub use decoder::DecoderPolicy;
pub use executor::{ExactExecutor, TestExecutor};
pub use multi_fault::{diagnose_all, MultiFaultConfig, MultiFaultReport};
pub use single_fault::{Diagnosis, DiagnosisReport, SingleFaultProtocol};
pub use syndrome::Syndrome;
pub use testplan::TestSpec;
