//! The single-fault diagnosis protocol (§V-B, Theorem V.10).
//!
//! Round 1 runs the `2n` subcube-class tests non-adaptively and reads off
//! the syndrome. One adaptation later, round 2 runs the `n − L − 1`
//! equal-bits tests over the syndrome's free positions and decodes the
//! unique faulty coupling. A final verification test on the accused
//! coupling rules out the zero-fault case (paper footnote 9).

use crate::classes::{decode_pair, first_round_classes, second_round_classes, LabelSpace};
use crate::executor::TestExecutor;
use crate::syndrome::Syndrome;
use crate::testplan::{ScoreMode, TestSpec};
use itqc_circuit::Coupling;
use std::collections::BTreeSet;

/// What a diagnosis run concluded.
#[derive(Clone, Debug, PartialEq)]
pub enum Diagnosis {
    /// Every test passed (and verification of the decoded complementary
    /// candidate, if any, passed too).
    NoFault,
    /// Exactly this coupling is faulty (verified).
    Fault(Coupling),
    /// Conflicting first-round results — both `(i,0)` and `(i,1)` failed
    /// for some `i`: more than one fault is present at this magnitude.
    MultipleFaultsSuspected,
    /// Results were internally inconsistent (decode hit a padding label,
    /// or verification contradicted the syndrome): noise or an out-of-
    /// model fault.
    Inconclusive,
}

/// One executed test, for reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct TestRecord {
    /// The spec label.
    pub label: String,
    /// Observed target-state fidelity.
    pub fidelity: f64,
    /// Whether the test failed (fidelity below threshold).
    pub failed: bool,
}

/// Full record of a single-fault diagnosis run.
#[derive(Clone, Debug)]
pub struct DiagnosisReport {
    /// The conclusion.
    pub diagnosis: Diagnosis,
    /// The observed first-round syndrome.
    pub syndrome: Syndrome,
    /// Every test executed, in order.
    pub tests: Vec<TestRecord>,
    /// Number of adaptive rounds used (0, 1, or 2 incl. verification).
    pub adaptations: usize,
    /// The coupling the syndrome decoded to, even when its verification
    /// did not confirm a fault (callers with their own verification
    /// criterion — e.g. the Fig. 5 magnitude check — can re-examine it).
    pub candidate: Option<Coupling>,
}

impl DiagnosisReport {
    /// Number of tests executed.
    pub fn tests_run(&self) -> usize {
        self.tests.len()
    }
}

/// The protocol configuration.
#[derive(Clone, Debug)]
pub struct SingleFaultProtocol {
    space: LabelSpace,
    reps: usize,
    threshold: f64,
    shots: usize,
    score: ScoreMode,
    excluded: BTreeSet<Coupling>,
    verify_contrast: bool,
}

impl SingleFaultProtocol {
    /// Creates a protocol instance for an `n_qubits` machine testing with
    /// `reps` MS gates per coupling, failing tests below `threshold`, and
    /// `shots` shots per test circuit.
    ///
    /// # Panics
    ///
    /// Panics if `reps` is odd or zero, `threshold` is outside `(0, 1]`,
    /// or `shots` is zero.
    pub fn new(n_qubits: usize, reps: usize, threshold: f64, shots: usize) -> Self {
        assert!(reps >= 2 && reps.is_multiple_of(2), "repetitions must be even");
        assert!(threshold > 0.0 && threshold <= 1.0, "threshold must be in (0,1]");
        assert!(shots > 0, "need at least one shot");
        SingleFaultProtocol {
            space: LabelSpace::new(n_qubits),
            reps,
            threshold,
            shots,
            score: ScoreMode::ExactTarget,
            excluded: BTreeSet::new(),
            verify_contrast: false,
        }
    }

    /// Sets the pass/fail statistic for every test the protocol runs
    /// (builder style). Scaling studies use [`ScoreMode::WorstQubit`].
    pub fn with_score(mut self, score: ScoreMode) -> Self {
        self.score = score;
        self
    }

    /// Excludes couplings from all tests (already-diagnosed or unused
    /// couplings — Corollary V.12).
    pub fn exclude<I: IntoIterator<Item = Coupling>>(mut self, couplings: I) -> Self {
        self.excluded.extend(couplings);
        self
    }

    /// Recalibrates the final verification test's pass/fail cut to the
    /// fault-vs-healthy contrast midpoint (builder style).
    ///
    /// The class tests share one calibrated threshold, but the
    /// verification is a *point* test: near the detection knee the
    /// fault's point score sits only ~1–2σ below a threshold calibrated
    /// for class-sized circuits, so verification sometimes clears a
    /// correctly decoded fault — the effect that left the 32-qubit
    /// Fig. 8 knees one 5%-grid step high. With contrast verification
    /// the magnitude û is inverted from the deepest failing score seen
    /// so far and the cut moves to
    /// [`crate::threshold::contrast_threshold`]`(û, reps)`, clamped to
    /// never fall below the shared threshold (so it can only get
    /// stricter about *passing*, never laxer about failing a healthy
    /// coupling).
    pub fn with_contrast_verification(mut self) -> Self {
        self.verify_contrast = true;
        self
    }

    /// The label space in use.
    pub fn space(&self) -> &LabelSpace {
        &self.space
    }

    /// The repetition count per coupling.
    pub fn reps(&self) -> usize {
        self.reps
    }

    fn run_spec<E: TestExecutor>(
        &self,
        exec: &mut E,
        spec: &TestSpec,
        tests: &mut Vec<TestRecord>,
    ) -> bool {
        self.run_spec_at(exec, spec, self.threshold, tests)
    }

    fn run_spec_at<E: TestExecutor>(
        &self,
        exec: &mut E,
        spec: &TestSpec,
        threshold: f64,
        tests: &mut Vec<TestRecord>,
    ) -> bool {
        if spec.couplings.is_empty() {
            // Nothing to run: trivially passing.
            tests.push(TestRecord { label: spec.label.clone(), fidelity: 1.0, failed: false });
            return false;
        }
        let fidelity = exec.run_test(spec, self.shots);
        let failed = fidelity < threshold;
        tests.push(TestRecord { label: spec.label.clone(), fidelity, failed });
        failed
    }

    /// The verification cut under [`Self::with_contrast_verification`]:
    /// invert the magnitude û from the deepest failing score of the run
    /// so far (a point or class score at `reps` repetitions deviates by
    /// `cos(reps·û·π/2)` for the dominant fault) and place the cut at
    /// the fault-vs-healthy midpoint for a point test of that magnitude.
    /// With no failing score to fit (the complementary-pair decode path
    /// can reach verification all-passed), the shared threshold stands.
    fn contrast_verify_threshold(&self, tests: &[TestRecord]) -> f64 {
        let s_min =
            tests.iter().filter(|t| t.failed).map(|t| t.fidelity).fold(f64::INFINITY, f64::min);
        if !s_min.is_finite() {
            return self.threshold;
        }
        let dev = (2.0 * s_min.clamp(0.0, 1.0) - 1.0).clamp(-1.0, 1.0).acos();
        let u_hat = dev / (self.reps as f64 * std::f64::consts::FRAC_PI_2);
        crate::threshold::contrast_threshold(u_hat, self.reps).max(self.threshold)
    }

    /// Runs only the non-adaptive first round and returns the syndrome,
    /// or `None` on conflicting results (multi-fault signature).
    pub fn first_round<E: TestExecutor>(
        &self,
        exec: &mut E,
        tests: &mut Vec<TestRecord>,
    ) -> Option<Syndrome> {
        let mut syndrome = Syndrome::empty();
        let mut conflict = false;
        for class in first_round_classes(&self.space) {
            let couplings = class.couplings(&self.space, &self.excluded);
            let spec = TestSpec::for_couplings(
                format!("round1 {class} x{}MS", self.reps),
                &couplings,
                self.reps,
            )
            .with_score(self.score);
            let failed = self.run_spec(exec, &spec, tests);
            if failed && !syndrome.insert(class.bit, class.value) {
                conflict = true;
            }
        }
        if conflict {
            None
        } else {
            Some(syndrome)
        }
    }

    /// Runs the full protocol against an executor.
    pub fn diagnose<E: TestExecutor>(&self, exec: &mut E) -> DiagnosisReport {
        assert_eq!(
            exec.n_qubits(),
            self.space.n_qubits(),
            "executor register does not match protocol"
        );
        let mut tests = Vec::new();
        let mut adaptations = 0usize;

        // Round 1: 2n non-adaptive tests.
        let Some(syndrome) = self.first_round(exec, &mut tests) else {
            return DiagnosisReport {
                diagnosis: Diagnosis::MultipleFaultsSuspected,
                syndrome: Syndrome::empty(),
                tests,
                adaptations,
                candidate: None,
            };
        };

        // Round 2 (one adaptation): the n−L−1 equal-bits tests.
        let second = second_round_classes(&syndrome, &self.space);
        let mut equal_flags = Vec::with_capacity(second.len());
        if !second.is_empty() {
            adaptations += 1;
            let compiled: usize =
                second.iter().map(|c| c.couplings(&self.space, &self.excluded).len()).sum();
            exec.note_adaptation(compiled);
            for class in &second {
                let couplings = class.couplings(&self.space, &self.excluded);
                let spec = TestSpec::for_couplings(
                    format!("round2 {class} x{}MS", self.reps),
                    &couplings,
                    self.reps,
                )
                .with_score(self.score);
                let failed = self.run_spec(exec, &spec, &mut tests);
                // A failing [j,=] test means the pair's bits there are equal.
                equal_flags.push(failed);
            }
        }

        // Decode and verify.
        let decoded = decode_pair(&syndrome, &equal_flags, &self.space);
        match decoded {
            Some(coupling) if !self.excluded.contains(&coupling) => {
                adaptations += 1;
                exec.note_adaptation(1);
                let spec = TestSpec::for_couplings(
                    format!("verify {coupling} x{}MS", self.reps),
                    &[coupling],
                    self.reps,
                )
                .with_score(self.score);
                let verify_cut = if self.verify_contrast {
                    self.contrast_verify_threshold(&tests)
                } else {
                    self.threshold
                };
                let failed = self.run_spec_at(exec, &spec, verify_cut, &mut tests);
                let diagnosis = if failed {
                    Diagnosis::Fault(coupling)
                } else if syndrome.is_empty() && equal_flags.iter().all(|f| !f) {
                    // Nothing ever failed: clean machine.
                    Diagnosis::NoFault
                } else if syndrome.is_empty() {
                    // Second round fingered a complementary pair but the
                    // verification cleared it: zero-fault case of
                    // footnote 9 (the all-pass signature aliases to one
                    // specific complementary pair).
                    Diagnosis::NoFault
                } else {
                    Diagnosis::Inconclusive
                };
                DiagnosisReport {
                    diagnosis,
                    syndrome,
                    tests,
                    adaptations,
                    candidate: Some(coupling),
                }
            }
            Some(_excluded) => {
                // Decoded onto an already-excluded coupling: not
                // re-accusable (Corollary V.12 removed it from play).
                let all_passed = tests.iter().all(|t| !t.failed);
                let diagnosis =
                    if all_passed { Diagnosis::NoFault } else { Diagnosis::Inconclusive };
                DiagnosisReport { diagnosis, syndrome, tests, adaptations, candidate: None }
            }
            None => {
                let all_passed = tests.iter().all(|t| !t.failed);
                let diagnosis =
                    if all_passed { Diagnosis::NoFault } else { Diagnosis::Inconclusive };
                DiagnosisReport { diagnosis, syndrome, tests, adaptations, candidate: None }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ExactExecutor;

    fn protocol(n: usize, reps: usize) -> SingleFaultProtocol {
        SingleFaultProtocol::new(n, reps, 0.5, 1)
    }

    #[test]
    fn theorem_v10_identifies_every_coupling_at_8_qubits() {
        // Round-trip every possible fault location on a clean machine.
        let n = 8;
        for a in 0..n {
            for b in (a + 1)..n {
                let truth = Coupling::new(a, b);
                let mut exec = ExactExecutor::new(n).with_fault(truth, 0.40);
                let report = protocol(n, 4).diagnose(&mut exec);
                assert_eq!(
                    report.diagnosis,
                    Diagnosis::Fault(truth),
                    "failed to identify {truth}: syndrome {}",
                    report.syndrome
                );
                // Theorem V.10 test budget: 3n−1 plus one verification.
                let n_bits = 3;
                assert!(report.tests_run() <= 3 * n_bits, "{truth}: {} tests", report.tests_run());
                assert!(report.adaptations <= 2);
            }
        }
    }

    #[test]
    fn identifies_faults_on_padded_register() {
        // 11 qubits on 4 bits (padding labels 11..16) — Corollary V.12's
        // setting combined with the paper's actual machine size.
        let n = 11;
        for a in 0..n {
            for b in (a + 1)..n {
                let truth = Coupling::new(a, b);
                let mut exec = ExactExecutor::new(n).with_fault(truth, 0.40);
                let report = protocol(n, 4).diagnose(&mut exec);
                assert_eq!(report.diagnosis, Diagnosis::Fault(truth), "failed on {truth}");
            }
        }
    }

    #[test]
    fn clean_machine_reports_no_fault() {
        let mut exec = ExactExecutor::new(8);
        let report = protocol(8, 4).diagnose(&mut exec);
        assert_eq!(report.diagnosis, Diagnosis::NoFault);
        assert!(report.syndrome.is_empty());
    }

    #[test]
    fn paper_footnote9_case_3_4() {
        // The complementary pair {3,4} on 8 qubits: empty first-round
        // syndrome, second round plus verification find it.
        let truth = Coupling::new(3, 4);
        let mut exec = ExactExecutor::new(8).with_fault(truth, 0.30);
        let report = protocol(8, 4).diagnose(&mut exec);
        assert_eq!(report.diagnosis, Diagnosis::Fault(truth));
        assert!(report.syndrome.is_empty(), "first round must see nothing");
    }

    #[test]
    fn two_conflicting_faults_are_flagged() {
        // Faults on {0,2} and {1,3}: classes (0,0) and (0,1) both fail.
        let mut exec = ExactExecutor::new(8)
            .with_fault(Coupling::new(0, 2), 0.4)
            .with_fault(Coupling::new(1, 3), 0.4);
        let report = protocol(8, 4).diagnose(&mut exec);
        assert_eq!(report.diagnosis, Diagnosis::MultipleFaultsSuspected);
    }

    #[test]
    fn corollary_v12_excluded_couplings() {
        // Exclude a batch of couplings; faults on the rest are still found.
        let excluded = vec![Coupling::new(0, 1), Coupling::new(2, 3), Coupling::new(4, 6)];
        let truth = Coupling::new(2, 6);
        let mut exec = ExactExecutor::new(8).with_fault(truth, 0.40);
        let report = protocol(8, 4).exclude(excluded).diagnose(&mut exec);
        assert_eq!(report.diagnosis, Diagnosis::Fault(truth));
    }

    #[test]
    fn small_fault_below_amplification_is_missed_at_low_reps() {
        // A 4% fault under 2-MS tests stays above threshold 0.5 — the
        // protocol correctly reports a clean machine at this gain.
        let mut exec = ExactExecutor::new(8).with_fault(Coupling::new(1, 5), 0.04);
        let report = protocol(8, 2).diagnose(&mut exec);
        assert_eq!(report.diagnosis, Diagnosis::NoFault);
    }

    #[test]
    fn test_budget_matches_syndrome_length() {
        // L = 2 at n = 3 bits → no second round needed beyond 2n tests
        // plus verification.
        let truth = Coupling::new(2, 6); // shares bits 0 and 1 → L = 2
        let mut exec = ExactExecutor::new(8).with_fault(truth, 0.4);
        let report = protocol(8, 4).diagnose(&mut exec);
        assert_eq!(report.diagnosis, Diagnosis::Fault(truth));
        assert_eq!(report.syndrome.len(), 2);
        // 2n = 6 round-1 tests, no round 2 (L = n−1), one verification.
        assert_eq!(report.tests_run(), 7);
    }

    #[test]
    fn contrast_verification_cut_tracks_the_fitted_magnitude() {
        let p = protocol(8, 2).with_contrast_verification();
        // No failing record to fit: the shared threshold stands.
        let clean = vec![TestRecord { label: "t".into(), fidelity: 0.9, failed: false }];
        assert_eq!(p.contrast_verify_threshold(&clean), 0.5);
        // A failing score s inverts to û and the cut moves to the point
        // fault-vs-healthy midpoint (1 + s)/2 — above the shared cut, so
        // near-knee verification keeps noise headroom on the fail side.
        let s = 0.727;
        let failing = vec![TestRecord { label: "t".into(), fidelity: s, failed: true }];
        let cut = p.contrast_verify_threshold(&failing);
        assert!((cut - (1.0 + s) / 2.0).abs() < 1e-9, "cut {cut}");
        assert!(cut > 0.5);
    }

    #[test]
    fn contrast_verification_is_inert_on_the_oracle_path() {
        // On an exact executor a point test reproduces the class score
        // exactly, so the recalibrated cut changes no diagnosis — the
        // fix only buys noise margin. Spot-check fault, clean, and the
        // complementary-pair decode.
        for fault in [None, Some((Coupling::new(2, 6), 0.40)), Some((Coupling::new(3, 4), 0.30))] {
            let build = || match fault {
                Some((c, u)) => ExactExecutor::new(8).with_fault(c, u),
                None => ExactExecutor::new(8),
            };
            let plain = protocol(8, 4).diagnose(&mut build());
            let contrast = protocol(8, 4).with_contrast_verification().diagnose(&mut build());
            assert_eq!(plain.diagnosis, contrast.diagnosis, "fault {fault:?}");
        }
    }

    #[test]
    fn sixteen_and_thirtytwo_qubit_round_trips() {
        for n in [16usize, 32] {
            // Spot-check a spread of fault locations.
            let picks = [(0usize, n - 1), (1, 2), (n / 2, n / 2 + 1), (3, n - 2)];
            for &(a, b) in &picks {
                let truth = Coupling::new(a, b);
                let mut exec = ExactExecutor::new(n).with_fault(truth, 0.40);
                let report = protocol(n, 4).diagnose(&mut exec);
                assert_eq!(report.diagnosis, Diagnosis::Fault(truth), "n={n} {truth}");
            }
        }
    }
}
