//! The cache-routed test executor for fleet traps.
//!
//! [`CachedTrapExecutor`] implements `itqc_core::TestExecutor` over a
//! [`VirtualTrap`], but instead of re-deriving every test circuit's
//! output statistics shot-engine-style (`VirtualTrap::run_xx_test`), it
//! resolves the accumulated noisy circuit through the two cache layers
//! — per-trap L1, shared snapshot L2 — and only builds an
//! [`XxPrepared`] on a double miss, logging the build so the scheduler
//! can admit it into the shared cache at the tick barrier.
//!
//! Shot outcomes are still drawn from the trap's own RNG
//! ([`VirtualTrap::observe_binomial`]), so a machine behaves
//! bit-identically whether its tests run through this executor, another
//! trap warmed the cache first, or no cache exists at all. This is the
//! property that makes the fleet summary independent of worker count.
//!
//! Requires a trap with zero amplitude jitter (the fleet runs the
//! quasi-static drift model, where noise moves only at drift epochs):
//! per-shot jitter would make the circuit — and hence the cache key —
//! change under the executor's feet.

use crate::cache::{CacheSnapshot, PrepKey, TrapCache};
use itqc_backend::cache::xx_key;
use itqc_backend::{CacheCounters, PreparedCircuit, XxPrepared};
use itqc_core::testplan::ScoreMode;
use itqc_core::{TestExecutor, TestSpec};
use itqc_trap::VirtualTrap;
use std::sync::Arc;

/// Samples and bills one test against an already-prepared circuit,
/// mirroring `VirtualTrap::run_xx_test` / `run_xx_test_population`
/// exactly (same probabilities, same RNG stream, same billing).
/// Returns the observed score in `[0, 1]`.
pub fn score_prepared(
    trap: &mut VirtualTrap,
    prep: &XxPrepared,
    spec: &TestSpec,
    shots: usize,
) -> f64 {
    if shots == 0 {
        return 0.0;
    }
    let n = trap.n_qubits();
    let hits = match spec.score {
        ScoreMode::ExactTarget => {
            let retention = trap.config().spam.retention(spec.target, n);
            trap.observe_binomial(shots, prep.probability(spec.target) * retention)
        }
        ScoreMode::WorstQubit => {
            let spam = &trap.config().spam;
            let spam_keep = 1.0 - (spam.p01 + spam.p10) / 2.0;
            let mut worst = shots;
            for &q in prep.support() {
                let p = prep.qubit_agreement(q, spec.target) * spam_keep;
                worst = worst.min(trap.observe_binomial(shots, p));
            }
            worst
        }
    };
    let dt = trap.config().timing.shots(n, spec.gate_count(), 0, shots);
    trap.bill_test_time(dt);
    hits as f64 / shots as f64
}

/// A per-trap executor routing circuit preparation through the fleet's
/// cache hierarchy. Borrows the trap and its tick-scoped state for the
/// duration of one queue item.
pub struct CachedTrapExecutor<'a> {
    trap: &'a mut VirtualTrap,
    l1: &'a mut TrapCache,
    l2: &'a CacheSnapshot,
    /// Preparations built on a double miss, logged for barrier admission.
    built: &'a mut Vec<(PrepKey, Arc<XxPrepared>)>,
    /// Keys hit in the L2 snapshot (LRU refresh at the barrier).
    touched: &'a mut Vec<PrepKey>,
    /// L2 hit/miss outcomes observed against the snapshot.
    l2_counters: &'a mut CacheCounters,
}

impl<'a> CachedTrapExecutor<'a> {
    /// Wires an executor over one trap's tick state.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        trap: &'a mut VirtualTrap,
        l1: &'a mut TrapCache,
        l2: &'a CacheSnapshot,
        built: &'a mut Vec<(PrepKey, Arc<XxPrepared>)>,
        touched: &'a mut Vec<PrepKey>,
        l2_counters: &'a mut CacheCounters,
    ) -> Self {
        debug_assert!(
            trap.config().amplitude_jitter_std == 0.0,
            "cached execution needs quasi-static noise (no per-shot jitter)"
        );
        CachedTrapExecutor { trap, l1, l2, built, touched, l2_counters }
    }

    /// Resolves the prepared circuit for `spec` under the trap's current
    /// calibration: L1, then the L2 snapshot, then build-and-log.
    pub fn prepared_for(&mut self, spec: &TestSpec) -> Arc<XxPrepared> {
        let xx = spec.noisy_xx(self.trap.n_qubits(), |c| self.trap.true_under_rotation(c));
        let key = xx_key(&xx);
        if let Some(p) = self.l1.get(&key) {
            return p;
        }
        if let Some(p) = self.l2.get(&key) {
            self.l2_counters.hits += 1;
            self.touched.push(key.clone());
            self.l1.insert(key, Arc::clone(&p));
            return p;
        }
        self.l2_counters.misses += 1;
        let prep = Arc::new(XxPrepared::prepare(xx).expect("fleet test circuits are commuting-XX"));
        prep.distributions(); // materialize before sharing
        self.l1.insert(key.clone(), Arc::clone(&prep));
        self.built.push((key, Arc::clone(&prep)));
        prep
    }
}

impl TestExecutor for CachedTrapExecutor<'_> {
    fn n_qubits(&self) -> usize {
        self.trap.n_qubits()
    }

    fn run_test(&mut self, spec: &TestSpec, shots: usize) -> f64 {
        if shots == 0 {
            return 0.0;
        }
        let prep = self.prepared_for(spec);
        score_prepared(self.trap, &prep, spec, shots)
    }

    fn note_adaptation(&mut self, couplings_compiled: usize) {
        self.trap.bill_adaptation(couplings_compiled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_circuit::Coupling;
    use itqc_trap::{Activity, TrapConfig};

    #[allow(clippy::type_complexity)]
    fn harness(
        seed: u64,
    ) -> (
        VirtualTrap,
        TrapCache,
        CacheSnapshot,
        Vec<(PrepKey, Arc<XxPrepared>)>,
        Vec<PrepKey>,
        CacheCounters,
    ) {
        let trap = VirtualTrap::new(TrapConfig::ideal(6, seed));
        (
            trap,
            TrapCache::default(),
            CacheSnapshot::default(),
            Vec::new(),
            Vec::new(),
            CacheCounters::default(),
        )
    }

    #[test]
    fn cached_executor_matches_direct_trap_execution() {
        // Same seed → the cached path must reproduce the trap's own
        // shot-engine path bit for bit, for both score modes.
        let spec_exact = TestSpec::for_couplings("t", &[Coupling::new(0, 3)], 4);
        let spec_worst = TestSpec::for_couplings("t", &[Coupling::new(1, 2)], 2)
            .with_score(ScoreMode::WorstQubit);
        let mut direct = VirtualTrap::new(TrapConfig::ideal(6, 4242));
        direct.inject_fault(Coupling::new(0, 3), 0.21);
        let d1 = direct.run_test(&spec_exact, 400);
        let d2 = direct.run_test(&spec_worst, 250);

        let (mut trap, mut l1, l2, mut built, mut touched, mut c) = harness(4242);
        trap.inject_fault(Coupling::new(0, 3), 0.21);
        let mut exec =
            CachedTrapExecutor::new(&mut trap, &mut l1, &l2, &mut built, &mut touched, &mut c);
        let c1 = exec.run_test(&spec_exact, 400);
        let c2 = exec.run_test(&spec_worst, 250);
        assert_eq!(d1.to_bits(), c1.to_bits());
        assert_eq!(d2.to_bits(), c2.to_bits());
        assert_eq!(
            direct.duty().seconds(Activity::Testing).to_bits(),
            trap.duty().seconds(Activity::Testing).to_bits(),
            "billing must match the shot-engine path"
        );
        // Both circuits were cold: two L2 misses, two logged builds.
        assert_eq!((c.hits, c.misses), (0, 2));
        assert_eq!(built.len(), 2);
        assert!(touched.is_empty());
    }

    #[test]
    fn repeat_tests_hit_l1_and_warm_snapshots_hit_l2() {
        let spec = TestSpec::for_couplings("t", &[Coupling::new(0, 1)], 2);
        let (mut trap, mut l1, l2, mut built, mut touched, mut c) = harness(7);
        {
            let mut exec =
                CachedTrapExecutor::new(&mut trap, &mut l1, &l2, &mut built, &mut touched, &mut c);
            let _ = exec.run_test(&spec, 10);
            let _ = exec.run_test(&spec, 10); // replay within the tick: L1
        }
        assert_eq!((c.hits, c.misses), (0, 1), "replay is absorbed by L1");
        let l1c = l1.counters();
        assert_eq!((l1c.hits, l1c.misses), (1, 1));

        // Promote the build into a shared cache and re-run on a fresh tick.
        let mut shared = crate::cache::SharedPrepCache::new(usize::MAX);
        for (k, p) in built.drain(..) {
            shared.admit(k, p, 0);
        }
        shared.end_tick(0);
        let snap = shared.snapshot();
        l1.begin_tick();
        let mut exec =
            CachedTrapExecutor::new(&mut trap, &mut l1, &snap, &mut built, &mut touched, &mut c);
        let _ = exec.run_test(&spec, 10);
        assert_eq!((c.hits, c.misses), (1, 1), "next tick is an L2 snapshot hit");
        assert_eq!(touched.len(), 1, "the hit is logged for LRU refresh");
        assert!(built.is_empty());
    }
}
