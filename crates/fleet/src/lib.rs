//! Fleet-scale trap operations: a deterministic multi-trap scheduling
//! service over the `itqc` stack.
//!
//! The paper studies one machine's maintenance economics (Fig. 2); an
//! operator runs *fleets*. This crate scales the machine-day model to N
//! virtual traps under one long-running service — `fleetd` — built from
//! four pieces:
//!
//! * [`machine_day`] — the Fig. 2 scheduling model itself, extracted
//!   here so the `fig2` figure and the fleet run the *same* policies
//!   (`itqc_bench::duty_cycle` re-exports it);
//! * [`cache`] — the shared, eviction-aware prepared-circuit cache:
//!   byte-budgeted LRU over `Arc<XxPrepared>`, mutated only at tick
//!   barriers, read lock-free by workers through snapshots;
//! * [`queue`]/[`trap_state`] — per-trap priority/deadline work queues
//!   and the two-phase tick state machine (arrivals → batched canary
//!   prep → queue drain);
//! * [`pool`]/[`api`] — the shard worker pool (std threads + channels,
//!   contiguous trap ownership) and the in-process [`Fleet`] handle
//!   with its [`FleetSummary`].
//!
//! **Determinism is the contract**: given a seed, the end-of-run
//! summary is bit-identical at any worker count, because every RNG
//! stream is owned by exactly one trap, every cross-trap merge happens
//! in trap-id order at a barrier, and workers only ever read immutable
//! cache snapshots. `loadgen` (in `itqc-bench`) drives millions of
//! simulated jobs per machine-day through this service and CI diffs
//! the summaries at `--workers=1/2/8`.

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod exec;
pub mod machine_day;
pub mod pool;
pub mod queue;
pub mod trap_state;

pub use api::{Fleet, FleetConfig, FleetSummary, MINUTES_PER_DAY};
pub use cache::{CacheSnapshot, SharedPrepCache, TrapCache};
pub use exec::CachedTrapExecutor;
pub use queue::{WorkItem, WorkKind, WorkQueue};
pub use trap_state::{FleetParams, TrapState, TrapStatus};
