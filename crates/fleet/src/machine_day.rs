//! The Fig. 2 machine-day scheduling model: 24 hours of an 11-qubit
//! machine under two maintenance policies.
//!
//! This is the single source of truth for the simulated machine-day —
//! the `fig2` binary, the tier-2 statistical regression suite, *and*
//! the fleet scheduler all render through it. `itqc_bench::duty_cycle`
//! re-exports everything here, so the historical import paths keep
//! working and the figure stays byte-identical.

use itqc_core::cost::CostModel;
use itqc_core::{diagnose_all, DecoderPolicy, MultiFaultConfig};
use itqc_faults::drift::{JumpDrift, OrnsteinUhlenbeckDrift};
use itqc_trap::{Activity, TrapConfig, VirtualTrap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The paper's machine size.
pub const FIG2_QUBITS: usize = 11;
/// Simulated wall-clock per trial (one machine-day).
pub const FIG2_HOURS: f64 = 24.0;
/// One customer batch between maintenance slots.
pub const FIG2_JOB_SECONDS: f64 = 30.0;

/// The calibration drift process of the simulated day: slow OU wander
/// plus ~2 large faults per machine-day across 55 couplings.
pub fn fig2_drift() -> JumpDrift {
    JumpDrift {
        base: OrnsteinUhlenbeckDrift { tau_minutes: 240.0, sigma: 0.03 },
        jumps_per_minute: 0.0006,
        jump_scale: 0.30,
    }
}

/// The Fig. 2 test-driven policy's diagnosis configuration: a 2-rung
/// ladder with a 30-shot canary tripwire and the set-cover decoder.
/// Shared by [`test_driven_policy`] and the fleet scheduler's per-trap
/// diagnostic cadence, so both react to a tripped canary with the same
/// protocol.
pub fn fig2_diagnosis_config() -> MultiFaultConfig {
    MultiFaultConfig {
        reps_ladder: vec![2, 4],
        threshold: 0.5,
        canary_threshold: 0.4,
        shots: 300,
        canary_shots: 30,
        max_faults: 6,
        decoder: DecoderPolicy::SetCoverFallback,
        ranked_sigma: itqc_core::threshold::observation_sigma(300, 0.0, 4),
        score: itqc_core::testplan::ScoreMode::ExactTarget,
        canary_score: itqc_core::testplan::ScoreMode::ExactTarget,
        max_threshold_retunes: 4,
        fusion_rounds: 0, // set-cover policy: the fused ranked path is not taken
        fault_magnitude: 0.10,
        canary_rotations: 0,
        canary_seed: 0,
    }
}

/// Policy A: full point-check characterisation + recalibration of every
/// coupling every `cadence_min` minutes.
pub fn periodic_policy(seed: u64, cadence_min: f64) -> VirtualTrap {
    let mut trap = VirtualTrap::new(TrapConfig::ideal(FIG2_QUBITS, seed));
    let model = CostModel::paper_defaults();
    let d = fig2_drift();
    let mut t = 0.0;
    while t < FIG2_HOURS * 60.0 {
        // Jobs until the next maintenance slot (drift accrues while the
        // machine works; the time is billed to jobs, not idle).
        let mut job_t = 0.0;
        while job_t < cadence_min {
            trap.bill_job_time(FIG2_JOB_SECONDS);
            trap.apply_drift(FIG2_JOB_SECONDS / 60.0, &d);
            job_t += FIG2_JOB_SECONDS / 60.0;
        }
        // Full characterisation of all couplings (billed as testing) plus
        // recalibration of each.
        let check = model.point_check_time(FIG2_QUBITS);
        trap.bill_test_time(check);
        for c in trap.couplings() {
            trap.recalibrate(c);
        }
        t += cadence_min + check / 60.0;
    }
    trap
}

/// Policy B: canary every minute; full diagnosis + targeted
/// recalibration when it trips.
pub fn test_driven_policy(seed: u64) -> VirtualTrap {
    let mut trap = VirtualTrap::new(TrapConfig::ideal(FIG2_QUBITS, seed));
    let d = fig2_drift();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
    let config = fig2_diagnosis_config();
    let mut minutes = 0.0;
    while minutes < FIG2_HOURS * 60.0 {
        // One minute of jobs (drift accrues during them)…
        for _ in 0..2 {
            trap.bill_job_time(FIG2_JOB_SECONDS);
        }
        trap.apply_drift(1.0, &d);
        minutes += 1.0;
        // …then the canary (rolled into diagnose_all's first test).
        let report = diagnose_all(&mut trap, FIG2_QUBITS, &config);
        for dfault in &report.diagnosed {
            trap.recalibrate(dfault.coupling);
        }
        // Occasional deliberate spot audit keeps the comparison fair.
        if rng.gen::<f64>() < 0.001 {
            let _ = trap.snapshot_under_rotations(100);
        }
    }
    trap
}

/// The jobs share of the non-idle wall clock — the Fig. 2 headline
/// number (the paper measures ~53% jobs / ~47% maintenance for the
/// periodic policy).
pub fn jobs_share_excluding_idle(secs: &[f64; Activity::ALL.len()]) -> f64 {
    let pos = |a: Activity| Activity::ALL.iter().position(|&x| x == a).unwrap();
    let jobs = secs[pos(Activity::Jobs)];
    let nonidle: f64 = secs.iter().sum::<f64>() - secs[pos(Activity::Idle)];
    if nonidle > 0.0 {
        jobs / nonidle
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_fill_the_day_and_stay_deterministic() {
        let a = periodic_policy(11, 120.0);
        assert!(a.clock_seconds() >= FIG2_HOURS * 3600.0);
        let b = periodic_policy(11, 120.0);
        assert_eq!(a.clock_seconds().to_bits(), b.clock_seconds().to_bits());
        for act in Activity::ALL {
            assert_eq!(a.duty().seconds(act).to_bits(), b.duty().seconds(act).to_bits());
        }
    }

    #[test]
    fn jobs_share_ignores_idle() {
        let mut secs = [0.0f64; Activity::ALL.len()];
        let pos = |a: Activity| Activity::ALL.iter().position(|&x| x == a).unwrap();
        secs[pos(Activity::Jobs)] = 60.0;
        secs[pos(Activity::Testing)] = 30.0;
        secs[pos(Activity::Calibration)] = 10.0;
        secs[pos(Activity::Idle)] = 1000.0;
        assert!((jobs_share_excluding_idle(&secs) - 0.6).abs() < 1e-12);
    }
}
