//! `fleetd` — the fleet service daemon.
//!
//! Runs a fleet of virtual traps under the tick scheduler and speaks a
//! line-oriented command protocol on stdin/stdout (one command per
//! line, one reply block per command), so it can be driven
//! interactively, from scripts, or from CI:
//!
//! ```text
//! $ printf 'run 60\nstats\nsummary\nquit\n' | fleetd --traps=16 --workers=2
//! ```
//!
//! Flags (all optional): `--traps=N --workers=N|auto --seed=N --qubits=N`
//! `--cadence-min=N --epoch-min=N --rate=F --service-mean=F`
//! `--cache-budget-mb=N --minutes=N`. With `--minutes=N` the daemon
//! first advances N simulated minutes, prints the summary, and then
//! still serves stdin (EOF exits). `--workers=0` means one per core —
//! results never depend on it.
//!
//! Commands: `run <minutes>`, `submit <trap> <service_s> [count]`,
//! `status <trap>`, `stats`, `metrics`, `summary`, `help`, `quit`.
//!
//! `metrics` prints the deterministic counter snapshot — the fleet
//! registry's cache/scheduler counters merged with the ambient backend
//! event counters — as one line of JSON. Only the deterministic class
//! is printed, so the reply is bit-identical at any `--workers` value
//! and stdout stays diffable. The daemon enables the `itqc_obs` event
//! layer at startup (it is a service, not a gated benchmark).

use itqc_fleet::{Fleet, FleetConfig};
use std::io::{BufRead, Write};

fn usage() -> ! {
    eprintln!(
        "usage: fleetd [--traps=N] [--workers=N|auto] [--seed=N] [--qubits=N] \
         [--cadence-min=N] [--epoch-min=N] [--rate=F] [--service-mean=F] \
         [--cache-budget-mb=N] [--minutes=N]"
    );
    std::process::exit(2);
}

fn parse_flags() -> (FleetConfig, u64) {
    let mut config = FleetConfig::default();
    let mut minutes = 0u64;
    for arg in std::env::args().skip(1) {
        let Some((flag, value)) = arg.split_once('=') else { usage() };
        let ok = match flag {
            "--traps" => value.parse().map(|v| config.traps = v).is_ok(),
            "--workers" if value == "auto" => {
                config.workers = 0;
                true
            }
            "--workers" => value.parse().map(|v| config.workers = v).is_ok(),
            "--seed" => value.parse().map(|v| config.seed = v).is_ok(),
            "--qubits" => value.parse().map(|v| config.n_qubits = v).is_ok(),
            "--cadence-min" => value.parse().map(|v| config.canary_cadence_min = v).is_ok(),
            "--epoch-min" => value.parse().map(|v| config.drift_epoch_min = v).is_ok(),
            "--rate" => value.parse().map(|v| config.arrival_rate_per_min = v).is_ok(),
            "--service-mean" => value.parse().map(|v| config.service_secs_mean = v).is_ok(),
            "--cache-budget-mb" => {
                value.parse().map(|v: usize| config.cache_budget_bytes = v << 20).is_ok()
            }
            "--minutes" => value.parse().map(|v| minutes = v).is_ok(),
            _ => usage(),
        };
        if !ok {
            usage();
        }
    }
    (config, minutes)
}

fn main() {
    let (config, minutes) = parse_flags();
    itqc_obs::set_enabled(true);
    let mut fleet = Fleet::new(config);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if minutes > 0 {
        fleet.run_minutes(minutes);
        write!(out, "{}", fleet.summary()).expect("stdout");
        out.flush().expect("stdout");
    }
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("stdin");
        let mut words = line.split_whitespace();
        let reply = match words.next() {
            None => continue,
            Some("quit") | Some("exit") => break,
            Some("help") => "commands: run <minutes> | submit <trap> <service_s> [count] | \
                             status <trap> | stats | metrics | summary | quit"
                .to_string(),
            Some("run") => match words.next().and_then(|w| w.parse::<u64>().ok()) {
                Some(m) => {
                    fleet.run_minutes(m);
                    format!("ok ran {m} minutes (now at {})", fleet.ticks())
                }
                None => "error: run <minutes>".to_string(),
            },
            Some("submit") => {
                let trap = words.next().and_then(|w| w.parse::<usize>().ok());
                let service = words.next().and_then(|w| w.parse::<f64>().ok());
                let count = words.next().and_then(|w| w.parse::<usize>().ok()).unwrap_or(1);
                match (trap, service) {
                    (Some(trap), Some(service)) if trap < fleet.config().traps => {
                        for _ in 0..count {
                            fleet.submit(trap, service);
                        }
                        format!("ok queued {count} job(s) on trap {trap}")
                    }
                    (Some(trap), Some(_)) => format!("error: trap {trap} out of range"),
                    _ => "error: submit <trap> <service_s> [count]".to_string(),
                }
            }
            Some("status") => match words.next().and_then(|w| w.parse::<usize>().ok()) {
                Some(trap) if trap < fleet.config().traps => {
                    let s = fleet.status(trap);
                    let faults: Vec<String> =
                        s.recent_faults.iter().map(|(tick, c)| format!("{c}@min{tick}")).collect();
                    format!(
                        "trap {} clock_s {:.1} queue {} last_canary {:.3} jobs_done {} \
                         faults_fixed {} recent [{}]",
                        s.id,
                        s.clock_seconds,
                        s.queue_depth,
                        s.last_canary,
                        s.jobs_completed,
                        s.faults_fixed,
                        faults.join(" ")
                    )
                }
                Some(trap) => format!("error: trap {trap} out of range"),
                None => "error: status <trap>".to_string(),
            },
            Some("stats") => {
                let c = fleet.cache_counters();
                let (entries, bytes) = fleet.cache_resident();
                format!(
                    "minute {} shared_cache hits {} misses {} evictions {} hit_rate {:.4} \
                     entries {} bytes {}",
                    fleet.ticks(),
                    c.hits,
                    c.misses,
                    c.evictions,
                    c.hit_rate(),
                    entries,
                    bytes
                )
            }
            Some("metrics") => {
                // Worker shards flushed at the last tick barrier; fold
                // the scheduler thread's own shard, then merge the
                // fleet registry with the ambient (global) one.
                itqc_obs::event::flush();
                let merged = itqc_obs::Registry::new();
                merged.absorb(itqc_obs::global());
                merged.absorb(fleet.obs());
                merged.deterministic_snapshot().to_json()
            }
            Some("summary") => fleet.summary().to_string(),
            Some(other) => format!("error: unknown command '{other}' (try help)"),
        };
        writeln!(out, "{}", reply.trim_end()).expect("stdout");
        out.flush().expect("stdout");
    }
}
