//! The in-process fleet API: configure, drive, query, summarize.
//!
//! [`Fleet`] owns the scheduler side of the tick protocol: it broadcasts
//! phase messages to the shard workers, batches phase-A prep requests
//! through the shared cache (building each distinct circuit once per
//! tick, however many traps requested it), merges phase-B reports in
//! trap-id order, and closes each tick with the cache's LRU barrier.
//!
//! Everything the fleet reports — the [`FleetSummary`] in particular —
//! is a pure function of `(FleetConfig minus workers, ticks run,
//! submitted jobs)`. The worker count only changes wall-clock time;
//! `FleetSummary::to_string()` is bit-identical at `--workers=1`, `2`,
//! or `8`, and the test suite and CI both pin that.

use crate::cache::SharedPrepCache;
use crate::machine_day::{fig2_diagnosis_config, FIG2_QUBITS};
use crate::pool::{shard_bounds, FromShard, Shard, ToShard};
use crate::trap_state::{FleetParams, TrapStatus};
use itqc_backend::{CacheCounters, XxPrepared};
use itqc_faults::drift::{JumpDrift, OrnsteinUhlenbeckDrift};
use itqc_obs::{Counter, Registry};
use itqc_trap::duty::Activity;
use std::fmt;
use std::sync::Arc;

/// Minutes in a simulated machine-day.
pub const MINUTES_PER_DAY: u64 = 24 * 60;

/// Fleet service configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of traps in the fleet.
    pub traps: usize,
    /// Worker threads (0 = one per available core). Never affects
    /// results, only wall-clock.
    pub workers: usize,
    /// Master seed; every per-trap stream derives from it.
    pub seed: u64,
    /// Register size of each trap.
    pub n_qubits: usize,
    /// Minutes between canary tests.
    pub canary_cadence_min: u64,
    /// Minutes between quasi-static drift applications.
    pub drift_epoch_min: u64,
    /// Poisson job arrival rate per trap per minute (0 = API-only).
    pub arrival_rate_per_min: f64,
    /// Mean exponential job service time, seconds.
    pub service_secs_mean: f64,
    /// Job deadline allowance past arrival, seconds.
    pub job_deadline_s: f64,
    /// Shared prepared-circuit cache budget, bytes.
    pub cache_budget_bytes: usize,
    /// The calibration drift process.
    pub drift: JumpDrift,
    /// Diagnosis configuration (thresholds, shots, decoder).
    pub diag: itqc_core::MultiFaultConfig,
}

impl Default for FleetConfig {
    /// The fleet operating point: 11-qubit traps under gentle OU wander
    /// with rare large jumps (~8 hard faults per trap-day), canaries
    /// every 2 minutes, drift epochs every 30, and an internal load of
    /// 4 jobs/trap/minute at 8 s mean service — ≈1.4 M jobs per
    /// simulated day on a 256-trap fleet.
    fn default() -> Self {
        FleetConfig {
            traps: 8,
            workers: 1,
            seed: 20220402,
            n_qubits: FIG2_QUBITS,
            canary_cadence_min: 2,
            drift_epoch_min: 30,
            arrival_rate_per_min: 4.0,
            service_secs_mean: 8.0,
            job_deadline_s: 300.0,
            cache_budget_bytes: 64 << 20,
            drift: JumpDrift {
                base: OrnsteinUhlenbeckDrift { tau_minutes: 240.0, sigma: 0.02 },
                jumps_per_minute: 1e-4,
                jump_scale: 0.30,
            },
            diag: fig2_diagnosis_config(),
        }
    }
}

impl FleetConfig {
    fn params(&self, l1_hits: Counter, l1_misses: Counter) -> FleetParams {
        FleetParams {
            n_qubits: self.n_qubits,
            canary_cadence_min: self.canary_cadence_min.max(1),
            drift_epoch_min: self.drift_epoch_min.max(1),
            arrival_rate_per_min: self.arrival_rate_per_min,
            service_secs_mean: self.service_secs_mean,
            job_deadline_s: self.job_deadline_s,
            drift: self.drift,
            diag: self.diag.clone(),
            l1_hits,
            l1_misses,
        }
    }
}

/// Aggregate fleet statistics, accumulated deterministically across
/// ticks (trap-id merge order; registry-backed integer counters and
/// order-fixed f64 streams only).
#[derive(Debug)]
struct FleetStats {
    submitted: Counter,
    completed: Counter,
    latencies: Vec<f64>,
    canaries: Counter,
    trips: Counter,
    diagnoses: Counter,
    tests_run: Counter,
    faults_fixed: Counter,
    prep_requests: Counter,
    prep_batch_builds: Counter,
}

impl FleetStats {
    /// Registers every scheduler counter in the fleet's registry, so
    /// the summary and the `metrics` document read the same handles.
    fn new(obs: &Registry) -> Self {
        FleetStats {
            submitted: obs.counter("fleet.jobs.submitted"),
            completed: obs.counter("fleet.jobs.completed"),
            latencies: Vec::new(),
            canaries: obs.counter("fleet.canary.runs"),
            trips: obs.counter("fleet.canary.trips"),
            diagnoses: obs.counter("fleet.diagnose.runs"),
            tests_run: obs.counter("fleet.diagnose.tests"),
            faults_fixed: obs.counter("fleet.faults.fixed"),
            prep_requests: obs.counter("fleet.prep.requests"),
            prep_batch_builds: obs.counter("fleet.prep.batch_builds"),
        }
    }
}

/// The running fleet service. Dropping it shuts the workers down.
pub struct Fleet {
    config: FleetConfig,
    shards: Vec<Shard>,
    cache: SharedPrepCache,
    tick: u64,
    stats: FleetStats,
    pending_submissions: Vec<(usize, f64)>,
    obs: Arc<Registry>,
    l1_hits: Counter,
    l1_misses: Counter,
}

impl Fleet {
    /// Spawns the shard workers and builds the shared cache.
    ///
    /// # Panics
    ///
    /// Panics if `traps == 0`, or if the register size exceeds the
    /// analytic backend's component limit (the canary spans all
    /// couplings, so its component is the whole register).
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.traps >= 1, "a fleet needs at least one trap");
        assert!(
            config.n_qubits <= itqc_backend::MAX_COMPONENT,
            "canary components must fit the analytic backend ({} qubits max)",
            itqc_backend::MAX_COMPONENT
        );
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        // Per-fleet registry: every cache and scheduler counter is a
        // registered handle, so the `stats`/`summary` renderings and
        // the deterministic metrics snapshot read the same totals.
        let obs = Arc::new(Registry::new());
        let l1_hits = obs.counter("fleet.cache.l1.hits");
        let l1_misses = obs.counter("fleet.cache.l1.misses");
        let params = Arc::new(config.params(l1_hits.clone(), l1_misses.clone()));
        let shards = shard_bounds(config.traps, workers)
            .into_iter()
            .map(|(lo, hi)| Shard::spawn(lo, hi, config.seed, Arc::clone(&params)))
            .collect();
        let cache = SharedPrepCache::with_counters(
            config.cache_budget_bytes,
            obs.counter("fleet.cache.l2.hits"),
            obs.counter("fleet.cache.l2.misses"),
            obs.counter("fleet.cache.l2.evictions"),
        );
        let stats = FleetStats::new(&obs);
        Fleet {
            config,
            shards,
            cache,
            tick: 0,
            stats,
            pending_submissions: Vec::new(),
            obs,
            l1_hits,
            l1_misses,
        }
    }

    /// The configuration the fleet runs under.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Ticks (simulated minutes) run so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Shared (L2) cache counters.
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// The fleet's observability registry. Holds every registry-backed
    /// cache and scheduler counter; its deterministic snapshot is
    /// bit-identical at any worker count.
    pub fn obs(&self) -> &Registry {
        &self.obs
    }

    /// Resident shared-cache entries and bytes.
    pub fn cache_resident(&self) -> (usize, usize) {
        (self.cache.len(), self.cache.bytes())
    }

    /// Queues a user job on `trap`; it arrives at the start of the next
    /// tick (arrivals are quantized to the minute).
    ///
    /// # Panics
    ///
    /// Panics if `trap` is out of range.
    pub fn submit(&mut self, trap: usize, service_seconds: f64) {
        assert!(trap < self.config.traps, "trap {trap} out of range");
        self.pending_submissions.push((trap, service_seconds));
    }

    /// Advances the simulation by `minutes` ticks.
    pub fn run_minutes(&mut self, minutes: u64) {
        for _ in 0..minutes {
            self.step_tick();
        }
    }

    fn step_tick(&mut self) {
        let tick = self.tick;
        // Deliver API submissions before the tick starts.
        if !self.pending_submissions.is_empty() {
            let now = tick as f64 * 60.0;
            let pending = std::mem::take(&mut self.pending_submissions);
            for shard in &self.shards {
                let jobs: Vec<(usize, f64, f64)> = pending
                    .iter()
                    .filter(|(trap, _)| shard.owns(*trap))
                    .map(|&(trap, service)| (trap, service, now))
                    .collect();
                if !jobs.is_empty() {
                    shard.send(ToShard::Submit(jobs));
                }
            }
        }
        // Phase A: arrivals, drift, canary prep requests.
        for shard in &self.shards {
            shard.send(ToShard::PhaseA(tick));
        }
        // Batch barrier: requests arrive in shard order = trap-id order.
        // Build each distinct missing circuit once; later requests for
        // the same key (same-class circuits on other traps) are served
        // by the fresh entry.
        for shard in &self.shards {
            let FromShard::Requests(requests) = shard.recv() else {
                panic!("phase A reply expected");
            };
            for req in requests {
                self.stats.prep_requests.incr();
                if self.cache.contains(&req.key) {
                    self.cache.touch(&req.key, tick);
                } else {
                    self.stats.prep_batch_builds.incr();
                    self.cache.note_misses(1);
                    let prep = Arc::new(
                        XxPrepared::prepare(req.xx).expect("canary circuits are commuting-XX"),
                    );
                    prep.distributions();
                    self.cache.admit(req.key, prep, tick);
                }
            }
        }
        // Mid-tick publication so phase B sees this tick's batch builds
        // (eviction waits for the end-of-tick barrier).
        self.cache.publish();
        let snap = self.cache.snapshot();
        // Phase B: drain queues against the snapshot.
        for shard in &self.shards {
            shard.send(ToShard::PhaseB(tick, snap.clone()));
        }
        for shard in &self.shards {
            let FromShard::Ticked(out) = shard.recv() else {
                panic!("phase B reply expected");
            };
            self.stats.submitted.add(out.submitted);
            self.stats.completed.add(out.completed);
            self.stats.latencies.extend(out.latencies);
            self.stats.canaries.add(out.canaries);
            self.stats.trips.add(out.trips);
            self.stats.diagnoses.add(out.diagnoses);
            self.stats.tests_run.add(out.tests_run);
            self.stats.faults_fixed.add(out.faults_fixed);
            self.cache.note_misses(out.l2.misses);
            for key in &out.touched {
                self.cache.note_hit(key, tick);
            }
            for (key, prep) in out.built {
                self.cache.admit(key, prep, tick);
            }
        }
        // Tick barrier: LRU eviction + snapshot republication.
        self.cache.end_tick(tick);
        self.tick = tick + 1;
    }

    /// One trap's operational status.
    ///
    /// # Panics
    ///
    /// Panics if `trap` is out of range.
    pub fn status(&mut self, trap: usize) -> TrapStatus {
        assert!(trap < self.config.traps, "trap {trap} out of range");
        let shard = self.shards.iter().find(|s| s.owns(trap)).expect("covering shards");
        shard.send(ToShard::Status(trap));
        let FromShard::Status(status) = shard.recv() else {
            panic!("status reply expected");
        };
        *status
    }

    /// The end-of-run summary (non-destructive; callable mid-run).
    pub fn summary(&mut self) -> FleetSummary {
        let mut duty = [0.0f64; Activity::ALL.len()];
        let mut queued = 0usize;
        for shard in &self.shards {
            shard.send(ToShard::Drain);
        }
        for shard in &self.shards {
            let FromShard::Drained(drains) = shard.recv() else {
                panic!("drain reply expected");
            };
            for d in drains {
                for (acc, s) in duty.iter_mut().zip(d.duty.iter()) {
                    *acc += s;
                }
                queued += d.queue_depth;
            }
        }
        // The drain barrier above synchronises every worker, so the
        // shared L1 handles hold the fleet-wide totals at this point.
        let l1 =
            CacheCounters { hits: self.l1_hits.get(), misses: self.l1_misses.get(), evictions: 0 };
        let mut sorted = self.stats.latencies.clone();
        sorted.sort_by(f64::total_cmp);
        FleetSummary {
            traps: self.config.traps,
            seed: self.config.seed,
            ticks: self.tick,
            submitted: self.stats.submitted.get(),
            completed: self.stats.completed.get(),
            queued,
            latency_p50: percentile(&sorted, 0.50),
            latency_p90: percentile(&sorted, 0.90),
            latency_p99: percentile(&sorted, 0.99),
            canaries: self.stats.canaries.get(),
            trips: self.stats.trips.get(),
            diagnoses: self.stats.diagnoses.get(),
            tests_run: self.stats.tests_run.get(),
            faults_fixed: self.stats.faults_fixed.get(),
            prep_requests: self.stats.prep_requests.get(),
            prep_batch_builds: self.stats.prep_batch_builds.get(),
            shared_cache: self.cache.counters(),
            shared_entries: self.cache.len(),
            shared_bytes: self.cache.bytes(),
            l1_cache: l1,
            duty,
        }
    }
}

/// Nearest-rank percentile of an ascending slice (0 for empty input).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The deterministic end-of-run report. Its `Display` rendering is the
/// artifact CI diffs across worker counts.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSummary {
    /// Fleet size.
    pub traps: usize,
    /// Master seed.
    pub seed: u64,
    /// Simulated minutes run.
    pub ticks: u64,
    /// Jobs submitted (internal load + API).
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs still queued at report time.
    pub queued: usize,
    /// Median completion latency, seconds.
    pub latency_p50: f64,
    /// 90th-percentile completion latency, seconds.
    pub latency_p90: f64,
    /// 99th-percentile completion latency, seconds.
    pub latency_p99: f64,
    /// Canary tests run.
    pub canaries: u64,
    /// Canary trips.
    pub trips: u64,
    /// Full diagnoses run.
    pub diagnoses: u64,
    /// Test circuits executed inside diagnoses.
    pub tests_run: u64,
    /// Faults diagnosed and recalibrated.
    pub faults_fixed: u64,
    /// Phase-A prep requests batched through the shared cache.
    pub prep_requests: u64,
    /// Requests that had to build (the rest were grouped or resident).
    pub prep_batch_builds: u64,
    /// Shared (L2) cache hit/miss/eviction totals.
    pub shared_cache: CacheCounters,
    /// Resident shared-cache entries.
    pub shared_entries: usize,
    /// Resident shared-cache bytes.
    pub shared_bytes: usize,
    /// Per-trap (L1) cache totals, summed over traps.
    pub l1_cache: CacheCounters,
    /// Fleet-wide seconds per activity, `Activity::ALL` order.
    pub duty: [f64; Activity::ALL.len()],
}

impl FleetSummary {
    /// Completed jobs normalized to one simulated machine-day across
    /// the whole fleet.
    pub fn jobs_per_machine_day(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.completed as f64 * MINUTES_PER_DAY as f64 / self.ticks as f64
    }
}

impl fmt::Display for FleetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fleet summary")?;
        writeln!(f, "  traps {} seed {} minutes {}", self.traps, self.seed, self.ticks)?;
        writeln!(
            f,
            "  jobs submitted {} completed {} queued {} per-machine-day {:.1}",
            self.submitted,
            self.completed,
            self.queued,
            self.jobs_per_machine_day()
        )?;
        writeln!(
            f,
            "  latency_s p50 {:.3} p90 {:.3} p99 {:.3}",
            self.latency_p50, self.latency_p90, self.latency_p99
        )?;
        writeln!(
            f,
            "  canaries {} trips {} diagnoses {} tests {} faults_fixed {}",
            self.canaries, self.trips, self.diagnoses, self.tests_run, self.faults_fixed
        )?;
        writeln!(
            f,
            "  prep requests {} batch_builds {}",
            self.prep_requests, self.prep_batch_builds
        )?;
        writeln!(
            f,
            "  shared_cache hits {} misses {} evictions {} hit_rate {:.4} entries {} bytes {}",
            self.shared_cache.hits,
            self.shared_cache.misses,
            self.shared_cache.evictions,
            self.shared_cache.hit_rate(),
            self.shared_entries,
            self.shared_bytes
        )?;
        writeln!(
            f,
            "  l1_cache hits {} misses {} hit_rate {:.4}",
            self.l1_cache.hits,
            self.l1_cache.misses,
            self.l1_cache.hit_rate()
        )?;
        write!(f, "  duty_s")?;
        for (&secs, &a) in self.duty.iter().zip(Activity::ALL.iter()) {
            write!(f, " {}={:.1}", activity_tag(a), secs)?;
        }
        writeln!(f)
    }
}

fn activity_tag(a: Activity) -> &'static str {
    match a {
        Activity::Jobs => "jobs",
        Activity::Testing => "testing",
        Activity::Calibration => "calibration",
        Activity::Adaptation => "adaptation",
        Activity::Idle => "idle",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(workers: usize) -> FleetConfig {
        FleetConfig {
            traps: 3,
            workers,
            n_qubits: 6,
            arrival_rate_per_min: 2.0,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn summary_is_bit_identical_across_worker_counts() {
        let mut renders = Vec::new();
        for workers in [1usize, 2, 3] {
            let mut fleet = Fleet::new(small_config(workers));
            fleet.submit(1, 12.5);
            fleet.run_minutes(8);
            fleet.submit(2, 3.0);
            fleet.run_minutes(4);
            renders.push(fleet.summary().to_string());
        }
        assert_eq!(renders[0], renders[1]);
        assert_eq!(renders[1], renders[2]);
    }

    #[test]
    fn canary_batching_turns_repeat_preps_into_hits() {
        let mut fleet = Fleet::new(FleetConfig { arrival_rate_per_min: 0.0, ..small_config(2) });
        // Pristine traps share one canary circuit: the very first tick
        // builds it once and serves every other trap from the batch.
        fleet.run_minutes(1);
        let s = fleet.summary();
        assert_eq!(s.prep_requests, 3);
        assert_eq!(s.prep_batch_builds, 1, "identical circuits are grouped");
        assert_eq!(s.canaries, 3);
        // Within the first drift epoch, repeat canaries are L2 hits.
        fleet.run_minutes(10);
        let s = fleet.summary();
        assert!(
            s.shared_cache.hit_rate() > 0.5,
            "quasi-static canaries must hit the shared cache: {:?}",
            s.shared_cache
        );
    }

    #[test]
    fn submitted_jobs_complete_and_are_measured() {
        let mut fleet = Fleet::new(FleetConfig { arrival_rate_per_min: 0.0, ..small_config(1) });
        for _ in 0..5 {
            fleet.submit(0, 6.0);
        }
        fleet.run_minutes(2);
        let s = fleet.summary();
        assert_eq!(s.submitted, 5);
        assert_eq!(s.completed, 5);
        assert!(s.latency_p50 > 0.0 && s.latency_p99 >= s.latency_p50);
        let status = fleet.status(0);
        assert_eq!(status.jobs_completed, 5);
        assert_eq!(status.queue_depth, 0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
