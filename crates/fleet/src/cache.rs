//! The fleet's two-level prepared-circuit cache.
//!
//! Layered over `itqc_backend`'s per-backend cache idea, but shared
//! across every trap in the fleet:
//!
//! * **L2 — [`SharedPrepCache`]** (one per fleet): owns the canonical
//!   `xx_key → Arc<XxPrepared>` map under a byte budget with true LRU
//!   eviction, and publishes an immutable [`CacheSnapshot`] that worker
//!   threads read lock-free during a tick. All mutation happens on the
//!   scheduler thread at tick barriers, in trap-id order, which is what
//!   makes the hit/miss/eviction counters — and therefore the end-of-run
//!   summary — bit-identical at any worker count.
//! * **L1 — [`TrapCache`]** (one per trap): a tick-scoped working set
//!   that absorbs the intra-diagnosis reuse (threshold re-tunes replay a
//!   rung's battery within one tick) so the shared layer only sees
//!   genuine cross-tick / cross-trap traffic. Being per-*trap* rather
//!   than per-worker keeps its counters independent of the shard
//!   partition.
//!
//! Keys are [`itqc_backend::cache::xx_key`] — register size, couplings,
//! and the exact noisy angle bits — so a hit can never alias two
//! different calibration profiles.

use itqc_backend::{CacheCounters, XxPrepared};
use itqc_obs::Counter;
use std::collections::HashMap;
use std::sync::Arc;

/// A prepared-circuit cache key (see `itqc_backend::cache::xx_key`).
pub type PrepKey = Vec<u64>;

/// An immutable, lock-free view of the shared cache taken at a tick
/// barrier. Cloning is one `Arc` bump; worker threads read it without
/// synchronisation for the duration of a tick.
#[derive(Clone, Debug, Default)]
pub struct CacheSnapshot {
    map: Arc<HashMap<PrepKey, Arc<XxPrepared>>>,
}

impl CacheSnapshot {
    /// Looks up a preparation without touching any counters (the caller
    /// records the outcome in its own [`CacheCounters`]).
    pub fn get(&self, key: &[u64]) -> Option<Arc<XxPrepared>> {
        self.map.get(key).cloned()
    }

    /// Number of visible entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[derive(Debug)]
struct Entry {
    prep: Arc<XxPrepared>,
    bytes: usize,
    last_used_tick: u64,
    /// Insertion sequence — a deterministic LRU tie-break within a tick.
    seq: u64,
}

/// The shared, eviction-aware L2 cache. Mutated only on the scheduler
/// thread; published to workers as [`CacheSnapshot`]s.
#[derive(Debug)]
pub struct SharedPrepCache {
    entries: HashMap<PrepKey, Entry>,
    snapshot: CacheSnapshot,
    dirty: bool,
    budget_bytes: usize,
    bytes: usize,
    next_seq: u64,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl SharedPrepCache {
    /// An empty cache holding at most `budget_bytes` of materialized
    /// preparation tables (estimated via [`XxPrepared::table_bytes`]),
    /// counting into private detached handles.
    pub fn new(budget_bytes: usize) -> Self {
        SharedPrepCache::with_counters(
            budget_bytes,
            Counter::detached(),
            Counter::detached(),
            Counter::detached(),
        )
    }

    /// Like [`Self::new`], but counting into caller-supplied handles —
    /// the fleet registers them as `fleet.cache.l2.*` in its
    /// [`itqc_obs::Registry`], so the same totals drive the `stats`
    /// line, the summary, and the metrics document.
    pub fn with_counters(
        budget_bytes: usize,
        hits: Counter,
        misses: Counter,
        evictions: Counter,
    ) -> Self {
        SharedPrepCache {
            entries: HashMap::new(),
            snapshot: CacheSnapshot::default(),
            dirty: false,
            budget_bytes,
            bytes: 0,
            next_seq: 0,
            hits,
            misses,
            evictions,
        }
    }

    /// The current published snapshot (rebuilt at [`Self::end_tick`]
    /// and after [`Self::admit`] batches).
    pub fn snapshot(&self) -> CacheSnapshot {
        self.snapshot.clone()
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: &[u64]) -> bool {
        self.entries.contains_key(key)
    }

    /// Counted lookup on the scheduler thread: a hit refreshes the LRU
    /// stamp, a miss only increments the miss counter (the caller is
    /// expected to build and [`Self::admit`]).
    pub fn lookup(&mut self, key: &[u64], tick: u64) -> Option<Arc<XxPrepared>> {
        match self.entries.get_mut(key) {
            Some(e) => {
                self.hits.incr();
                e.last_used_tick = tick;
                Some(Arc::clone(&e.prep))
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Records a hit served by a snapshot or by a just-built batch entry
    /// without re-reading the map (the worker already has the value).
    /// Refreshes the LRU stamp when the key is resident.
    pub fn note_hit(&mut self, key: &[u64], tick: u64) {
        self.hits.incr();
        if let Some(e) = self.entries.get_mut(key) {
            e.last_used_tick = tick;
        }
    }

    /// Records misses observed by workers against a tick snapshot.
    pub fn note_misses(&mut self, n: u64) {
        self.misses.add(n);
    }

    /// Refreshes the LRU stamp of a key a worker hit in its snapshot.
    pub fn touch(&mut self, key: &[u64], tick: u64) {
        if let Some(e) = self.entries.get_mut(key) {
            e.last_used_tick = tick;
        }
    }

    /// Admits a freshly built preparation (no counter change — the miss
    /// was counted at lookup time). If the key is already resident (two
    /// shards built it independently within one tick) the first copy
    /// wins and the stamp is refreshed.
    pub fn admit(&mut self, key: PrepKey, prep: Arc<XxPrepared>, tick: u64) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_used_tick = tick;
            return;
        }
        let bytes = prep.table_bytes();
        self.bytes += bytes;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(key, Entry { prep, bytes, last_used_tick: tick, seq });
        self.dirty = true;
    }

    /// Tick barrier: evicts least-recently-used entries until the byte
    /// budget holds (never evicting entries touched during `tick` — the
    /// working set of an in-flight tick must survive it), then republishes
    /// the snapshot. Returns the number of evictions performed.
    pub fn end_tick(&mut self, tick: u64) -> u64 {
        let mut evicted = 0u64;
        while self.bytes > self.budget_bytes {
            // Deterministic victim: minimal (last_used_tick, seq). `seq`
            // is unique, so the minimum — and therefore the whole
            // eviction sequence — is independent of map iteration order.
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.last_used_tick < tick)
                .min_by_key(|(_, e)| (e.last_used_tick, e.seq))
                .map(|(k, _)| k.clone());
            let Some(key) = victim else {
                break; // only the live working set remains: allow overflow
            };
            let entry = self.entries.remove(&key).expect("victim is resident");
            self.bytes -= entry.bytes;
            evicted += 1;
            self.dirty = true;
        }
        self.evictions.add(evicted);
        self.publish();
        evicted
    }

    /// Republishes the snapshot if the resident set changed since the
    /// last publication — the mid-tick barrier between batch admission
    /// and phase B (no eviction; that waits for [`Self::end_tick`]).
    pub fn publish(&mut self) {
        if self.dirty {
            self.snapshot = CacheSnapshot { map: Arc::new(self.clone_map()) };
            self.dirty = false;
        }
    }

    fn clone_map(&self) -> HashMap<PrepKey, Arc<XxPrepared>> {
        self.entries.iter().map(|(k, e)| (k.clone(), Arc::clone(&e.prep))).collect()
    }

    /// Hit/miss/eviction totals recorded through this cache's handles
    /// since construction.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
        }
    }

    /// Number of resident preparations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated resident bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }
}

/// The per-trap L1 working set: cleared at the start of every tick, so
/// it captures exactly the intra-tick reuse (a diagnosis replaying its
/// rung batteries) and nothing else. Per-trap ownership keeps its
/// counters identical under any shard partition.
#[derive(Debug, Default)]
pub struct TrapCache {
    map: HashMap<PrepKey, Arc<XxPrepared>>,
    hits: Counter,
    misses: Counter,
}

impl TrapCache {
    /// A tick-scoped cache counting into caller-supplied handles. The
    /// fleet registers one `fleet.cache.l1.hits`/`.misses` pair and
    /// shares it across every trap: each trap's lookups are its own
    /// deterministic work, and atomic sums commute, so the shared
    /// totals are identical at any worker count.
    pub fn with_counters(hits: Counter, misses: Counter) -> Self {
        TrapCache { map: HashMap::new(), hits, misses }
    }

    /// Drops the previous tick's working set (not counted as eviction —
    /// retiring a working set is scope exit, not budget pressure).
    pub fn begin_tick(&mut self) {
        self.map.clear();
    }

    /// Counted lookup.
    pub fn get(&mut self, key: &[u64]) -> Option<Arc<XxPrepared>> {
        match self.map.get(key) {
            Some(p) => {
                self.hits.incr();
                Some(Arc::clone(p))
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Stores a preparation for the rest of the tick.
    pub fn insert(&mut self, key: PrepKey, prep: Arc<XxPrepared>) {
        self.map.insert(key, prep);
    }

    /// Hit/miss totals recorded through this cache's handles
    /// (evictions stay 0 by design). Fleet-wide rather than per-trap
    /// when the handles are shared.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters { hits: self.hits.get(), misses: self.misses.get(), evictions: 0 }
    }

    /// Entries in the current tick's working set.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the working set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_backend::cache::xx_key;
    use itqc_sim::XxCircuit;

    fn prep(theta: f64) -> (PrepKey, Arc<XxPrepared>) {
        let mut xx = XxCircuit::new(4);
        xx.add_xx(0, 1, theta);
        let p = Arc::new(XxPrepared::prepare(xx).unwrap());
        p.distributions();
        (xx_key(p.xx()), p)
    }

    #[test]
    fn lru_evicts_oldest_first_and_respects_live_ticks() {
        let (k0, p0) = prep(0.1);
        let one = p0.table_bytes();
        let mut cache = SharedPrepCache::new(2 * one);
        cache.admit(k0.clone(), p0, 0);
        let (k1, p1) = prep(0.2);
        cache.admit(k1.clone(), p1, 1);
        assert_eq!(cache.end_tick(1), 0);
        // Touch k0 at tick 2 so k1 becomes the LRU victim.
        assert!(cache.lookup(&k0, 2).is_some());
        let (k2, p2) = prep(0.3);
        cache.admit(k2.clone(), p2, 2);
        let evicted = cache.end_tick(2);
        assert_eq!(evicted, 1);
        assert!(cache.contains(&k0), "recently used survives");
        assert!(!cache.contains(&k1), "LRU entry is evicted");
        assert!(cache.contains(&k2), "entry admitted this tick is protected");
        assert_eq!(cache.counters().evictions, 1);
        assert!(cache.bytes() <= cache.budget_bytes());
    }

    #[test]
    fn live_working_set_may_overflow_but_is_trimmed_next_tick() {
        let (k0, p0) = prep(0.4);
        let one = p0.table_bytes();
        let mut cache = SharedPrepCache::new(one);
        cache.admit(k0, p0, 5);
        let (k1, p1) = prep(0.5);
        cache.admit(k1.clone(), p1, 5);
        // Both entries were touched in tick 5: nothing is evictable.
        assert_eq!(cache.end_tick(5), 0);
        assert!(cache.bytes() > cache.budget_bytes());
        // One tick later the overflow is reclaimed deterministically.
        assert_eq!(cache.end_tick(6), 1);
        assert!(cache.contains(&k1), "higher seq at equal stamp survives");
    }

    #[test]
    fn snapshot_is_immutable_and_counters_split_by_layer() {
        let (k0, p0) = prep(0.6);
        let mut cache = SharedPrepCache::new(usize::MAX);
        assert!(cache.lookup(&k0, 0).is_none());
        cache.admit(k0.clone(), p0.clone(), 0);
        cache.end_tick(0);
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 1);
        // Snapshot reads do not move the shared counters…
        let before = cache.counters();
        assert!(snap.get(&k0).is_some());
        assert_eq!(cache.counters(), before);
        // …worker-observed outcomes are folded in explicitly.
        cache.note_hit(&k0, 1);
        cache.note_misses(2);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 3));
        // L1 is tick-scoped.
        let mut l1 = TrapCache::default();
        assert!(l1.get(&k0).is_none());
        l1.insert(k0.clone(), p0);
        assert!(l1.get(&k0).is_some());
        l1.begin_tick();
        assert!(l1.get(&k0).is_none());
        let lc = l1.counters();
        assert_eq!((lc.hits, lc.misses, lc.evictions), (1, 2, 0));
    }

    #[test]
    fn negative_zero_angles_share_one_l2_entry() {
        // A noisy-angle pipeline can compute `theta * -u` with `u == 0`
        // and produce `-0.0`, whose raw f64 bits differ from `+0.0`.
        // The key path (`itqc_backend::cache::xx_key`) canonicalises
        // the sign of zero, so both spellings must land on one PrepKey
        // and therefore one L2 entry — distinct keys would silently
        // double the fleet's cached bytes for identical tables.
        let (k_pos, p_pos) = prep(0.0);
        let (k_neg, p_neg) = prep(-0.0);
        assert_eq!(k_pos, k_neg, "-0.0 and +0.0 must canonicalise to the same PrepKey");
        let mut cache = SharedPrepCache::new(usize::MAX);
        cache.admit(k_pos.clone(), p_pos, 0);
        cache.admit(k_neg, p_neg, 0);
        assert_eq!(cache.len(), 1, "one entry for both zero spellings");
        assert!(cache.lookup(&k_pos, 1).is_some());
    }

    #[test]
    fn admit_is_idempotent_across_shards() {
        let (k0, p0) = prep(0.7);
        let mut cache = SharedPrepCache::new(usize::MAX);
        cache.admit(k0.clone(), p0.clone(), 3);
        let bytes = cache.bytes();
        // A second shard built the same key in the same tick: first wins.
        cache.admit(k0, p0, 3);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), bytes);
    }
}
