//! Per-trap work queues with a priority/deadline policy.
//!
//! Every trap owns one [`WorkQueue`]; the shard worker that owns the
//! trap drains it inside a tick. Ordering is `(priority, deadline,
//! submission seq)` — maintenance preempts user work, earlier deadlines
//! run first within a class, and the unique sequence number makes the
//! order total (and therefore deterministic) even for items submitted
//! with identical deadlines.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Diagnosis of a tripped canary — runs before anything else.
pub const PRIO_DIAGNOSE: u8 = 0;
/// Scheduled canary test.
pub const PRIO_CANARY: u8 = 1;
/// Customer jobs.
pub const PRIO_JOB: u8 = 2;

/// What a queued item does when it reaches the front.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkKind {
    /// Full multi-fault diagnosis + targeted recalibration.
    Diagnose,
    /// The per-trap canary tripwire.
    Canary,
    /// A billed customer job of the given service time.
    UserJob {
        /// Seconds of machine time the job occupies.
        service_seconds: f64,
    },
}

/// One queued unit of work.
#[derive(Clone, Debug)]
pub struct WorkItem {
    /// What to run.
    pub kind: WorkKind,
    /// Scheduling class (lower runs first).
    pub priority: u8,
    /// Submission time, seconds of simulated fleet clock.
    pub arrival_s: f64,
    /// Latest acceptable start, seconds — orders items within a class.
    pub deadline_s: f64,
    /// Unique per-queue submission counter (final tie-break).
    pub seq: u64,
}

impl PartialEq for WorkItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for WorkItem {}

impl Ord for WorkItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .cmp(&other.priority)
            .then(self.deadline_s.total_cmp(&other.deadline_s))
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for WorkItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap adapter (`BinaryHeap` is a max-heap).
#[derive(Debug, PartialEq, Eq)]
struct MinItem(WorkItem);

impl Ord for MinItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}

impl PartialOrd for MinItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One trap's pending work, drained in `(priority, deadline, seq)`
/// order.
#[derive(Debug, Default)]
pub struct WorkQueue {
    heap: BinaryHeap<MinItem>,
    next_seq: u64,
}

impl WorkQueue {
    /// Enqueues an item; `arrival_s`/`deadline_s` are simulated seconds.
    pub fn push(&mut self, kind: WorkKind, priority: u8, arrival_s: f64, deadline_s: f64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(MinItem(WorkItem { kind, priority, arrival_s, deadline_s, seq }));
    }

    /// The next item without removing it.
    pub fn peek(&self) -> Option<&WorkItem> {
        self.heap.peek().map(|m| &m.0)
    }

    /// Removes and returns the next item.
    pub fn pop(&mut self) -> Option<WorkItem> {
        self.heap.pop().map(|m| m.0)
    }

    /// Items pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_then_deadline_then_seq() {
        let mut q = WorkQueue::default();
        q.push(WorkKind::UserJob { service_seconds: 1.0 }, PRIO_JOB, 0.0, 10.0);
        q.push(WorkKind::UserJob { service_seconds: 2.0 }, PRIO_JOB, 0.0, 5.0);
        q.push(WorkKind::Canary, PRIO_CANARY, 0.0, 60.0);
        q.push(WorkKind::Diagnose, PRIO_DIAGNOSE, 0.0, 999.0);
        q.push(WorkKind::UserJob { service_seconds: 3.0 }, PRIO_JOB, 0.0, 5.0);
        assert_eq!(q.pop().unwrap().kind, WorkKind::Diagnose, "diagnosis preempts all");
        assert_eq!(q.pop().unwrap().kind, WorkKind::Canary, "canary preempts jobs");
        let a = q.pop().unwrap();
        assert_eq!(a.kind, WorkKind::UserJob { service_seconds: 2.0 }, "earlier deadline first");
        let b = q.pop().unwrap();
        assert_eq!(b.kind, WorkKind::UserJob { service_seconds: 3.0 }, "seq breaks deadline ties");
        assert_eq!(q.pop().unwrap().deadline_s, 10.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_within_equal_keys() {
        let mut q = WorkQueue::default();
        for i in 0..5 {
            q.push(WorkKind::UserJob { service_seconds: i as f64 }, PRIO_JOB, 0.0, 0.0);
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().kind, WorkKind::UserJob { service_seconds: i as f64 });
        }
    }
}
