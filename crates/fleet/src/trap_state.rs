//! Per-trap scheduling state and the two tick phases.
//!
//! The fleet advances in **ticks of one simulated minute**. Each tick a
//! trap runs two phases, both depending only on the trap's own state
//! plus an immutable cache snapshot — which is why any shard partition
//! of the traps produces bit-identical results:
//!
//! * **Phase A** (parallel): draw this minute's Poisson job arrivals
//!   from the trap's arrival RNG, apply quasi-static drift at epoch
//!   boundaries, and emit a prepared-circuit *request* for the canary
//!   if one is due. Requests flow to the scheduler thread, which
//!   batches same-class circuits across traps and builds each distinct
//!   preparation once.
//! * **Phase B** (parallel): drain the work queue in priority order —
//!   diagnosis, canary, then user jobs while the minute's budget lasts
//!   — resolving every test circuit through the cache hierarchy, and
//!   idle-fill to the minute boundary.
//!
//! Drift is *quasi-static*: calibration moves only at epoch boundaries
//! (default every 30 simulated minutes), so a trap's canary circuit is
//! byte-identical between epochs and the shared cache converts the
//! repeat preparations into hits.

use crate::cache::{CacheSnapshot, PrepKey, TrapCache};
use crate::exec::CachedTrapExecutor;
use crate::queue::{WorkKind, WorkQueue, PRIO_CANARY, PRIO_DIAGNOSE, PRIO_JOB};
use itqc_backend::cache::xx_key;
use itqc_backend::{CacheCounters, XxPrepared};
use itqc_circuit::Coupling;
use itqc_core::testplan::canary_for;
use itqc_core::{diagnose_all, MultiFaultConfig, TestExecutor, TestSpec};
use itqc_faults::drift::JumpDrift;
use itqc_sim::XxCircuit;
use itqc_trap::duty::Activity;
use itqc_trap::{TrapConfig, VirtualTrap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Parameters shared by every trap of a fleet (see
/// [`crate::api::FleetConfig`] for the user-facing knobs).
#[derive(Clone, Debug)]
pub struct FleetParams {
    /// Register size of each trap.
    pub n_qubits: usize,
    /// Minutes between canary tests.
    pub canary_cadence_min: u64,
    /// Minutes between quasi-static drift applications.
    pub drift_epoch_min: u64,
    /// Poisson arrival rate of user jobs, per trap per minute (0
    /// disables the internal load generator — jobs then only come from
    /// the API).
    pub arrival_rate_per_min: f64,
    /// Mean of the exponential job service time, seconds.
    pub service_secs_mean: f64,
    /// Deadline allowance added to a job's arrival time, seconds.
    pub job_deadline_s: f64,
    /// The calibration drift process.
    pub drift: JumpDrift,
    /// Diagnosis protocol configuration (canary threshold/shots live
    /// here too).
    pub diag: MultiFaultConfig,
    /// Registry handle for L1 (tick-scoped) cache hits, shared across
    /// every trap of the fleet — per-trap lookups are deterministic and
    /// atomic sums commute, so the total is worker-invariant.
    pub l1_hits: itqc_obs::Counter,
    /// Registry handle for L1 cache misses (see [`Self::l1_hits`]).
    pub l1_misses: itqc_obs::Counter,
}

/// A phase-A request for a prepared circuit, batched by the scheduler.
#[derive(Clone, Debug)]
pub struct PrepRequest {
    /// Exact cache key of `xx`.
    pub key: PrepKey,
    /// The accumulated noisy circuit to prepare on a miss.
    pub xx: XxCircuit,
}

/// Everything one trap produced in one tick, merged by the scheduler in
/// trap-id order.
#[derive(Debug, Default)]
pub struct TrapTickOut {
    /// Jobs that arrived this tick (internal load + API submissions).
    pub submitted: u64,
    /// Jobs completed this tick.
    pub completed: u64,
    /// Completion latency (seconds from arrival) per completed job, in
    /// completion order.
    pub latencies: Vec<f64>,
    /// Preparations built on an L1+L2 double miss.
    pub built: Vec<(PrepKey, Arc<XxPrepared>)>,
    /// Keys hit in the L2 snapshot (for LRU refresh).
    pub touched: Vec<PrepKey>,
    /// L2 hit/miss outcomes observed against the snapshot.
    pub l2: CacheCounters,
    /// Canary tests run.
    pub canaries: u64,
    /// Canaries that tripped.
    pub trips: u64,
    /// Full diagnoses run.
    pub diagnoses: u64,
    /// Test circuits executed inside diagnoses.
    pub tests_run: u64,
    /// Couplings diagnosed faulty and recalibrated.
    pub faults_fixed: u64,
}

/// One-line operational status of a trap (the `status` command).
#[derive(Clone, Debug)]
pub struct TrapStatus {
    /// Trap id.
    pub id: usize,
    /// Machine wall clock, simulated seconds.
    pub clock_seconds: f64,
    /// Pending queue items.
    pub queue_depth: usize,
    /// Most recent canary score.
    pub last_canary: f64,
    /// Jobs completed since construction.
    pub jobs_completed: u64,
    /// Faults diagnosed and recalibrated since construction.
    pub faults_fixed: u64,
    /// Most recent diagnosed faults as `(tick, coupling)`.
    pub recent_faults: Vec<(u64, Coupling)>,
}

/// Per-trap end-of-run accounting for the fleet summary. L1 cache
/// totals are no longer carried here — they accumulate directly into
/// the fleet registry's `fleet.cache.l1.*` handles.
#[derive(Clone, Debug)]
pub struct TrapDrain {
    /// Seconds per activity, `Activity::ALL` order.
    pub duty: [f64; Activity::ALL.len()],
    /// Jobs still queued.
    pub queue_depth: usize,
}

/// A SplitMix64-derived stream seed — the same construction the bench
/// trial engine uses, so per-trap streams are decorrelated and depend
/// only on `(master, stream)`.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Knuth's product method: one Poisson(`lambda`) draw.
pub fn poisson(rng: &mut SmallRng, lambda: f64) -> usize {
    let floor = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= floor {
            return k;
        }
        k += 1;
    }
}

/// One exponential draw with the given mean.
pub fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    -mean * (1.0 - rng.gen::<f64>()).ln()
}

/// One trap of the fleet: the virtual machine, its work queue, its
/// tick-scoped L1 cache, and the scheduling counters.
pub struct TrapState {
    id: usize,
    params: Arc<FleetParams>,
    trap: VirtualTrap,
    arrival_rng: SmallRng,
    queue: WorkQueue,
    l1: TrapCache,
    canary_spec: TestSpec,
    next_canary_min: u64,
    submitted_this_tick: u64,
    last_canary: f64,
    jobs_completed: u64,
    faults_fixed: u64,
    recent_faults: Vec<(u64, Coupling)>,
}

impl TrapState {
    /// Builds trap `id` of a fleet seeded with `master_seed`. The trap's
    /// machine RNG and its arrival RNG are independent derived streams.
    pub fn new(id: usize, master_seed: u64, params: Arc<FleetParams>) -> Self {
        let trap = VirtualTrap::new(TrapConfig::ideal(
            params.n_qubits,
            split_seed(master_seed, id as u64),
        ));
        let arrival_rng = SmallRng::seed_from_u64(split_seed(master_seed ^ 0xF1EE_7D00, id as u64));
        let max_reps = *params.diag.reps_ladder.last().expect("non-empty ladder");
        let canary_spec = canary_for(&trap.couplings(), max_reps, params.diag.canary_score);
        let l1 = TrapCache::with_counters(params.l1_hits.clone(), params.l1_misses.clone());
        TrapState {
            id,
            params,
            trap,
            arrival_rng,
            queue: WorkQueue::default(),
            l1,
            canary_spec,
            next_canary_min: 0,
            submitted_this_tick: 0,
            last_canary: 1.0,
            jobs_completed: 0,
            faults_fixed: 0,
            recent_faults: Vec::new(),
        }
    }

    /// Trap id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Enqueues an externally submitted job (the `FleetHandle::submit`
    /// path); `now_s` is the fleet clock at submission.
    pub fn submit_job(&mut self, service_seconds: f64, now_s: f64) {
        self.queue.push(
            WorkKind::UserJob { service_seconds },
            PRIO_JOB,
            now_s,
            now_s + self.params.job_deadline_s,
        );
        self.submitted_this_tick += 1;
    }

    /// Phase A of `tick`: arrivals, quasi-static drift, and the canary
    /// prep request when one is due.
    pub fn phase_a(&mut self, tick: u64) -> Option<PrepRequest> {
        let now = tick as f64 * 60.0;
        if self.params.arrival_rate_per_min > 0.0 {
            let n = poisson(&mut self.arrival_rng, self.params.arrival_rate_per_min);
            for _ in 0..n {
                let service = exponential(&mut self.arrival_rng, self.params.service_secs_mean);
                self.queue.push(
                    WorkKind::UserJob { service_seconds: service },
                    PRIO_JOB,
                    now,
                    now + self.params.job_deadline_s,
                );
                self.submitted_this_tick += 1;
            }
        }
        if tick > 0 && tick.is_multiple_of(self.params.drift_epoch_min) {
            self.trap.apply_drift(self.params.drift_epoch_min as f64, &self.params.drift);
        }
        if tick >= self.next_canary_min {
            self.next_canary_min = tick + self.params.canary_cadence_min;
            self.queue.push(WorkKind::Canary, PRIO_CANARY, now, now);
            let xx = self
                .canary_spec
                .noisy_xx(self.params.n_qubits, |c| self.trap.true_under_rotation(c));
            let key = xx_key(&xx);
            return Some(PrepRequest { key, xx });
        }
        None
    }

    /// Phase B of `tick`: drain the queue against `snap` and idle-fill
    /// to the minute boundary.
    pub fn phase_b(&mut self, tick: u64, snap: &CacheSnapshot) -> TrapTickOut {
        self.l1.begin_tick();
        let minute_end = (tick + 1) as f64 * 60.0;
        let mut out = TrapTickOut { submitted: self.submitted_this_tick, ..Default::default() };
        self.submitted_this_tick = 0;
        while let Some(front) = self.queue.peek() {
            // Maintenance runs even when it overruns the minute (it was
            // due); user jobs only start while the minute has budget.
            if matches!(front.kind, WorkKind::UserJob { .. })
                && self.trap.clock_seconds() >= minute_end
            {
                break;
            }
            let item = self.queue.pop().expect("peeked");
            match item.kind {
                WorkKind::Canary => {
                    out.canaries += 1;
                    let score = {
                        let mut exec = CachedTrapExecutor::new(
                            &mut self.trap,
                            &mut self.l1,
                            snap,
                            &mut out.built,
                            &mut out.touched,
                            &mut out.l2,
                        );
                        exec.run_test(&self.canary_spec, self.params.diag.canary_shots)
                    };
                    self.last_canary = score;
                    if score < self.params.diag.canary_threshold {
                        out.trips += 1;
                        let now = self.trap.clock_seconds();
                        self.queue.push(WorkKind::Diagnose, PRIO_DIAGNOSE, now, now);
                    }
                }
                WorkKind::Diagnose => {
                    out.diagnoses += 1;
                    let report = {
                        let mut exec = CachedTrapExecutor::new(
                            &mut self.trap,
                            &mut self.l1,
                            snap,
                            &mut out.built,
                            &mut out.touched,
                            &mut out.l2,
                        );
                        diagnose_all(&mut exec, self.params.n_qubits, &self.params.diag)
                    };
                    out.tests_run += report.tests_run as u64;
                    for fault in &report.diagnosed {
                        self.trap.recalibrate(fault.coupling);
                        out.faults_fixed += 1;
                        self.faults_fixed += 1;
                        self.recent_faults.push((tick, fault.coupling));
                    }
                    let overflow = self.recent_faults.len().saturating_sub(8);
                    if overflow > 0 {
                        self.recent_faults.drain(..overflow);
                    }
                }
                WorkKind::UserJob { service_seconds } => {
                    self.trap.bill_job_time(service_seconds);
                    out.latencies.push(self.trap.clock_seconds() - item.arrival_s);
                    out.completed += 1;
                    self.jobs_completed += 1;
                }
            }
        }
        let now = self.trap.clock_seconds();
        if now < minute_end {
            self.trap.bill_idle_time(minute_end - now);
        }
        out
    }

    /// Operational status snapshot.
    pub fn status(&self) -> TrapStatus {
        TrapStatus {
            id: self.id,
            clock_seconds: self.trap.clock_seconds(),
            queue_depth: self.queue.len(),
            last_canary: self.last_canary,
            jobs_completed: self.jobs_completed,
            faults_fixed: self.faults_fixed,
            recent_faults: self.recent_faults.clone(),
        }
    }

    /// End-of-run accounting.
    pub fn drain(&self) -> TrapDrain {
        let duty = self.trap.duty();
        let mut secs = [0.0f64; Activity::ALL.len()];
        for (slot, &a) in secs.iter_mut().zip(Activity::ALL.iter()) {
            *slot = duty.seconds(a);
        }
        TrapDrain { duty: secs, queue_depth: self.queue.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine_day::fig2_diagnosis_config;
    use itqc_faults::drift::OrnsteinUhlenbeckDrift;

    fn params() -> Arc<FleetParams> {
        Arc::new(FleetParams {
            n_qubits: 5,
            canary_cadence_min: 2,
            drift_epoch_min: 10,
            arrival_rate_per_min: 3.0,
            service_secs_mean: 4.0,
            job_deadline_s: 300.0,
            drift: JumpDrift {
                base: OrnsteinUhlenbeckDrift { tau_minutes: 240.0, sigma: 0.02 },
                jumps_per_minute: 0.0,
                jump_scale: 0.3,
            },
            diag: fig2_diagnosis_config(),
            l1_hits: itqc_obs::Counter::detached(),
            l1_misses: itqc_obs::Counter::detached(),
        })
    }

    #[test]
    fn arrivals_and_canary_cadence_are_deterministic() {
        let p = params();
        let mut a = TrapState::new(3, 99, Arc::clone(&p));
        let mut b = TrapState::new(3, 99, Arc::clone(&p));
        for tick in 0..6 {
            let ra = a.phase_a(tick);
            let rb = b.phase_a(tick);
            assert_eq!(ra.is_some(), rb.is_some());
            assert_eq!(ra.is_some(), tick % 2 == 0, "cadence 2 requests on even ticks");
            if let (Some(x), Some(y)) = (ra, rb) {
                assert_eq!(x.key, y.key);
            }
            let snap = CacheSnapshot::default();
            let oa = a.phase_b(tick, &snap);
            let ob = b.phase_b(tick, &snap);
            assert_eq!(oa.submitted, ob.submitted);
            assert_eq!(oa.completed, ob.completed);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&oa.latencies), bits(&ob.latencies));
        }
        assert_eq!(a.status().clock_seconds.to_bits(), b.status().clock_seconds.to_bits());
    }

    #[test]
    fn minute_budget_defers_jobs_but_not_maintenance() {
        let p = Arc::new(FleetParams { arrival_rate_per_min: 0.0, ..(*params()).clone() });
        let mut t = TrapState::new(0, 1, Arc::clone(&p));
        // Overload: 100 jobs of 10 s each at the fleet clock's origin.
        for _ in 0..100 {
            t.submit_job(10.0, 0.0);
        }
        let _ = t.phase_a(0);
        let snap = CacheSnapshot::default();
        let out = t.phase_b(0, &snap);
        // The canary ran (maintenance), then ~6 jobs fit the minute.
        assert_eq!(out.canaries, 1);
        assert!(out.completed < 100, "the minute budget must defer work");
        assert!(t.status().queue_depth > 0);
        // Later ticks drain the backlog; latencies grow with queue wait.
        let mut total = out.completed;
        for tick in 1..40 {
            let _ = t.phase_a(tick);
            total += t.phase_b(tick, &snap).completed;
        }
        assert_eq!(total, 100, "backlog drains across ticks");
    }

    #[test]
    fn injected_jump_trips_canary_and_diagnosis_recalibrates() {
        let p = Arc::new(FleetParams {
            arrival_rate_per_min: 0.0,
            canary_cadence_min: 1,
            ..(*params()).clone()
        });
        let mut t = TrapState::new(0, 5, Arc::clone(&p));
        let victim = Coupling::new(1, 3);
        // Tick 0: clean canary.
        let req = t.phase_a(0).expect("canary due");
        let mut shared = crate::cache::SharedPrepCache::new(usize::MAX);
        let prep = Arc::new(XxPrepared::prepare(req.xx).unwrap());
        prep.distributions();
        shared.admit(req.key, prep, 0);
        shared.end_tick(0);
        let out = t.phase_b(0, &shared.snapshot());
        assert_eq!((out.canaries, out.trips), (1, 0));
        // Tick 1: a hard fault appears.
        t.trap.inject_fault(victim, 0.35);
        let req = t.phase_a(1).expect("canary due");
        assert!(!shared.contains(&req.key), "faulty circuit is a new cache key");
        let prep = Arc::new(XxPrepared::prepare(req.xx).unwrap());
        prep.distributions();
        shared.admit(req.key, prep, 1);
        shared.end_tick(1);
        let out = t.phase_b(1, &shared.snapshot());
        assert_eq!((out.canaries, out.trips, out.diagnoses), (1, 1, 1));
        assert_eq!(out.faults_fixed, 1, "diagnosis pinpoints the injected fault");
        assert_eq!(t.trap.true_under_rotation(victim), 0.0, "recalibrated");
        assert_eq!(t.status().recent_faults, vec![(1, victim)]);
    }
}
