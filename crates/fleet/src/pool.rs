//! The shard worker pool: long-lived `std::thread` workers driven over
//! channels.
//!
//! Traps are partitioned into contiguous shards, one per worker. The
//! scheduler thread broadcasts a phase message to every shard, the
//! workers run the phase over their traps *in trap-id order*, and the
//! scheduler collects one reply per shard *in shard order* — so every
//! merged stream (prep requests, latencies, built preparations, cache
//! counters) is ordered by trap id regardless of how many workers the
//! partition used. That, plus per-trap RNG/queue/L1 ownership, is the
//! whole determinism argument: a worker never touches state outside its
//! shard, and the scheduler never observes replies in racy order.

use crate::cache::{CacheSnapshot, PrepKey};
use crate::trap_state::{FleetParams, PrepRequest, TrapDrain, TrapState, TrapStatus, TrapTickOut};
use itqc_backend::{CacheCounters, XxPrepared};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Scheduler → shard messages.
pub enum ToShard {
    /// External job submissions `(trap id, service seconds, now)`.
    Submit(Vec<(usize, f64, f64)>),
    /// Run phase A of `tick` on every owned trap.
    PhaseA(u64),
    /// Run phase B of `tick` against the given snapshot.
    PhaseB(u64, CacheSnapshot),
    /// Report one trap's status.
    Status(usize),
    /// Report end-of-run accounting for every owned trap.
    Drain,
    /// Exit the worker loop.
    Shutdown,
}

/// Shard → scheduler replies.
pub enum FromShard {
    /// Phase A prep requests, in trap-id order within the shard.
    Requests(Vec<PrepRequest>),
    /// Phase B results merged over the shard's traps (trap-id order).
    Ticked(Box<ShardTickOut>),
    /// One trap's status.
    Status(Box<TrapStatus>),
    /// Per-trap accounting, in trap-id order.
    Drained(Vec<TrapDrain>),
}

/// A shard's merged phase-B output (field-by-field concatenation of its
/// traps' [`TrapTickOut`]s, trap-id order).
#[derive(Debug, Default)]
pub struct ShardTickOut {
    /// Jobs arrived.
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Completion latencies, trap-id then completion order.
    pub latencies: Vec<f64>,
    /// Double-miss builds.
    pub built: Vec<(PrepKey, Arc<XxPrepared>)>,
    /// Snapshot hits (for LRU refresh).
    pub touched: Vec<PrepKey>,
    /// L2 outcomes observed by the shard's traps.
    pub l2: CacheCounters,
    /// Canaries run.
    pub canaries: u64,
    /// Canary trips.
    pub trips: u64,
    /// Diagnoses run.
    pub diagnoses: u64,
    /// Diagnosis test circuits executed.
    pub tests_run: u64,
    /// Faults diagnosed and recalibrated.
    pub faults_fixed: u64,
}

impl ShardTickOut {
    fn absorb(&mut self, out: TrapTickOut) {
        self.submitted += out.submitted;
        self.completed += out.completed;
        self.latencies.extend(out.latencies);
        self.built.extend(out.built);
        self.touched.extend(out.touched);
        self.l2 += out.l2;
        self.canaries += out.canaries;
        self.trips += out.trips;
        self.diagnoses += out.diagnoses;
        self.tests_run += out.tests_run;
        self.faults_fixed += out.faults_fixed;
    }
}

/// One worker thread owning traps `ids` (a contiguous id range).
pub struct Shard {
    /// First trap id owned (inclusive).
    pub lo: usize,
    /// One past the last trap id owned.
    pub hi: usize,
    tx: Sender<ToShard>,
    rx: Receiver<FromShard>,
    handle: Option<JoinHandle<()>>,
}

impl Shard {
    /// Spawns the worker for traps `lo..hi`.
    pub fn spawn(lo: usize, hi: usize, master_seed: u64, params: Arc<FleetParams>) -> Self {
        let (tx, worker_rx) = channel::<ToShard>();
        let (worker_tx, rx) = channel::<FromShard>();
        let handle = std::thread::Builder::new()
            .name(format!("fleet-shard-{lo}"))
            .spawn(move || {
                let mut traps: Vec<TrapState> = (lo..hi)
                    .map(|id| TrapState::new(id, master_seed, Arc::clone(&params)))
                    .collect();
                while let Ok(msg) = worker_rx.recv() {
                    match msg {
                        ToShard::Submit(jobs) => {
                            for (trap, service, now) in jobs {
                                traps[trap - lo].submit_job(service, now);
                            }
                        }
                        ToShard::PhaseA(tick) => {
                            let requests: Vec<PrepRequest> =
                                traps.iter_mut().filter_map(|t| t.phase_a(tick)).collect();
                            if worker_tx.send(FromShard::Requests(requests)).is_err() {
                                break;
                            }
                        }
                        ToShard::PhaseB(tick, snap) => {
                            let mut merged = ShardTickOut::default();
                            for t in traps.iter_mut() {
                                merged.absorb(t.phase_b(tick, &snap));
                            }
                            // Fold this worker's ambient event shard into
                            // the global registry *before* the reply: the
                            // channel send is the tick barrier, so once the
                            // scheduler has collected every shard's reply,
                            // a metrics query sees each completed tick's
                            // events (commutative merge — worker-invariant
                            // for the deterministic class).
                            itqc_obs::event::flush();
                            if worker_tx.send(FromShard::Ticked(Box::new(merged))).is_err() {
                                break;
                            }
                        }
                        ToShard::Status(trap) => {
                            let status = Box::new(traps[trap - lo].status());
                            if worker_tx.send(FromShard::Status(status)).is_err() {
                                break;
                            }
                        }
                        ToShard::Drain => {
                            let drains: Vec<TrapDrain> = traps.iter().map(|t| t.drain()).collect();
                            itqc_obs::event::flush();
                            if worker_tx.send(FromShard::Drained(drains)).is_err() {
                                break;
                            }
                        }
                        ToShard::Shutdown => break,
                    }
                }
            })
            .expect("spawn fleet shard worker");
        Shard { lo, hi, tx, rx, handle: Some(handle) }
    }

    /// Whether this shard owns `trap`.
    pub fn owns(&self, trap: usize) -> bool {
        (self.lo..self.hi).contains(&trap)
    }

    /// Sends a message to the worker.
    pub fn send(&self, msg: ToShard) {
        self.tx.send(msg).expect("fleet shard worker alive");
    }

    /// Blocks for the worker's next reply.
    pub fn recv(&self) -> FromShard {
        self.rx.recv().expect("fleet shard worker alive")
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        let _ = self.tx.send(ToShard::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Contiguous shard bounds for `traps` traps over `workers` workers:
/// `ceil(traps/workers)`-sized chunks (the last may be short). Returns
/// at least one shard, never an empty one.
pub fn shard_bounds(traps: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.clamp(1, traps.max(1));
    let chunk = traps.div_ceil(workers);
    let mut bounds = Vec::new();
    let mut lo = 0;
    while lo < traps {
        let hi = (lo + chunk).min(traps);
        bounds.push((lo, hi));
        lo = hi;
    }
    if bounds.is_empty() {
        bounds.push((0, 0));
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bounds_cover_exactly_once() {
        for traps in [1usize, 2, 7, 16, 100] {
            for workers in [1usize, 2, 3, 8, 200] {
                let bounds = shard_bounds(traps, workers);
                let mut covered = 0;
                let mut expect_lo = 0;
                for (lo, hi) in &bounds {
                    assert_eq!(*lo, expect_lo, "contiguous");
                    assert!(hi > lo, "non-empty shard");
                    covered += hi - lo;
                    expect_lo = *hi;
                }
                assert_eq!(covered, traps, "traps {traps} workers {workers}");
                assert!(bounds.len() <= workers.max(1));
            }
        }
    }
}
