//! Simulators for the `itqc` workspace.
//!
//! Two backends validated against each other:
//!
//! * [`StateVector`] — general dense simulation, exact amplitudes, memory
//!   bound `2^n` (practical to ~22 qubits). Runs the paper's 8–11-qubit
//!   hardware-comparison experiments (Figs. 3, 6, 7).
//! * [`XxCircuit`] — exact analytic engine for commuting-XX circuits (all
//!   of the paper's test circuits), evaluating output probabilities as
//!   Gray-code Ising sums over only the *touched* qubits. This is what
//!   reproduces the paper's 32-qubit scaling studies (Fig. 8, Fig. 9,
//!   Table II) on a laptop.
//!
//! Plus shot-noise utilities ([`shots`]) and a stochastic-trajectory runner
//! ([`trajectory`]) for the non-deterministic error classes.

#![warn(missing_docs)]

/// A measurement outcome (or target) bitstring, bit `q` = qubit `q`.
///
/// 128 bits so the beyond-paper 64/128-qubit sweeps (ROADMAP item 2)
/// can address qubit labels past 63; dense *local* state indices stay
/// `usize` (they are table offsets bounded by `2^support`, not qubit
/// labels).
pub type BitString = u128;

pub mod shots;
pub mod statevector;
pub mod trajectory;
pub mod xx;

pub use statevector::{run, StateVector};
pub use trajectory::{NoiseModel, Noiseless};
pub use xx::XxCircuit;
