//! Stochastic-trajectory execution.
//!
//! Non-deterministic noise (1/f phase drift, random amplitude fluctuations,
//! residual bus kicks) is simulated by Monte-Carlo unravelling: each
//! trajectory draws one realisation of every stochastic parameter, runs the
//! resulting *unitary* circuit on the dense backend, and observables are
//! averaged over trajectories. This matches the paper's unitary-error
//! simulator (§VI), which models exactly these error classes.

use crate::statevector::StateVector;
use itqc_circuit::{Circuit, Op};
use rand::Rng;

/// Rewrites one ideal operation into its noisy realisation for the current
/// trajectory. Implementations live in `itqc-faults`/`itqc-trap`; the
/// simulator only fixes the calling convention.
pub trait NoiseModel {
    /// Emits the noisy ops replacing ideal `op` (commonly the perturbed op
    /// itself, possibly with extra error kicks around it).
    fn rewrite<R: Rng + ?Sized>(&mut self, op: &Op, rng: &mut R, out: &mut Vec<Op>);

    /// Called once at the start of each trajectory so the model can draw
    /// per-run realisations (e.g. a fresh 1/f noise trace).
    fn begin_trajectory<R: Rng + ?Sized>(&mut self, _rng: &mut R) {}
}

/// A no-noise model: ops pass through unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Noiseless;

impl NoiseModel for Noiseless {
    fn rewrite<R: Rng + ?Sized>(&mut self, op: &Op, _rng: &mut R, out: &mut Vec<Op>) {
        out.push(*op);
    }
}

/// Runs one noisy trajectory of `circuit` and returns the final state.
pub fn run_trajectory<M, R>(circuit: &Circuit, model: &mut M, rng: &mut R) -> StateVector
where
    M: NoiseModel,
    R: Rng + ?Sized,
{
    model.begin_trajectory(rng);
    let mut state = StateVector::zero_state(circuit.n_qubits());
    let mut buf = Vec::with_capacity(4);
    for op in circuit.ops() {
        buf.clear();
        model.rewrite(op, rng, &mut buf);
        for noisy in &buf {
            state.apply_op(noisy);
        }
    }
    state
}

/// Average probability of observing `target` over `n_traj` noisy
/// trajectories — the exact-measurement analogue of repeating the circuit.
pub fn average_target_probability<M, R>(
    circuit: &Circuit,
    target: usize,
    n_traj: usize,
    model: &mut M,
    rng: &mut R,
) -> f64
where
    M: NoiseModel,
    R: Rng + ?Sized,
{
    assert!(n_traj > 0, "need at least one trajectory");
    let mut acc = 0.0;
    for _ in 0..n_traj {
        acc += run_trajectory(circuit, model, rng).probability(target);
    }
    acc / n_traj as f64
}

/// Simulates a `shots`-shot experiment under trajectory noise: each shot
/// draws a fresh trajectory and samples one measurement outcome, exactly as
/// hardware would. Returns the number of shots that landed on `target`.
pub fn shots_on_target<M, R>(
    circuit: &Circuit,
    target: usize,
    shots: usize,
    model: &mut M,
    rng: &mut R,
) -> usize
where
    M: NoiseModel,
    R: Rng + ?Sized,
{
    let mut hits = 0;
    for _ in 0..shots {
        let state = run_trajectory(circuit, model, rng);
        if state.sample(rng) == target {
            hits += 1;
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_circuit::{Gate, Op};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_PI_2;

    /// A test model that under-rotates every XX gate by a fixed fraction.
    struct FixedUnderRotation(f64);

    impl NoiseModel for FixedUnderRotation {
        fn rewrite<R: Rng + ?Sized>(&mut self, op: &Op, _rng: &mut R, out: &mut Vec<Op>) {
            match op.gate {
                Gate::Xx(t) => {
                    out.push(Op::two(Gate::Xx(t * (1.0 - self.0)), op.qubits()[0], op.qubits()[1]))
                }
                _ => out.push(*op),
            }
        }
    }

    #[test]
    fn noiseless_matches_direct_run() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let s = run_trajectory(&c, &mut Noiseless, &mut rng);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_underrotation_matches_analytic() {
        let mut rng = SmallRng::seed_from_u64(2);
        let u = 0.22;
        let mut c = Circuit::new(2);
        for _ in 0..4 {
            c.xx(0, 1, FRAC_PI_2);
        }
        let f = average_target_probability(&c, 0, 3, &mut FixedUnderRotation(u), &mut rng);
        let expect = (std::f64::consts::PI * u).cos().powi(2);
        assert!((f - expect).abs() < 1e-10, "{f} vs {expect}");
    }

    #[test]
    fn shots_follow_the_mean() {
        let mut rng = SmallRng::seed_from_u64(3);
        let u = 0.3;
        let mut c = Circuit::new(2);
        for _ in 0..4 {
            c.xx(0, 1, FRAC_PI_2);
        }
        let shots = 2000;
        let hits = shots_on_target(&c, 0, shots, &mut FixedUnderRotation(u), &mut rng);
        let expect = (std::f64::consts::PI * u).cos().powi(2);
        let p_hat = hits as f64 / shots as f64;
        assert!((p_hat - expect).abs() < 0.04, "{p_hat} vs {expect}");
    }
}
