//! Shot-noise utilities.
//!
//! Hardware experiments observe probabilities only through finite shot
//! counts (the paper uses 300–1000 shots per circuit). These helpers
//! convert exact simulator probabilities into the binomial statistics a
//! real run would produce.

use rand::Rng;

/// Draws a binomial variate `B(shots, p)` by direct Bernoulli summation.
///
/// Exact and fast for the shot counts this workspace uses (≤ ~10⁵).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, shots: usize, p: f64) -> usize {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return shots;
    }
    (0..shots).filter(|_| rng.gen::<f64>() < p).count()
}

/// The empirical probability a `shots`-shot experiment would report for an
/// event of true probability `p`.
pub fn sampled_probability<R: Rng + ?Sized>(rng: &mut R, shots: usize, p: f64) -> f64 {
    if shots == 0 {
        return 0.0;
    }
    binomial(rng, shots, p) as f64 / shots as f64
}

/// Applies symmetric-or-not SPAM readout errors to an exact probability of
/// observing the *target* string of `weight_target` ones out of `n_qubits`.
///
/// This first-order model treats readout flips as independent per qubit:
/// the probability that the target string is read out unchanged is
/// `(1−p01)^z·(1−p10)^o` where `z`/`o` are the zero/one counts; misreads
/// *into* the target from other strings are neglected (they are second
/// order in the sub-1% flip rates the paper reports).
pub fn spam_attenuation(n_qubits: usize, weight_target: usize, p01: f64, p10: f64) -> f64 {
    assert!(weight_target <= n_qubits, "target weight exceeds register");
    let zeros = (n_qubits - weight_target) as i32;
    let ones = weight_target as i32;
    (1.0 - p01).powi(zeros) * (1.0 - p10).powi(ones)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
    }

    #[test]
    fn binomial_mean_and_spread() {
        let mut rng = SmallRng::seed_from_u64(2);
        let trials = 2000;
        let shots = 300;
        let p = 0.45;
        let mean: f64 =
            (0..trials).map(|_| binomial(&mut rng, shots, p) as f64).sum::<f64>() / trials as f64;
        assert!((mean - shots as f64 * p).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn sampled_probability_converges() {
        let mut rng = SmallRng::seed_from_u64(3);
        let p_hat = sampled_probability(&mut rng, 100_000, 0.25);
        assert!((p_hat - 0.25).abs() < 0.01);
    }

    #[test]
    fn spam_attenuation_bounds() {
        // No error → no attenuation.
        assert_eq!(spam_attenuation(8, 3, 0.0, 0.0), 1.0);
        // 0.5% flips on 8 qubits → ~96% retention.
        let a = spam_attenuation(8, 0, 0.005, 0.005);
        assert!((a - 0.995f64.powi(8)).abs() < 1e-12);
        assert!(a > 0.95 && a < 1.0);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_probability_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = binomial(&mut rng, 10, 1.5);
    }
}
