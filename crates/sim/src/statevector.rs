//! Dense state-vector simulator.
//!
//! The general-purpose backend: exact amplitudes for any circuit, memory
//! bound at `2^n` complex doubles (practical to ~22 qubits). All the
//! small-scale experiments of the paper (Figs. 3, 6, 7 at 8–11 qubits) run
//! on this backend; the 32-qubit experiments use the structure-exploiting
//! [`crate::xx::XxCircuit`] engine, which is cross-validated against this
//! one in the test suite.

use itqc_circuit::{Circuit, Op};
use itqc_math::{Complex64, Mat2, Mat4};
use rand::Rng;
use std::collections::BTreeMap;

/// Maximum register size `unitary`-style dense simulation will accept.
pub const MAX_QUBITS: usize = 26;

/// An `n`-qubit pure state. Qubit 0 is the least-significant index bit.
///
/// # Example
///
/// ```
/// use itqc_circuit::Circuit;
/// use itqc_sim::StateVector;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1);
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_circuit(&c);
/// assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or exceeds [`MAX_QUBITS`].
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "state needs at least one qubit");
        assert!(
            n_qubits <= MAX_QUBITS,
            "dense simulation of {n_qubits} qubits exceeds the {MAX_QUBITS}-qubit memory wall; \
             use the commuting-XX engine for protocol-scale runs"
        );
        let mut amps = vec![Complex64::ZERO; 1usize << n_qubits];
        amps[0] = Complex64::ONE;
        StateVector { n_qubits, amps }
    }

    /// A computational basis state `|basis⟩`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`StateVector::zero_state`], or
    /// if `basis` is out of range.
    pub fn basis_state(n_qubits: usize, basis: usize) -> Self {
        let mut s = Self::zero_state(n_qubits);
        assert!(basis < s.amps.len(), "basis state out of range");
        s.amps[0] = Complex64::ZERO;
        s.amps[basis] = Complex64::ONE;
        s
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitude vector (length `2^n`).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// The amplitude of `|basis⟩`.
    #[inline]
    pub fn amplitude(&self, basis: usize) -> Complex64 {
        self.amps[basis]
    }

    /// `|⟨basis|ψ⟩|²`.
    #[inline]
    pub fn probability(&self, basis: usize) -> f64 {
        self.amps[basis].norm_sqr()
    }

    /// The full outcome distribution (length `2^n`).
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// The state norm (should be 1 for a physical state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Rescales to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is numerically zero.
    pub fn normalize(&mut self) {
        let n = self.norm();
        assert!(n > 1e-12, "cannot normalise a zero state");
        for a in &mut self.amps {
            *a = *a / n;
        }
    }

    /// Overlap `⟨other|self⟩`.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn overlap(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.n_qubits, other.n_qubits, "state size mismatch");
        self.amps.iter().zip(other.amps.iter()).map(|(a, b)| b.conj() * *a).sum()
    }

    /// State fidelity `|⟨other|self⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.overlap(other).norm_sqr()
    }

    /// Probability that qubit `q` measures `|1⟩`.
    pub fn marginal_one(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        self.amps.iter().enumerate().filter(|(i, _)| i & bit != 0).map(|(_, a)| a.norm_sqr()).sum()
    }

    /// Applies a single-qubit gate matrix to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_1q(&mut self, q: usize, m: &Mat2) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let bit = 1usize << q;
        let dim = self.amps.len();
        let mut i = 0usize;
        while i < dim {
            if i & bit == 0 {
                let a0 = self.amps[i];
                let a1 = self.amps[i | bit];
                self.amps[i] = m.at(0, 0) * a0 + m.at(0, 1) * a1;
                self.amps[i | bit] = m.at(1, 0) * a0 + m.at(1, 1) * a1;
            }
            i += 1;
        }
    }

    /// Applies a two-qubit gate matrix; `first` maps to the high bit of the
    /// gate's 2-bit index (matching [`Mat4::kron`] and `Op::two`).
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range.
    pub fn apply_2q(&mut self, first: usize, second: usize, m: &Mat4) {
        assert!(first < self.n_qubits && second < self.n_qubits, "qubit out of range");
        assert_ne!(first, second, "two-qubit gate needs distinct qubits");
        let bf = 1usize << first;
        let bs = 1usize << second;
        let dim = self.amps.len();
        for i in 0..dim {
            if i & bf == 0 && i & bs == 0 {
                let i00 = i;
                let i01 = i | bs;
                let i10 = i | bf;
                let i11 = i | bf | bs;
                let v = [self.amps[i00], self.amps[i01], self.amps[i10], self.amps[i11]];
                let w = m.mul_vec(v);
                self.amps[i00] = w[0];
                self.amps[i01] = w[1];
                self.amps[i10] = w[2];
                self.amps[i11] = w[3];
            }
        }
    }

    /// Applies one circuit operation.
    ///
    /// # Panics
    ///
    /// Panics if the op addresses qubits outside the register.
    pub fn apply_op(&mut self, op: &Op) {
        match op.gate.arity() {
            1 => self.apply_1q(op.qubits()[0], &op.gate.matrix1().expect("1q matrix")),
            _ => self.apply_2q(
                op.qubits()[0],
                op.qubits()[1],
                &op.gate.matrix2().expect("2q matrix"),
            ),
        }
    }

    /// Applies every operation of a circuit in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit register is larger than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(circuit.n_qubits() <= self.n_qubits, "circuit register larger than state");
        for op in circuit.ops() {
            self.apply_op(op);
        }
    }

    /// Samples one measurement outcome (all qubits, computational basis)
    /// without collapsing the state.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut u: f64 = rng.gen();
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if u < p {
                return i;
            }
            u -= p;
        }
        self.amps.len() - 1 // numerical slack lands on the last state
    }

    /// Samples `shots` measurement outcomes and returns a count map.
    pub fn sample_counts<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        shots: usize,
    ) -> BTreeMap<usize, usize> {
        let mut counts = BTreeMap::new();
        for _ in 0..shots {
            *counts.entry(self.sample(rng)).or_insert(0) += 1;
        }
        counts
    }

    /// Measures all qubits, collapsing the state to the sampled basis
    /// state, and returns the outcome.
    pub fn measure<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let outcome = self.sample(rng);
        for a in &mut self.amps {
            *a = Complex64::ZERO;
        }
        self.amps[outcome] = Complex64::ONE;
        outcome
    }
}

/// Runs `circuit` from `|0…0⟩` and returns the final state.
pub fn run(circuit: &Circuit) -> StateVector {
    let mut s = StateVector::zero_state(circuit.n_qubits());
    s.apply_circuit(circuit);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_circuit::library;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn zero_state_is_all_zeros() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.probability(0), 1.0);
        assert!((s.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn x_flips() {
        let mut c = Circuit::new(2);
        c.x(1);
        let s = run(&c);
        assert!((s.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_distribution() {
        let s = run(&library::ghz(4));
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b1111) - 0.5).abs() < 1e-12);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_preserves_norm() {
        let mut rng = SmallRng::seed_from_u64(3);
        let c = library::random_circuit(6, 8, &mut rng);
        let s = run(&c);
        assert!((s.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn matches_dense_unitary_on_random_circuits() {
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..5 {
            let c = library::random_circuit(5, 4, &mut rng);
            let s = run(&c);
            let u = c.unitary();
            let dim = 1usize << 5;
            let mut v = vec![Complex64::ZERO; dim];
            v[0] = Complex64::ONE;
            let expect = u.mul_vec(&v);
            for (a, b) in s.amplitudes().iter().zip(expect.iter()) {
                assert!(a.approx_eq(*b, 1e-9));
            }
        }
    }

    #[test]
    fn four_ms_returns_home() {
        // The paper's four-MS-gate single-output test on a perfect coupling.
        let mut c = Circuit::new(2);
        for _ in 0..4 {
            c.xx(0, 1, FRAC_PI_2);
        }
        let s = run(&c);
        assert!((s.probability(0) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn two_ms_inverts() {
        // The paper's two-MS-gate test: expected output is all-ones.
        let mut c = Circuit::new(2);
        for _ in 0..2 {
            c.xx(0, 1, FRAC_PI_2);
        }
        let s = run(&c);
        assert!((s.probability(0b11) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn underrotation_leaks_population() {
        // XX(π/2·(1−u)) four times leaves odd population ~ sin²(π·u)… the
        // qualitative fact the single-output test exploits.
        let u = 0.22;
        let mut c = Circuit::new(2);
        for _ in 0..4 {
            c.xx(0, 1, FRAC_PI_2 * (1.0 - u));
        }
        let s = run(&c);
        let f = s.probability(0);
        assert!(f < 0.9, "fidelity {f} should visibly drop");
        assert!(f > 0.1);
        // Analytic check: 4 under-rotated gates compose to XX(2π−2πu);
        // P(00) = cos²(π·u).
        let expect = (std::f64::consts::PI * u).cos().powi(2);
        assert!((f - expect).abs() < 1e-10);
    }

    #[test]
    fn sampling_statistics_match_probabilities() {
        let mut rng = SmallRng::seed_from_u64(99);
        let s = run(&library::ghz(3));
        let counts = s.sample_counts(&mut rng, 20_000);
        let p0 = *counts.get(&0).unwrap_or(&0) as f64 / 20_000.0;
        let p7 = *counts.get(&7).unwrap_or(&0) as f64 / 20_000.0;
        assert!((p0 - 0.5).abs() < 0.02);
        assert!((p7 - 0.5).abs() < 0.02);
        assert_eq!(counts.keys().filter(|&&k| k != 0 && k != 7).count(), 0);
    }

    #[test]
    fn measure_collapses() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut s = run(&library::ghz(3));
        let outcome = s.measure(&mut rng);
        assert!(outcome == 0 || outcome == 7);
        assert_eq!(s.probability(outcome), 1.0);
    }

    #[test]
    fn marginals() {
        let s = run(&library::ghz(2));
        assert!((s.marginal_one(0) - 0.5).abs() < 1e-12);
        assert!((s.marginal_one(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_of_orthogonal_states() {
        let a = StateVector::basis_state(2, 0);
        let b = StateVector::basis_state(2, 3);
        assert!(a.overlap(&b).norm() < 1e-15);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "memory wall")]
    fn oversized_register_panics() {
        let _ = StateVector::zero_state(30);
    }
}
