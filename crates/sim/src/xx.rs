//! Exact analytic engine for commuting-XX circuits.
//!
//! Every test circuit in the paper's protocols is a product of `XX(θ)`
//! gates (§V): these all commute and are jointly diagonal in the X basis,
//! so output amplitudes reduce to an Ising-type character sum over the
//! qubits the circuit actually touches:
//!
//! `⟨z|U|0⟩ = 2^{−m} Σ_{y∈{0,1}^m} (−1)^{y·z} · exp(−(i/2)·Σ_{a<b} Θ_ab s_a s_b)`
//!
//! with `s_q = (−1)^{y_q}` and `m` the support size. We evaluate the sum by
//! Gray-code enumeration with O(m) incremental updates, which is *exact*
//! (no sampling, no truncation) and turns the paper's 32-qubit simulations
//! — far beyond the `2^32`-amplitude state-vector memory wall — into
//! millisecond computations, because a first-round test class on `N = 2^n`
//! qubits touches only `m = N/2` qubits.
//!
//! Amplitude miscalibrations (the fault model the paper sweeps in its
//! Figs. 8/9 and Table II, which deliberately "suppress phase noise and
//! residual couplings … leaving only 10% random amplitude errors") keep
//! gates inside the commuting family, so this engine simulates those
//! experiments with zero model error. Cross-validated against the dense
//! state vector in tests.

use crate::BitString;
use itqc_circuit::{Circuit, Gate};
use itqc_math::{Complex64, GrayFlips};
use std::collections::BTreeMap;

/// Largest support (touched-qubit count) the exact sum will attempt:
/// `2^24` Gray steps ≈ seconds. Protocol tests need at most `N/2`.
pub const MAX_SUPPORT: usize = 24;

/// A product of `XX(θ)` gates with accumulated per-coupling angles.
///
/// # Example
///
/// ```
/// use itqc_sim::XxCircuit;
/// use std::f64::consts::FRAC_PI_2;
///
/// // Four perfect MS gates on one coupling: identity up to phase.
/// let mut xx = XxCircuit::new(4);
/// for _ in 0..4 {
///     xx.add_xx(1, 3, FRAC_PI_2);
/// }
/// assert!((xx.fidelity(0b0000) - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct XxCircuit {
    n_qubits: usize,
    terms: BTreeMap<(usize, usize), f64>,
}

impl XxCircuit {
    /// An empty (identity) XX circuit on `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        XxCircuit { n_qubits, terms: BTreeMap::new() }
    }

    /// Number of qubits in the register.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Accumulates `XX(theta)` on the coupling `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or a qubit is out of range.
    pub fn add_xx(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        assert!(a < self.n_qubits && b < self.n_qubits, "qubit out of range");
        assert_ne!(a, b, "coupling joins two distinct qubits");
        let key = (a.min(b), a.max(b));
        *self.terms.entry(key).or_insert(0.0) += theta;
        self
    }

    /// Extracts an `XxCircuit` from a [`Circuit`] made exclusively of
    /// [`Gate::Xx`] operations; `None` if any other gate is present.
    pub fn from_circuit(circuit: &Circuit) -> Option<Self> {
        let mut xx = XxCircuit::new(circuit.n_qubits());
        for op in circuit.ops() {
            match op.gate {
                Gate::Xx(theta) => {
                    let q = op.qubits();
                    xx.add_xx(q[0], q[1], theta);
                }
                _ => return None,
            }
        }
        Some(xx)
    }

    /// The accumulated couplings and their total angles.
    pub fn terms(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.terms.iter().map(|(&k, &v)| (k, v))
    }

    /// The sorted set of qubits touched by at least one gate.
    pub fn support(&self) -> Vec<usize> {
        let mut s: Vec<usize> = self.terms.keys().flat_map(|&(a, b)| [a, b]).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// The exact amplitude `⟨target|U|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `target` addresses bits beyond the register, or if the
    /// support exceeds [`MAX_SUPPORT`].
    pub fn amplitude(&self, target: BitString) -> Complex64 {
        assert!(
            self.n_qubits >= BitString::BITS as usize || target < (1 as BitString) << self.n_qubits,
            "target bitstring out of range"
        );
        let support = self.support();
        let m = support.len();
        assert!(m <= MAX_SUPPORT, "support of {m} qubits exceeds MAX_SUPPORT");

        // Untouched qubits stay |0⟩: amplitude vanishes unless their target
        // bits are 0.
        let mut support_mask: BitString = 0;
        for &q in &support {
            support_mask |= (1 as BitString) << q;
        }
        if target & !support_mask != 0 {
            return Complex64::ZERO;
        }
        if m == 0 {
            return Complex64::ONE;
        }

        // Dense weight matrix over the support.
        let mut pos = BTreeMap::new();
        for (k, &q) in support.iter().enumerate() {
            pos.insert(q, k);
        }
        let mut w = vec![0.0f64; m * m];
        for (&(a, b), &theta) in &self.terms {
            let ia = pos[&a];
            let ib = pos[&b];
            w[ia * m + ib] += theta;
            w[ib * m + ia] += theta;
        }
        // Target parity bits restricted to the support.
        let zbits: Vec<bool> = support.iter().map(|&q| (target >> q) & 1 == 1).collect();

        // Gray-code walk over the 2^m X-basis configurations.
        let mut s = vec![1.0f64; m]; // spins ±1
        let mut r: Vec<f64> = (0..m).map(|q| (0..m).map(|b| w[q * m + b]).sum()).collect();
        // φ(all +1) = Σ_{a<b} Θ_ab/2 · 1 = (1/4)·Σ_q r_q.
        let mut phi: f64 = 0.25 * r.iter().sum::<f64>();
        let mut sign = 1.0f64;
        let mut sum = Complex64::cis(-phi) * sign;

        for bit in GrayFlips::new(m as u32) {
            let q = bit as usize;
            phi -= s[q] * r[q];
            let delta = -2.0 * s[q];
            for b in 0..m {
                if b != q {
                    r[b] += w[q * m + b] * delta;
                }
            }
            s[q] = -s[q];
            if zbits[q] {
                sign = -sign;
            }
            sum += Complex64::cis(-phi) * sign;
        }
        sum / (1usize << m) as f64
    }

    /// The exact outcome probability `|⟨target|U|0…0⟩|²` — the paper's
    /// single-output-test fidelity when `target` is the expected string.
    pub fn fidelity(&self, target: BitString) -> f64 {
        self.amplitude(target).norm_sqr()
    }

    /// The exact probability that qubit `q` measures `|1⟩`.
    ///
    /// For commuting-XX circuits the marginal has a closed form: gates not
    /// touching `q` cancel in the Heisenberg picture, and the ones that do
    /// commute pairwise, giving `⟨Z_q⟩ = Π_b cos(Θ_qb)` over the incident
    /// couplings — O(degree) instead of a `2^m` sum.
    pub fn marginal_one(&self, q: usize) -> f64 {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let mut z = 1.0;
        for (&(a, b), &theta) in &self.terms {
            if a == q || b == q {
                z *= theta.cos();
            }
        }
        (1.0 - z) / 2.0
    }

    /// The probability that qubit `q` reads the corresponding bit of
    /// `target`.
    pub fn qubit_agreement(&self, q: usize, target: BitString) -> f64 {
        let p1 = self.marginal_one(q);
        if (target >> q) & 1 == 1 {
            p1
        } else {
            1.0 - p1
        }
    }

    /// The worst per-qubit agreement with `target` over the circuit's
    /// support — the population-based test score used by the scaling
    /// experiments (see DESIGN.md §3: exact-string fidelity collapses
    /// exponentially with class size under ambient miscalibration, so
    /// hardware-style tests threshold qubit populations instead).
    ///
    /// Returns 1 for an empty circuit.
    pub fn min_qubit_agreement(&self, target: BitString) -> f64 {
        self.support().into_iter().map(|q| self.qubit_agreement(q, target)).fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::run;
    use itqc_circuit::Circuit;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::f64::consts::FRAC_PI_2;

    /// Reference fidelity from the dense backend.
    fn dense_fidelity(c: &Circuit, target: usize) -> f64 {
        run(c).probability(target)
    }

    #[test]
    fn empty_circuit_is_identity() {
        let xx = XxCircuit::new(4);
        assert!((xx.fidelity(0) - 1.0).abs() < 1e-15);
        assert_eq!(xx.fidelity(0b0010), 0.0);
    }

    #[test]
    fn single_perfect_ms_pair() {
        // XX(π/2)|00⟩: P(00) = 1/2, P(11) = 1/2, odd = 0.
        let mut xx = XxCircuit::new(2);
        xx.add_xx(0, 1, FRAC_PI_2);
        assert!((xx.fidelity(0b00) - 0.5).abs() < 1e-12);
        assert!((xx.fidelity(0b11) - 0.5).abs() < 1e-12);
        assert!(xx.fidelity(0b01) < 1e-12);
        assert!(xx.fidelity(0b10) < 1e-12);
    }

    #[test]
    fn two_ms_all_ones() {
        let mut xx = XxCircuit::new(2);
        xx.add_xx(0, 1, FRAC_PI_2).add_xx(0, 1, FRAC_PI_2);
        assert!((xx.fidelity(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn underrotated_four_ms_analytic() {
        // 4×XX(π/2(1−u)): P(00) = cos²(π·u).
        let u = 0.47;
        let mut xx = XxCircuit::new(2);
        for _ in 0..4 {
            xx.add_xx(0, 1, FRAC_PI_2 * (1.0 - u));
        }
        let expect = (std::f64::consts::PI * u).cos().powi(2);
        assert!((xx.fidelity(0) - expect).abs() < 1e-12);
    }

    #[test]
    fn matches_dense_backend_on_random_xx_circuits() {
        let mut rng = SmallRng::seed_from_u64(21);
        for trial in 0..20 {
            let n = rng.gen_range(2..=9);
            let mut c = Circuit::new(n);
            let gates = rng.gen_range(1..=12);
            for _ in 0..gates {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.xx(a, b, rng.gen_range(-3.0..3.0));
            }
            let xx = XxCircuit::from_circuit(&c).expect("pure XX circuit");
            for _ in 0..4 {
                let target = rng.gen_range(0..(1usize << n));
                let exact = xx.fidelity(target as u128);
                let reference = dense_fidelity(&c, target);
                assert!(
                    (exact - reference).abs() < 1e-9,
                    "trial {trial}: target {target:b}: {exact} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn amplitude_matches_dense_backend_in_phase() {
        let mut rng = SmallRng::seed_from_u64(33);
        let n = 5;
        let mut c = Circuit::new(n);
        for _ in 0..8 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            c.xx(a, b, rng.gen_range(-2.0..2.0));
        }
        let xx = XxCircuit::from_circuit(&c).unwrap();
        let dense = run(&c);
        for target in 0..(1usize << n) {
            assert!(
                xx.amplitude(target as u128).approx_eq(dense.amplitude(target), 1e-9),
                "target {target:05b}"
            );
        }
    }

    #[test]
    fn support_and_terms_accumulate() {
        let mut xx = XxCircuit::new(8);
        xx.add_xx(1, 5, 0.3).add_xx(5, 1, 0.2).add_xx(2, 6, -0.1);
        assert_eq!(xx.support(), vec![1, 2, 5, 6]);
        let terms: Vec<_> = xx.terms().collect();
        assert_eq!(terms.len(), 2);
        assert!((terms[0].1 - 0.5).abs() < 1e-15); // {1,5} accumulated
    }

    #[test]
    fn untouched_qubits_must_stay_zero() {
        let mut xx = XxCircuit::new(4);
        xx.add_xx(0, 1, FRAC_PI_2);
        // Any target with bit 2 or 3 set has zero amplitude.
        assert_eq!(xx.fidelity(0b0100), 0.0);
        assert_eq!(xx.fidelity(0b1011), 0.0);
    }

    #[test]
    fn from_circuit_rejects_non_xx() {
        let mut c = Circuit::new(2);
        c.xx(0, 1, 0.3).h(0);
        assert!(XxCircuit::from_circuit(&c).is_none());
    }

    #[test]
    fn marginals_match_dense_backend() {
        let mut rng = SmallRng::seed_from_u64(57);
        for _ in 0..10 {
            let n = rng.gen_range(2..=8);
            let mut c = Circuit::new(n);
            for _ in 0..rng.gen_range(1..=10) {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.xx(a, b, rng.gen_range(-3.0..3.0));
            }
            let xx = XxCircuit::from_circuit(&c).unwrap();
            let dense = run(&c);
            for q in 0..n {
                let exact = xx.marginal_one(q);
                let reference = dense.marginal_one(q);
                assert!((exact - reference).abs() < 1e-10, "qubit {q}");
            }
        }
    }

    #[test]
    fn min_qubit_agreement_bounds_exact_fidelity() {
        // P(exact string) <= min-qubit agreement always.
        let mut rng = SmallRng::seed_from_u64(58);
        let n = 6;
        let mut c = Circuit::new(n);
        for _ in 0..8 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            c.xx(a, b, rng.gen_range(-1.0..1.0));
        }
        let xx = XxCircuit::from_circuit(&c).unwrap();
        for target in [0u128, 0b101010, 0b111111] {
            assert!(xx.fidelity(target) <= xx.min_qubit_agreement(target) + 1e-12);
        }
    }

    #[test]
    fn large_register_class_test_runs_fast() {
        // A protocol-sized workload: 32-qubit register, complete graph over
        // a 16-qubit class, 2 MS gates per coupling.
        let mut xx = XxCircuit::new(32);
        let class: Vec<usize> = (0..32).filter(|q| q % 2 == 0).collect();
        for (i, &a) in class.iter().enumerate() {
            for &b in &class[i + 1..] {
                xx.add_xx(a, b, 2.0 * FRAC_PI_2);
            }
        }
        // Perfect calibration: each coupling contributes XX(π) = −i·X⊗X per
        // pair; with 15 partners per qubit the net flip is X^15 = X, so the
        // expected output sets every class qubit to 1.
        let mut expected: u128 = 0;
        for &q in &class {
            expected |= 1 << q;
        }
        let f = xx.fidelity(expected);
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }
}
