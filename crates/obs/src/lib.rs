//! # itqc-obs — deterministic counters, wall-clock spans, metrics sinks
//!
//! A zero-dependency observability subsystem for the itqc workspace,
//! split into two determinism classes that never mix:
//!
//! * **Deterministic events** — named monotonic counters and integer
//!   value histograms that count *logical work* (shots drawn, sampler
//!   dispatches, memo lookups, decoder rounds). Every quantity admitted
//!   to this class is partition-invariant: its end-of-run total is the
//!   same at any `--threads`/`--workers` count, because worker shards
//!   hold plain `u64` sums and histogram buckets whose merge is
//!   commutative addition. The [`Registry::deterministic_snapshot`] of
//!   such a run is bit-identical across thread counts — CI diffs it.
//! * **Nondeterministic telemetry** — wall-clock [`span`] timers plus
//!   counters/histograms whose value genuinely depends on how work was
//!   partitioned (thread-local cache hits/misses, Walsh–Hadamard
//!   butterflies amortised by per-thread caches). These live in a
//!   separate section of the emitted document and are structurally
//!   excluded from the deterministic snapshot: [`Snapshot`] has no span
//!   field, and in debug builds registering a deterministic name under
//!   the reserved `nd.`/`span.` prefixes panics.
//!
//! The whole layer is **disabled by default**: every ambient event call
//! is a single relaxed atomic load and a branch until
//! [`set_enabled`]`(true)` (the bench binaries flip it under
//! `--metrics`/`--cost-report`). Hot loops therefore pay nothing in
//! ordinary runs — `make obs-check` pins the overhead.
//!
//! Reporting is the caller's job: binaries render
//! [`Registry::document`] (a versioned JSON object whose
//! `"deterministic"` member is a single line, so shell gates can
//! `grep`-and-`diff` it) to **stderr or a sidecar file, never stdout**,
//! preserving the repo's byte-identity gates.

#![warn(missing_docs)]

mod event_impl;
mod registry;
mod span_impl;

pub use registry::{Counter, Registry, Snapshot, SpanStat};

/// Ambient thread-local event shards: [`event::add`], [`event::observe`]
/// and their `_nd` variants accumulate locally, [`event::flush`] folds
/// the shard into the global registry.
pub mod event {
    pub use crate::event_impl::{add, add_nd, flush, observe, observe_nd};
}

/// Scoped wall-clock phase timers; see [`span::timed`].
pub mod span {
    pub use crate::span_impl::{timed, SpanGuard};
}

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Turns the ambient event/span layer on or off process-wide. Off (the
/// default) reduces every [`event`] call to a relaxed load and a branch.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the ambient event/span layer is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-global registry the ambient [`event`] and [`span`]
/// layers report into. Long-lived subsystems that need isolation (the
/// fleet service, unit tests) construct their own [`Registry`] instead.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The ambient layer is process-global state; tests touching it must
    // not interleave.
    static AMBIENT: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_events_record_nothing() {
        let _guard = AMBIENT.lock().unwrap();
        set_enabled(false);
        event::add("test.disabled", 5);
        event::flush();
        let snap = global().deterministic_snapshot();
        assert_eq!(snap.counters.get("test.disabled"), None);
    }

    #[test]
    fn events_fold_through_the_shard() {
        let _guard = AMBIENT.lock().unwrap();
        set_enabled(true);
        event::add("test.folded", 2);
        event::add("test.folded", 3);
        event::observe("test.hist", 7, 4);
        event::add_nd("test.nd_counter", 1);
        event::observe_nd("test.nd_hist", 1, 1);
        event::flush();
        set_enabled(false);
        let snap = global().deterministic_snapshot();
        assert_eq!(snap.counters.get("test.folded"), Some(&5));
        assert_eq!(snap.histograms.get("test.hist"), Some(&vec![(7, 4)]));
        // nd events never reach the deterministic snapshot.
        assert_eq!(snap.counters.get("test.nd_counter"), None);
        assert_eq!(snap.histograms.get("test.nd_hist"), None);
    }

    #[test]
    fn spans_stay_out_of_the_deterministic_snapshot() {
        let _guard = AMBIENT.lock().unwrap();
        set_enabled(true);
        {
            let _s = span::timed("test_phase");
        }
        set_enabled(false);
        let snap = global().deterministic_snapshot();
        assert!(snap.counters.keys().all(|k| !k.starts_with("span.")));
        // But the span did land in the document's nondeterministic
        // section.
        let doc = global().document("unit", 0.0);
        assert!(doc.contains("\"spans\""));
        assert!(doc.contains("\"test_phase\""));
    }

    #[test]
    fn span_guard_is_none_when_disabled() {
        let _guard = AMBIENT.lock().unwrap();
        set_enabled(false);
        assert!(span::timed("idle").is_none());
    }
}
