//! Scoped wall-clock phase timers.
//!
//! Spans measure real elapsed time and are therefore nondeterministic
//! by construction: they are recorded straight into the global
//! registry's span table, which only the document's
//! `"nondeterministic"` section reports — a [`crate::Snapshot`] cannot
//! hold them.

use std::time::Instant;

/// An in-flight span; records its elapsed wall-clock time under its
/// name when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
}

/// Starts a wall-clock span named `name`, or returns `None` while the
/// layer is disabled (so hot paths pay one branch, not an `Instant`
/// read). Bind the guard — `let _span = span::timed("sample");` — and
/// the elapsed time is recorded when it leaves scope.
#[inline]
pub fn timed(name: &'static str) -> Option<SpanGuard> {
    if !crate::enabled() {
        return None;
    }
    Some(SpanGuard { name, start: Instant::now() })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        crate::global().record_span(self.name, ns);
    }
}
