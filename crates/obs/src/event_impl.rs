//! Ambient thread-local event shards.
//!
//! Hot-path call sites record into a per-thread shard (no locks, no
//! atomics beyond the enabled check); [`flush`] folds the shard into
//! the process-global [`crate::Registry`] under its mutex. Because
//! every shard entry is a `u64` sum or an integer histogram bucket, the
//! fold is commutative addition and the deterministic section of the
//! merged registry is independent of how work was sharded.

use std::cell::RefCell;
use std::collections::BTreeMap;

#[cfg(test)]
use crate::registry::Snapshot;

#[derive(Default)]
struct Shard {
    det_counters: BTreeMap<&'static str, u64>,
    det_hists: BTreeMap<&'static str, BTreeMap<u64, u64>>,
    nd_counters: BTreeMap<&'static str, u64>,
    nd_hists: BTreeMap<&'static str, BTreeMap<u64, u64>>,
    dirty: bool,
}

thread_local! {
    static SHARD: RefCell<Shard> = RefCell::new(Shard::default());
}

/// Adds `n` to this thread's shard of the deterministic counter
/// `name`. No-op while the layer is disabled.
#[inline]
pub fn add(name: &'static str, n: u64) {
    if !crate::enabled() {
        return;
    }
    SHARD.with(|s| {
        let mut s = s.borrow_mut();
        *s.det_counters.entry(name).or_default() += n;
        s.dirty = true;
    });
}

/// Adds `weight` to bucket `value` of this thread's shard of the
/// deterministic histogram `name`. No-op while disabled.
#[inline]
pub fn observe(name: &'static str, value: u64, weight: u64) {
    if !crate::enabled() {
        return;
    }
    SHARD.with(|s| {
        let mut s = s.borrow_mut();
        *s.det_hists.entry(name).or_default().entry(value).or_default() += weight;
        s.dirty = true;
    });
}

/// Nondeterministic-counter variant of [`add`] (partition-dependent
/// quantities: thread-local cache traffic, amortised work).
#[inline]
pub fn add_nd(name: &'static str, n: u64) {
    if !crate::enabled() {
        return;
    }
    SHARD.with(|s| {
        let mut s = s.borrow_mut();
        *s.nd_counters.entry(name).or_default() += n;
        s.dirty = true;
    });
}

/// Nondeterministic-histogram variant of [`observe`].
#[inline]
pub fn observe_nd(name: &'static str, value: u64, weight: u64) {
    if !crate::enabled() {
        return;
    }
    SHARD.with(|s| {
        let mut s = s.borrow_mut();
        *s.nd_hists.entry(name).or_default().entry(value).or_default() += weight;
        s.dirty = true;
    });
}

/// Folds this thread's shard into the global registry and clears it.
/// Worker threads call this once before finishing (see
/// `itqc_bench::par_trials` and the fleet shard drain); the emitting
/// thread calls it before rendering a document. Always drains, even if
/// the layer was disabled mid-run.
pub fn flush() {
    let shard = SHARD.with(|s| std::mem::take(&mut *s.borrow_mut()));
    if !shard.dirty {
        return;
    }
    let registry = crate::global();
    for (name, n) in shard.det_counters {
        registry.add(name, n);
    }
    for (name, hist) in shard.det_hists {
        for (value, weight) in hist {
            registry.observe(name, value, weight);
        }
    }
    for (name, n) in shard.nd_counters {
        registry.add_nd(name, n);
    }
    for (name, hist) in shard.nd_hists {
        for (value, weight) in hist {
            registry.observe_nd(name, value, weight);
        }
    }
}

/// This thread's unflushed deterministic shard contents (test hook).
#[cfg(test)]
pub(crate) fn local_deterministic() -> Snapshot {
    SHARD.with(|s| {
        let s = s.borrow();
        Snapshot {
            counters: s.det_counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            histograms: s
                .det_hists
                .iter()
                .map(|(&k, h)| (k.to_string(), h.iter().map(|(&v, &w)| (v, w)).collect()))
                .collect(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_accumulates_before_flush() {
        // Runs on its own thread so the shared ambient flag can't race
        // other tests' shards into the wrong expectations.
        std::thread::spawn(|| {
            crate::set_enabled(true);
            add("shard.k", 2);
            add("shard.k", 1);
            observe("shard.h", 4, 2);
            let local = local_deterministic();
            assert_eq!(local.counters["shard.k"], 3);
            assert_eq!(local.histograms["shard.h"], vec![(4, 2)]);
            flush();
            assert!(local_deterministic().is_empty());
        })
        .join()
        .unwrap();
    }
}
