//! The metrics registry: deterministic counters/histograms, their
//! nondeterministic counterparts, span statistics, and the JSON
//! document renderer.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Name prefixes reserved for the nondeterministic class; registering a
/// *deterministic* counter or histogram under them is a bug (it would
/// smuggle partition-dependent data into the bit-identical snapshot)
/// and panics in debug builds.
const RESERVED_ND_PREFIXES: [&str; 2] = ["nd.", "span."];

fn assert_deterministic_name(name: &str) {
    debug_assert!(
        !RESERVED_ND_PREFIXES.iter().any(|p| name.starts_with(p)),
        "deterministic metric name {name:?} uses a reserved nondeterministic prefix"
    );
}

/// A cheap cloneable handle onto one monotonic counter. Handles backing
/// a [`Registry`] entry feed its snapshots; [`Counter::detached`]
/// handles count privately (used by standalone cache constructors that
/// predate any registry).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter not attached to any registry.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Aggregate wall-clock statistics of one named span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed span instances.
    pub count: u64,
    /// Total elapsed nanoseconds across instances.
    pub total_ns: u64,
    /// Longest single instance, nanoseconds.
    pub max_ns: u64,
}

type Hist = BTreeMap<u64, u64>;

#[derive(Default)]
struct Inner {
    det_counters: BTreeMap<String, u64>,
    det_hists: BTreeMap<String, Hist>,
    nd_counters: BTreeMap<String, u64>,
    nd_hists: BTreeMap<String, Hist>,
    spans: BTreeMap<String, SpanStat>,
    handles: BTreeMap<String, Counter>,
}

/// A set of named metrics. The deterministic members (plain counters,
/// integer histograms, registered [`Counter`] handles) merge by
/// commutative addition, so any sharding of the producing work yields
/// the same [`Registry::deterministic_snapshot`]; spans and `nd.`
/// members are reported separately and never enter it.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the handle registered under `name`, creating it on first
    /// use. The handle's value appears as a deterministic counter in
    /// snapshots.
    pub fn counter(&self, name: &str) -> Counter {
        assert_deterministic_name(name);
        let mut inner = self.inner.lock().unwrap();
        inner.handles.entry(name.to_string()).or_default().clone()
    }

    /// Adds `n` to the deterministic counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        assert_deterministic_name(name);
        *self.inner.lock().unwrap().det_counters.entry(name.to_string()).or_default() += n;
    }

    /// Adds `weight` to bucket `value` of the deterministic histogram
    /// `name`.
    pub fn observe(&self, name: &str, value: u64, weight: u64) {
        assert_deterministic_name(name);
        let mut inner = self.inner.lock().unwrap();
        *inner.det_hists.entry(name.to_string()).or_default().entry(value).or_default() += weight;
    }

    /// Adds `n` to the nondeterministic counter `name`.
    pub fn add_nd(&self, name: &str, n: u64) {
        *self.inner.lock().unwrap().nd_counters.entry(name.to_string()).or_default() += n;
    }

    /// Adds `weight` to bucket `value` of the nondeterministic
    /// histogram `name`.
    pub fn observe_nd(&self, name: &str, value: u64, weight: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.nd_hists.entry(name.to_string()).or_default().entry(value).or_default() += weight;
    }

    /// Records one completed span instance of `elapsed_ns` under
    /// `name`. Span data is wall-clock and lives only in the
    /// nondeterministic section of [`Registry::document`].
    pub fn record_span(&self, name: &str, elapsed_ns: u64) {
        let mut inner = self.inner.lock().unwrap();
        let stat = inner.spans.entry(name.to_string()).or_default();
        stat.count += 1;
        stat.total_ns += elapsed_ns;
        stat.max_ns = stat.max_ns.max(elapsed_ns);
    }

    /// The deterministic section: plain counters merged with registered
    /// handle values, plus deterministic histograms. Bit-identical
    /// across thread/worker counts for partition-invariant events.
    pub fn deterministic_snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        let mut counters = inner.det_counters.clone();
        for (name, handle) in &inner.handles {
            *counters.entry(name.clone()).or_default() += handle.get();
        }
        let histograms = inner
            .det_hists
            .iter()
            .map(|(k, h)| (k.clone(), h.iter().map(|(&v, &w)| (v, w)).collect()))
            .collect();
        Snapshot { counters, histograms }
    }

    /// The nondeterministic counters/histograms as a [`Snapshot`]
    /// (spans are reported only through [`Registry::document`]).
    pub fn nondeterministic_snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            counters: inner.nd_counters.clone(),
            histograms: inner
                .nd_hists
                .iter()
                .map(|(k, h)| (k.clone(), h.iter().map(|(&v, &w)| (v, w)).collect()))
                .collect(),
        }
    }

    /// Folds every metric of `other` into `self` (handle values fold in
    /// as plain deterministic counters). Used to merge per-subsystem
    /// registries — e.g. the fleet's — into one emitted document.
    pub fn absorb(&self, other: &Registry) {
        let det = other.deterministic_snapshot();
        let nd = other.nondeterministic_snapshot();
        let spans: Vec<(String, SpanStat)> = {
            let o = other.inner.lock().unwrap();
            o.spans.iter().map(|(k, v)| (k.clone(), *v)).collect()
        };
        let mut inner = self.inner.lock().unwrap();
        for (k, v) in det.counters {
            *inner.det_counters.entry(k).or_default() += v;
        }
        for (k, h) in det.histograms {
            let dst = inner.det_hists.entry(k).or_default();
            for (value, weight) in h {
                *dst.entry(value).or_default() += weight;
            }
        }
        for (k, v) in nd.counters {
            *inner.nd_counters.entry(k).or_default() += v;
        }
        for (k, h) in nd.histograms {
            let dst = inner.nd_hists.entry(k).or_default();
            for (value, weight) in h {
                *dst.entry(value).or_default() += weight;
            }
        }
        for (k, s) in spans {
            let dst = inner.spans.entry(k).or_default();
            dst.count += s.count;
            dst.total_ns += s.total_ns;
            dst.max_ns = dst.max_ns.max(s.max_ns);
        }
    }

    /// Clears every metric (handles are reset in place, so outstanding
    /// [`Counter`] clones keep working).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.det_counters.clear();
        inner.det_hists.clear();
        inner.nd_counters.clear();
        inner.nd_hists.clear();
        inner.spans.clear();
        for handle in inner.handles.values() {
            handle.0.store(0, Ordering::Relaxed);
        }
    }

    /// Renders the versioned metrics document. The `"deterministic"`
    /// member is emitted on a single line so shell gates can
    /// `grep '"deterministic"'` and `diff` runs directly.
    pub fn document(&self, binary: &str, wall_seconds: f64) -> String {
        let det = self.deterministic_snapshot();
        let nd = self.nondeterministic_snapshot();
        let spans: Vec<(String, SpanStat)> = {
            let inner = self.inner.lock().unwrap();
            inner.spans.iter().map(|(k, v)| (k.clone(), *v)).collect()
        };
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"itqc_metrics_version\": 1,");
        let _ = writeln!(out, "  \"binary\": {},", json_string(binary));
        let _ = writeln!(out, "  \"deterministic\": {},", det.to_json());
        out.push_str("  \"nondeterministic\": {\n");
        let _ = writeln!(out, "    \"counters\": {},", json_counters(&nd.counters));
        let _ = writeln!(out, "    \"histograms\": {},", json_hists(&nd.histograms));
        out.push_str("    \"spans\": {");
        for (i, (name, s)) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                json_string(name),
                s.count,
                s.total_ns,
                s.max_ns
            );
        }
        out.push_str("}\n");
        out.push_str("  },\n");
        let _ = writeln!(out, "  \"wall_seconds\": {wall_seconds:.3}");
        out.push_str("}\n");
        out
    }
}

/// One determinism class's counters and histograms, fully ordered (the
/// maps are `BTreeMap`-backed) so equal contents render to equal JSON.
/// Deliberately has **no span field**: wall-clock data cannot be
/// represented in a snapshot, which is what makes the deterministic
/// section's bit-identity contract enforceable by type.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter name → total.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → ascending `(value, weight)` buckets.
    pub histograms: BTreeMap<String, Vec<(u64, u64)>>,
}

impl Snapshot {
    /// Whether the snapshot holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as one line of JSON:
    /// `{"counters":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"counters\":{},\"histograms\":{}}}",
            json_counters(&self.counters),
            json_hists(&self.histograms)
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_counters(counters: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), value);
    }
    out.push('}');
    out
}

fn json_hists(hists: &BTreeMap<String, Vec<(u64, u64)>>) -> String {
    let mut out = String::from("{");
    for (i, (name, buckets)) in hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:[", json_string(name));
        for (j, (value, weight)) in buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{value},{weight}]");
        }
        out.push(']');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_order_does_not_change_the_snapshot() {
        let a = Registry::new();
        a.add("x", 1);
        a.add("y", 2);
        a.observe("h", 3, 4);
        let b = Registry::new();
        b.observe("h", 3, 4);
        b.add("y", 2);
        b.add("x", 1);
        assert_eq!(a.deterministic_snapshot(), b.deterministic_snapshot());
        assert_eq!(a.deterministic_snapshot().to_json(), b.deterministic_snapshot().to_json());
    }

    #[test]
    fn handles_fold_into_the_deterministic_section() {
        let r = Registry::new();
        let c = r.counter("cache.hits");
        c.add(3);
        r.counter("cache.hits").incr();
        r.add("cache.hits", 2);
        assert_eq!(r.deterministic_snapshot().counters["cache.hits"], 6);
    }

    #[test]
    fn detached_counters_touch_no_registry() {
        let c = Counter::detached();
        c.add(9);
        assert_eq!(c.get(), 9);
    }

    #[test]
    fn absorb_sums_and_reset_clears() {
        let a = Registry::new();
        a.add("n", 1);
        a.observe("h", 2, 1);
        a.add_nd("nd.x", 5);
        a.record_span("phase", 10);
        let b = Registry::new();
        b.add("n", 2);
        b.record_span("phase", 7);
        a.absorb(&b);
        assert_eq!(a.deterministic_snapshot().counters["n"], 3);
        let doc = a.document("t", 1.0);
        assert!(doc.contains("\"total_ns\":17"));
        a.reset();
        assert!(a.deterministic_snapshot().is_empty());
    }

    #[test]
    fn document_keeps_the_deterministic_section_on_one_line() {
        let r = Registry::new();
        r.add("a.b", 1);
        r.observe("a.h", 2, 3);
        r.add_nd("nd.c", 4);
        let doc = r.document("fig8", 1.5);
        let det_lines: Vec<&str> =
            doc.lines().filter(|l| l.contains("\"deterministic\"")).collect();
        assert_eq!(det_lines.len(), 1);
        assert!(
            det_lines[0].contains("{\"counters\":{\"a.b\":1},\"histograms\":{\"a.h\":[[2,3]]}}")
        );
        assert!(doc.contains("\"itqc_metrics_version\": 1"));
        assert!(doc.contains("\"wall_seconds\": 1.500"));
        assert!(doc.contains("\"nd.c\":4"));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "reserved nondeterministic prefix")]
    fn deterministic_names_reject_the_span_namespace() {
        Registry::new().add("span.sneaky", 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "reserved nondeterministic prefix")]
    fn deterministic_names_reject_the_nd_namespace() {
        Registry::new().counter("nd.sneaky");
    }
}
