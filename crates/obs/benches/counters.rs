//! Counter-increment micro-bench backing the `make obs-check` overhead
//! guard: a disabled ambient event must cost a branch, an enabled one a
//! thread-local map bump, and a raw handle one relaxed atomic add.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use itqc_obs::{event, Counter};

fn bench_counters(c: &mut Criterion) {
    itqc_obs::set_enabled(false);
    c.bench_function("event_add_disabled", |b| {
        b.iter(|| event::add(black_box("bench.disabled"), black_box(1)))
    });
    itqc_obs::set_enabled(true);
    c.bench_function("event_add_enabled", |b| {
        b.iter(|| event::add(black_box("bench.enabled"), black_box(1)))
    });
    c.bench_function("event_observe_enabled", |b| {
        b.iter(|| event::observe(black_box("bench.hist"), black_box(7), black_box(1)))
    });
    itqc_obs::set_enabled(false);
    event::flush();
    let handle = Counter::detached();
    c.bench_function("counter_handle_add", |b| b.iter(|| handle.add(black_box(1))));
}

criterion_group!(benches, bench_counters);
criterion_main!(benches);
