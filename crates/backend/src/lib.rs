//! Pluggable simulation backends for the `itqc` workspace.
//!
//! Everything above the simulators — executors, protocols, the
//! experiment harness — talks to simulation through one seam, the
//! [`SimBackend`] trait: *prepare a circuit, then ask the preparation
//! for per-qubit marginals, exact output probabilities, or seeded shot
//! strings*. Two implementations ship:
//!
//! * [`DenseBackend`] — the general state-vector path, compressed onto
//!   the circuit's support (exact for any gate set, memory `2^support`);
//! * [`XxAnalyticBackend`] — the scalable engine for commuting-XX test
//!   circuits: closed-form marginals, per-*component* Gray-code /
//!   Walsh–Hadamard output distributions (`2^c` for a `c`-qubit
//!   component, never `2^N`), and a prepared-circuit cache keyed by the
//!   noisy coupling angles so repeated shot batteries at one repetition
//!   rung reuse a single preparation.
//!
//! [`Backend`] routes between them: `dense` and `analytic` force one
//! engine, [`BackendChoice::Auto`] tries the analytic engine and falls
//! back to dense whenever the circuit leaves the commuting-XX family
//! (e.g. the footnote-8 SWAP-insertion test) or a component outgrows
//! the analytic sampling table.
//!
//! Both backends sample output strings through the *same* canonical
//! component-ordered inverse-CDF scheme ([`dist`]), so given one RNG
//! stream they agree bit-for-bit wherever both apply — the property the
//! cross-backend equivalence suite pins at `N ≤ 12`.

#![warn(missing_docs)]

pub mod analytic;
pub mod cache;
pub mod chain;
pub mod cost;
pub mod dense;
pub mod dist;
pub mod memo;

pub use analytic::{
    component_cache_stats, ComponentDistCache, ComponentSampler, XxAnalyticBackend, XxPrepared,
    COMPONENT_CACHE_CAPACITY, MAX_COMPONENT,
};
pub use cache::CacheCounters;
pub use chain::{ChainDist, CHAIN_MAX_SPECIAL};
pub use cost::{CostReport, SimCostModel};
pub use dense::DenseBackend;
pub use dist::{sample_strings_blocked, SampleComponent, SAMPLE_BLOCK_SHOTS};
pub use itqc_sim::BitString;

use itqc_circuit::Circuit;
use rand::rngs::SmallRng;
use std::fmt;
use std::rc::Rc;
use std::str::FromStr;

/// Why a backend refused a circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// The analytic engine only evaluates products of `XX(θ)` gates.
    NotCommutingXx,
    /// A connected component (analytic) or the whole support (dense)
    /// exceeds the backend's table limit.
    SupportTooLarge {
        /// Offending component/support size in qubits.
        support: usize,
        /// The backend's limit.
        limit: usize,
    },
    /// A component is too large for the joint table *and* lacks the
    /// near-complete structure the chain sampler needs: too many qubits
    /// touch pairs deviating from the component's modal coupling angle.
    ChainUnsupported {
        /// Offending component size in qubits.
        support: usize,
        /// Special (deviant-pair) qubits the component would need.
        special: usize,
        /// The chain sampler's special-set limit.
        limit: usize,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::NotCommutingXx => {
                write!(f, "circuit contains non-XX gates; only the dense backend applies")
            }
            BackendError::SupportTooLarge { support, limit } => {
                write!(f, "{support}-qubit support exceeds the backend limit of {limit}")
            }
            BackendError::ChainUnsupported { support, special, limit } => {
                write!(
                    f,
                    "{support}-qubit component needs {special} special qubits for chain \
                     sampling (limit {limit}); no joint table above {MAX_COMPONENT} qubits"
                )
            }
        }
    }
}

/// A circuit prepared for repeated evaluation.
///
/// Preparations are cheap handles behind `Rc`; the analytic backend
/// returns the *same* preparation for byte-identical circuits, so the
/// expensive sampling tables are shared between an executor and its
/// shot-sampling wrapper.
pub trait PreparedCircuit: fmt::Debug {
    /// Register size of the original circuit.
    fn n_qubits(&self) -> usize;

    /// The sorted qubits touched by at least one gate.
    fn support(&self) -> &[usize];

    /// The exact outcome probability `|⟨target|U|0…0⟩|²`.
    fn probability(&self, target: BitString) -> f64;

    /// The exact probability that qubit `q` measures `|1⟩`.
    fn marginal_one(&self, q: usize) -> f64;

    /// The probability that qubit `q` reads the corresponding bit of
    /// `target`.
    fn qubit_agreement(&self, q: usize, target: BitString) -> f64 {
        let p1 = self.marginal_one(q);
        if (target >> q) & 1 == 1 {
            p1
        } else {
            1.0 - p1
        }
    }

    /// The worst per-qubit agreement with `target` over the support —
    /// the population statistic of the scaling experiments. 1 for an
    /// empty circuit.
    fn min_qubit_agreement(&self, target: BitString) -> f64 {
        self.support().iter().map(|&q| self.qubit_agreement(q, target)).fold(1.0, f64::min)
    }

    /// Draws `shots` full output strings via the canonical
    /// component-ordered sampler (one uniform variate per component per
    /// shot; untouched qubits read 0).
    fn sample(&self, rng: &mut SmallRng, shots: usize) -> Vec<BitString>;

    /// Blocked variant of [`sample`](PreparedCircuit::sample): draws
    /// whole shot blocks against flat cumulative tables where the
    /// backend supports it. **Bit-identical** to `sample` from the same
    /// RNG state — implementations must consume the uniform stream in
    /// the canonical shot-major order, so callers may switch freely.
    /// The default delegates to the per-shot path.
    fn sample_block(&self, rng: &mut SmallRng, shots: usize) -> Vec<BitString> {
        self.sample(rng, shots)
    }
}

/// A simulation engine: turns circuits into [`PreparedCircuit`]s.
pub trait SimBackend {
    /// Short name for CLI flags and reports (`"dense"`, `"analytic"`).
    fn name(&self) -> &'static str;

    /// Prepares `circuit` for evaluation, or explains why this engine
    /// cannot run it.
    fn prepare(&self, circuit: &Circuit) -> Result<Rc<dyn PreparedCircuit>, BackendError>;

    /// Prepares a batch of circuits destined for shot sampling,
    /// amortising whatever structure the circuits share. The default
    /// prepares each circuit independently; the analytic engine
    /// additionally materializes every preparation's sampling tables
    /// through the thread's component-distribution cache, so circuits
    /// sharing a coupling-graph component pay its `2^c` table build
    /// once. Results are positionally aligned with `circuits`.
    fn prepare_batch(
        &self,
        circuits: &[Circuit],
    ) -> Vec<Result<Rc<dyn PreparedCircuit>, BackendError>> {
        circuits.iter().map(|c| self.prepare(c)).collect()
    }
}

/// CLI-level backend selection (`--backend=dense|analytic|auto`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// Always the dense state-vector path.
    Dense,
    /// Always the analytic commuting-XX engine (errors on other gates).
    Analytic,
    /// Analytic when the circuit qualifies, dense otherwise.
    #[default]
    Auto,
}

impl FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(BackendChoice::Dense),
            "analytic" => Ok(BackendChoice::Analytic),
            "auto" => Ok(BackendChoice::Auto),
            other => Err(format!("unknown backend '{other}' (dense|analytic|auto)")),
        }
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendChoice::Dense => "dense",
            BackendChoice::Analytic => "analytic",
            BackendChoice::Auto => "auto",
        })
    }
}

/// The backend router: owns the engines a [`BackendChoice`] selects
/// between. Cloning shares the analytic engine's preparation cache.
#[derive(Clone, Debug)]
pub struct Backend {
    choice: BackendChoice,
    analytic: XxAnalyticBackend,
    dense: DenseBackend,
}

impl Backend {
    /// A router for the given selection policy.
    pub fn new(choice: BackendChoice) -> Self {
        Backend { choice, analytic: XxAnalyticBackend::new(), dense: DenseBackend::new() }
    }

    /// The selection policy.
    pub fn choice(&self) -> BackendChoice {
        self.choice
    }

    /// The analytic engine (for cache statistics).
    pub fn analytic(&self) -> &XxAnalyticBackend {
        &self.analytic
    }

    /// Prepares a circuit under the selection policy.
    pub fn prepare(&self, circuit: &Circuit) -> Result<Rc<dyn PreparedCircuit>, BackendError> {
        match self.choice {
            BackendChoice::Dense => self.dense.prepare(circuit),
            BackendChoice::Analytic => self.analytic.prepare(circuit),
            BackendChoice::Auto => match self.analytic.prepare(circuit) {
                Ok(prepared) => Ok(prepared),
                Err(_) => self.dense.prepare(circuit),
            },
        }
    }

    /// Prepares a sampling batch under the selection policy (see
    /// [`SimBackend::prepare_batch`]); `Auto` amortises each circuit the
    /// analytic engine accepts and falls back to dense for the rest.
    pub fn prepare_batch(
        &self,
        circuits: &[Circuit],
    ) -> Vec<Result<Rc<dyn PreparedCircuit>, BackendError>> {
        match self.choice {
            BackendChoice::Dense => self.dense.prepare_batch(circuits),
            BackendChoice::Analytic => self.analytic.prepare_batch(circuits),
            BackendChoice::Auto => circuits
                .iter()
                .map(|c| {
                    self.analytic
                        .prepare_batch(std::slice::from_ref(c))
                        .pop()
                        .expect("one result per circuit")
                        .or_else(|_| self.dense.prepare(c))
                })
                .collect(),
        }
    }
}

impl SimBackend for Backend {
    fn name(&self) -> &'static str {
        match self.choice {
            BackendChoice::Dense => "dense",
            BackendChoice::Analytic => "analytic",
            BackendChoice::Auto => "auto",
        }
    }

    fn prepare(&self, circuit: &Circuit) -> Result<Rc<dyn PreparedCircuit>, BackendError> {
        Backend::prepare(self, circuit)
    }

    fn prepare_batch(
        &self,
        circuits: &[Circuit],
    ) -> Vec<Result<Rc<dyn PreparedCircuit>, BackendError>> {
        Backend::prepare_batch(self, circuits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn choice_parses_and_displays() {
        for (s, c) in [
            ("dense", BackendChoice::Dense),
            ("analytic", BackendChoice::Analytic),
            ("auto", BackendChoice::Auto),
        ] {
            assert_eq!(s.parse::<BackendChoice>(), Ok(c));
            assert_eq!(c.to_string(), s);
        }
        assert!("fast".parse::<BackendChoice>().is_err());
    }

    #[test]
    fn auto_routes_xx_to_analytic_and_swap_to_dense() {
        let backend = Backend::new(BackendChoice::Auto);
        let mut xx = Circuit::new(4);
        xx.xx(0, 1, FRAC_PI_2);
        backend.prepare(&xx).expect("XX circuit prepares");
        let (_, misses) = backend.analytic().cache_stats();
        assert_eq!(misses, 1, "the analytic engine must have taken the XX circuit");

        // A SWAP leaves the commuting family; auto must fall back.
        let mut swap = Circuit::new(4);
        swap.xx(0, 1, FRAC_PI_2).swap(1, 2);
        let prep = backend.prepare(&swap).expect("dense fallback");
        assert_eq!(prep.support(), &[0, 1, 2]);
        // Forcing analytic on it must refuse instead.
        let forced = Backend::new(BackendChoice::Analytic);
        assert_eq!(forced.prepare(&swap).unwrap_err(), BackendError::NotCommutingXx);
    }

    #[test]
    fn dense_and_analytic_agree_through_the_router() {
        let mut c = Circuit::new(5);
        c.xx(0, 3, 1.1).xx(3, 4, -0.4).xx(0, 4, 0.9).xx(1, 2, 2.2);
        let dense = Backend::new(BackendChoice::Dense).prepare(&c).unwrap();
        let analytic = Backend::new(BackendChoice::Analytic).prepare(&c).unwrap();
        assert_eq!(dense.support(), analytic.support());
        for target in 0..(1 << 5) as BitString {
            assert!(
                (dense.probability(target) - analytic.probability(target)).abs() < 1e-9,
                "target {target:05b}"
            );
        }
        for q in 0..5 {
            assert!((dense.marginal_one(q) - analytic.marginal_one(q)).abs() < 1e-9);
            assert!(
                (dense.qubit_agreement(q, 0b10110) - analytic.qubit_agreement(q, 0b10110)).abs()
                    < 1e-9
            );
        }
        assert!(
            (dense.min_qubit_agreement(0b11) - analytic.min_qubit_agreement(0b11)).abs() < 1e-9
        );
        // Bit-for-bit sampling under a shared seed.
        let mut r1 = SmallRng::seed_from_u64(1234);
        let mut r2 = SmallRng::seed_from_u64(1234);
        assert_eq!(dense.sample(&mut r1, 256), analytic.sample(&mut r2, 256));
    }
}
