//! Static cost model for the simulation backends.
//!
//! Predicts what a test plan will spend *before* any shot is burned, in
//! the two currencies the analytic engine actually pays:
//!
//! * **table build** — preparing a `c`-qubit component's outcome
//!   distribution walks `2^c` Gray-code phases and runs a `c·2^c`
//!   Walsh–Hadamard pass;
//! * **shots** — each output string draws one uniform per component and
//!   resolves it against the component's cumulative table in
//!   `log2(2^c)` bisection steps.
//!
//! Exact single-target scoring (the oracle fast path) pays the Gray
//! walk without the transform. The constants are calibrated on the
//! reference 1-vCPU container; they are *order-of-magnitude* honest,
//! not microbenchmarks — the CI gate accepts a predicted/measured ratio
//! anywhere in `[0.25, 4.0]` and exists to catch the model (or the
//! engine) drifting out of touch, not to flatter it.
//!
//! The bench binaries assemble whole-run [`CostReport`]s from these
//! per-circuit primitives under `--cost-report` (see
//! `itqc_bench::cost_report`).

use std::fmt;

/// Seconds per Gray-code phase step (one `cis` evaluation plus the
/// running-sum updates) — the unit of both table builds and exact
/// single-target walks.
pub const PHASE_STEP_SECONDS: f64 = 22e-9;

/// Seconds per Walsh–Hadamard butterfly (one add/sub pair on the
/// re/im tables).
pub const BUTTERFLY_SECONDS: f64 = 2.5e-9;

/// Fixed seconds per drawn output string per component: one uniform
/// variate plus the bisection setup.
pub const DRAW_SECONDS: f64 = 14e-9;

/// Seconds per bisection step of the inverse-CDF search.
pub const SEARCH_STEP_SECONDS: f64 = 2.0e-9;

/// The static backend cost model. Distinct from the paper's Fig. 10
/// *protocol* cost model (`itqc_core::cost`), which counts tests and
/// shots on simulated hardware — this one prices the simulation itself.
#[derive(Clone, Copy, Debug)]
pub struct SimCostModel {
    phase_step: f64,
    butterfly: f64,
    draw: f64,
    search_step: f64,
}

impl Default for SimCostModel {
    fn default() -> Self {
        SimCostModel {
            phase_step: PHASE_STEP_SECONDS,
            butterfly: BUTTERFLY_SECONDS,
            draw: DRAW_SECONDS,
            search_step: SEARCH_STEP_SECONDS,
        }
    }
}

impl SimCostModel {
    /// The reference-container model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seconds to build the outcome tables of one preparation with the
    /// given component sizes (Gray walk + Walsh–Hadamard per component).
    pub fn table_build_seconds(&self, component_sizes: &[usize]) -> f64 {
        component_sizes
            .iter()
            .map(|&c| {
                let size = (1u64 << c) as f64;
                size * self.phase_step + c as f64 * size * self.butterfly
            })
            .sum()
    }

    /// Seconds for one exact single-target evaluation (the oracle walk;
    /// no transform, no table retained).
    pub fn exact_walk_seconds(&self, component_sizes: &[usize]) -> f64 {
        component_sizes.iter().map(|&c| (1u64 << c) as f64 * self.phase_step).sum()
    }

    /// Seconds to draw `shots` output strings from built tables.
    pub fn sample_seconds(&self, component_sizes: &[usize], shots: u64) -> f64 {
        let per_shot: f64 =
            component_sizes.iter().map(|&c| self.draw + c as f64 * self.search_step).sum();
        shots as f64 * per_shot
    }
}

/// An accumulated prediction for a whole run: how many preparations and
/// shots the plan needs and what the model prices them at.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostReport {
    /// Predicted seconds building outcome tables.
    pub table_seconds: f64,
    /// Predicted seconds in exact single-target walks.
    pub walk_seconds: f64,
    /// Predicted seconds drawing output strings.
    pub sample_seconds: f64,
    /// Preparations (table builds) the plan needs.
    pub preparations: u64,
    /// Exact single-target evaluations the plan needs.
    pub walks: u64,
    /// Output strings the plan draws.
    pub shots: u64,
}

impl CostReport {
    /// Accumulates `count` table builds of the given component shape.
    pub fn add_builds(&mut self, model: &SimCostModel, component_sizes: &[usize], count: u64) {
        self.preparations += count;
        self.table_seconds += count as f64 * model.table_build_seconds(component_sizes);
    }

    /// Accumulates `count` exact single-target walks.
    pub fn add_walks(&mut self, model: &SimCostModel, component_sizes: &[usize], count: u64) {
        self.walks += count;
        self.walk_seconds += count as f64 * model.exact_walk_seconds(component_sizes);
    }

    /// Accumulates `shots` drawn strings against the given shape.
    pub fn add_shots(&mut self, model: &SimCostModel, component_sizes: &[usize], shots: u64) {
        self.shots += shots;
        self.sample_seconds += model.sample_seconds(component_sizes, shots);
    }

    /// Total predicted seconds.
    pub fn total_seconds(&self) -> f64 {
        self.table_seconds + self.walk_seconds + self.sample_seconds
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &CostReport) {
        self.table_seconds += other.table_seconds;
        self.walk_seconds += other.walk_seconds;
        self.sample_seconds += other.sample_seconds;
        self.preparations += other.preparations;
        self.walks += other.walks;
        self.shots += other.shots;
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} preps ({:.3} s) + {} walks ({:.3} s) + {} shots ({:.3} s) = {:.3} s predicted",
            self.preparations,
            self.table_seconds,
            self.walks,
            self.walk_seconds,
            self.shots,
            self.sample_seconds,
            self.total_seconds()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_component_size_and_shots() {
        let model = SimCostModel::new();
        // Table builds are exponential in component size.
        let small = model.table_build_seconds(&[8]);
        let big = model.table_build_seconds(&[16]);
        assert!(big > 100.0 * small, "{big} vs {small}");
        // Splitting a register into components is cheaper than one
        // joint walk.
        assert!(model.exact_walk_seconds(&[8, 8]) < model.exact_walk_seconds(&[16]));
        // Sampling is linear in shots and much cheaper per shot than
        // the build.
        let s1 = model.sample_seconds(&[16], 1);
        let s300 = model.sample_seconds(&[16], 300);
        assert!((s300 / s1 - 300.0).abs() < 1e-6);
        assert!(model.table_build_seconds(&[16]) > 100.0 * s1);
    }

    #[test]
    fn report_accumulates_and_merges() {
        let model = SimCostModel::new();
        let mut a = CostReport::default();
        a.add_builds(&model, &[4, 2], 10);
        a.add_shots(&model, &[4, 2], 3000);
        a.add_walks(&model, &[4], 5);
        assert_eq!((a.preparations, a.shots, a.walks), (10, 3000, 5));
        let total = a.total_seconds();
        assert!(total > 0.0);
        let mut b = CostReport::default();
        b.merge(&a);
        b.merge(&a);
        assert!((b.total_seconds() - 2.0 * total).abs() < 1e-12);
        assert_eq!(b.shots, 6000);
        // Display carries the headline number.
        assert!(format!("{a}").contains("predicted"));
    }
}
