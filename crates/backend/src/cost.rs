//! Static cost model for the simulation backends.
//!
//! Predicts what a test plan will spend *before* any shot is burned, in
//! the two currencies the analytic engine actually pays:
//!
//! * **table build** — preparing a `c`-qubit component's outcome
//!   distribution walks `2^c` Gray-code phases and runs a `c·2^c`
//!   Walsh–Hadamard pass;
//! * **shots** — each output string draws one uniform per component and
//!   resolves it against the component's cumulative table in
//!   `log2(2^c)` bisection steps.
//!
//! Exact single-target scoring (the oracle fast path) pays the Gray
//! walk without the transform. The constants are calibrated on the
//! reference 1-vCPU container; they are *order-of-magnitude* honest,
//! not microbenchmarks — the CI gate accepts a predicted/measured ratio
//! anywhere in `[0.25, 4.0]` and exists to catch the model (or the
//! engine) drifting out of touch, not to flatter it.
//!
//! The bench binaries assemble whole-run [`CostReport`]s from these
//! per-circuit primitives under `--cost-report` (see
//! `itqc_bench::cost_report`).

use std::fmt;

/// Seconds per Gray-code phase step (one `cis` evaluation plus the
/// running-sum updates) — the unit of both table builds and exact
/// single-target walks.
pub const PHASE_STEP_SECONDS: f64 = 22e-9;

/// Seconds per Walsh–Hadamard butterfly (one add/sub pair on the
/// re/im tables).
pub const BUTTERFLY_SECONDS: f64 = 2.5e-9;

/// Fixed seconds per drawn output string per component: one uniform
/// variate plus the bisection setup.
pub const DRAW_SECONDS: f64 = 14e-9;

/// Seconds per bisection step of the inverse-CDF search.
pub const SEARCH_STEP_SECONDS: f64 = 2.0e-9;

/// Seconds per score-memo lookup that *hits* (hash the circuit key,
/// probe the thread's table, return the stored float). The observed
/// per-phase cost report prices memoised evaluations at this instead of
/// a full exact walk — mispricing them as walks is exactly the table2
/// 3.11× over-count the per-phase table was built to localise.
pub const SCORE_MEMO_LOOKUP_SECONDS: f64 = 2.0e-7;

/// Special-set size the static model assumes for chain-sampled
/// components. Plans priced before the noisy angles exist cannot know
/// how many qubits a trial's planted faults will touch; two (one
/// deviant pair) is the protocol's common case, and the chain build
/// only grows by `2×` per extra special qubit — well inside the CI
/// gate's `[0.25, 4.0]` bracket for the plausible `t ≤ 4`.
pub const CHAIN_ASSUMED_SPECIAL: usize = 2;

/// The static backend cost model. Distinct from the paper's Fig. 10
/// *protocol* cost model (`itqc_core::cost`), which counts tests and
/// shots on simulated hardware — this one prices the simulation itself.
#[derive(Clone, Copy, Debug)]
pub struct SimCostModel {
    phase_step: f64,
    butterfly: f64,
    draw: f64,
    search_step: f64,
}

impl Default for SimCostModel {
    fn default() -> Self {
        SimCostModel {
            phase_step: PHASE_STEP_SECONDS,
            butterfly: BUTTERFLY_SECONDS,
            draw: DRAW_SECONDS,
            search_step: SEARCH_STEP_SECONDS,
        }
    }
}

impl SimCostModel {
    /// The reference-container model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seconds to build the outcome tables of one preparation with the
    /// given component sizes: the joint Gray walk + Walsh–Hadamard at
    /// or below [`crate::MAX_COMPONENT`] qubits, the chain sampler's
    /// `(z_T, k)` amplitude table above it (routing matches
    /// `XxPrepared`, so call sites never branch on size).
    pub fn table_build_seconds(&self, component_sizes: &[usize]) -> f64 {
        component_sizes
            .iter()
            .map(|&c| {
                if c <= crate::MAX_COMPONENT {
                    let size = (1u64 << c) as f64;
                    size * self.phase_step + c as f64 * size * self.butterfly
                } else {
                    self.chain_build_seconds(c, CHAIN_ASSUMED_SPECIAL)
                }
            })
            .sum()
    }

    /// Seconds to build one chain-sampled component's tables at an
    /// explicit special-set size: `2^t·(n+1)` trig evaluations plus
    /// `2^t·(n+1)·(n+1+t)` Krawtchouk-dot and Walsh–Hadamard
    /// multiply-adds plus the `O(n²)` binomial/Krawtchouk setup
    /// (`n = c − t`).
    pub fn chain_build_seconds(&self, c: usize, t: usize) -> f64 {
        let t = t.min(c);
        let n = (c - t) as f64;
        let tsize = (1u64 << t) as f64;
        tsize * (n + 1.0) * self.phase_step
            + (tsize * (n + 1.0) * (n + 1.0 + t as f64) + n * n) * self.butterfly
    }

    /// Seconds for one exact single-target evaluation: the `2^c` oracle
    /// Gray walk below the joint cap, one `O(c)` chain-table lookup
    /// above it (the chain path answers targets from its built
    /// `(z_T, k)` table, never by enumeration).
    pub fn exact_walk_seconds(&self, component_sizes: &[usize]) -> f64 {
        component_sizes
            .iter()
            .map(|&c| {
                if c <= crate::MAX_COMPONENT {
                    (1u64 << c) as f64 * self.phase_step
                } else {
                    c as f64 * self.search_step
                }
            })
            .sum()
    }

    /// Seconds to draw `shots` output strings from built tables: a
    /// `log2`-free flat-CDF bisection (`c` steps) per joint component,
    /// the `O(c²/2)` conditional-boundary descent per chain component.
    /// A descent step is a binomial-weighted partial sum — one
    /// multiply-add over two table reads — measured ~6× a bisection
    /// probe on the fig8 N=64 workload, so the chain step count carries
    /// that factor (`3c²` probe-equivalents ≈ `c²/2` descent steps).
    pub fn sample_seconds(&self, component_sizes: &[usize], shots: u64) -> f64 {
        let per_shot: f64 = component_sizes
            .iter()
            .map(|&c| {
                let steps = if c <= crate::MAX_COMPONENT { c as f64 } else { 3.0 * (c * c) as f64 };
                self.draw + steps * self.search_step
            })
            .sum();
        shots as f64 * per_shot
    }
}

/// An accumulated prediction for a whole run: how many preparations and
/// shots the plan needs and what the model prices them at.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostReport {
    /// Predicted seconds building outcome tables.
    pub table_seconds: f64,
    /// Predicted seconds in exact single-target walks.
    pub walk_seconds: f64,
    /// Predicted seconds drawing output strings.
    pub sample_seconds: f64,
    /// Preparations (table builds) the plan needs.
    pub preparations: u64,
    /// Exact single-target evaluations the plan needs.
    pub walks: u64,
    /// Output strings the plan draws.
    pub shots: u64,
}

impl CostReport {
    /// Accumulates `count` table builds of the given component shape.
    pub fn add_builds(&mut self, model: &SimCostModel, component_sizes: &[usize], count: u64) {
        self.preparations += count;
        self.table_seconds += count as f64 * model.table_build_seconds(component_sizes);
    }

    /// Accumulates `count` exact single-target walks.
    pub fn add_walks(&mut self, model: &SimCostModel, component_sizes: &[usize], count: u64) {
        self.walks += count;
        self.walk_seconds += count as f64 * model.exact_walk_seconds(component_sizes);
    }

    /// Accumulates `shots` drawn strings against the given shape.
    pub fn add_shots(&mut self, model: &SimCostModel, component_sizes: &[usize], shots: u64) {
        self.shots += shots;
        self.sample_seconds += model.sample_seconds(component_sizes, shots);
    }

    /// Total predicted seconds.
    pub fn total_seconds(&self) -> f64 {
        self.table_seconds + self.walk_seconds + self.sample_seconds
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &CostReport) {
        self.table_seconds += other.table_seconds;
        self.walk_seconds += other.walk_seconds;
        self.sample_seconds += other.sample_seconds;
        self.preparations += other.preparations;
        self.walks += other.walks;
        self.shots += other.shots;
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} preps ({:.3} s) + {} walks ({:.3} s) + {} shots ({:.3} s) = {:.3} s predicted",
            self.preparations,
            self.table_seconds,
            self.walks,
            self.walk_seconds,
            self.shots,
            self.sample_seconds,
            self.total_seconds()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_component_size_and_shots() {
        let model = SimCostModel::new();
        // Table builds are exponential in component size.
        let small = model.table_build_seconds(&[8]);
        let big = model.table_build_seconds(&[16]);
        assert!(big > 100.0 * small, "{big} vs {small}");
        // Splitting a register into components is cheaper than one
        // joint walk.
        assert!(model.exact_walk_seconds(&[8, 8]) < model.exact_walk_seconds(&[16]));
        // Sampling is linear in shots and much cheaper per shot than
        // the build.
        let s1 = model.sample_seconds(&[16], 1);
        let s300 = model.sample_seconds(&[16], 300);
        assert!((s300 / s1 - 300.0).abs() < 1e-6);
        assert!(model.table_build_seconds(&[16]) > 100.0 * s1);
    }

    #[test]
    fn chain_costs_stay_polynomial_beyond_the_joint_cap() {
        let model = SimCostModel::new();
        // A 64-qubit chain component must price *far* below what the
        // joint formula would give a 21-qubit one — polynomial, not
        // exponential — and the pricing must not overflow the shift.
        let chain64 = model.table_build_seconds(&[64]);
        let joint20 = model.table_build_seconds(&[20]);
        assert!(chain64 > 0.0 && chain64.is_finite());
        assert!(chain64 < joint20, "chain 64q {chain64} vs joint 20q {joint20}");
        let chain128 = model.table_build_seconds(&[128]);
        assert!(chain128 > chain64 && chain128.is_finite());
        // Build grows ~2× per extra special qubit at fixed size.
        let t2 = model.chain_build_seconds(64, 2);
        let t3 = model.chain_build_seconds(64, 3);
        assert!(t3 > 1.5 * t2 && t3 < 2.5 * t2, "{t3} vs {t2}");
        // Exact lookups and sampling are polynomial too, and a chain
        // draw costs more search steps than a joint one.
        assert!(model.exact_walk_seconds(&[64]) < model.exact_walk_seconds(&[20]));
        let chain_shot = model.sample_seconds(&[32], 1);
        let joint_shot = model.sample_seconds(&[20], 1);
        assert!(chain_shot > joint_shot);
        assert!(model.sample_seconds(&[128], 1000).is_finite());
    }

    #[test]
    fn report_accumulates_and_merges() {
        let model = SimCostModel::new();
        let mut a = CostReport::default();
        a.add_builds(&model, &[4, 2], 10);
        a.add_shots(&model, &[4, 2], 3000);
        a.add_walks(&model, &[4], 5);
        assert_eq!((a.preparations, a.shots, a.walks), (10, 3000, 5));
        let total = a.total_seconds();
        assert!(total > 0.0);
        let mut b = CostReport::default();
        b.merge(&a);
        b.merge(&a);
        assert!((b.total_seconds() - 2.0 * total).abs() < 1e-12);
        assert_eq!(b.shots, 6000);
        // Display carries the headline number.
        assert!(format!("{a}").contains("predicted"));
    }
}
