//! Cross-trial memoisation of exact circuit scores — the scalar end of
//! the batch-first seam.
//!
//! The Monte-Carlo sweeps (Table II, Fig. 9) evaluate the *same* noisy
//! circuit's exact score thousands of times: threshold re-tunes replay
//! a rung's class battery within a trial, and every class test whose
//! couplings escaped the trial's planted faults compiles to a circuit
//! byte-identical across trials. The score is a pure function of the
//! accumulated `(circuit, target, statistic)` triple, so a thread-local
//! memo keyed on [`crate::cache::xx_key`] returns the exact float the
//! first evaluation produced — outputs are bit-identical with the memo
//! on or off, at any thread count (each worker thread owns its own
//! table; values never cross threads, so scheduling cannot matter).
//!
//! The memo complements the [`crate::cache::PrepCache`] one level up:
//! the prep cache amortises *table construction* for sampling and
//! repeated-target queries, this memo amortises *single-target exact
//! evaluation* on the oracle fast path that never builds tables at all.

use std::cell::RefCell;
use std::collections::HashMap;

/// Entries held per thread before an epoch flush. A key is ~3 words per
/// gate plus the boxed f64; at Table II's 32-qubit class tests (~120
/// gates) the table tops out around 100 MiB worst-case.
pub const SCORE_MEMO_CAPACITY: usize = 1 << 15;

/// Gate count below which memoisation is skipped: tiny circuits (point
/// tests, canaries on a few couplings) evaluate faster than their key
/// hashes.
pub const SCORE_MEMO_MIN_GATES: usize = 6;

/// The memoised statistic, part of the key (one circuit serves both).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScoreKind {
    /// Exact target-string probability.
    ExactTarget,
    /// Worst per-qubit agreement over the support.
    WorstQubit,
}

/// Memo key: the exact circuit key, the target string, the statistic.
type ScoreMemoKey = (Vec<u64>, itqc_sim::BitString, ScoreKind);

thread_local! {
    static SCORE_MEMO: RefCell<HashMap<ScoreMemoKey, f64>> = RefCell::new(HashMap::new());
    static SCORE_STATS: RefCell<(u64, u64)> = const { RefCell::new((0, 0)) };
}

/// Returns the memoised score for `(circuit_key, target, kind)`,
/// computing and storing it on first sight. `circuit_key` must come
/// from [`crate::cache::xx_key`] (or be equally exact): the memo is
/// only sound because the key determines the score bit-for-bit.
pub fn cached_score<F: FnOnce() -> f64>(
    circuit_key: Vec<u64>,
    target: itqc_sim::BitString,
    kind: ScoreKind,
    compute: F,
) -> f64 {
    let key = (circuit_key, target, kind);
    // Lookups are logical work (one per memo-eligible score request,
    // whatever the sharding) — deterministic. The hit/miss split
    // depends on which thread's table a request lands in, so it is
    // nondeterministic telemetry.
    itqc_obs::event::add("backend.memo.lookups", 1);
    if let Some(hit) = SCORE_MEMO.with(|m| m.borrow().get(&key).copied()) {
        SCORE_STATS.with(|s| s.borrow_mut().0 += 1);
        itqc_obs::event::add_nd("backend.memo.hits", 1);
        return hit;
    }
    SCORE_STATS.with(|s| s.borrow_mut().1 += 1);
    itqc_obs::event::add_nd("backend.memo.misses", 1);
    let value = compute();
    SCORE_MEMO.with(|m| {
        let mut m = m.borrow_mut();
        if m.len() >= SCORE_MEMO_CAPACITY {
            m.clear(); // epoch flush, same policy as PrepCache
        }
        m.insert(key, value);
    });
    value
}

/// (hits, misses) of this thread's memo since thread start.
pub fn score_memo_stats() -> (u64, u64) {
    SCORE_STATS.with(|s| *s.borrow())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_returns_the_first_computation_bit_for_bit() {
        let key = vec![4u64, 0, 1, 0.5f64.to_bits()];
        let first = cached_score(key.clone(), 3, ScoreKind::ExactTarget, || 0.123456789);
        // A conflicting recompute must be ignored: the memo serves the
        // original value.
        let second = cached_score(key.clone(), 3, ScoreKind::ExactTarget, || 0.987654321);
        assert_eq!(first.to_bits(), second.to_bits());
        // Different target or statistic is a different entry.
        let other = cached_score(key.clone(), 4, ScoreKind::ExactTarget, || 0.5);
        assert_eq!(other, 0.5);
        let worst = cached_score(key, 3, ScoreKind::WorstQubit, || 0.25);
        assert_eq!(worst, 0.25);
    }

    #[test]
    fn capacity_flush_keeps_the_table_bounded() {
        // Overfill the thread's memo; the epoch flush must keep it
        // usable (and the flushed entry recomputes to the same value —
        // pure functions make eviction invisible).
        for i in 0..(SCORE_MEMO_CAPACITY + 16) {
            let v = cached_score(vec![i as u64], 0, ScoreKind::ExactTarget, || i as f64);
            assert_eq!(v, i as f64);
        }
        let again = cached_score(vec![7u64], 0, ScoreKind::ExactTarget, || 7.0);
        assert_eq!(again, 7.0);
    }
}
