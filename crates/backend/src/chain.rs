//! Conditional-marginal chain sampler for near-complete XX components.
//!
//! The joint-table sampler ([`crate::dist::ComponentDist`]) materializes
//! all `2^c` outcome probabilities of a component, capping honest string
//! sampling at [`crate::MAX_COMPONENT`] qubits. The protocol's class
//! tests beyond that cap are *structured*: a first-round class on `N`
//! qubits is a complete graph on `c = N/2` qubits whose accumulated
//! per-pair angle is one shared base value `θ̄` everywhere except a
//! small set of pairs touched by planted faults. This module exploits
//! that structure to sample exact output strings in `O(c²)` per shot
//! with an `O(2^t·(n+1)² + n³)` build, where `t` is the number of
//! *special* qubits (endpoints of pairs deviating from `θ̄`,
//! `t ≤ `[`CHAIN_MAX_SPECIAL`]) and `n = c − t` is the exchangeable
//! bulk.
//!
//! # Derivation
//!
//! Writing spins `σ = (−1)^y`, the X-basis phase of a commuting-XX
//! component is `φ(y) = ½·Σ_{a<b} Θ_ab·σ_a σ_b` and the amplitude of
//! output `z` is `A(z) = 2^{−c}·Σ_y (−1)^{y·z}·cis(−φ(y))` (see
//! `itqc_sim::xx`). Splitting the qubits into the special set `T` and
//! the bulk `B` (all `B–B` and `B–T` pairs carry exactly `θ̄`):
//!
//! `φ(y_T, m) = φ_T(y_T) + ½·θ̄·[(M_B² − n)/2 + M_T(y_T)·M_B]`,
//!
//! where `m = |y_B|`, `M_B = n − 2m`, `M_T = Σ_{T} σ`, and `φ_T` uses
//! the actual accumulated `T–T` angles. The bulk sum collapses through
//! the Krawtchouk identity `Σ_{|y_B|=m} (−1)^{y_B·z_B} = K_m(k; n)`
//! (`k = |z_B|`, `Σ_m K_m(k)·x^m = (1−x)^k(1+x)^{n−k}`), so amplitudes
//! depend on `z` only through `(z_T, k)`:
//!
//! `A(z_T, k) = 2^{−c}·Σ_{y_T} (−1)^{y_T·z_T}·Σ_m K_m(k)·cis(−φ(y_T, m))`
//!
//! — `(n+1)` Walsh–Hadamard transforms of size `2^t` instead of one of
//! size `2^c`. The single-string probability table `p1[z_T][k] =
//! |A(z_T, k)|²` plus layered prefix sums over the `T` bits then drive
//! a most-significant-bit-first nested-interval descent: one uniform
//! per component per shot (the canonical draw-order contract), each bit
//! resolved against a closed-form conditional boundary
//! `P(prefix·0·…)` in `O(n)` — never a `2^c` table.
//!
//! Beyond `n ≈ 57` the binomial weights exceed `2^53`, so boundaries
//! carry ~1e-5-grade relative rounding — invisible under 300-shot
//! noise, and exactly zero for `n ≤ 20` where the bit-identity suite
//! pins chain-vs-joint equality.

use crate::dist::{walsh_hadamard, SampleComponent};
use itqc_sim::{BitString, XxCircuit};
use std::collections::BTreeMap;

/// Largest special set the chain sampler accepts: the amplitude table
/// is `2^t·(n+1)` entries, so 12 caps a 64-qubit faulty component near
/// the memory of one joint 20-qubit table. Protocol components carry
/// `t ≤ 2·faults`; anything larger (an unstructured component) is
/// refused with [`crate::BackendError::ChainUnsupported`].
pub const CHAIN_MAX_SPECIAL: usize = 12;

/// Why a component cannot be chain-sampled: its deviant structure
/// (pairs off the modal base angle) touches too many qubits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainRefusal {
    /// Component size in qubits.
    pub support: usize,
    /// Number of special qubits the component would need.
    pub special: usize,
}

/// The cheap structural analysis of a component: its modal base angle
/// and the special qubits deviating from it. `O(c²)`, no tables — run
/// at prepare time so oversize-without-structure surfaces as a typed
/// error before any sampling request.
#[derive(Clone, Debug)]
pub struct ChainPlan {
    /// The modal accumulated per-pair angle (absent pairs count as 0).
    pub base_angle: f64,
    /// Local positions (0-based, ascending) of the special qubits.
    pub special: Vec<usize>,
}

/// Analyzes a component sub-circuit for chain-sampling structure.
///
/// The accumulated angle of every pair (including absent pairs, at 0)
/// is bucketed by exact bit pattern; the most common value is the base
/// angle `θ̄` (ties break toward the smaller bit pattern, so the choice
/// is deterministic), and every endpoint of a deviating pair becomes
/// special. Errs when the special set exceeds [`CHAIN_MAX_SPECIAL`].
pub fn plan(sub: &XxCircuit) -> Result<ChainPlan, ChainRefusal> {
    let qubits = sub.support();
    let c = qubits.len();
    let pos: BTreeMap<usize, usize> = qubits.iter().enumerate().map(|(k, &q)| (q, k)).collect();
    let mut w = vec![0.0f64; c * c];
    for ((a, b), theta) in sub.terms() {
        let (ia, ib) = (pos[&a].min(pos[&b]), pos[&a].max(pos[&b]));
        w[ia * c + ib] += theta;
    }
    // Canonical bits: fold −0.0 into +0.0 so absent pairs and explicit
    // zero-angle pairs bucket together.
    let canon = |x: f64| if x == 0.0 { 0.0f64.to_bits() } else { x.to_bits() };
    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
    for a in 0..c {
        for b in (a + 1)..c {
            *counts.entry(canon(w[a * c + b])).or_insert(0) += 1;
        }
    }
    let base_bits = counts
        .iter()
        .max_by_key(|&(&bits, &count)| (count, std::cmp::Reverse(bits)))
        .map(|(&bits, _)| bits)
        .unwrap_or(0.0f64.to_bits());
    let base_angle = f64::from_bits(base_bits);
    let mut special = vec![false; c];
    for a in 0..c {
        for b in (a + 1)..c {
            if canon(w[a * c + b]) != base_bits {
                special[a] = true;
                special[b] = true;
            }
        }
    }
    let special: Vec<usize> = (0..c).filter(|&a| special[a]).collect();
    if special.len() > CHAIN_MAX_SPECIAL {
        return Err(ChainRefusal { support: c, special: special.len() });
    }
    Ok(ChainPlan { base_angle, special })
}

/// A built chain sampler for one component: the `(z_T, k)` amplitude
/// table, its layered prefix sums over the special bits, and the
/// binomial weights that price bulk completions during the descent.
#[derive(Clone, Debug)]
pub struct ChainDist {
    /// The component's qubits, ascending (global numbering); local bit
    /// `k` of an outcome is the measured bit of `qubits[k]` — the same
    /// convention as the joint sampler.
    qubits: Vec<usize>,
    /// Local positions of the special qubits, ascending; `z_T` bit `i`
    /// is the outcome bit of `qubits[special_pos[i]]`.
    special_pos: Vec<usize>,
    is_special: Vec<bool>,
    n_bulk: usize,
    /// `layers[τ]` holds `2^(t−τ)` rows of `n+1` entries: row `h` (the
    /// fixed MSB-first prefix of `t−τ` special bits) at column `k` is
    /// the single-string probability `p1` summed over the `τ` free
    /// (lower) special bits. `layers[0]` is `p1` itself; `layers[t]`
    /// is a single row.
    layers: Vec<Vec<f64>>,
    /// `binom[m][j] = C(m, j)` as f64, `m ≤ n_bulk`.
    binom: Vec<Vec<f64>>,
    mass: f64,
}

impl ChainDist {
    /// Builds the chain sampler for a component sub-circuit.
    ///
    /// Fully general when the special set is the whole component
    /// (`t = c`, empty bulk): the table degenerates to the joint `2^c`
    /// distribution, which is what lets the equivalence suite pin
    /// chain-vs-joint bit-identity on arbitrary circuits up to
    /// [`CHAIN_MAX_SPECIAL`] qubits.
    pub fn build(sub: &XxCircuit) -> Result<ChainDist, ChainRefusal> {
        let p = plan(sub)?;
        Ok(Self::from_plan(sub, &p))
    }

    /// Builds the tables for an already-analyzed component.
    pub fn from_plan(sub: &XxCircuit, plan: &ChainPlan) -> ChainDist {
        let qubits = sub.support();
        let c = qubits.len();
        debug_assert!(c >= 1);
        let pos: BTreeMap<usize, usize> = qubits.iter().enumerate().map(|(k, &q)| (q, k)).collect();
        let mut w = vec![0.0f64; c * c];
        for ((a, b), theta) in sub.terms() {
            let (ia, ib) = (pos[&a], pos[&b]);
            w[ia * c + ib] += theta;
            w[ib * c + ia] += theta;
        }
        let special_pos = plan.special.clone();
        let t = special_pos.len();
        let mut is_special = vec![false; c];
        for &p in &special_pos {
            is_special[p] = true;
        }
        let n = c - t;
        let np1 = n + 1;
        let tsize = 1usize << t;
        let theta = plan.base_angle;

        // Binomials C(m, j) for m ≤ n (f64; exact up to n = 57).
        let mut binom: Vec<Vec<f64>> = Vec::with_capacity(np1);
        for m in 0..=n {
            let mut row = vec![0.0f64; m + 1];
            row[0] = 1.0;
            for j in 1..=m {
                row[j] = binom[m - 1][j - 1] + if j < m { binom[m - 1][j] } else { 0.0 };
            }
            binom.push(row);
        }

        // Krawtchouk table K[k][m]: coefficients of (1−x)^k·(1+x)^{n−k}.
        let mut kraw = vec![0.0f64; np1 * np1];
        for k in 0..=n {
            for m in 0..=n {
                let mut s = 0.0f64;
                let j_lo = m.saturating_sub(n - k);
                let j_hi = k.min(m);
                let mut sign = if j_lo % 2 == 0 { 1.0 } else { -1.0 };
                for j in j_lo..=j_hi {
                    s += sign * binom[k][j] * binom[n - k][m - j];
                    sign = -sign;
                }
                kraw[k * np1 + m] = s;
            }
        }

        // φ_T and M_T per special configuration.
        let mut phi_t = vec![0.0f64; tsize];
        let mut m_t = vec![0.0f64; tsize];
        for y in 0..tsize {
            let sigma: Vec<f64> =
                (0..t).map(|i| if (y >> i) & 1 == 1 { -1.0 } else { 1.0 }).collect();
            let mut phi = 0.0f64;
            for i in 0..t {
                for j in (i + 1)..t {
                    phi += 0.5 * w[special_pos[i] * c + special_pos[j]] * sigma[i] * sigma[j];
                }
            }
            phi_t[y] = phi;
            m_t[y] = sigma.iter().sum();
        }

        // F(y_T, k) = 2^{−c}·Σ_m K[k][m]·cis(−φ(y_T, m)), then (n+1)
        // Walsh–Hadamard passes over y_T give A(z_T, k).
        let scale = (0.5f64).powi(c as i32);
        let mut fr = vec![0.0f64; tsize * np1];
        let mut fi = vec![0.0f64; tsize * np1];
        let mut cr = vec![0.0f64; np1];
        let mut ci = vec![0.0f64; np1];
        for y in 0..tsize {
            for m in 0..=n {
                let mb = (n as f64) - 2.0 * m as f64;
                let phi = phi_t[y] + 0.5 * theta * ((mb * mb - n as f64) / 2.0 + m_t[y] * mb);
                cr[m] = scale * phi.cos(); // cis(−φ) = (cos φ, −sin φ)
                ci[m] = scale * -phi.sin();
            }
            for k in 0..=n {
                let (mut sr, mut si) = (0.0f64, 0.0f64);
                let row = &kraw[k * np1..(k + 1) * np1];
                for m in 0..=n {
                    sr += row[m] * cr[m];
                    si += row[m] * ci[m];
                }
                fr[y * np1 + k] = sr;
                fi[y * np1 + k] = si;
            }
        }
        let mut p1 = vec![0.0f64; tsize * np1];
        let mut re = vec![0.0f64; tsize];
        let mut im = vec![0.0f64; tsize];
        for k in 0..=n {
            for y in 0..tsize {
                re[y] = fr[y * np1 + k];
                im[y] = fi[y * np1 + k];
            }
            walsh_hadamard(&mut re, &mut im);
            for z in 0..tsize {
                p1[z * np1 + k] = (re[z] * re[z] + im[z] * im[z]).max(0.0);
            }
        }

        // Layered prefix sums over the special bits, MSB-first.
        let mut layers = Vec::with_capacity(t + 1);
        layers.push(p1);
        for tau in 1..=t {
            let prev = &layers[tau - 1];
            let rows = 1usize << (t - tau);
            let mut next = vec![0.0f64; rows * np1];
            for h in 0..rows {
                for k in 0..np1 {
                    next[h * np1 + k] = prev[(h << 1) * np1 + k] + prev[((h << 1) | 1) * np1 + k];
                }
            }
            layers.push(next);
        }
        let mass: f64 = (0..=n).map(|k| binom[n][k] * layers[t][k]).sum();
        debug_assert!(
            (mass - 1.0).abs() < 1e-4,
            "chain distribution mass {mass} drifted from 1 (c={c}, t={t})"
        );
        ChainDist { qubits, special_pos, is_special, n_bulk: n, layers, binom, mass }
    }

    /// Number of special qubits.
    pub fn special_count(&self) -> usize {
        self.special_pos.len()
    }

    /// Resident bytes of the layered tables (the shareable part).
    pub fn table_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.len() * std::mem::size_of::<f64>()).sum()
    }

    /// The exact probability of the full-register basis string `global`
    /// on this component (bits of other components are ignored, exactly
    /// like the joint sampler's `local_state` extraction).
    pub fn probability_global(&self, global: BitString) -> f64 {
        let np1 = self.n_bulk + 1;
        let mut z_t = 0usize;
        let mut k = 0usize;
        let mut si = 0usize;
        for (local, &q) in self.qubits.iter().enumerate() {
            let bit = (global >> q) & 1 == 1;
            if self.is_special[local] {
                if bit {
                    z_t |= 1 << si;
                }
                si += 1;
            } else if bit {
                k += 1;
            }
        }
        self.layers[0][z_t * np1 + k]
    }
}

impl SampleComponent for ChainDist {
    fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    fn mass(&self) -> f64 {
        self.mass
    }

    fn place(&self, x: f64, string: &mut BitString) {
        // MSB-first nested-interval descent: local bits are resolved
        // from the highest component qubit down, so the visited
        // intervals are ordered exactly like the joint sampler's CDF
        // (local index ascending) and the tie rule `x ≥ boundary → 1`
        // reproduces `partition_point(|&c| c <= x)`.
        let c = self.qubits.len();
        let np1 = self.n_bulk + 1;
        let mut lo = 0.0f64;
        let mut h = 0usize; // fixed special prefix, MSB-first
        let mut tau = self.special_pos.len(); // free special bits
        let mut w_f = 0usize; // fixed bulk ones
        let mut n_f = self.n_bulk; // free bulk positions
        for j in (0..c).rev() {
            if self.is_special[j] {
                tau -= 1;
                let row = &self.layers[tau][(h << 1) * np1..((h << 1) + 1) * np1];
                let weights = &self.binom[n_f];
                let mut boundary = lo;
                for (w, &cw) in weights.iter().enumerate() {
                    boundary += cw * row[w_f + w];
                }
                if x >= boundary {
                    h = (h << 1) | 1;
                    lo = boundary;
                    *string |= (1 as BitString) << self.qubits[j];
                } else {
                    h <<= 1;
                }
            } else {
                let row = &self.layers[tau][h * np1..(h + 1) * np1];
                let weights = &self.binom[n_f - 1];
                let mut boundary = lo;
                for (w, &cw) in weights.iter().enumerate() {
                    boundary += cw * row[w_f + w];
                }
                if x >= boundary {
                    w_f += 1;
                    lo = boundary;
                    *string |= (1 as BitString) << self.qubits[j];
                }
                n_f -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample_strings, ComponentDist};
    use crate::PreparedCircuit;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::f64::consts::FRAC_PI_2;

    /// A complete graph on `members` at `base`, with `deviant` pairs
    /// overridden.
    fn complete_xx(
        n: usize,
        members: &[usize],
        base: f64,
        deviant: &[(usize, usize, f64)],
    ) -> XxCircuit {
        let mut xx = XxCircuit::new(n);
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                let theta = deviant
                    .iter()
                    .find(|&&(x, y, _)| (x, y) == (a, b) || (x, y) == (b, a))
                    .map(|&(_, _, t)| t)
                    .unwrap_or(base);
                xx.add_xx(a, b, theta);
            }
        }
        xx
    }

    #[test]
    fn plan_finds_base_angle_and_specials() {
        let members: Vec<usize> = (0..10).collect();
        let xx = complete_xx(10, &members, 0.9, &[(2, 5, 0.7), (2, 8, 0.7)]);
        let p = plan(&xx).unwrap();
        assert_eq!(p.base_angle, 0.9);
        assert_eq!(p.special, vec![2, 5, 8]);
        // A star is not near-complete: absent pairs dominate, so every
        // present edge is deviant and the whole component is special.
        let mut star = XxCircuit::new(CHAIN_MAX_SPECIAL + 3);
        for q in 1..CHAIN_MAX_SPECIAL + 3 {
            star.add_xx(0, q, 0.4);
        }
        let refusal = plan(&star).unwrap_err();
        assert_eq!(refusal.support, CHAIN_MAX_SPECIAL + 3);
        assert_eq!(refusal.special, CHAIN_MAX_SPECIAL + 3);
    }

    #[test]
    fn chain_probabilities_match_joint_table_exactly_structured() {
        // 10-qubit complete component, 2 deviant pairs → t = 3, n = 7:
        // every branch of the split derivation is exercised.
        let members: Vec<usize> = (0..10).collect();
        let xx = complete_xx(10, &members, 2.0 * FRAC_PI_2 * 0.97, &[(1, 4, 1.1), (4, 7, -0.3)]);
        let chain = ChainDist::build(&xx).unwrap();
        assert_eq!(chain.special_count(), 3);
        let joint = crate::analytic::XxPrepared::build(xx).unwrap();
        let mut worst = 0.0f64;
        for local in 0..(1u32 << 10) {
            let target = local as BitString;
            let d = (chain.probability_global(target) - joint.probability(target)).abs();
            worst = worst.max(d);
        }
        assert!(worst < 1e-12, "worst probability deviation {worst}");
    }

    #[test]
    fn chain_degenerates_to_joint_on_arbitrary_small_circuits() {
        // Random circuits: every pair angle is distinct, so t = c and
        // the chain table IS the joint distribution.
        let mut rng = SmallRng::seed_from_u64(31);
        for case in 0..6 {
            let n = rng.gen_range(2usize..=8);
            let mut xx = XxCircuit::new(n);
            for _ in 0..rng.gen_range(1..12) {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    xx.add_xx(a, b, rng.gen_range(-3.0..3.0));
                }
            }
            let support = xx.support();
            if support.is_empty() {
                continue;
            }
            let chain = ChainDist::build(&xx).unwrap();
            let prep = crate::analytic::XxPrepared::build(xx).unwrap();
            // Spread local states onto the support: component samplers
            // ignore off-support bits, prep.probability zeroes them.
            for local in 0..(1u32 << support.len()) {
                let target = support
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| (local >> k) & 1 == 1)
                    .fold(0 as BitString, |t, (_, &q)| t | ((1 as BitString) << q));
                let d = (chain.probability_global(target) - prep.probability(target)).abs();
                assert!(d < 1e-12, "case {case} target {target:b}: off by {d}");
            }
        }
    }

    #[test]
    fn chain_sampling_is_bit_identical_to_joint_under_shared_seed() {
        let members: Vec<usize> = (0..12).collect();
        let xx = complete_xx(12, &members, 2.0 * FRAC_PI_2 * 0.95, &[(0, 3, 1.3)]);
        let chain = ChainDist::build(&xx).unwrap();
        let prep = crate::analytic::XxPrepared::build(xx).unwrap();
        let joint: Vec<ComponentDist> = prep.distributions().iter().map(joint_of).collect();
        let mut r1 = SmallRng::seed_from_u64(77);
        let mut r2 = SmallRng::seed_from_u64(77);
        let a = sample_strings(std::slice::from_ref(&chain), &mut r1, 2000);
        let b = sample_strings(&joint, &mut r2, 2000);
        assert_eq!(a, b);
    }

    fn joint_of(s: &crate::analytic::ComponentSampler) -> ComponentDist {
        match s {
            crate::analytic::ComponentSampler::Joint(d) => d.clone(),
            crate::analytic::ComponentSampler::Chain(_) => panic!("expected joint table"),
        }
    }

    #[test]
    fn healthy_xl_component_needs_no_specials_and_hits_its_target() {
        // A healthy 24-qubit first-round class at exactly reps·π/2:
        // t = 0, and the ideal output is deterministic.
        let members: Vec<usize> = (0..24).collect();
        let xx = complete_xx(24, &members, 2.0 * FRAC_PI_2, &[]);
        let chain = ChainDist::build(&xx).unwrap();
        assert_eq!(chain.special_count(), 0);
        // 2-MS, degree 23 (odd) → every qubit flips.
        let target: BitString = (1 << 24) - 1;
        assert!((chain.probability_global(target) - 1.0).abs() < 1e-9);
        let mut rng = SmallRng::seed_from_u64(5);
        let strings = sample_strings(std::slice::from_ref(&chain), &mut rng, 50);
        assert!(strings.iter().all(|&s| s == target));
    }

    #[test]
    fn chain_marginals_match_closed_form_at_24_qubits() {
        // One under-rotated coupling in a 24-qubit class: the chain
        // sampler's per-qubit marginals must track the closed form.
        let members: Vec<usize> = (0..24).collect();
        let theta = 2.0 * FRAC_PI_2;
        let xx = complete_xx(24, &members, theta, &[(3, 11, theta * 0.7)]);
        let chain = ChainDist::build(&xx).unwrap();
        assert_eq!(chain.special_count(), 2);
        let mut rng = SmallRng::seed_from_u64(1234);
        let shots = 6000usize;
        let strings = sample_strings(std::slice::from_ref(&chain), &mut rng, shots);
        for q in [3usize, 11, 0, 23] {
            let p_closed = xx.marginal_one(q);
            let p_sampled =
                strings.iter().filter(|&&s| (s >> q) & 1 == 1).count() as f64 / shots as f64;
            let sigma = (p_closed * (1.0 - p_closed) / shots as f64).sqrt().max(1e-4);
            assert!(
                (p_sampled - p_closed).abs() < 5.0 * sigma,
                "qubit {q}: sampled {p_sampled} vs closed-form {p_closed}"
            );
        }
    }
}
