//! The scalable analytic backend for commuting-XX test circuits.
//!
//! Every gate of a test circuit is an `XX(θ)`; they all commute, so the
//! output state factorizes over the connected components of the coupling
//! graph and each component's amplitudes are an Ising character sum over
//! its own qubits only (see `itqc_sim::xx`). This backend exploits that
//! structure three ways:
//!
//! * **per-qubit marginals** — closed form `⟨Z_q⟩ = Π cos(Θ_qb)`,
//!   `O(degree)` per qubit at any register size;
//! * **exact output probabilities** — one Gray-code sum of `2^c` terms
//!   per *component* (`c` = component size), never `2^N`;
//! * **shot sampling** — the full `2^c` outcome distribution per
//!   component via a Gray-code phase walk plus a Walsh–Hadamard
//!   transform (`O(c·2^c)`), then one inverse-CDF draw per component
//!   per shot through the canonical sampler of [`crate::dist`].
//!
//! A first-round class test on `N = 32` qubits is a single 16-qubit
//! component: `2^16` table entries, milliseconds — where the dense path
//! would need `2^32` amplitudes. Prepared circuits (including their
//! distributions) are memoized in a per-backend cache keyed by the
//! noisy coupling angles, so repeated shot batteries at the same
//! repetition rung reuse one preparation.

use crate::cache::{xx_key, CacheCounters, PrepCache};
use crate::chain::{self, ChainDist, CHAIN_MAX_SPECIAL};
use crate::dist::{
    connected_components, sample_strings, sample_strings_blocked, walsh_hadamard, ComponentDist,
    SampleComponent,
};
use crate::{BackendError, PreparedCircuit, SimBackend};
use itqc_circuit::Circuit;
use itqc_math::gray;
use itqc_sim::{BitString, XxCircuit};
use rand::rngs::SmallRng;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::OnceLock;

/// Largest connected component the analytic backend will prepare: the
/// sampling table is `2^c` entries, so 20 caps it at ~8 MiB of f64 CDF.
/// Protocol class tests need `c = N/2` (16 at the paper's 32-qubit
/// ceiling); anything larger returns [`BackendError::SupportTooLarge`].
pub const MAX_COMPONENT: usize = 20;

/// Entries held per thread in the component-distribution cache before an
/// epoch flush. A 16-qubit component's CDF is ~½ MiB, so 96 entries cap
/// the per-thread table memory at ~48 MiB worst-case.
pub const COMPONENT_CACHE_CAPACITY: usize = 96;

/// One component's string sampler, selected by size: the joint `2^c`
/// table at or below [`MAX_COMPONENT`] qubits, the conditional-marginal
/// chain sampler ([`crate::chain`]) above it. Both run under the
/// canonical component-ordered sampling scheme of [`crate::dist`] (one
/// pre-scaled uniform per component per shot, joint tie semantics), so
/// the dispatch is invisible to seeded shot streams wherever both
/// engines apply.
#[derive(Clone, Debug)]
pub enum ComponentSampler {
    /// Full `2^c` outcome table (components of ≤ [`MAX_COMPONENT`]
    /// qubits).
    Joint(ComponentDist),
    /// Conditional-marginal chain sampler for oversize near-complete
    /// components.
    Chain(ChainDist),
}

impl ComponentSampler {
    /// The exact probability of the full-register basis string `global`
    /// on this component (bits outside the component are ignored).
    pub fn probability_global(&self, global: BitString) -> f64 {
        match self {
            ComponentSampler::Joint(d) => d.probability(d.local_state(global)),
            ComponentSampler::Chain(d) => d.probability_global(global),
        }
    }

    /// Resident bytes of the sampler's probability tables.
    pub fn table_bytes(&self) -> usize {
        match self {
            ComponentSampler::Joint(d) => (1usize << d.qubits().len()) * std::mem::size_of::<f64>(),
            ComponentSampler::Chain(d) => d.table_bytes(),
        }
    }
}

impl SampleComponent for ComponentSampler {
    fn qubits(&self) -> &[usize] {
        match self {
            ComponentSampler::Joint(d) => d.qubits(),
            ComponentSampler::Chain(d) => d.qubits(),
        }
    }

    fn mass(&self) -> f64 {
        match self {
            ComponentSampler::Joint(d) => d.mass(),
            ComponentSampler::Chain(d) => d.mass(),
        }
    }

    fn place(&self, x: f64, string: &mut BitString) {
        match self {
            ComponentSampler::Joint(d) => d.place(x, string),
            ComponentSampler::Chain(d) => d.place(x, string),
        }
    }
}

/// A cache of materialized [`ComponentSampler`] tables keyed on the exact
/// component sub-circuit ([`xx_key`]: qubits + angle bits) — the
/// batch-amortisation layer of the backend. Trials that share a coupling
/// graph produce byte-identical components wherever the noisy-angle
/// perturbation leaves a component's angles untouched (e.g. healthy
/// classes across trials, repeated rungs within one), and the component
/// factorisation lets each such table be built once and reused even when
/// *other* components of the circuit differ.
///
/// The cache is thread-local behind [`component_cache_stats`]: a
/// [`ComponentSampler`] is a pure function of its key, so per-thread
/// tables can never make results depend on scheduling.
#[derive(Debug, Default)]
pub struct ComponentDistCache {
    map: HashMap<Vec<u64>, ComponentSampler>,
    counters: CacheCounters,
}

impl ComponentDistCache {
    /// Returns the cached table for `key`, building and storing it on
    /// first sight.
    pub fn get_or_build<F: FnOnce() -> ComponentSampler>(
        &mut self,
        key: Vec<u64>,
        build: F,
    ) -> ComponentSampler {
        if let Some(hit) = self.map.get(&key) {
            self.counters.hits += 1;
            // Which requests hit depends on how trials were sharded
            // across threads (each thread owns a cache) — nd telemetry.
            itqc_obs::event::add_nd("backend.component_cache.hits", 1);
            return hit.clone();
        }
        self.counters.misses += 1;
        itqc_obs::event::add_nd("backend.component_cache.misses", 1);
        let dist = build();
        if self.map.len() >= COMPONENT_CACHE_CAPACITY {
            self.counters.evictions += self.map.len() as u64;
            itqc_obs::event::add_nd("backend.component_cache.evictions", self.map.len() as u64);
            self.map.clear(); // epoch flush, same policy as PrepCache
        }
        self.map.insert(key, dist.clone());
        dist
    }

    /// Full hit/miss/eviction counters since construction.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Number of cached component tables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

thread_local! {
    static COMPONENT_CACHE: RefCell<ComponentDistCache> =
        RefCell::new(ComponentDistCache::default());
}

/// Hit/miss/eviction counters of this thread's component-distribution
/// cache since thread start — the denominator of the batch
/// amortisation's observability (and of `--cost-report`'s prep count).
pub fn component_cache_stats() -> CacheCounters {
    COMPONENT_CACHE.with(|c| c.borrow().counters())
}

/// The analytic commuting-XX backend with its prepared-circuit cache.
#[derive(Clone, Debug, Default)]
pub struct XxAnalyticBackend {
    cache: Rc<RefCell<PrepCache>>,
}

impl XxAnalyticBackend {
    /// A backend with a fresh cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// (hits, misses) of the prepared-circuit cache — clones of this
    /// backend share one cache, so an executor and its shot-sampling
    /// wrapper reuse each other's preparations.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.borrow().stats()
    }

    /// Prepares an accumulated [`XxCircuit`] directly (the circuit-free
    /// entry point used by the executor fast path and tests).
    pub fn prepare_xx(&self, xx: XxCircuit) -> Result<Rc<XxPrepared>, BackendError> {
        let key = xx_key(&xx);
        if let Some(hit) = self.cache.borrow_mut().get(&key) {
            return Ok(hit);
        }
        let prepared = Rc::new(XxPrepared::build(xx)?);
        self.cache.borrow_mut().insert(key, Rc::clone(&prepared));
        Ok(prepared)
    }
}

impl SimBackend for XxAnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn prepare(&self, circuit: &Circuit) -> Result<Rc<dyn PreparedCircuit>, BackendError> {
        let xx = XxCircuit::from_circuit(circuit).ok_or(BackendError::NotCommutingXx)?;
        Ok(self.prepare_xx(xx)? as Rc<dyn PreparedCircuit>)
    }

    fn prepare_batch(
        &self,
        circuits: &[Circuit],
    ) -> Vec<Result<Rc<dyn PreparedCircuit>, BackendError>> {
        circuits
            .iter()
            .map(|circuit| {
                let xx = XxCircuit::from_circuit(circuit).ok_or(BackendError::NotCommutingXx)?;
                let prepared = self.prepare_xx(xx)?;
                // Batch callers sample: materialize now so shared
                // components amortise across the batch through the
                // thread's component cache.
                prepared.distributions();
                Ok(prepared as Rc<dyn PreparedCircuit>)
            })
            .collect()
    }
}

/// A prepared commuting-XX circuit: component split done, distributions
/// materialized lazily on the first sampling request.
///
/// `Send + Sync` (distributions materialize through a [`OnceLock`]), so
/// preparations can be shared across threads behind an `Arc` — the
/// property the fleet's cross-trap prepared-circuit cache builds on.
#[derive(Debug)]
pub struct XxPrepared {
    xx: XxCircuit,
    support: Vec<usize>,
    /// One accumulated sub-circuit per connected component (qubits kept
    /// in global numbering), ascending by first qubit, with each
    /// component's qubit bit-mask alongside.
    comp_circuits: Vec<(XxCircuit, BitString)>,
    dists: OnceLock<Vec<ComponentSampler>>,
}

impl XxPrepared {
    /// Prepares an accumulated commuting-XX circuit outside any backend
    /// — the entry point for external cache layers that manage sharing
    /// themselves (e.g. the fleet's concurrent cross-trap cache, which
    /// stores preparations behind `Arc` instead of this crate's
    /// per-backend `Rc`).
    pub fn prepare(xx: XxCircuit) -> Result<Self, BackendError> {
        Self::build(xx)
    }

    pub(crate) fn build(xx: XxCircuit) -> Result<Self, BackendError> {
        let support = xx.support();
        let pos: BTreeMap<usize, usize> =
            support.iter().enumerate().map(|(k, &q)| (q, k)).collect();
        let edges: Vec<(usize, usize)> = xx.terms().map(|((a, b), _)| (pos[&a], pos[&b])).collect();
        let comps = connected_components(support.len(), &edges);
        let comp_circuits: Vec<(XxCircuit, BitString)> = comps
            .iter()
            .map(|members| {
                let qubits: Vec<usize> = members.iter().map(|&k| support[k]).collect();
                let set: std::collections::BTreeSet<usize> = qubits.iter().copied().collect();
                let mut sub = XxCircuit::new(xx.n_qubits());
                for ((a, b), theta) in xx.terms() {
                    if set.contains(&a) {
                        debug_assert!(set.contains(&b), "edge must stay inside its component");
                        sub.add_xx(a, b, theta);
                    }
                }
                let mask = qubits.iter().fold(0 as BitString, |m, &q| m | ((1 as BitString) << q));
                (sub, mask)
            })
            .collect();
        // Oversize components must carry chain-sampleable structure;
        // the cheap O(c²) plan runs here so an unstructured giant
        // surfaces as a typed refusal at prepare time, never as a 2^c
        // table attempt (or a panic) at first sampling request.
        for (sub, mask) in &comp_circuits {
            if mask.count_ones() as usize > MAX_COMPONENT {
                if let Err(refusal) = chain::plan(sub) {
                    return Err(BackendError::ChainUnsupported {
                        support: refusal.support,
                        special: refusal.special,
                        limit: CHAIN_MAX_SPECIAL,
                    });
                }
            }
        }
        Ok(XxPrepared { xx, support, comp_circuits, dists: OnceLock::new() })
    }

    /// The underlying accumulated circuit.
    pub fn xx(&self) -> &XxCircuit {
        &self.xx
    }

    /// The component samplers, materialized on first use through the
    /// calling thread's [`ComponentDistCache`] so circuits sharing a
    /// component (same qubits, same exact angles) build its table once
    /// per thread. Components of ≤ [`MAX_COMPONENT`] qubits get the
    /// joint `2^c` table, larger ones the chain sampler (structure
    /// validated at prepare time). Cached tables are byte-identical to
    /// fresh builds (the key pins the angles bit-for-bit), so the cache
    /// is invisible to every downstream statistic.
    pub fn distributions(&self) -> &[ComponentSampler] {
        self.dists
            .get_or_init(|| COMPONENT_CACHE.with(|cache| self.build_dists(&mut cache.borrow_mut())))
    }

    /// Materializes the distributions through an explicit cache instead
    /// of the thread-local one — for callers that manage their own
    /// amortisation scope (tests pinning hit counts, external layers).
    /// A no-op if the tables already exist.
    pub fn materialize_with(&self, cache: &mut ComponentDistCache) -> &[ComponentSampler] {
        self.dists.get_or_init(|| self.build_dists(cache))
    }

    fn build_dists(&self, cache: &mut ComponentDistCache) -> Vec<ComponentSampler> {
        self.comp_circuits
            .iter()
            .map(|(sub, mask)| {
                cache.get_or_build(xx_key(sub), || {
                    // Built (not cache-served) component tables, by
                    // size: the prep phase of the observed cost report.
                    itqc_obs::event::observe_nd(
                        "backend.prep.component_qubits",
                        mask.count_ones() as u64,
                        1,
                    );
                    if mask.count_ones() as usize <= MAX_COMPONENT {
                        ComponentSampler::Joint(component_distribution(sub))
                    } else {
                        let dist = ChainDist::build(sub)
                            .expect("oversize component structure validated at prepare time");
                        ComponentSampler::Chain(dist)
                    }
                })
            })
            .collect()
    }

    /// Connected-component sizes in qubits, in preparation order.
    pub fn component_sizes(&self) -> Vec<usize> {
        self.comp_circuits.iter().map(|(_, mask)| mask.count_ones() as usize).collect()
    }

    /// Resident-size estimate of the fully materialized preparation:
    /// per component the `2^c` f64 CDF table (joint) or the layered
    /// `(z_T, k)` prefix tables (chain, `Σ_τ 2^{t−τ}·(n+1)` entries) —
    /// the expensive, shareable part — plus the accumulated gate list.
    /// Used by byte-budgeted cache layers.
    pub fn table_bytes(&self) -> usize {
        let tables: usize = self
            .comp_circuits
            .iter()
            .map(|(sub, mask)| {
                let c = mask.count_ones() as usize;
                if c <= MAX_COMPONENT {
                    (1usize << c) * std::mem::size_of::<f64>()
                } else {
                    let plan =
                        chain::plan(sub).expect("oversize structure validated at prepare time");
                    let t = plan.special.len();
                    ((1usize << (t + 1)) - 1) * (c - t + 1) * std::mem::size_of::<f64>()
                }
            })
            .sum();
        tables + self.xx.terms().count() * 3 * std::mem::size_of::<u64>()
    }
}

/// The full `2^c` outcome distribution of one connected commuting-XX
/// component: a Gray-code walk fills the X-basis phase table
/// `v[y] = e^{−iφ(y)}`, a Walsh–Hadamard transform turns it into the
/// amplitude table `A(z) = 2^{−c}·Σ_y (−1)^{y·z} v[y]`, and `|A|²` is
/// the distribution.
fn component_distribution(sub: &XxCircuit) -> ComponentDist {
    let qubits = sub.support();
    let c = qubits.len();
    debug_assert!(c >= 1);
    let pos: BTreeMap<usize, usize> = qubits.iter().enumerate().map(|(k, &q)| (q, k)).collect();
    // Dense symmetric weight matrix over the component.
    let mut w = vec![0.0f64; c * c];
    for ((a, b), theta) in sub.terms() {
        let (ia, ib) = (pos[&a], pos[&b]);
        w[ia * c + ib] += theta;
        w[ib * c + ia] += theta;
    }
    // Gray walk over the 2^c spin configurations, exactly as
    // XxCircuit::amplitude (see its derivation), but storing every
    // phase instead of accumulating one target's sum.
    let size = 1usize << c;
    let mut re = vec![0.0f64; size];
    let mut im = vec![0.0f64; size];
    let mut s = vec![1.0f64; c];
    let mut r: Vec<f64> = (0..c).map(|q| (0..c).map(|b| w[q * c + b]).sum()).collect();
    let mut phi: f64 = 0.25 * r.iter().sum::<f64>();
    let mut y = 0usize;
    re[0] = phi.cos(); // cis(−φ) = (cos φ, −sin φ)
    im[0] = -phi.sin();
    for k in 1..size {
        let q = k.trailing_zeros() as usize;
        phi -= s[q] * r[q];
        let delta = -2.0 * s[q];
        for b in 0..c {
            if b != q {
                r[b] += w[q * c + b] * delta;
            }
        }
        s[q] = -s[q];
        y ^= 1 << q;
        debug_assert_eq!(y, gray(k));
        re[y] = phi.cos();
        im[y] = -phi.sin();
    }
    // One WHT stage per qubit, half the table per stage.
    itqc_obs::event::add_nd("backend.wht.butterflies", (c as u64) << (c - 1));
    walsh_hadamard(&mut re, &mut im);
    let norm = 1.0 / (size * size) as f64; // |2^{−c}·WHT|²
    let probs: Vec<f64> = re.iter().zip(&im).map(|(&a, &b)| (a * a + b * b) * norm).collect();
    ComponentDist::new(qubits, &probs)
}

/// Counts the Joint-vs-Chain sampler dispatch of one sampling call.
/// Counted at *sample* time (not table-build time, which thread-local
/// caches make partition-dependent): the number of sampling calls
/// routed to each engine is logical work, so it belongs to the
/// deterministic snapshot.
fn record_sampler_dispatch(dists: &[ComponentSampler]) {
    if !itqc_obs::enabled() {
        return;
    }
    let joint = dists.iter().filter(|d| matches!(d, ComponentSampler::Joint(_))).count() as u64;
    let chain = dists.len() as u64 - joint;
    if joint > 0 {
        itqc_obs::event::add("backend.sampler.joint_components", joint);
    }
    if chain > 0 {
        itqc_obs::event::add("backend.sampler.chain_components", chain);
    }
}

impl PreparedCircuit for XxPrepared {
    fn n_qubits(&self) -> usize {
        self.xx.n_qubits()
    }

    fn support(&self) -> &[usize] {
        &self.support
    }

    fn probability(&self, target: BitString) -> f64 {
        // Off-support bits must stay |0⟩.
        let mut mask: BitString = 0;
        for &q in &self.support {
            mask |= (1 as BitString) << q;
        }
        if target & !mask != 0 {
            return 0.0;
        }
        // Product of per-component probabilities — each an exact table
        // lookup once sampling materialized the samplers.
        if let Some(dists) = self.dists.get() {
            return dists.iter().map(|d| d.probability_global(target)).product();
        }
        if self.comp_circuits.iter().all(|(_, m)| m.count_ones() as usize <= MAX_COMPONENT) {
            // Small components: one exact 2^c Gray sum each, cheaper
            // than materializing tables for a single target. Each
            // component only sees its own bits of the target; bits of
            // other components would (wrongly) zero its amplitude.
            return self.comp_circuits.iter().map(|(sub, m)| sub.fidelity(target & m)).product();
        }
        // An oversize component makes the Gray sum intractable; the
        // chain sampler's (z_T, k) table answers any target in O(c),
        // so materialize through the thread cache and look up.
        self.distributions().iter().map(|d| d.probability_global(target)).product()
    }

    fn marginal_one(&self, q: usize) -> f64 {
        self.xx.marginal_one(q)
    }

    fn sample(&self, rng: &mut SmallRng, shots: usize) -> Vec<BitString> {
        let dists = self.distributions();
        record_sampler_dispatch(dists);
        sample_strings(dists, rng, shots)
    }

    fn sample_block(&self, rng: &mut SmallRng, shots: usize) -> Vec<BitString> {
        let dists = self.distributions();
        record_sampler_dispatch(dists);
        sample_strings_blocked(dists, rng, shots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use std::f64::consts::FRAC_PI_2;

    fn random_xx(rng: &mut SmallRng, n: usize, gates: usize) -> XxCircuit {
        let mut xx = XxCircuit::new(n);
        for _ in 0..gates {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            xx.add_xx(a, b, rng.gen_range(-3.0..3.0));
        }
        xx
    }

    fn joint(d: &ComponentSampler) -> &ComponentDist {
        match d {
            ComponentSampler::Joint(j) => j,
            ComponentSampler::Chain(_) => panic!("expected a joint table"),
        }
    }

    #[test]
    fn component_distribution_matches_gray_sum_fidelities() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10 {
            let xx = random_xx(&mut rng, 7, 9);
            let prep = XxPrepared::build(xx.clone()).unwrap();
            for _ in 0..12 {
                let target = rng.gen_range(0..(1usize << 7)) as BitString;
                let direct = xx.fidelity(target);
                let via_prep = prep.probability(target);
                assert!((direct - via_prep).abs() < 1e-10, "target {target:07b}");
            }
            // Materialize the tables and re-check through them.
            let _ = prep.distributions();
            for target in [0 as BitString, 0b1010101, 0b0110011] {
                assert!((xx.fidelity(target) - prep.probability(target)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn distribution_normalizes_and_respects_components() {
        // Two disjoint pairs → two 2-qubit components, each P(00)=P(11)=½.
        let mut xx = XxCircuit::new(6);
        xx.add_xx(0, 2, FRAC_PI_2).add_xx(3, 5, FRAC_PI_2);
        let prep = XxPrepared::build(xx).unwrap();
        let dists = prep.distributions();
        assert_eq!(dists.len(), 2);
        assert_eq!(dists[0].qubits(), &[0, 2]);
        assert_eq!(dists[1].qubits(), &[3, 5]);
        for d in dists {
            let d = joint(d);
            assert!((d.probability(0) - 0.5).abs() < 1e-12);
            assert!((d.probability(0b11) - 0.5).abs() < 1e-12);
            assert!(d.probability(0b01) < 1e-12);
        }
        // Sampled strings only ever flip pairs together.
        let mut rng = SmallRng::seed_from_u64(3);
        for s in PreparedCircuit::sample(&prep, &mut rng, 200) {
            let pair1 = (s & 1, (s >> 2) & 1);
            let pair2 = ((s >> 3) & 1, (s >> 5) & 1);
            assert_eq!(pair1.0, pair1.1);
            assert_eq!(pair2.0, pair2.1);
        }
    }

    #[test]
    fn cache_returns_shared_preparations() {
        let backend = XxAnalyticBackend::new();
        let mut xx = XxCircuit::new(4);
        xx.add_xx(0, 1, 0.7).add_xx(2, 3, -0.2);
        let a = backend.prepare_xx(xx.clone()).unwrap();
        let b = backend.prepare_xx(xx).unwrap();
        assert!(Rc::ptr_eq(&a, &b), "identical circuits must share one preparation");
        let (hits, misses) = backend.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn prepared_circuits_are_send_sync_with_size_accounting() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XxPrepared>();
        // Two disjoint pairs → components of 2 qubits each; table bytes
        // dominated by two 2^2 CDFs plus the 2-term gate list.
        let mut xx = XxCircuit::new(6);
        xx.add_xx(0, 2, 0.3).add_xx(3, 5, 0.4);
        let prep = XxPrepared::prepare(xx).unwrap();
        assert_eq!(prep.component_sizes(), vec![2, 2]);
        assert_eq!(prep.table_bytes(), 2 * 4 * 8 + 2 * 3 * 8);
    }

    #[test]
    fn component_cache_amortises_shared_components_across_circuits() {
        // Two circuits share the (0,1) component with identical angle
        // bits but differ on their second component — the shared table
        // must build once, and cached tables must be byte-identical to
        // fresh builds.
        let mut a = XxCircuit::new(6);
        a.add_xx(0, 1, 0.7).add_xx(2, 3, 0.4);
        let mut b = XxCircuit::new(6);
        b.add_xx(0, 1, 0.7).add_xx(2, 3, 0.9); // perturbed second component
        let prep_a = XxPrepared::build(a).unwrap();
        let prep_b = XxPrepared::build(b).unwrap();
        let mut cache = ComponentDistCache::default();
        let dists_a = prep_a.materialize_with(&mut cache).to_vec();
        let dists_b = prep_b.materialize_with(&mut cache).to_vec();
        let counters = cache.counters();
        assert_eq!(
            (counters.hits, counters.misses),
            (1, 3),
            "the shared (0,1) component must hit on the second circuit"
        );
        assert_eq!(cache.len(), 3);
        assert!(!cache.is_empty());
        // The cache-served distribution equals a fresh build bit-for-bit.
        let mut fresh = XxCircuit::new(6);
        fresh.add_xx(0, 1, 0.7).add_xx(2, 3, 0.4);
        let prep_fresh = XxPrepared::build(fresh).unwrap();
        let mut empty = ComponentDistCache::default();
        let dists_fresh = prep_fresh.materialize_with(&mut empty);
        for (cached, built) in [(&dists_b[0], &dists_fresh[0]), (&dists_a[1], &dists_fresh[1])] {
            let (cached, built) = (joint(cached), joint(built));
            assert_eq!(cached.qubits(), built.qubits());
            for local in 0..(1usize << cached.qubits().len()) {
                assert_eq!(
                    cached.probability(local).to_bits(),
                    built.probability(local).to_bits(),
                    "cached table must be byte-identical to a fresh build"
                );
            }
        }
    }

    #[test]
    fn batch_prepare_materializes_through_the_thread_cache() {
        let backend = XxAnalyticBackend::new();
        let before = component_cache_stats();
        let mut c1 = Circuit::new(4);
        c1.xx(0, 1, 0.3).xx(2, 3, 0.8);
        let mut c2 = Circuit::new(4);
        c2.xx(0, 1, 0.3).xx(2, 3, 0.81);
        let preps = SimBackend::prepare_batch(&backend, &[c1, c2]);
        assert_eq!(preps.len(), 2);
        let after = component_cache_stats();
        // Four components total, one shared: ≥1 hit, exactly 3 misses.
        assert_eq!(after.misses - before.misses, 3);
        assert!(after.hits - before.hits >= 1);
        // Batched preparations sample like unbatched ones.
        let a = preps[0].as_ref().unwrap();
        let mut r1 = SmallRng::seed_from_u64(5);
        let mut r2 = SmallRng::seed_from_u64(5);
        assert_eq!(a.sample_block(&mut r1, 64), a.sample(&mut r2, 64));
    }

    #[test]
    fn oversized_component_without_structure_is_rejected_typed() {
        // A star has no complete-graph bulk: every present edge deviates
        // from the modal (absent-pair) angle, so all qubits are special
        // and the chain sampler must refuse — with a typed error at
        // prepare time, not a 2^22 table attempt downstream.
        let mut xx = XxCircuit::new(MAX_COMPONENT + 2);
        for q in 1..MAX_COMPONENT + 2 {
            xx.add_xx(0, q, 0.1); // a star: one (MAX_COMPONENT+2)-qubit component
        }
        match XxPrepared::build(xx) {
            Err(BackendError::ChainUnsupported { support, special, limit }) => {
                assert_eq!(support, MAX_COMPONENT + 2);
                assert_eq!(special, MAX_COMPONENT + 2);
                assert_eq!(limit, CHAIN_MAX_SPECIAL);
            }
            other => panic!("expected ChainUnsupported, got {other:?}"),
        }
    }

    #[test]
    fn oversized_complete_component_now_prepares_and_samples() {
        // The old hard cap: a 24-qubit complete class was
        // SupportTooLarge. The chain path accepts it (t = 0) and
        // samples full strings; its marginals must track closed form.
        let mut xx = XxCircuit::new(24);
        for a in 0..24usize {
            for b in (a + 1)..24 {
                xx.add_xx(a, b, 2.0 * FRAC_PI_2 * 0.96);
            }
        }
        let prep = XxPrepared::build(xx).unwrap();
        let dists = prep.distributions();
        assert_eq!(dists.len(), 1);
        assert!(matches!(dists[0], ComponentSampler::Chain(_)));
        let p_one = prep.marginal_one(0);
        let mut rng = SmallRng::seed_from_u64(17);
        let shots = 4000usize;
        let strings = PreparedCircuit::sample(&prep, &mut rng, shots);
        let sampled = strings.iter().filter(|&&s| s & 1 == 1).count() as f64 / shots as f64;
        let sigma = (p_one * (1.0 - p_one) / shots as f64).sqrt().max(1e-4);
        assert!((sampled - p_one).abs() < 5.0 * sigma, "sampled {sampled} vs closed-form {p_one}");
    }

    #[test]
    fn thirty_two_qubit_class_component_prepares_fast() {
        // The Fig. 8 workload: a 16-qubit complete class on 32 qubits.
        let mut xx = XxCircuit::new(32);
        let class: Vec<usize> = (0..32).filter(|q| q % 2 == 0).collect();
        for (i, &a) in class.iter().enumerate() {
            for &b in &class[i + 1..] {
                xx.add_xx(a, b, 2.0 * FRAC_PI_2 * 0.97);
            }
        }
        let prep = XxPrepared::build(xx).unwrap();
        let dists = prep.distributions();
        assert_eq!(dists.len(), 1);
        assert_eq!(dists[0].qubits().len(), 16);
        let mut rng = SmallRng::seed_from_u64(9);
        let strings = PreparedCircuit::sample(&prep, &mut rng, 50);
        assert_eq!(strings.len(), 50);
        // Odd (untouched) qubits always read 0.
        for s in strings {
            assert_eq!(s & 0xAAAA_AAAA, 0);
        }
    }
}
