//! The dense reference backend.
//!
//! Wraps the general state-vector simulator behind [`SimBackend`].
//! Before simulating, the circuit is *compressed onto its support*: the
//! state vector covers only the qubits some gate touches, so a sparse
//! circuit on a large register costs `2^support`, not `2^N` — a
//! 32-qubit register whose test circuit touches 16 qubits stays within
//! reach, and the dense-vs-analytic cross-check can run at any size the
//! support allows. Memory remains exponential in the support; the
//! analytic backend is the scalable path for commuting-XX circuits.

use crate::dist::{connected_components, sample_strings, sample_strings_blocked, ComponentDist};
use crate::{BackendError, PreparedCircuit, SimBackend};
use itqc_circuit::{Circuit, Op};
use itqc_sim::statevector::MAX_QUBITS;
use itqc_sim::BitString;
use rand::rngs::SmallRng;
use std::collections::BTreeMap;
use std::rc::Rc;

/// The dense state-vector backend (stateless; preparations are not
/// cached — the backend exists as the exact reference and the fallback
/// for non-commuting circuits, not as a hot path).
#[derive(Clone, Copy, Debug, Default)]
pub struct DenseBackend;

impl DenseBackend {
    /// A dense backend.
    pub fn new() -> Self {
        DenseBackend
    }
}

impl SimBackend for DenseBackend {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn prepare(&self, circuit: &Circuit) -> Result<Rc<dyn PreparedCircuit>, BackendError> {
        Ok(Rc::new(DensePrepared::build(circuit)?))
    }
}

/// A dense preparation: the support-compressed output distribution plus
/// its component factorization for canonical sampling.
#[derive(Clone, Debug)]
pub struct DensePrepared {
    n_qubits: usize,
    /// Touched qubits, ascending; local bit `k` ↔ `support[k]`.
    support: Vec<usize>,
    /// `2^support.len()` outcome probabilities in support-local indexing.
    probs: Vec<f64>,
    components: Vec<ComponentDist>,
}

impl DensePrepared {
    fn build(circuit: &Circuit) -> Result<Self, BackendError> {
        let n_qubits = circuit.n_qubits();
        let mut support: Vec<usize> =
            circuit.ops().iter().flat_map(|op| op.qubits().iter().copied()).collect();
        support.sort_unstable();
        support.dedup();
        let m = support.len();
        if m > MAX_QUBITS {
            return Err(BackendError::SupportTooLarge { support: m, limit: MAX_QUBITS });
        }
        if m == 0 {
            return Ok(DensePrepared {
                n_qubits,
                support,
                probs: vec![1.0],
                components: Vec::new(),
            });
        }
        // Remap onto the support and run the full simulator.
        let local: BTreeMap<usize, usize> =
            support.iter().enumerate().map(|(k, &q)| (q, k)).collect();
        let mut compressed = Circuit::new(m);
        let mut edges = Vec::new();
        for op in circuit.ops() {
            let q = op.qubits();
            match q.len() {
                1 => {
                    compressed.push(Op::one(op.gate, local[&q[0]]));
                }
                _ => {
                    compressed.push(Op::two(op.gate, local[&q[0]], local[&q[1]]));
                    edges.push((local[&q[0]], local[&q[1]]));
                }
            }
        }
        let probs = itqc_sim::run(&compressed).probabilities();
        // Factorize over interaction-graph components by marginalizing
        // the dense distribution onto each component's qubits.
        let components = connected_components(m, &edges)
            .into_iter()
            .map(|members| {
                let mut comp_probs = vec![0.0f64; 1usize << members.len()];
                for (state, &p) in probs.iter().enumerate() {
                    let mut idx = 0usize;
                    for (k, &member) in members.iter().enumerate() {
                        if (state >> member) & 1 == 1 {
                            idx |= 1 << k;
                        }
                    }
                    comp_probs[idx] += p;
                }
                let qubits = members.into_iter().map(|k| support[k]).collect();
                ComponentDist::new(qubits, &comp_probs)
            })
            .collect();
        Ok(DensePrepared { n_qubits, support, probs, components })
    }

    /// Maps a full-register basis string onto the support-local index,
    /// or `None` if an off-support bit is set (probability 0).
    fn local_index(&self, target: BitString) -> Option<usize> {
        let mut idx = 0usize;
        let mut seen: BitString = 0;
        for (k, &q) in self.support.iter().enumerate() {
            if (target >> q) & 1 == 1 {
                idx |= 1 << k;
            }
            seen |= (1 as BitString) << q;
        }
        if target & !seen != 0 {
            None
        } else {
            Some(idx)
        }
    }
}

impl PreparedCircuit for DensePrepared {
    fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn support(&self) -> &[usize] {
        &self.support
    }

    fn probability(&self, target: BitString) -> f64 {
        match self.local_index(target) {
            Some(idx) => self.probs[idx],
            None => 0.0,
        }
    }

    fn marginal_one(&self, q: usize) -> f64 {
        let Ok(k) = self.support.binary_search(&q) else {
            return 0.0; // untouched qubits stay |0⟩
        };
        self.probs
            .iter()
            .enumerate()
            .filter(|&(state, _)| (state >> k) & 1 == 1)
            .map(|(_, &p)| p)
            .sum()
    }

    fn sample(&self, rng: &mut SmallRng, shots: usize) -> Vec<BitString> {
        sample_strings(&self.components, rng, shots)
    }

    fn sample_block(&self, rng: &mut SmallRng, shots: usize) -> Vec<BitString> {
        sample_strings_blocked(&self.components, rng, shots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn support_compression_reaches_beyond_dense_register_wall() {
        // One MS pair on a 40-qubit register: support 2, trivially dense.
        let mut c = Circuit::new(40);
        c.xx(3, 37, FRAC_PI_2);
        let prep = DensePrepared::build(&c).unwrap();
        assert_eq!(prep.support(), &[3, 37]);
        assert!((prep.probability(0) - 0.5).abs() < 1e-12);
        assert!((prep.probability((1 << 3) | (1 << 37)) - 0.5).abs() < 1e-12);
        assert_eq!(prep.probability(1 << 5), 0.0);
        assert!((prep.marginal_one(3) - 0.5).abs() < 1e-12);
        assert_eq!(prep.marginal_one(5), 0.0);
    }

    #[test]
    fn general_gates_are_accepted() {
        // Non-XX circuits run on the dense path (H + CNOT Bell pair).
        let mut c = Circuit::new(6);
        c.h(1).cnot(1, 4);
        let prep = DensePrepared::build(&c).unwrap();
        assert!((prep.probability(0) - 0.5).abs() < 1e-12);
        assert!((prep.probability((1 << 1) | (1 << 4)) - 0.5).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(2);
        for s in prep.sample(&mut rng, 100) {
            // Bell pair: bits 1 and 4 always agree, others stay 0.
            assert_eq!((s >> 1) & 1, (s >> 4) & 1);
            assert_eq!(s & !((1 << 1) | (1 << 4)), 0);
        }
    }

    #[test]
    fn empty_circuit_is_deterministic_zero() {
        let c = Circuit::new(5);
        let prep = DensePrepared::build(&c).unwrap();
        assert_eq!(prep.probability(0), 1.0);
        assert_eq!(prep.probability(1), 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(prep.sample(&mut rng, 10).iter().all(|&s| s == 0));
    }

    #[test]
    fn component_marginalization_matches_full_distribution() {
        let mut rng = SmallRng::seed_from_u64(77);
        let n = 6;
        let mut c = Circuit::new(n);
        for _ in 0..7 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            c.xx(a, b, rng.gen_range(-2.0..2.0));
        }
        let prep = DensePrepared::build(&c).unwrap();
        // Product of component probabilities equals the joint for any
        // target (components are unentangled).
        for target in 0..(1 << n) as BitString {
            let joint = prep.probability(target);
            let product: f64 =
                prep.components.iter().map(|d| d.probability(d.local_state(target))).product();
            let off_support = prep.local_index(target).is_none();
            if !off_support {
                assert!((joint - product).abs() < 1e-10, "target {target:06b}");
            }
        }
    }
}
