//! Support-factorized output distributions and the canonical string
//! sampler shared by every backend.
//!
//! For any circuit started in `|0…0⟩`, qubits in different connected
//! components of the qubit-interaction graph are never entangled, so the
//! output distribution factorizes over components. A backend therefore
//! only needs one [`ComponentDist`] per component — `2^c` probabilities
//! for a `c`-qubit component instead of `2^N` for the register — and
//! sampling a full output string is one inverse-CDF draw per component.
//!
//! The sampling scheme is *canonical*: components are visited in
//! ascending order of their smallest qubit and each consumes exactly one
//! uniform draw per shot, with component-local states enumerated with
//! bit `k` standing for the `k`-th (ascending) qubit of the component.
//! Two backends that produce the same component probabilities therefore
//! produce bit-for-bit identical shot strings from a shared RNG stream —
//! the property the dense-vs-analytic equivalence suite pins. (The two
//! engines compute those probabilities by different routes, agreeing to
//! ~1e-15 rather than to the last ulp, so a uniform draw landing inside
//! that sliver of a CDF boundary could in principle split the backends;
//! at the equivalence suite's fixed seeds this is deterministic-safe,
//! and for the CI fig8 stdout diff the per-run odds are ~1e-8.)

use itqc_sim::BitString;
use rand::rngs::SmallRng;
use rand::Rng;

/// A per-component string sampler the canonical samplers can drive: the
/// joint-table [`ComponentDist`] below [`crate::MAX_COMPONENT`], the
/// conditional-marginal chain sampler above it. The contract that keeps
/// every implementation bit-compatible with the canonical scheme: one
/// pre-scaled uniform `x ∈ [0, mass)` resolves one whole component
/// outcome, and `place` must replicate the joint sampler's tie semantics
/// (`cdf.partition_point(|&c| c <= x)` — boundaries themselves round
/// *up* to the next state).
pub trait SampleComponent {
    /// The component's qubits, ascending.
    fn qubits(&self) -> &[usize];

    /// Total probability mass (~1 up to rounding noise); uniforms are
    /// scaled by this before [`place`](SampleComponent::place) so ±1e-15
    /// normalization noise cannot push the top of the CDF below a drawn
    /// `u ≈ 1`.
    fn mass(&self) -> f64;

    /// Resolves a pre-scaled uniform into one component outcome and ORs
    /// its bits into `string`.
    fn place(&self, x: f64, string: &mut BitString);
}

/// The outcome distribution of one connected component of a circuit's
/// qubit-interaction graph, stored as a cumulative sum for sampling.
#[derive(Clone, Debug)]
pub struct ComponentDist {
    /// The component's qubits, ascending; local bit `k` of a state index
    /// is the measured bit of `qubits[k]`.
    qubits: Vec<usize>,
    /// Cumulative probabilities over the `2^qubits.len()` local states.
    cdf: Vec<f64>,
}

impl ComponentDist {
    /// Builds the distribution from per-local-state probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != 2^qubits.len()`, the qubit list is not
    /// strictly ascending, or the probabilities do not sum to ~1.
    pub fn new(qubits: Vec<usize>, probs: &[f64]) -> Self {
        assert_eq!(probs.len(), 1usize << qubits.len(), "distribution size mismatch");
        assert!(qubits.windows(2).all(|w| w[0] < w[1]), "qubits must be strictly ascending");
        let mut cdf = Vec::with_capacity(probs.len());
        let mut acc = 0.0f64;
        for &p in probs {
            acc += p.max(0.0); // clamp −1e-17-grade rounding noise
            cdf.push(acc);
        }
        let total = *cdf.last().expect("non-empty distribution");
        assert!((total - 1.0).abs() < 1e-6, "probabilities sum to {total}, not 1");
        ComponentDist { qubits, cdf }
    }

    /// The component's qubits (ascending).
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// The probability of the component-local state `local`.
    pub fn probability(&self, local: usize) -> f64 {
        let prev = if local == 0 { 0.0 } else { self.cdf[local - 1] };
        self.cdf[local] - prev
    }

    /// Extracts this component's local state index from a full-register
    /// basis string.
    pub fn local_state(&self, global: BitString) -> usize {
        let mut local = 0usize;
        for (k, &q) in self.qubits.iter().enumerate() {
            if (global >> q) & 1 == 1 {
                local |= 1 << k;
            }
        }
        local
    }

    /// Draws one component outcome and ORs its bits into `string`,
    /// consuming exactly one uniform variate.
    pub fn sample_into(&self, rng: &mut SmallRng, string: &mut BitString) {
        let x = rng.gen::<f64>() * self.mass();
        self.place(x, string);
    }
}

impl SampleComponent for ComponentDist {
    fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    fn mass(&self) -> f64 {
        *self.cdf.last().expect("non-empty distribution")
    }

    fn place(&self, x: f64, string: &mut BitString) {
        let idx = self.cdf.partition_point(|&c| c <= x).min(self.cdf.len() - 1);
        for (k, &q) in self.qubits.iter().enumerate() {
            if (idx >> k) & 1 == 1 {
                *string |= (1 as BitString) << q;
            }
        }
    }
}

/// Records the deterministic sampling events of one sampler call.
/// Shots drawn and components touched are *logical work* — the same at
/// any thread count — so they belong to the deterministic snapshot; the
/// per-component draw histogram drives the observed per-phase cost
/// report. One call per public sampler entry point (the blocked
/// delegator does not double-count).
fn record_sample_events<S: SampleComponent>(dists: &[S], shots: usize) {
    if !itqc_obs::enabled() {
        return;
    }
    use itqc_obs::event;
    event::add("backend.sample.calls", 1);
    event::add("backend.sample.components", dists.len() as u64);
    event::add("backend.shots.drawn", shots as u64);
    if shots > 0 {
        for d in dists {
            event::observe(
                "backend.sample.component_qubits_draws",
                d.qubits().len() as u64,
                shots as u64,
            );
        }
    }
}

/// Samples `shots` full-register output strings from the canonical
/// component-ordered scheme. `dists` must be sorted ascending by first
/// qubit (prepare methods guarantee this); untouched qubits read 0.
pub fn sample_strings<S: SampleComponent>(
    dists: &[S],
    rng: &mut SmallRng,
    shots: usize,
) -> Vec<BitString> {
    record_sample_events(dists, shots);
    let mut out = Vec::with_capacity(shots);
    for _ in 0..shots {
        let mut s: BitString = 0;
        for d in dists {
            let x = rng.gen::<f64>() * d.mass();
            d.place(x, &mut s);
        }
        out.push(s);
    }
    out
}

/// Shots per block of the blocked sampler: large enough that a column
/// pass streams a component's whole CDF through cache once per ~4k
/// draws, small enough that the uniform buffer stays a few hundred KiB.
pub const SAMPLE_BLOCK_SHOTS: usize = 4096;

/// Blocked variant of [`sample_strings`]: draws whole shot blocks,
/// resolving each component's draws in one column pass over its flat
/// cumulative table instead of interleaving binary searches across
/// components shot by shot.
///
/// Bit-identical to [`sample_strings`] from the same RNG state: the
/// uniforms are drawn in exactly the canonical shot-major order (shot 0
/// component 0, shot 0 component 1, …) into a buffer, and each draw is
/// scaled and resolved against the same CDF entries — only the *memory
/// access order* of the resolution changes. The equivalence suite pins
/// this, including across block boundaries.
pub fn sample_strings_blocked<S: SampleComponent>(
    dists: &[S],
    rng: &mut SmallRng,
    shots: usize,
) -> Vec<BitString> {
    sample_strings_blocked_with(dists, rng, shots, SAMPLE_BLOCK_SHOTS)
}

/// [`sample_strings_blocked`] with an explicit block size (exposed so
/// the equivalence suite can pin block-boundary invariance; `block = 1`
/// degenerates to the per-shot path's access pattern).
pub fn sample_strings_blocked_with<S: SampleComponent>(
    dists: &[S],
    rng: &mut SmallRng,
    shots: usize,
    block: usize,
) -> Vec<BitString> {
    assert!(block >= 1, "block size must be positive");
    record_sample_events(dists, shots);
    let ncomp = dists.len();
    let mut out = vec![0 as BitString; shots];
    if ncomp == 0 {
        return out;
    }
    let mut uniforms = Vec::with_capacity(block.min(shots) * ncomp);
    let mut start = 0usize;
    while start < shots {
        let chunk = (shots - start).min(block);
        // Consume the RNG stream in the canonical shot-major order so
        // the stream position after any prefix matches the per-shot
        // sampler exactly.
        uniforms.clear();
        for _ in 0..chunk {
            for d in dists {
                uniforms.push(rng.gen::<f64>() * d.mass());
            }
        }
        // Resolve component by component: each pass walks one flat CDF
        // (or one chain descent structure) for the whole block.
        for (ci, d) in dists.iter().enumerate() {
            for s in 0..chunk {
                let x = uniforms[s * ncomp + ci];
                d.place(x, &mut out[start + s]);
            }
        }
        start += chunk;
    }
    out
}

/// In-place Walsh–Hadamard transform of interleaved (re, im) pairs —
/// the `2^m`-point character sum `Σ_y (−1)^{y·z} v[y]` for all `z` at
/// once in `O(m·2^m)`.
pub fn walsh_hadamard(re: &mut [f64], im: &mut [f64]) {
    debug_assert_eq!(re.len(), im.len());
    debug_assert!(re.len().is_power_of_two());
    let n = re.len();
    let mut len = 1;
    while len < n {
        let stride = len << 1;
        let mut base = 0;
        while base < n {
            for i in base..base + len {
                let (ar, ai) = (re[i], im[i]);
                let (br, bi) = (re[i + len], im[i + len]);
                re[i] = ar + br;
                im[i] = ai + bi;
                re[i + len] = ar - br;
                im[i + len] = ai - bi;
            }
            base += stride;
        }
        len = stride;
    }
}

/// Partitions `0..n_local` into connected components under the given
/// edge list (pairs of local indices), returning each component's
/// members ascending, components ordered by smallest member. Isolated
/// vertices form singleton components.
pub fn connected_components(n_local: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..n_local).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(a, b) in edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for v in 0..n_local {
        let r = find(&mut parent, v);
        groups.entry(r).or_default().push(v);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn walsh_hadamard_matches_direct_sum() {
        // 8-point WHT of a ramp against the O(4^m) definition.
        let m = 3usize;
        let n = 1usize << m;
        let mut re: Vec<f64> = (0..n).map(|y| y as f64).collect();
        let mut im: Vec<f64> = (0..n).map(|y| -(y as f64) * 0.5).collect();
        let (r0, i0) = (re.clone(), im.clone());
        walsh_hadamard(&mut re, &mut im);
        for z in 0..n {
            let (mut sr, mut si) = (0.0, 0.0);
            for y in 0..n {
                let sign = if (y & z).count_ones() % 2 == 1 { -1.0 } else { 1.0 };
                sr += sign * r0[y];
                si += sign * i0[y];
            }
            assert!((re[z] - sr).abs() < 1e-12 && (im[z] - si).abs() < 1e-12, "z={z}");
        }
    }

    #[test]
    fn components_split_and_order() {
        let comps = connected_components(6, &[(0, 2), (2, 4), (1, 5)]);
        assert_eq!(comps, vec![vec![0, 2, 4], vec![1, 5], vec![3]]);
        assert!(connected_components(0, &[]).is_empty());
    }

    #[test]
    fn component_dist_sampling_tracks_probabilities() {
        // Qubits {1,3}: P(00)=0.5, P(01)=0.25, P(10)=0.125, P(11)=0.125.
        let d = ComponentDist::new(vec![1, 3], &[0.5, 0.25, 0.125, 0.125]);
        assert!((d.probability(1) - 0.25).abs() < 1e-15);
        assert_eq!(d.local_state(0b1010), 0b11);
        let mut rng = SmallRng::seed_from_u64(5);
        let strings = sample_strings(std::slice::from_ref(&d), &mut rng, 4000);
        let ones = strings.iter().filter(|&&s| s == 0b10).count() as f64 / 4000.0;
        assert!((ones - 0.25).abs() < 0.03, "P(local 01) sampled {ones}");
        // Bits outside the component never light up.
        assert!(strings.iter().all(|&s| s & !0b1010 == 0));
    }

    #[test]
    fn blocked_sampler_is_bit_identical_at_every_block_size() {
        // Three components of mixed sizes; shot counts straddling the
        // block boundary on both sides.
        let dists = vec![
            ComponentDist::new(vec![0, 2], &[0.5, 0.25, 0.125, 0.125]),
            ComponentDist::new(vec![3], &[0.75, 0.25]),
            ComponentDist::new(vec![4, 5, 6], &[0.3, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1]),
        ];
        for shots in [0usize, 1, 7, SAMPLE_BLOCK_SHOTS - 1, SAMPLE_BLOCK_SHOTS + 3] {
            let mut r_ref = SmallRng::seed_from_u64(42);
            let reference = sample_strings(&dists, &mut r_ref, shots);
            for block in [1usize, 2, 5, SAMPLE_BLOCK_SHOTS] {
                let mut r = SmallRng::seed_from_u64(42);
                let blocked = sample_strings_blocked_with(&dists, &mut r, shots, block);
                assert_eq!(blocked, reference, "shots={shots} block={block}");
                // The RNG stream position must also agree, so callers
                // drawing more from the same stream stay deterministic.
                assert_eq!(
                    rand::Rng::gen::<u64>(&mut r),
                    rand::Rng::gen::<u64>(&mut r_ref.clone()),
                    "RNG stream diverged at shots={shots} block={block}"
                );
            }
        }
    }
}
