//! Memoization of prepared circuits.
//!
//! The protocols re-run identical test circuits many times within one
//! diagnosis — threshold re-tunes replay a rung's class battery, the
//! contrast sweep scores the same healthy-class circuits the shot
//! executor then samples — and the expensive part of the analytic
//! backend (the `2^c` component distributions) depends only on the
//! accumulated noisy coupling angles. The cache key is therefore the
//! exact `(register size, couplings, angle bits)` of the accumulated
//! circuit: two circuits share a preparation iff they are the same
//! commuting-XX unitary *including* the trial's noise profile, so a
//! cache hit can never alias two different machines.

use crate::analytic::XxPrepared;
use itqc_sim::XxCircuit;
use std::collections::HashMap;
use std::rc::Rc;

/// Number of prepared circuits held before the cache is flushed. A
/// diagnosis run touches well under a hundred distinct circuits; the
/// bound only guards pathological callers (a 16-qubit component's CDF
/// is ~½ MiB, so 256 entries cap the cache at ~128 MiB worst-case).
pub const CACHE_CAPACITY: usize = 256;

/// Exact cache key of an accumulated commuting-XX circuit.
pub fn xx_key(xx: &XxCircuit) -> Vec<u64> {
    let mut key = Vec::with_capacity(1 + 3 * xx.terms().count());
    key.push(xx.n_qubits() as u64);
    for ((a, b), theta) in xx.terms() {
        key.push(a as u64);
        key.push(b as u64);
        key.push(theta.to_bits());
    }
    key
}

/// A bounded map from [`xx_key`] to shared preparations, with hit/miss
/// counters for observability.
#[derive(Debug, Default)]
pub struct PrepCache {
    map: HashMap<Vec<u64>, Rc<XxPrepared>>,
    hits: u64,
    misses: u64,
}

impl PrepCache {
    /// Looks up a preparation, counting the outcome.
    pub fn get(&mut self, key: &[u64]) -> Option<Rc<XxPrepared>> {
        match self.map.get(key) {
            Some(hit) => {
                self.hits += 1;
                Some(Rc::clone(hit))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a preparation, flushing the whole cache first when full
    /// (epoch eviction: simpler than LRU and the working set of one
    /// diagnosis fits comfortably under the capacity).
    pub fn insert(&mut self, key: Vec<u64>, prepared: Rc<XxPrepared>) {
        if self.map.len() >= CACHE_CAPACITY {
            self.map.clear();
        }
        self.map.insert(key, prepared);
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached preparations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_separates_noise_profiles() {
        let mut a = XxCircuit::new(4);
        a.add_xx(0, 1, 0.5);
        let mut b = XxCircuit::new(4);
        b.add_xx(0, 1, 0.5 + 1e-15);
        assert_ne!(xx_key(&a), xx_key(&b), "angle bits must separate noise profiles");
        let mut c = XxCircuit::new(5);
        c.add_xx(0, 1, 0.5);
        assert_ne!(xx_key(&a), xx_key(&c), "register size is part of the key");
    }

    #[test]
    fn capacity_flush_keeps_map_bounded() {
        let mut cache = PrepCache::default();
        for i in 0..(CACHE_CAPACITY + 10) {
            let mut xx = XxCircuit::new(4);
            xx.add_xx(0, 1, i as f64 * 1e-3);
            let prep = Rc::new(XxPrepared::build(xx).unwrap());
            cache.insert(xx_key(prep.xx()), prep);
            assert!(cache.len() <= CACHE_CAPACITY);
        }
        assert!(!cache.is_empty());
    }
}
