//! Memoization of prepared circuits.
//!
//! The protocols re-run identical test circuits many times within one
//! diagnosis — threshold re-tunes replay a rung's class battery, the
//! contrast sweep scores the same healthy-class circuits the shot
//! executor then samples — and the expensive part of the analytic
//! backend (the `2^c` component distributions) depends only on the
//! accumulated noisy coupling angles. The cache key is therefore the
//! exact `(register size, couplings, angle bits)` of the accumulated
//! circuit: two circuits share a preparation iff they are the same
//! commuting-XX unitary *including* the trial's noise profile, so a
//! cache hit can never alias two different machines.

use crate::analytic::XxPrepared;
use itqc_sim::XxCircuit;
use std::collections::HashMap;
use std::ops::{Add, AddAssign};
use std::rc::Rc;

/// Number of prepared circuits held before the cache is flushed. A
/// diagnosis run touches well under a hundred distinct circuits; the
/// bound only guards pathological callers (a 16-qubit component's CDF
/// is ~½ MiB, so 256 entries cap the cache at ~128 MiB worst-case).
pub const CACHE_CAPACITY: usize = 256;

/// The bit pattern a coupling angle keys under: `-0.0` canonicalises to
/// `+0.0` (they are the same rotation, but their IEEE-754 bit patterns
/// differ — keying raw bits made e.g. a `-θ·(1-u)` gate cancelled to
/// negative zero miss the cache entry its positive-zero twin built).
/// Every other angle, including the 1-ulp noise perturbations the cache
/// must keep apart, keys on its exact bits.
pub fn angle_key_bits(theta: f64) -> u64 {
    if theta == 0.0 {
        0.0f64.to_bits()
    } else {
        theta.to_bits()
    }
}

/// Exact cache key of an accumulated commuting-XX circuit.
pub fn xx_key(xx: &XxCircuit) -> Vec<u64> {
    let mut key = Vec::with_capacity(1 + 3 * xx.terms().count());
    key.push(xx.n_qubits() as u64);
    for ((a, b), theta) in xx.terms() {
        key.push(a as u64);
        key.push(b as u64);
        key.push(angle_key_bits(theta));
    }
    key
}

/// Hit/miss/eviction totals of a prepared-circuit cache — the common
/// observability currency of every cache layer in the workspace (this
/// per-backend cache, and the fleet's shared cross-trap cache which
/// layers over it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a preparation.
    pub misses: u64,
    /// Entries dropped to enforce a capacity or size budget.
    pub evictions: u64,
}

impl CacheCounters {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

impl Add for CacheCounters {
    type Output = CacheCounters;

    fn add(self, rhs: CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
        }
    }
}

impl AddAssign for CacheCounters {
    fn add_assign(&mut self, rhs: CacheCounters) {
        *self = *self + rhs;
    }
}

/// A bounded map from [`xx_key`] to shared preparations, with hit/miss
/// counters for observability.
#[derive(Debug, Default)]
pub struct PrepCache {
    map: HashMap<Vec<u64>, Rc<XxPrepared>>,
    counters: CacheCounters,
}

impl PrepCache {
    /// Looks up a preparation, counting the outcome.
    pub fn get(&mut self, key: &[u64]) -> Option<Rc<XxPrepared>> {
        match self.map.get(key) {
            Some(hit) => {
                self.counters.hits += 1;
                // Per-backend caches live on one thread each, so the
                // hit/miss split varies with the sharding — nd class.
                itqc_obs::event::add_nd("backend.prep_cache.hits", 1);
                Some(Rc::clone(hit))
            }
            None => {
                self.counters.misses += 1;
                itqc_obs::event::add_nd("backend.prep_cache.misses", 1);
                None
            }
        }
    }

    /// Stores a preparation, flushing the whole cache first when full
    /// (epoch eviction: simpler than LRU and the working set of one
    /// diagnosis fits comfortably under the capacity; the fleet's shared
    /// cross-trap layer does true LRU with a byte budget instead).
    pub fn insert(&mut self, key: Vec<u64>, prepared: Rc<XxPrepared>) {
        if self.map.len() >= CACHE_CAPACITY {
            self.counters.evictions += self.map.len() as u64;
            itqc_obs::event::add_nd("backend.prep_cache.evictions", self.map.len() as u64);
            self.map.clear();
        }
        self.map.insert(key, prepared);
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.counters.hits, self.counters.misses)
    }

    /// Full hit/miss/eviction counters since construction.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Number of cached preparations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_separates_noise_profiles() {
        let mut a = XxCircuit::new(4);
        a.add_xx(0, 1, 0.5);
        let mut b = XxCircuit::new(4);
        b.add_xx(0, 1, 0.5 + 1e-15);
        assert_ne!(xx_key(&a), xx_key(&b), "angle bits must separate noise profiles");
        let mut c = XxCircuit::new(5);
        c.add_xx(0, 1, 0.5);
        assert_ne!(xx_key(&a), xx_key(&c), "register size is part of the key");
    }

    #[test]
    fn negative_zero_angles_share_a_key() {
        // A noisy compilation scales angles by `(1 - u)`: a negative
        // base angle at u = 1 lands on IEEE -0.0, whose raw bits differ
        // from +0.0 even though the rotation is the same.
        let minus_zero = -0.5f64 * (1.0 - 1.0);
        assert_ne!(minus_zero.to_bits(), 0.0f64.to_bits(), "distinct raw bits (the bug)");
        let mut neg = XxCircuit::new(4);
        neg.add_xx(0, 1, minus_zero);
        let mut pos = XxCircuit::new(4);
        pos.add_xx(0, 1, 0.0);
        assert_eq!(xx_key(&neg), xx_key(&pos), "-0.0 and 0.0 are the same rotation");
        // The canonicalisation must not merge genuinely distinct angles,
        // however small.
        assert_eq!(angle_key_bits(1e-300), 1e-300f64.to_bits());
        assert_eq!(angle_key_bits(-1e-300), (-1e-300f64).to_bits());
    }

    #[test]
    fn capacity_flush_keeps_map_bounded() {
        let mut cache = PrepCache::default();
        for i in 0..(CACHE_CAPACITY + 10) {
            let mut xx = XxCircuit::new(4);
            xx.add_xx(0, 1, i as f64 * 1e-3);
            let prep = Rc::new(XxPrepared::build(xx).unwrap());
            cache.insert(xx_key(prep.xx()), prep);
            assert!(cache.len() <= CACHE_CAPACITY);
        }
        assert!(!cache.is_empty());
        // The flush was recorded as CACHE_CAPACITY evictions.
        assert_eq!(cache.counters().evictions, CACHE_CAPACITY as u64);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let a = CacheCounters { hits: 3, misses: 1, evictions: 0 };
        let b = CacheCounters { hits: 1, misses: 1, evictions: 2 };
        let sum = a + b;
        assert_eq!(sum, CacheCounters { hits: 4, misses: 2, evictions: 2 });
        assert!((sum.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(sum.lookups(), 6);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }
}
