//! Residual coupling to the motional bus.
//!
//! An imperfect MS pulse leaves a little spin–motion entanglement behind
//! (nonzero `α_p` in the paper's Eq. 1). At the circuit level the paper
//! models this as extra odd-parity population: its simulator includes
//! "residual coupling to the motional modes that generates 1% odd
//! population" (§VI). We realise it as small random single-qubit kicks on
//! both ions after each MS gate, with the kick angle calibrated so the
//! expected odd-population leakage matches the configured level.

use itqc_circuit::{Gate, Op};
use rand::Rng;

/// Residual-bus noise: after every MS gate, each participating ion gets a
/// random equatorial kick `R(θ_kick, φ~U[0,2π))`.
///
/// A kick of angle `θ` flips a qubit with probability `sin²(θ/2)`; two
/// independent kicks produce odd parity with probability
/// `≈ 2·sin²(θ/2)` to first order, so
/// `θ_kick = 2·asin(√(odd_population/2))`.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ResidualCoupling {
    odd_population: f64,
    kick_angle: f64,
}

impl ResidualCoupling {
    /// Creates a model producing the given expected odd-population leakage
    /// per MS gate (the paper's operating point is `0.01`).
    ///
    /// # Panics
    ///
    /// Panics if `odd_population` is outside `[0, 1]`.
    pub fn new(odd_population: f64) -> Self {
        assert!((0.0..=1.0).contains(&odd_population), "odd population must be a probability");
        let kick_angle = 2.0 * (odd_population / 2.0).sqrt().asin();
        ResidualCoupling { odd_population, kick_angle }
    }

    /// The configured odd-population level.
    pub fn odd_population(&self) -> f64 {
        self.odd_population
    }

    /// The per-ion kick angle.
    pub fn kick_angle(&self) -> f64 {
        self.kick_angle
    }

    /// Emits the random kicks following one MS op (empty for other gates).
    pub fn kicks_after<R: Rng + ?Sized>(&self, op: &Op, rng: &mut R, out: &mut Vec<Op>) {
        if self.odd_population == 0.0 {
            return;
        }
        if matches!(op.gate, Gate::Xx(_) | Gate::Ms { .. }) {
            for &q in op.qubits() {
                let phi = rng.gen_range(0.0..std::f64::consts::TAU);
                out.push(Op::one(Gate::R { theta: self.kick_angle, phi }, q));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_circuit::Circuit;
    use itqc_sim::run;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn kick_angle_calibration() {
        let rc = ResidualCoupling::new(0.01);
        // sin²(θ/2)·2 = 0.01
        let odd = 2.0 * (rc.kick_angle() / 2.0).sin().powi(2);
        assert!((odd - 0.01).abs() < 1e-12);
    }

    #[test]
    fn zero_level_emits_nothing() {
        let rc = ResidualCoupling::new(0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        rc.kicks_after(&Op::two(Gate::Xx(FRAC_PI_2), 0, 1), &mut rng, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn only_ms_gates_get_kicks() {
        let rc = ResidualCoupling::new(0.01);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = Vec::new();
        rc.kicks_after(&Op::one(Gate::H, 0), &mut rng, &mut out);
        assert!(out.is_empty());
        rc.kicks_after(&Op::two(Gate::Xx(FRAC_PI_2), 0, 1), &mut rng, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn measured_odd_population_matches_configuration() {
        // One perfect 4×MS block plus kicks: odd population after the block
        // should average ≈ 4 gates × 1% (small-angle addition), within
        // Monte-Carlo tolerance.
        let level = 0.01;
        let rc = ResidualCoupling::new(level);
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 400;
        let mut odd_acc = 0.0;
        for _ in 0..trials {
            let mut c = Circuit::new(2);
            for _ in 0..4 {
                c.xx(0, 1, FRAC_PI_2);
                let mut kicks = Vec::new();
                rc.kicks_after(c.ops().last().copied().as_ref().unwrap(), &mut rng, &mut kicks);
                for k in kicks {
                    c.push(k);
                }
            }
            let s = run(&c);
            odd_acc += s.probability(0b01) + s.probability(0b10);
        }
        let odd = odd_acc / trials as f64;
        assert!(odd > 0.015 && odd < 0.07, "odd population {odd} should be near 4 × {level}");
    }
}
