//! 1/f ("flicker") phase-noise generation.
//!
//! The paper's unitary-error simulator includes 1/f phase noise on MS gates
//! (§VI: "we include … 1/f phase noise"). Two generators are provided:
//!
//! * [`OneOverF`] — a streaming generator built as the sum of
//!   Ornstein–Uhlenbeck processes with octave-spaced correlation times.
//!   Equal variance per octave yields a power spectrum ∝ 1/f across the
//!   covered band; this is the standard time-domain flicker synthesis.
//! * [`synthesize_trace`] — an FFT-based spectral synthesiser producing a
//!   fixed-length trace with exactly `1/f^α` spectral envelope, used for
//!   test vectors and spectrum validation.

use itqc_math::fft::ifft;
use itqc_math::rng::standard_normal;
use itqc_math::Complex64;
use rand::Rng;

/// Streaming 1/f noise: `Σ_k OU_k(t)` over `octaves` processes with
/// correlation times `τ_k = τ_min·2^k` and equal per-process variance.
#[derive(Clone, Debug)]
pub struct OneOverF {
    taus: Vec<f64>,
    states: Vec<f64>,
    sigma_each: f64,
}

impl OneOverF {
    /// Creates a generator with RMS amplitude `rms`, fastest correlation
    /// time `tau_min`, spanning `octaves` octaves.
    ///
    /// # Panics
    ///
    /// Panics if `octaves == 0`, or `tau_min <= 0`, or `rms < 0`.
    pub fn new(rms: f64, tau_min: f64, octaves: usize) -> Self {
        assert!(octaves > 0, "need at least one octave");
        assert!(tau_min > 0.0, "correlation time must be positive");
        assert!(rms >= 0.0, "rms must be non-negative");
        let taus = (0..octaves).map(|k| tau_min * (1u64 << k) as f64).collect();
        // Independent processes: total variance = octaves · σ_each².
        let sigma_each = rms / (octaves as f64).sqrt();
        OneOverF { taus, states: vec![0.0; octaves], sigma_each }
    }

    /// Draws a stationary initial condition for every component process.
    pub fn randomize_state<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for s in &mut self.states {
            *s = self.sigma_each * standard_normal(rng);
        }
    }

    /// Advances all component processes by `dt` and returns the new value.
    ///
    /// Exact OU update: `x ← x·e^{−dt/τ} + σ·√(1−e^{−2dt/τ})·ξ`.
    pub fn step<R: Rng + ?Sized>(&mut self, dt: f64, rng: &mut R) -> f64 {
        for (s, &tau) in self.states.iter_mut().zip(&self.taus) {
            let decay = (-dt / tau).exp();
            let kick = self.sigma_each * (1.0 - decay * decay).sqrt();
            *s = *s * decay + kick * standard_normal(rng);
        }
        self.value()
    }

    /// The current noise value (sum of component processes).
    pub fn value(&self) -> f64 {
        self.states.iter().sum()
    }

    /// The configured RMS amplitude.
    pub fn rms(&self) -> f64 {
        self.sigma_each * (self.states.len() as f64).sqrt()
    }
}

/// Synthesises a length-`n` (power of two) real trace with `1/f^alpha`
/// power spectrum and unit RMS, via random-phase inverse FFT.
///
/// # Panics
///
/// Panics if `n` is not a power of two or `n < 4`.
pub fn synthesize_trace<R: Rng + ?Sized>(n: usize, alpha: f64, rng: &mut R) -> Vec<f64> {
    assert!(n.is_power_of_two() && n >= 4, "trace length must be a power of two >= 4");
    let mut spec = vec![Complex64::ZERO; n];
    for k in 1..n / 2 {
        let mag = (k as f64).powf(-alpha / 2.0);
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let z = Complex64::from_polar(mag, phase);
        spec[k] = z;
        spec[n - k] = z.conj(); // Hermitian symmetry → real signal
    }
    ifft(&mut spec);
    let mut trace: Vec<f64> = spec.iter().map(|z| z.re).collect();
    // Normalise to unit RMS.
    let rms = (trace.iter().map(|x| x * x).sum::<f64>() / n as f64).sqrt();
    if rms > 0.0 {
        for x in &mut trace {
            *x /= rms;
        }
    }
    trace
}

/// Log–log spectral slope of a trace estimated from its periodogram with
/// octave binning; a 1/f process measures ≈ −1.
pub fn spectral_slope(trace: &[f64]) -> f64 {
    let n = trace.len();
    assert!(n.is_power_of_two() && n >= 64, "need a power-of-two trace of length >= 64");
    let spec = itqc_math::fft::fft_real(trace);
    // Octave-binned periodogram.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut lo = 1usize;
    while 2 * lo <= n / 2 {
        let hi = 2 * lo;
        let power: f64 = (lo..hi).map(|k| spec[k].norm_sqr()).sum::<f64>() / (hi - lo) as f64;
        if power > 0.0 {
            xs.push(((lo + hi) as f64 / 2.0).ln());
            ys.push(power.ln());
        }
        lo = hi;
    }
    // OLS slope.
    let mx = xs.iter().sum::<f64>() / xs.len() as f64;
    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let num: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let den: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn streaming_rms_is_calibrated() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut gen = OneOverF::new(0.05, 1.0, 8);
        gen.randomize_state(&mut rng);
        let n = 200_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let v = gen.step(0.5, &mut rng);
            acc += v * v;
        }
        let rms = (acc / n as f64).sqrt();
        assert!((rms - 0.05).abs() < 0.01, "rms {rms}");
        assert!((gen.rms() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn synthesized_trace_has_one_over_f_slope() {
        let mut rng = SmallRng::seed_from_u64(9);
        let trace = synthesize_trace(4096, 1.0, &mut rng);
        let slope = spectral_slope(&trace);
        assert!(slope < -0.7 && slope > -1.3, "slope {slope}");
    }

    #[test]
    fn white_trace_has_flat_slope() {
        let mut rng = SmallRng::seed_from_u64(10);
        let trace = synthesize_trace(4096, 0.0, &mut rng);
        let slope = spectral_slope(&trace);
        assert!(slope.abs() < 0.3, "slope {slope}");
    }

    #[test]
    fn streaming_generator_is_colored() {
        // The OU-sum generator must show a clearly negative spectral slope
        // in its covered band (≈ 1/f, but we only assert colour).
        let mut rng = SmallRng::seed_from_u64(11);
        let mut gen = OneOverF::new(1.0, 2.0, 10);
        gen.randomize_state(&mut rng);
        let trace: Vec<f64> = (0..8192).map(|_| gen.step(1.0, &mut rng)).collect();
        let slope = spectral_slope(&trace);
        assert!(slope < -0.5, "slope {slope}");
    }

    #[test]
    fn trace_is_unit_rms() {
        let mut rng = SmallRng::seed_from_u64(12);
        let trace = synthesize_trace(1024, 1.0, &mut rng);
        let rms = (trace.iter().map(|x| x * x).sum::<f64>() / 1024.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-9);
    }
}
