//! The composite ion-trap noise model.
//!
//! [`IonTrapNoise`] implements [`itqc_sim::NoiseModel`] and combines every
//! error class of the paper's unitary-error simulator (§VI):
//!
//! 1. **Deterministic coupling faults** — per-coupling under-rotations
//!    (the machine's current miscalibration state);
//! 2. **Random amplitude noise** — per-gate relative angle jitter ("10%
//!    random amplitude errors for all two-qubit gates");
//! 3. **1/f phase noise** — slow beam-phase drift entering the MS phases;
//! 4. **Residual bus coupling** — random kicks generating ~1% odd
//!    population per MS gate.
//!
//! Build with the non-consuming builder methods and hand to
//! `itqc_sim::trajectory`.

use crate::models::CouplingFault;
use crate::phase_noise::OneOverF;
use crate::residual::ResidualCoupling;
use itqc_circuit::{Coupling, Gate, Op};
use itqc_math::rng::standard_normal;
use itqc_sim::NoiseModel;
use rand::Rng;
use std::collections::BTreeMap;

/// Composite unitary noise for trajectory simulation.
#[derive(Clone, Debug, Default)]
pub struct IonTrapNoise {
    coupling_faults: BTreeMap<Coupling, f64>,
    amplitude_noise_std: f64,
    one_qubit_noise_std: f64,
    phase_noise: Option<OneOverF>,
    phase_noise_dt: f64,
    residual: Option<ResidualCoupling>,
}

impl IonTrapNoise {
    /// A noiseless model (all channels off). Add channels with the
    /// builder methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the deterministic under-rotation of one coupling (later calls
    /// overwrite earlier ones for the same coupling).
    pub fn with_coupling_fault(mut self, fault: CouplingFault) -> Self {
        self.coupling_faults.insert(fault.coupling, fault.under_rotation);
        self
    }

    /// Sets the full deterministic miscalibration map at once.
    pub fn with_coupling_faults<I>(mut self, faults: I) -> Self
    where
        I: IntoIterator<Item = CouplingFault>,
    {
        for f in faults {
            self.coupling_faults.insert(f.coupling, f.under_rotation);
        }
        self
    }

    /// Enables per-gate random relative amplitude jitter with the given
    /// standard deviation (e.g. `0.10·√(π/2)` for the paper's "10% average
    /// amplitude error").
    pub fn with_amplitude_noise(mut self, std: f64) -> Self {
        assert!(std >= 0.0, "noise amplitude must be non-negative");
        self.amplitude_noise_std = std;
        self
    }

    /// Enables additive angle jitter on single-qubit rotation gates
    /// (`R`, `Rx`, `Ry` — the laser-driven gates; virtual `Rz` frame
    /// updates stay exact). The paper's machine quotes ~99.5% single-qubit
    /// fidelity, i.e. small but non-zero rotation noise.
    pub fn with_one_qubit_noise(mut self, std: f64) -> Self {
        assert!(std >= 0.0, "noise amplitude must be non-negative");
        self.one_qubit_noise_std = std;
        self
    }

    /// Enables 1/f phase noise on MS-gate beam phases; `dt_per_gate` is the
    /// process time advanced per gate (gate duration).
    pub fn with_phase_noise(mut self, generator: OneOverF, dt_per_gate: f64) -> Self {
        assert!(dt_per_gate > 0.0, "gate duration must be positive");
        self.phase_noise = Some(generator);
        self.phase_noise_dt = dt_per_gate;
        self
    }

    /// Enables residual bus coupling producing the given odd population per
    /// MS gate.
    pub fn with_residual_coupling(mut self, odd_population: f64) -> Self {
        self.residual = Some(ResidualCoupling::new(odd_population));
        self
    }

    /// The current deterministic fault on `coupling`, if any.
    pub fn coupling_fault(&self, coupling: Coupling) -> Option<f64> {
        self.coupling_faults.get(&coupling).copied()
    }

    fn effective_under_rotation<R: Rng + ?Sized>(&self, coupling: Coupling, rng: &mut R) -> f64 {
        let deterministic = self.coupling_faults.get(&coupling).copied().unwrap_or(0.0);
        let random = if self.amplitude_noise_std > 0.0 {
            self.amplitude_noise_std * standard_normal(rng)
        } else {
            0.0
        };
        deterministic + random
    }
}

impl NoiseModel for IonTrapNoise {
    fn begin_trajectory<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if let Some(pn) = &mut self.phase_noise {
            pn.randomize_state(rng);
        }
    }

    fn rewrite<R: Rng + ?Sized>(&mut self, op: &Op, rng: &mut R, out: &mut Vec<Op>) {
        match op.gate {
            Gate::Xx(theta) => {
                let coupling = op.coupling().expect("XX has a coupling");
                let u = self.effective_under_rotation(coupling, rng);
                let phase = match &mut self.phase_noise {
                    Some(pn) => pn.step(self.phase_noise_dt, rng),
                    None => 0.0,
                };
                let noisy = Gate::Ms { theta: theta * (1.0 - u), phi1: phase, phi2: phase };
                out.push(Op::two(noisy, op.qubits()[0], op.qubits()[1]));
            }
            Gate::Ms { theta, phi1, phi2 } => {
                let coupling = op.coupling().expect("MS has a coupling");
                let u = self.effective_under_rotation(coupling, rng);
                let phase = match &mut self.phase_noise {
                    Some(pn) => pn.step(self.phase_noise_dt, rng),
                    None => 0.0,
                };
                let noisy =
                    Gate::Ms { theta: theta * (1.0 - u), phi1: phi1 + phase, phi2: phi2 + phase };
                out.push(Op::two(noisy, op.qubits()[0], op.qubits()[1]));
            }
            Gate::R { theta, phi } if self.one_qubit_noise_std > 0.0 => {
                let d = self.one_qubit_noise_std * standard_normal(rng);
                out.push(Op::one(Gate::R { theta: theta + d, phi }, op.qubits()[0]));
            }
            Gate::Rx(t) if self.one_qubit_noise_std > 0.0 => {
                let d = self.one_qubit_noise_std * standard_normal(rng);
                out.push(Op::one(Gate::R { theta: t + d, phi: 0.0 }, op.qubits()[0]));
            }
            Gate::Ry(t) if self.one_qubit_noise_std > 0.0 => {
                let d = self.one_qubit_noise_std * standard_normal(rng);
                out.push(Op::one(
                    Gate::R { theta: t + d, phi: std::f64::consts::FRAC_PI_2 },
                    op.qubits()[0],
                ));
            }
            _ => out.push(*op),
        }
        if let Some(rc) = &self.residual {
            rc.kicks_after(op, rng, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_circuit::Circuit;
    use itqc_math::stats;
    use itqc_sim::trajectory::{average_target_probability, run_trajectory};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_PI_2;

    fn four_ms(a: usize, b: usize, n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for _ in 0..4 {
            c.xx(a, b, FRAC_PI_2);
        }
        c
    }

    #[test]
    fn noiseless_default_is_exact() {
        let mut model = IonTrapNoise::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let s = run_trajectory(&four_ms(0, 1, 2), &mut model, &mut rng);
        assert!((s.probability(0) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn deterministic_fault_reproduces_analytic_fidelity() {
        let mut model =
            IonTrapNoise::new().with_coupling_fault(CouplingFault::new(Coupling::new(0, 1), 0.22));
        let mut rng = SmallRng::seed_from_u64(2);
        let f = average_target_probability(&four_ms(0, 1, 2), 0, 3, &mut model, &mut rng);
        let expect = (std::f64::consts::PI * 0.22).cos().powi(2);
        assert!((f - expect).abs() < 1e-10);
    }

    #[test]
    fn amplitude_noise_spreads_fidelity() {
        // With random amplitude noise the per-trajectory fidelity varies;
        // its mean drops below 1.
        let mut rng = SmallRng::seed_from_u64(3);
        let sigma = 0.10 * (std::f64::consts::PI / 2.0).sqrt();
        let mut model = IonTrapNoise::new().with_amplitude_noise(sigma);
        let c = four_ms(0, 1, 2);
        let fs: Vec<f64> =
            (0..200).map(|_| run_trajectory(&c, &mut model, &mut rng).probability(0)).collect();
        let mean = stats::mean(&fs);
        // Four independent jitters of std σ compose to a total-angle spread
        // of 2σ·(π/2); E[cos²] ≈ 0.963 at σ = 0.1253.
        assert!(mean < 0.99, "mean {mean}");
        assert!(mean > 0.85, "mean {mean}");
        assert!(stats::std_dev(&fs) > 0.01);
    }

    #[test]
    fn residual_coupling_creates_odd_population() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut model = IonTrapNoise::new().with_residual_coupling(0.01);
        let c = four_ms(0, 1, 2);
        let mut odd = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let s = run_trajectory(&c, &mut model, &mut rng);
            odd += s.probability(0b01) + s.probability(0b10);
        }
        odd /= trials as f64;
        assert!(odd > 0.01 && odd < 0.10, "odd {odd}");
    }

    #[test]
    fn phase_noise_affects_echoed_sequences_less_than_miscalibration() {
        // Deterministic amplitude errors accumulate coherently; echoing
        // cancels them. Phase noise alone leaves echoed sequences nearly
        // ideal over short sequences.
        let mut rng = SmallRng::seed_from_u64(5);
        let mut model = IonTrapNoise::new().with_phase_noise(OneOverF::new(0.05, 1.0, 6), 0.1);
        let c = four_ms(0, 1, 2);
        let f = average_target_probability(&c, 0, 50, &mut model, &mut rng);
        assert!(f > 0.95, "small phase noise keeps test fidelity high, got {f}");
    }

    #[test]
    fn faults_map_is_queryable() {
        let model =
            IonTrapNoise::new().with_coupling_fault(CouplingFault::new(Coupling::new(2, 5), 0.15));
        assert_eq!(model.coupling_fault(Coupling::new(5, 2)), Some(0.15));
        assert_eq!(model.coupling_fault(Coupling::new(0, 1)), None);
    }
}
