//! Adversarial fault-configuration generator: the worst-case placements
//! ROADMAP item 5 calls for testing coverage claims against, instead of
//! uniform draws only.
//!
//! Two structural blind spots of the paper's pipeline are constructed
//! here deterministically:
//!
//! * **Even-degree configurations** — fault sets in which every qubit
//!   touches an even number of faulty couplings, i.e. cycles and
//!   disjoint unions of cycles in the coupling graph. Under the
//!   worst-qubit statistic a qubit of faulty degree `d` agrees with the
//!   canary target with probability `(1 + cos(r·u·π/2)^d)/2`, which for
//!   even `d` is at least `1/2` at *any* fault magnitude — the fixed
//!   full-coupling canary passes and the Fig. 5 loop converges without
//!   running a single diagnosis (footnote-8 territory, degree-parity
//!   flavoured).
//! * **Tied disjoint perfect-fit covers** — fault sets aliased against a
//!   disjoint partner set producing the *identical* failing set and the
//!   identical analog score vector at every repetition count. A
//!   coupling's subcube-class membership *is* its label-agreement
//!   syndrome, so two couplings with equal syndromes are interchangeable
//!   in every first-round test; the evidence-fusion decoder's consensus
//!   honestly abstains on such families, and only a point-test
//!   tie-breaker (the `Interrogate` extension) can split them.
//!
//! Every scenario is a set of deterministic unitary under-rotations —
//! [`FaultKind::BeamIntensityMiscalibration`], the recalibration-target
//! quadrant of Table I — so the unchanged protocol applies verbatim:
//! adversarial coverage is a property of the *placement*, not of an
//! exotic fault model.

use crate::taxonomy::FaultKind;
use itqc_circuit::Coupling;
use itqc_math::bits;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The configuration classes of the adversarial scorecard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ConfigClass {
    /// Uniformly random distinct couplings (the Table II draw) — the
    /// baseline every adversarial class is scored against.
    Uniform,
    /// A cycle or disjoint-cycle union in the coupling graph: every
    /// qubit has even faulty degree, so the fixed canary passes.
    EvenDegree,
    /// One member each of two conflicting same-syndrome families: the
    /// failing set admits several disjoint perfect-fit covers with
    /// identical score predictions at every rung.
    TiedCover,
}

impl ConfigClass {
    /// All classes, scorecard order.
    pub const ALL: [ConfigClass; 3] =
        [ConfigClass::Uniform, ConfigClass::EvenDegree, ConfigClass::TiedCover];
}

impl fmt::Display for ConfigClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConfigClass::Uniform => "uniform",
            ConfigClass::EvenDegree => "even-degree",
            ConfigClass::TiedCover => "tied-cover",
        };
        write!(f, "{s}")
    }
}

/// One adversarial fault placement, exposed through the taxonomy: the
/// planted mechanism is a beam-intensity miscalibration (deterministic,
/// unitary, static — `is_recalibration_target()`), so every scenario
/// runs the paper's unchanged protocol.
#[derive(Clone, Debug, PartialEq)]
pub struct AdversarialScenario {
    /// Which scorecard class the placement belongs to.
    pub class: ConfigClass,
    /// The planted faulty couplings, sorted.
    pub faults: Vec<Coupling>,
    /// The taxonomy cell of the planted mechanism.
    pub kind: FaultKind,
    /// For [`ConfigClass::TiedCover`]: the disjoint partner covers that
    /// produce the identical failing set and score predictions (empty
    /// for the other classes). Useful for asserting that an abstaining
    /// decoder at least confines its interrogation to the tie family.
    pub tied_alternatives: Vec<Vec<Coupling>>,
}

impl AdversarialScenario {
    fn new(class: ConfigClass, mut faults: Vec<Coupling>, tied: Vec<Vec<Coupling>>) -> Self {
        faults.sort();
        AdversarialScenario {
            class,
            faults,
            kind: FaultKind::BeamIntensityMiscalibration,
            tied_alternatives: tied,
        }
    }

    /// Faulty degree of every touched qubit (the fault multigraph).
    pub fn degrees(&self) -> BTreeMap<usize, usize> {
        let mut d = BTreeMap::new();
        for c in &self.faults {
            *d.entry(c.lo()).or_insert(0) += 1;
            *d.entry(c.hi()).or_insert(0) += 1;
        }
        d
    }

    /// `true` when every touched qubit has even faulty degree — the
    /// canary-invisibility condition.
    pub fn is_even_degree(&self) -> bool {
        self.degrees().values().all(|&d| d % 2 == 0)
    }
}

/// The label-agreement syndrome of a coupling: the `(bit, value)` pairs
/// on which both endpoint labels agree. Local mirror of the core
/// syndrome (this crate sits below `itqc_core` in the dependency
/// order), kept here so tied families can be constructed from labels
/// alone.
pub fn syndrome_bits(c: Coupling, n_bits: u32) -> Vec<(u32, bool)> {
    let (a, b) = c.endpoints();
    (0..n_bits)
        .filter(|&i| bits::bit(a, i) == bits::bit(b, i))
        .map(|i| (i, bits::bit(a, i)))
        .collect()
}

/// All simple cycles on exactly `len` distinct qubits of an `n_qubits`
/// machine, as edge lists, in a deterministic canonical order: vertex
/// subsets ascend lexicographically; within a subset the smallest
/// vertex is fixed first and reflections are deduplicated.
///
/// # Panics
///
/// Panics if `len < 3`.
pub fn cycles(n_qubits: usize, len: usize) -> Vec<Vec<Coupling>> {
    assert!(len >= 3, "a cycle needs at least three vertices");
    let mut out = Vec::new();
    if len > n_qubits {
        return out;
    }
    let mut subset = Vec::with_capacity(len);
    enumerate_subsets(n_qubits, len, 0, &mut subset, &mut |vs| {
        // Fix vs[0] first; enumerate orders of the rest with
        // order[0] < order[last] so each undirected cycle appears once.
        let rest: Vec<usize> = vs[1..].to_vec();
        let mut order = Vec::with_capacity(rest.len());
        let mut used = vec![false; rest.len()];
        permute_cycles(vs[0], &rest, &mut used, &mut order, &mut out);
    });
    out
}

fn enumerate_subsets(
    n: usize,
    len: usize,
    start: usize,
    acc: &mut Vec<usize>,
    emit: &mut impl FnMut(&[usize]),
) {
    if acc.len() == len {
        emit(acc);
        return;
    }
    for v in start..n {
        if n - v < len - acc.len() {
            break;
        }
        acc.push(v);
        enumerate_subsets(n, len, v + 1, acc, emit);
        acc.pop();
    }
}

fn permute_cycles(
    anchor: usize,
    rest: &[usize],
    used: &mut [bool],
    order: &mut Vec<usize>,
    out: &mut Vec<Vec<Coupling>>,
) {
    if order.len() == rest.len() {
        if order.first() < order.last() {
            let mut edges = Vec::with_capacity(rest.len() + 1);
            let mut prev = anchor;
            for &v in order.iter() {
                edges.push(Coupling::new(prev, v));
                prev = v;
            }
            edges.push(Coupling::new(prev, anchor));
            edges.sort();
            out.push(edges);
        }
        return;
    }
    for i in 0..rest.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        order.push(rest[i]);
        permute_cycles(anchor, rest, used, order, out);
        order.pop();
        used[i] = false;
    }
}

/// Systematic enumeration of even-degree configurations: every single
/// cycle of length `3..=max_cycle`, plus (when the machine is large
/// enough) every union of two vertex-disjoint triangles. Deterministic
/// order: ascending fault count, then the cycle enumeration order.
pub fn even_degree_configs(n_qubits: usize, max_cycle: usize) -> Vec<Vec<Coupling>> {
    let mut out = Vec::new();
    for len in 3..=max_cycle.min(n_qubits) {
        out.extend(cycles(n_qubits, len));
    }
    if n_qubits >= 6 && max_cycle >= 6 {
        // Unions of two vertex-disjoint triangles, first triangle's
        // smallest vertex below the second's (each union once).
        let triangles = cycles(n_qubits, 3);
        for (i, t1) in triangles.iter().enumerate() {
            let v1: BTreeSet<usize> = t1.iter().flat_map(|c| [c.lo(), c.hi()]).collect();
            for t2 in &triangles[i + 1..] {
                let disjoint = t2.iter().all(|c| !v1.contains(&c.lo()) && !v1.contains(&c.hi()));
                if disjoint {
                    let mut union = t1.clone();
                    union.extend(t2.iter().copied());
                    union.sort();
                    out.push(union);
                }
            }
        }
    }
    out
}

/// Draws `k` distinct qubits, deterministic in the rng stream.
fn sample_qubits<R: Rng + ?Sized>(n_qubits: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n_qubits, "cannot draw {k} distinct qubits from {n_qubits}");
    let mut chosen: BTreeSet<usize> = BTreeSet::new();
    let mut order = Vec::with_capacity(k);
    while order.len() < k {
        let q = rng.gen_range(0..n_qubits);
        if chosen.insert(q) {
            order.push(q);
        }
    }
    order
}

/// Seeded draw of one even-degree configuration: a uniformly chosen
/// structure (triangle, 4-cycle, 5-cycle where the register allows,
/// or a union of two vertex-disjoint triangles) on uniformly chosen
/// qubits in a uniformly random cyclic order.
///
/// # Panics
///
/// Panics if `n_qubits < 3` (no cycle fits).
pub fn sample_even_degree<R: Rng + ?Sized>(n_qubits: usize, rng: &mut R) -> Vec<Coupling> {
    assert!(n_qubits >= 3, "even-degree configurations need at least 3 qubits");
    let mut structures: Vec<usize> = vec![3];
    if n_qubits >= 4 {
        structures.push(4);
    }
    if n_qubits >= 5 {
        structures.push(5);
    }
    if n_qubits >= 6 {
        structures.push(33); // two disjoint triangles
    }
    let pick = structures[rng.gen_range(0..structures.len())];
    let mut edges = match pick {
        33 => {
            let vs = sample_qubits(n_qubits, 6, rng);
            let mut e = cycle_edges(&vs[..3]);
            e.extend(cycle_edges(&vs[3..]));
            e
        }
        len => cycle_edges(&sample_qubits(n_qubits, len, rng)),
    };
    edges.sort();
    edges
}

fn cycle_edges(vs: &[usize]) -> Vec<Coupling> {
    let mut edges = Vec::with_capacity(vs.len());
    for w in vs.windows(2) {
        edges.push(Coupling::new(w[0], w[1]));
    }
    edges.push(Coupling::new(vs[vs.len() - 1], vs[0]));
    edges
}

/// All tied disjoint perfect-fit cover scenarios of the trap size: for
/// every label bit `i`, the couplings whose syndrome is *exactly*
/// `{(i, 0)}` form one family and those with exactly `{(i, 1)}` the
/// other; planting one member of each produces a bit-`i` conflict whose
/// candidate covers — every cross pair — predict identical analog
/// scores at every repetition count (same-syndrome couplings share all
/// class memberships). Deterministic enumeration order.
pub fn tied_cover_scenarios(n_qubits: usize) -> Vec<AdversarialScenario> {
    let n_bits = bits::label_bits(n_qubits);
    let all: Vec<Coupling> = {
        let mut v = Vec::new();
        for a in 0..n_qubits {
            for b in (a + 1)..n_qubits {
                v.push(Coupling::new(a, b));
            }
        }
        v
    };
    let mut out = Vec::new();
    for i in 0..n_bits {
        let family = |value: bool| -> Vec<Coupling> {
            all.iter().copied().filter(|&c| syndrome_bits(c, n_bits) == vec![(i, value)]).collect()
        };
        let g0 = family(false);
        let g1 = family(true);
        if g0.len() < 2 || g1.len() < 2 {
            continue; // no disjoint alternative cover: not a tie
        }
        for &x in &g0 {
            for &y in &g1 {
                let mut alternatives = Vec::new();
                for &ax in &g0 {
                    for &ay in &g1 {
                        if (ax, ay) != (x, y) {
                            let mut alt = vec![ax, ay];
                            alt.sort();
                            alternatives.push(alt);
                        }
                    }
                }
                out.push(AdversarialScenario::new(
                    ConfigClass::TiedCover,
                    vec![x, y],
                    alternatives,
                ));
            }
        }
    }
    out
}

/// Seeded draw of one scenario of the requested class. Uniform draws
/// match the even-degree fault-count distribution (so the scorecard
/// compares placements, not budgets); tied-cover draws index the
/// enumerated pool.
///
/// # Panics
///
/// Panics if the trap is too small for the class (tied covers need a
/// register whose same-syndrome families have at least two members —
/// 8 qubits and up).
pub fn sample_scenario<R: Rng + ?Sized>(
    class: ConfigClass,
    n_qubits: usize,
    rng: &mut R,
) -> AdversarialScenario {
    match class {
        ConfigClass::EvenDegree => {
            AdversarialScenario::new(class, sample_even_degree(n_qubits, rng), Vec::new())
        }
        ConfigClass::Uniform => {
            // Match the even-degree budget distribution, then place the
            // same number of faults uniformly.
            let k = sample_even_degree(n_qubits, rng).len();
            let mut chosen: BTreeSet<Coupling> = BTreeSet::new();
            while chosen.len() < k {
                let q = sample_qubits(n_qubits, 2, rng);
                chosen.insert(Coupling::new(q[0], q[1]));
            }
            AdversarialScenario::new(class, chosen.into_iter().collect(), Vec::new())
        }
        ConfigClass::TiedCover => {
            let pool = tied_cover_scenarios(n_qubits);
            assert!(
                !pool.is_empty(),
                "no tied disjoint covers exist at {n_qubits} qubits (need >= 8)"
            );
            pool[rng.gen_range(0..pool.len())].clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn triangle_count_matches_binomial() {
        assert_eq!(cycles(8, 3).len(), 56); // C(8,3)
        assert_eq!(cycles(8, 4).len(), 210); // C(8,4) * 3
        assert_eq!(cycles(4, 5).len(), 0);
    }

    #[test]
    fn every_enumerated_config_is_even_degree() {
        for cfg in even_degree_configs(8, 6) {
            let s = AdversarialScenario::new(ConfigClass::EvenDegree, cfg, Vec::new());
            assert!(s.is_even_degree(), "{:?}", s.faults);
            assert!(s.kind.is_recalibration_target());
        }
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let pool = even_degree_configs(8, 5);
        let distinct: BTreeSet<Vec<Coupling>> = pool.iter().cloned().collect();
        assert_eq!(distinct.len(), pool.len());
    }

    #[test]
    fn sampled_even_degree_is_even_degree_and_seed_stable() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..50 {
            let s = AdversarialScenario::new(
                ConfigClass::EvenDegree,
                sample_even_degree(8, &mut rng),
                Vec::new(),
            );
            assert!(s.is_even_degree(), "{:?}", s.faults);
        }
        let a: Vec<_> =
            (0..10).map(|_| sample_even_degree(16, &mut SmallRng::seed_from_u64(7))).collect();
        let b: Vec<_> =
            (0..10).map(|_| sample_even_degree(16, &mut SmallRng::seed_from_u64(7))).collect();
        assert_eq!(a, b, "same seed must give the same draw");
    }

    #[test]
    fn tied_families_share_failing_sets_and_are_disjoint() {
        let n_bits = 3;
        for s in tied_cover_scenarios(8) {
            assert_eq!(s.faults.len(), 2);
            assert!(!s.tied_alternatives.is_empty(), "a tie needs an alternative");
            let truth_syn: BTreeSet<(u32, bool)> =
                s.faults.iter().flat_map(|&c| syndrome_bits(c, n_bits)).collect();
            for alt in &s.tied_alternatives {
                let alt_syn: BTreeSet<(u32, bool)> =
                    alt.iter().flat_map(|&c| syndrome_bits(c, n_bits)).collect();
                assert_eq!(alt_syn, truth_syn, "alternative must fit the same failing set");
            }
            // The fully disjoint alternative exists: no qubit shared
            // with the planted pair.
            let planted: BTreeSet<usize> = s.faults.iter().flat_map(|c| [c.lo(), c.hi()]).collect();
            assert!(
                s.tied_alternatives.iter().any(|alt| alt
                    .iter()
                    .all(|c| !planted.contains(&c.lo()) && !planted.contains(&c.hi()))),
                "{:?} has no disjoint partner cover",
                s.faults
            );
        }
    }

    #[test]
    fn eight_qubit_tied_pool_is_the_paper_example_size() {
        // 3 bits x (2 members x 2 members) = 12 scenarios.
        assert_eq!(tied_cover_scenarios(8).len(), 12);
        // 16 qubits: every one-bit family has 4 complement-pair members.
        assert_eq!(tied_cover_scenarios(16).len(), 4 * 16);
    }

    #[test]
    fn uniform_draws_match_even_degree_budgets() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..30 {
            let s = sample_scenario(ConfigClass::Uniform, 8, &mut rng);
            assert!(matches!(s.faults.len(), 3..=6), "{:?}", s.faults);
            let distinct: BTreeSet<Coupling> = s.faults.iter().copied().collect();
            assert_eq!(distinct.len(), s.faults.len());
        }
    }

    #[test]
    fn scenarios_carry_the_recalibration_target_kind() {
        let mut rng = SmallRng::seed_from_u64(3);
        for class in ConfigClass::ALL {
            let s = sample_scenario(class, 8, &mut rng);
            assert_eq!(s.kind, FaultKind::BeamIntensityMiscalibration);
            assert!(s.kind.is_recalibration_target());
        }
    }
}
