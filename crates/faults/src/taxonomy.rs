//! The fault taxonomy of the paper's Table I.
//!
//! Quantum faults are classified along three axes: whether the faulty
//! evolution is still *unitary*, whether it is *deterministic*, and the
//! *time scale* on which it varies. The paper's central observation is that
//! today's ion traps are dominated by deterministic unitary faults
//! (miscalibrations), which accumulate coherently under gate repetition and
//! are therefore detectable by short test circuits and removable by
//! recalibration.

use std::fmt;

/// Determinism axis of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Determinism {
    /// Reproducible run-to-run (at the observation time scale).
    Deterministic,
    /// Random parameter fluctuations or discrete random events.
    Stochastic,
}

/// Unitarity axis of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Unitarity {
    /// The faulty evolution is still a unitary map (wrong rotation angle,
    /// wrong axis, spurious coherent coupling).
    Unitary,
    /// The physical model itself is violated (leakage, loss, collapse).
    NonUnitary,
}

/// Time-scale axis (the paper's "third axis"): slow noise can look
/// deterministic within one run but drifts across the duty cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TimeScale {
    /// Static over many duty cycles (alignment, gain errors).
    Static,
    /// Drifts over minutes–hours (stray-field charging, thermal drift).
    Slow,
    /// Varies within a single circuit execution (control noise, heating).
    Fast,
}

/// A concrete fault mechanism named in the paper, placed in the taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultKind {
    /// Inexact beam-intensity calibration (wrong gain on the illuminating
    /// beams) — the dominant source of MS-gate under-/over-rotation.
    BeamIntensityMiscalibration,
    /// Light-shift miscalibration producing phase errors on gates.
    LightShiftMiscalibration,
    /// Optomechanical beam misalignment degrading effective Rabi rates.
    BeamMisalignment,
    /// Unintended excitation of the vibrational bus leaving residual
    /// spin–motion entanglement (odd-population leakage).
    VibrationalBusExcitation,
    /// Bit flips induced by sideband or anharmonicity terms.
    SidebandAnharmonicity,
    /// Motional heating randomising gate parameters shot-to-shot.
    HeatingFluctuation,
    /// Amplitude/frequency noise on control signals (includes 1/f phase
    /// noise).
    ControlSignalNoise,
    /// Double-ionization event destroying a qubit.
    DoubleIonization,
    /// Ions exchanging positions in the chain (loss of order).
    OrderLoss,
    /// Loss of the entire chain.
    ChainLoss,
    /// State-preparation-and-measurement error (stable, sub-1%).
    Spam,
}

impl FaultKind {
    /// All catalogued fault kinds.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::BeamIntensityMiscalibration,
        FaultKind::LightShiftMiscalibration,
        FaultKind::BeamMisalignment,
        FaultKind::VibrationalBusExcitation,
        FaultKind::SidebandAnharmonicity,
        FaultKind::HeatingFluctuation,
        FaultKind::ControlSignalNoise,
        FaultKind::DoubleIonization,
        FaultKind::OrderLoss,
        FaultKind::ChainLoss,
        FaultKind::Spam,
    ];

    /// Placement on the determinism axis.
    pub fn determinism(&self) -> Determinism {
        match self {
            FaultKind::BeamIntensityMiscalibration
            | FaultKind::LightShiftMiscalibration
            | FaultKind::BeamMisalignment
            | FaultKind::VibrationalBusExcitation
            | FaultKind::SidebandAnharmonicity
            | FaultKind::Spam => Determinism::Deterministic,
            FaultKind::HeatingFluctuation
            | FaultKind::ControlSignalNoise
            | FaultKind::DoubleIonization
            | FaultKind::OrderLoss
            | FaultKind::ChainLoss => Determinism::Stochastic,
        }
    }

    /// Placement on the unitarity axis.
    pub fn unitarity(&self) -> Unitarity {
        match self {
            FaultKind::BeamIntensityMiscalibration
            | FaultKind::LightShiftMiscalibration
            | FaultKind::BeamMisalignment
            | FaultKind::HeatingFluctuation
            | FaultKind::ControlSignalNoise => Unitarity::Unitary,
            FaultKind::VibrationalBusExcitation
            | FaultKind::SidebandAnharmonicity
            | FaultKind::DoubleIonization
            | FaultKind::OrderLoss
            | FaultKind::ChainLoss
            | FaultKind::Spam => Unitarity::NonUnitary,
        }
    }

    /// Typical time scale.
    pub fn time_scale(&self) -> TimeScale {
        match self {
            FaultKind::BeamIntensityMiscalibration
            | FaultKind::BeamMisalignment
            | FaultKind::Spam => TimeScale::Static,
            FaultKind::LightShiftMiscalibration
            | FaultKind::VibrationalBusExcitation
            | FaultKind::SidebandAnharmonicity => TimeScale::Slow,
            FaultKind::HeatingFluctuation
            | FaultKind::ControlSignalNoise
            | FaultKind::DoubleIonization
            | FaultKind::OrderLoss
            | FaultKind::ChainLoss => TimeScale::Fast,
        }
    }

    /// `true` for the fault class the paper's protocols target: faults
    /// that are detectable by single-output tests and fixable by
    /// recalibrating a qubit coupling.
    pub fn is_recalibration_target(&self) -> bool {
        self.determinism() == Determinism::Deterministic && self.unitarity() == Unitarity::Unitary
    }

    /// Human-readable description (the cell text of Table I).
    pub fn description(&self) -> &'static str {
        match self {
            FaultKind::BeamIntensityMiscalibration => {
                "inexact calibration of beam intensity (wrong gain applied to illuminating beams)"
            }
            FaultKind::LightShiftMiscalibration => "light-shift miscalibration shifting gate phases",
            FaultKind::BeamMisalignment => "beam misalignment degrading effective rotation angles",
            FaultKind::VibrationalBusExcitation => {
                "unintended bit flips from vibrational-bus excitation (residual spin-motion coupling)"
            }
            FaultKind::SidebandAnharmonicity => "bit flips induced by sidebands or anharmonicity",
            FaultKind::HeatingFluctuation => "random parameter fluctuations due to motional heating",
            FaultKind::ControlSignalNoise => "control-signal noise in amplitude and frequency",
            FaultKind::DoubleIonization => "double-ionization event",
            FaultKind::OrderLoss => "loss of ion order in the chain",
            FaultKind::ChainLoss => "loss of the ion chain",
            FaultKind::Spam => "state preparation and measurement errors (stable, <1%)",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.description())
    }
}

/// One quadrant of Table I.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaxonomyCell {
    /// Determinism coordinate.
    pub determinism: Determinism,
    /// Unitarity coordinate.
    pub unitarity: Unitarity,
    /// The fault kinds in this quadrant.
    pub kinds: Vec<FaultKind>,
}

/// Reconstructs Table I: the four (determinism × unitarity) quadrants with
/// their member fault kinds.
pub fn table_one() -> Vec<TaxonomyCell> {
    let mut cells = Vec::new();
    for det in [Determinism::Deterministic, Determinism::Stochastic] {
        for uni in [Unitarity::Unitary, Unitarity::NonUnitary] {
            let kinds = FaultKind::ALL
                .iter()
                .copied()
                .filter(|k| k.determinism() == det && k.unitarity() == uni)
                .collect();
            cells.push(TaxonomyCell { determinism: det, unitarity: uni, kinds });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_four_nonempty_quadrants() {
        let t = table_one();
        assert_eq!(t.len(), 4);
        for cell in &t {
            assert!(
                !cell.kinds.is_empty(),
                "quadrant {:?}/{:?} is empty",
                cell.determinism,
                cell.unitarity
            );
        }
    }

    #[test]
    fn every_kind_appears_exactly_once() {
        let t = table_one();
        let total: usize = t.iter().map(|c| c.kinds.len()).sum();
        assert_eq!(total, FaultKind::ALL.len());
    }

    #[test]
    fn recalibration_targets_are_deterministic_unitary() {
        // The protocols target the deterministic-unitary quadrant — the
        // paper's "dominant faults".
        assert!(FaultKind::BeamIntensityMiscalibration.is_recalibration_target());
        assert!(FaultKind::LightShiftMiscalibration.is_recalibration_target());
        assert!(!FaultKind::ChainLoss.is_recalibration_target());
        assert!(!FaultKind::HeatingFluctuation.is_recalibration_target());
    }

    #[test]
    fn paper_table_examples_placed_correctly() {
        // Table I, top-left: beam-intensity miscalibration is
        // deterministic & unitary, usually static in time.
        let k = FaultKind::BeamIntensityMiscalibration;
        assert_eq!(k.determinism(), Determinism::Deterministic);
        assert_eq!(k.unitarity(), Unitarity::Unitary);
        assert_eq!(k.time_scale(), TimeScale::Static);
        // Bottom-right: chain loss is stochastic & non-unitary.
        let k = FaultKind::ChainLoss;
        assert_eq!(k.determinism(), Determinism::Stochastic);
        assert_eq!(k.unitarity(), Unitarity::NonUnitary);
    }

    #[test]
    fn descriptions_are_nonempty_and_lowercase() {
        for k in FaultKind::ALL {
            let d = k.description();
            assert!(!d.is_empty());
            assert!(d.chars().next().unwrap().is_lowercase());
        }
    }
}
