//! Calibration drift processes.
//!
//! Between recalibrations, each coupling's amplitude error evolves under
//! slow physical drifts (stray-field charging, thermal/optomechanical
//! drifts — §II-B). Two standard models are provided: an unbounded random
//! walk and a mean-reverting Ornstein–Uhlenbeck process, plus a
//! jump-outlier overlay reproducing the paper's observation (Fig. 7C) that
//! a handful of couplings drift far outside the calibration band while the
//! rest stay within ~6%.

use itqc_math::rng::standard_normal;
use rand::Rng;

/// A stochastic process advancing a scalar calibration error in time.
pub trait DriftProcess {
    /// Advances `value` by `dt` minutes and returns the new value.
    fn advance<R: Rng + ?Sized>(&self, value: f64, dt_minutes: f64, rng: &mut R) -> f64;
}

/// Brownian drift: `dx = σ·√dt·ξ` per step (σ in error-units per √minute).
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RandomWalkDrift {
    /// Diffusion amplitude per √minute.
    pub sigma_per_sqrt_min: f64,
}

impl DriftProcess for RandomWalkDrift {
    fn advance<R: Rng + ?Sized>(&self, value: f64, dt_minutes: f64, rng: &mut R) -> f64 {
        value + self.sigma_per_sqrt_min * dt_minutes.max(0.0).sqrt() * standard_normal(rng)
    }
}

/// Mean-reverting drift toward 0 with relaxation time `tau` minutes and
/// stationary deviation `sigma`.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OrnsteinUhlenbeckDrift {
    /// Relaxation time in minutes.
    pub tau_minutes: f64,
    /// Stationary standard deviation.
    pub sigma: f64,
}

impl DriftProcess for OrnsteinUhlenbeckDrift {
    fn advance<R: Rng + ?Sized>(&self, value: f64, dt_minutes: f64, rng: &mut R) -> f64 {
        let decay = (-dt_minutes.max(0.0) / self.tau_minutes).exp();
        let kick = self.sigma * (1.0 - decay * decay).sqrt();
        value * decay + kick * standard_normal(rng)
    }
}

/// Drift with occasional large jumps: base OU drift plus a Poisson-rate
/// chance per minute of jumping to a large miscalibration. Reproduces the
/// Fig. 7C phenomenology (most couplings within the 6% band, a few large
/// outliers after 15 minutes of idling).
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JumpDrift {
    /// The smooth component.
    pub base: OrnsteinUhlenbeckDrift,
    /// Expected jumps per minute (per coupling).
    pub jumps_per_minute: f64,
    /// Mean magnitude of a jump (sign random).
    pub jump_scale: f64,
}

impl DriftProcess for JumpDrift {
    fn advance<R: Rng + ?Sized>(&self, value: f64, dt_minutes: f64, rng: &mut R) -> f64 {
        let mut v = self.base.advance(value, dt_minutes, rng);
        let p_jump = 1.0 - (-self.jumps_per_minute * dt_minutes.max(0.0)).exp();
        if rng.gen::<f64>() < p_jump {
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            v += sign * self.jump_scale * (1.0 + 0.5 * standard_normal(rng).abs());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_walk_variance_grows_linearly() {
        let d = RandomWalkDrift { sigma_per_sqrt_min: 0.01 };
        let mut rng = SmallRng::seed_from_u64(4);
        let trials = 20_000;
        let t = 9.0;
        let var: f64 = (0..trials)
            .map(|_| {
                let v = d.advance(0.0, t, &mut rng);
                v * v
            })
            .sum::<f64>()
            / trials as f64;
        let expect = 0.01f64.powi(2) * t;
        assert!((var - expect).abs() < 0.2 * expect, "var {var} vs {expect}");
    }

    #[test]
    fn ou_is_stationary_at_sigma() {
        let d = OrnsteinUhlenbeckDrift { tau_minutes: 10.0, sigma: 0.05 };
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v = 0.0;
        let mut acc = 0.0;
        let n = 50_000;
        for _ in 0..n {
            v = d.advance(v, 1.0, &mut rng);
            acc += v * v;
        }
        let std = (acc / n as f64).sqrt();
        assert!((std - 0.05).abs() < 0.005, "std {std}");
    }

    #[test]
    fn ou_reverts_to_zero() {
        let d = OrnsteinUhlenbeckDrift { tau_minutes: 1.0, sigma: 0.0 };
        let mut rng = SmallRng::seed_from_u64(6);
        let v = d.advance(1.0, 10.0, &mut rng);
        assert!(v.abs() < 1e-4);
    }

    #[test]
    fn jump_drift_produces_outliers() {
        let d = JumpDrift {
            base: OrnsteinUhlenbeckDrift { tau_minutes: 60.0, sigma: 0.02 },
            jumps_per_minute: 0.01,
            jump_scale: 0.20,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        // Simulate 28 couplings idling 15 minutes (Fig. 7 setting).
        let mut outliers = 0;
        let mut within_band = 0;
        for _ in 0..28 * 50 {
            let mut v: f64 = 0.0;
            for _ in 0..15 {
                v = d.advance(v, 1.0, &mut rng);
            }
            if v.abs() > 0.10 {
                outliers += 1;
            }
            if v.abs() < 0.06 {
                within_band += 1;
            }
        }
        // Most couplings stay in the 6% band; a visible minority jump out.
        assert!(within_band > 28 * 50 * 7 / 10, "within {within_band}");
        assert!(outliers > 10, "outliers {outliers}");
    }
}
