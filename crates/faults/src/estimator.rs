//! Gate-fidelity estimation (paper §III, Eqs. 1–2) and the XX-angle
//! monitor used in Fig. 7C.

use itqc_circuit::Circuit;
use itqc_math::lstsq::fit_sin2phi_amplitude;
use itqc_sim::run;
use std::f64::consts::FRAC_PI_2;

/// Eq. (1): average MS-gate fidelity from Lamb–Dicke couplings and mode
/// decoupling residuals,
/// `F = 1 − (4/5)·Σ_p (η²_{p,i} + η²_{p,j})·|α_p|²`.
///
/// `eta_i[p]`/`eta_j[p]` are the Lamb–Dicke parameters of the two ions for
/// mode `p`, `alpha_sqr[p]` is `|α_p|²`, the residual displacement left in
/// mode `p` at the end of the pulse.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn eq1_ms_fidelity(eta_i: &[f64], eta_j: &[f64], alpha_sqr: &[f64]) -> f64 {
    assert!(
        eta_i.len() == eta_j.len() && eta_j.len() == alpha_sqr.len(),
        "mode arrays must have the same length"
    );
    let loss: f64 =
        eta_i.iter().zip(eta_j).zip(alpha_sqr).map(|((ei, ej), a2)| (ei * ei + ej * ej) * a2).sum();
    1.0 - 0.8 * loss
}

/// Result of the two-circuit fidelity estimate of Eq. (2).
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MsFidelityEstimate {
    /// Measured even population `P*₀₀` from the bare-XX circuit.
    pub p00: f64,
    /// Measured even population `P*₁₁` from the bare-XX circuit.
    pub p11: f64,
    /// Fitted parity contrast `Π_contrast`.
    pub contrast: f64,
    /// The Eq. (2) fidelity `(P*₀₀ + P*₁₁ + Π_contrast)/2`.
    pub fidelity: f64,
}

/// Eq. (2) from pre-measured data: even populations of the first circuit
/// plus a parity scan `parity(φ) ≈ Π_contrast·sin(2φ)` from the second
/// (analysis-pulse) circuit.
///
/// # Panics
///
/// Panics if `phis` and `parities` lengths differ.
pub fn eq2_fidelity_from_data(
    p00: f64,
    p11: f64,
    phis: &[f64],
    parities: &[f64],
) -> MsFidelityEstimate {
    assert_eq!(phis.len(), parities.len(), "scan length mismatch");
    let contrast = fit_sin2phi_amplitude(phis, parities).abs();
    MsFidelityEstimate { p00, p11, contrast, fidelity: (p00 + p11 + contrast) / 2.0 }
}

/// Runs the two Eq.-(2) fidelity-determining circuits on the dense
/// simulator for an MS gate implemented as `XX(θ_actual)` and returns the
/// estimate. `scan_points` analysis phases are used (the paper scans φ and
/// fits the parity fringe).
///
/// The two circuits are `XX(θ)` and `(R_φ(π/2)⊗R_φ(π/2))·XX(θ)` on `|00⟩`.
pub fn eq2_fidelity_of_xx(theta_actual: f64, scan_points: usize) -> MsFidelityEstimate {
    assert!(scan_points >= 4, "need at least 4 scan points for a fringe fit");
    // Circuit 1: populations.
    let mut c1 = Circuit::new(2);
    c1.xx(0, 1, theta_actual);
    let s1 = run(&c1);
    let p00 = s1.probability(0b00);
    let p11 = s1.probability(0b11);

    // Circuit 2: parity scan.
    let mut phis = Vec::with_capacity(scan_points);
    let mut parities = Vec::with_capacity(scan_points);
    for k in 0..scan_points {
        let phi = std::f64::consts::PI * k as f64 / scan_points as f64;
        let mut c2 = Circuit::new(2);
        c2.xx(0, 1, theta_actual).r(0, FRAC_PI_2, phi).r(1, FRAC_PI_2, phi);
        let s2 = run(&c2);
        let parity = s2.probability(0b00) + s2.probability(0b11)
            - s2.probability(0b01)
            - s2.probability(0b10);
        phis.push(phi);
        parities.push(parity);
    }
    eq2_fidelity_from_data(p00, p11, &phis, &parities)
}

/// Estimates the implemented `XX(θ)` angle from the even populations of a
/// single application on `|00⟩`: `P₀₀ = cos²(θ/2)`, `P₁₁ = sin²(θ/2)`,
/// hence `θ̂ = 2·atan2(√P₁₁, √P₀₀)`.
///
/// This is the direct MS-gate-quality monitor behind the paper's Fig. 7C
/// angle snapshot.
pub fn estimate_xx_angle(p00: f64, p11: f64) -> f64 {
    2.0 * p11.max(0.0).sqrt().atan2(p00.max(0.0).sqrt())
}

/// Convenience: the under-rotation fraction implied by a measured angle
/// relative to the fully entangling π/2.
pub fn under_rotation_from_angle(theta_measured: f64) -> f64 {
    1.0 - theta_measured / FRAC_PI_2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_perfect_decoupling_gives_unit_fidelity() {
        let eta = [0.1, 0.08, 0.05];
        assert_eq!(eq1_ms_fidelity(&eta, &eta, &[0.0, 0.0, 0.0]), 1.0);
    }

    #[test]
    fn eq1_loss_scales_with_eta_and_alpha() {
        let f = eq1_ms_fidelity(&[0.1], &[0.2], &[0.5]);
        let expect = 1.0 - 0.8 * (0.01 + 0.04) * 0.5;
        assert!((f - expect).abs() < 1e-15);
    }

    #[test]
    fn eq2_perfect_gate_estimates_one() {
        let est = eq2_fidelity_of_xx(FRAC_PI_2, 16);
        assert!((est.fidelity - 1.0).abs() < 1e-9, "F = {}", est.fidelity);
        assert!((est.p00 - 0.5).abs() < 1e-9);
        assert!((est.p11 - 0.5).abs() < 1e-9);
        assert!((est.contrast - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eq2_underrotated_gate_loses_fidelity_quadratically() {
        // XX(π/2 + ε): populations unbalance as cos²/sin² and the paper
        // predicts contrast cos(ε).
        let eps = 0.2;
        let est = eq2_fidelity_of_xx(FRAC_PI_2 + eps, 32);
        assert!(est.fidelity < 1.0 - eps * eps / 8.0);
        assert!(est.fidelity > 0.9);
        assert!((est.contrast - eps.cos()).abs() < 0.02, "contrast {}", est.contrast);
    }

    #[test]
    fn eq2_monotone_in_error() {
        let mut last = 1.1;
        for &eps in &[0.0, 0.1, 0.2, 0.3, 0.4] {
            let f = eq2_fidelity_of_xx(FRAC_PI_2 + eps, 16).fidelity;
            assert!(f < last, "fidelity must decrease with ε");
            last = f;
        }
    }

    #[test]
    fn angle_monitor_round_trip() {
        for &u in &[0.0, 0.05, 0.15, 0.47] {
            let theta = FRAC_PI_2 * (1.0 - u);
            let p00 = (theta / 2.0).cos().powi(2);
            let p11 = (theta / 2.0).sin().powi(2);
            let est = estimate_xx_angle(p00, p11);
            assert!((est - theta).abs() < 1e-12);
            assert!((under_rotation_from_angle(est) - u).abs() < 1e-12);
        }
    }
}
