//! State-preparation and measurement (SPAM) errors.
//!
//! The paper notes SPAM errors on ion traps are below 1% and *stable*, so
//! they "can be addressed in post-processing" (§III). We model asymmetric
//! per-qubit readout flips and provide the standard post-processing
//! inversion for marginal probabilities.

use rand::Rng;

/// Independent per-qubit readout flip model: a prepared/true `0` reads `1`
/// with probability `p01`, a true `1` reads `0` with probability `p10`.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpamModel {
    /// P(read 1 | true 0).
    pub p01: f64,
    /// P(read 0 | true 1).
    pub p10: f64,
}

impl SpamModel {
    /// A perfect-readout model.
    pub const IDEAL: SpamModel = SpamModel { p01: 0.0, p10: 0.0 };

    /// Creates a SPAM model.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]`.
    pub fn new(p01: f64, p10: f64) -> Self {
        assert!((0.0..=1.0).contains(&p01) && (0.0..=1.0).contains(&p10), "bad flip rates");
        SpamModel { p01, p10 }
    }

    /// Corrupts an `n_qubits`-bit measurement outcome with independent
    /// readout flips.
    pub fn corrupt<R: Rng + ?Sized>(&self, outcome: usize, n_qubits: usize, rng: &mut R) -> usize {
        if self.p01 == 0.0 && self.p10 == 0.0 {
            return outcome;
        }
        let mut out = outcome;
        for q in 0..n_qubits {
            let bit = (outcome >> q) & 1;
            let flip_p = if bit == 0 { self.p01 } else { self.p10 };
            if flip_p > 0.0 && rng.gen::<f64>() < flip_p {
                out ^= 1 << q;
            }
        }
        out
    }

    /// The probability that the true string `target` is read out
    /// *unchanged* (the dominant attenuation factor for single-output
    /// tests).
    pub fn retention(&self, target: u128, n_qubits: usize) -> f64 {
        let mask: u128 = if n_qubits >= 128 { u128::MAX } else { (1u128 << n_qubits) - 1 };
        let ones = (target & mask).count_ones() as i32;
        let zeros = n_qubits as i32 - ones;
        (1.0 - self.p01).powi(zeros) * (1.0 - self.p10).powi(ones)
    }

    /// Post-processing correction of a single-qubit "one" probability:
    /// inverts `p̂ = p01 + p·(1 − p01 − p10)`, clamped to `[0, 1]`.
    ///
    /// This is the stable-SPAM correction the paper alludes to.
    pub fn correct_marginal(&self, measured_p_one: f64) -> f64 {
        let denom = 1.0 - self.p01 - self.p10;
        if denom.abs() < 1e-12 {
            return measured_p_one;
        }
        ((measured_p_one - self.p01) / denom).clamp(0.0, 1.0)
    }
}

impl Default for SpamModel {
    fn default() -> Self {
        SpamModel::IDEAL
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_model_is_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        for x in 0..16 {
            assert_eq!(SpamModel::IDEAL.corrupt(x, 4, &mut rng), x);
        }
        assert_eq!(SpamModel::IDEAL.retention(0b1010, 4), 1.0);
    }

    #[test]
    fn corrupt_statistics() {
        let spam = SpamModel::new(0.02, 0.05);
        let mut rng = SmallRng::seed_from_u64(2);
        let trials = 100_000;
        let mut flips0 = 0usize;
        let mut flips1 = 0usize;
        for _ in 0..trials {
            // true string 0b01: qubit0 = 1, qubit1 = 0
            let read = spam.corrupt(0b01, 2, &mut rng);
            if read & 0b01 == 0 {
                flips1 += 1;
            }
            if read & 0b10 != 0 {
                flips0 += 1;
            }
        }
        assert!((flips1 as f64 / trials as f64 - 0.05).abs() < 0.005);
        assert!((flips0 as f64 / trials as f64 - 0.02).abs() < 0.005);
    }

    #[test]
    fn retention_formula() {
        let spam = SpamModel::new(0.01, 0.03);
        let r = spam.retention(0b011, 3);
        assert!((r - 0.99 * 0.97f64.powi(2)).abs() < 1e-12);
    }

    #[test]
    fn marginal_correction_round_trip() {
        let spam = SpamModel::new(0.02, 0.04);
        let p_true = 0.37;
        let p_meas = spam.p01 + p_true * (1.0 - spam.p01 - spam.p10);
        assert!((spam.correct_marginal(p_meas) - p_true).abs() < 1e-12);
    }
}
