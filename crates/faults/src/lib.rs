//! Fault taxonomy and noise models for ion-trap quantum computers.
//!
//! Implements §III of the paper: the Table-I fault classification
//! ([`taxonomy`]), the Fig.-4 unitary fault models ([`models`]), the noise
//! processes of the paper's validated unitary-error simulator — 1/f phase
//! noise ([`phase_noise`]), residual bus coupling ([`residual`]), SPAM
//! ([`spam`]) — calibration drift ([`drift`]), the Eq. (1)/(2) fidelity
//! estimators ([`estimator`]), and the composite
//! [`noise_model::IonTrapNoise`] trajectory model gluing it
//! all together.
//!
//! The Fig.-9 composite under-rotation distribution lives in
//! [`itqc_math::rng::CompositeUnderRotation`] and is re-exported here.

#![warn(missing_docs)]

pub mod adversarial;
pub mod drift;
pub mod estimator;
pub mod models;
pub mod noise_model;
pub mod phase_noise;
pub mod residual;
pub mod spam;
pub mod taxonomy;

pub use adversarial::{AdversarialScenario, ConfigClass};
pub use itqc_math::rng::CompositeUnderRotation;
pub use models::CouplingFault;
pub use noise_model::IonTrapNoise;
pub use spam::SpamModel;
pub use taxonomy::{Determinism, FaultKind, TimeScale, Unitarity};
