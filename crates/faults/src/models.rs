//! Concrete unitary fault models (paper Fig. 4).
//!
//! The paper models dominant faults as small parameter deviations of the
//! native gates: a single-qubit gate becomes `R(θ+δθ, φ+δφ)` and an MS gate
//! becomes `M(θ+δθ, φ₁+δφ₁, φ₂+δφ₂)`. The headline fault studied throughout
//! the evaluation is the *amplitude miscalibration* (under-/over-rotation)
//! of a qubit coupling: `XX(θ) → XX(θ·(1−u))`.

use itqc_circuit::{Coupling, Gate, Op};

/// An under-/over-rotation of one qubit coupling: every MS gate on the
/// coupling rotates by `θ·(1−under_rotation)` instead of `θ`.
///
/// Positive values are under-rotations (the paper's convention, e.g. the
/// artificial "47% and 22% under-rotations" of Fig. 6); negative values are
/// over-rotations.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CouplingFault {
    /// The affected coupling.
    pub coupling: Coupling,
    /// Relative amplitude error `u`; the implemented angle is `θ(1−u)`.
    pub under_rotation: f64,
}

impl CouplingFault {
    /// Creates a coupling fault.
    pub fn new(coupling: Coupling, under_rotation: f64) -> Self {
        CouplingFault { coupling, under_rotation }
    }

    /// The faulty angle implemented when `theta` is requested.
    pub fn apply_to_angle(&self, theta: f64) -> f64 {
        theta * (1.0 - self.under_rotation)
    }

    /// `true` when the fault magnitude exceeds the calibration threshold
    /// (the paper uses 6% as the in-calibration band and ~10% as the
    /// recalibration trigger in Fig. 7C).
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.under_rotation.abs() > threshold
    }
}

/// Small-parameter deviation of a single-qubit gate: the paper's
/// `R(θ+δθ, φ+δφ)` model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OneQubitError {
    /// Additive angle error δθ.
    pub dtheta: f64,
    /// Additive axis-phase error δφ.
    pub dphi: f64,
}

impl OneQubitError {
    /// Perturbs a single-qubit rotation gate; non-rotation gates are
    /// returned unchanged (they are not directly driven by a pulse whose
    /// amplitude/phase could err — they lower to rotations first).
    pub fn perturb(&self, gate: Gate) -> Gate {
        match gate {
            Gate::R { theta, phi } => Gate::R { theta: theta + self.dtheta, phi: phi + self.dphi },
            Gate::Rx(t) => Gate::R { theta: t + self.dtheta, phi: self.dphi },
            Gate::Ry(t) => {
                Gate::R { theta: t + self.dtheta, phi: std::f64::consts::FRAC_PI_2 + self.dphi }
            }
            other => other,
        }
    }
}

/// Small-parameter deviation of an MS gate: the paper's `M(θ+δθ, φ₁+δφ₁,
/// φ₂+δφ₂)` model (Fig. 4).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MsError {
    /// Additive entangling-angle error δθ.
    pub dtheta: f64,
    /// Beam-phase error at the first ion.
    pub dphi1: f64,
    /// Beam-phase error at the second ion.
    pub dphi2: f64,
}

impl MsError {
    /// A pure amplitude error with relative under-rotation `u` at the
    /// fully-entangling angle π/2: δθ = −u·π/2.
    pub fn from_under_rotation(u: f64) -> Self {
        MsError { dtheta: -u * std::f64::consts::FRAC_PI_2, dphi1: 0.0, dphi2: 0.0 }
    }

    /// Perturbs an MS-family gate; other gates pass through unchanged.
    pub fn perturb(&self, gate: Gate) -> Gate {
        match gate {
            Gate::Xx(t) => Gate::Ms { theta: t + self.dtheta, phi1: self.dphi1, phi2: self.dphi2 },
            Gate::Ms { theta, phi1, phi2 } => Gate::Ms {
                theta: theta + self.dtheta,
                phi1: phi1 + self.dphi1,
                phi2: phi2 + self.dphi2,
            },
            other => other,
        }
    }
}

/// Rewrites one op according to a set of coupling faults (deterministic
/// part of the machine model). Ops on healthy couplings pass through.
pub fn apply_coupling_faults(op: &Op, faults: &[CouplingFault]) -> Op {
    let Some(coupling) = op.coupling() else {
        return *op;
    };
    let Some(fault) = faults.iter().find(|f| f.coupling == coupling) else {
        return *op;
    };
    match op.gate {
        Gate::Xx(t) => Op::two(Gate::Xx(fault.apply_to_angle(t)), op.qubits()[0], op.qubits()[1]),
        Gate::Ms { theta, phi1, phi2 } => Op::two(
            Gate::Ms { theta: fault.apply_to_angle(theta), phi1, phi2 },
            op.qubits()[0],
            op.qubits()[1],
        ),
        // Non-MS two-qubit gates don't exist on the native machine; leave
        // them untouched so pre-transpile circuits stay valid.
        _ => *op,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_circuit::Circuit;
    use itqc_sim::run;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn coupling_fault_scales_angle() {
        let f = CouplingFault::new(Coupling::new(0, 4), 0.47);
        assert!((f.apply_to_angle(FRAC_PI_2) - FRAC_PI_2 * 0.53).abs() < 1e-15);
        assert!(f.exceeds(0.10));
        assert!(!f.exceeds(0.50));
    }

    #[test]
    fn apply_faults_only_touches_matching_coupling() {
        let faults = [CouplingFault::new(Coupling::new(0, 4), 0.5)];
        let hit = Op::two(Gate::Xx(FRAC_PI_2), 4, 0);
        let miss = Op::two(Gate::Xx(FRAC_PI_2), 0, 3);
        let hit_out = apply_coupling_faults(&hit, &faults);
        let miss_out = apply_coupling_faults(&miss, &faults);
        assert_eq!(hit_out.gate, Gate::Xx(FRAC_PI_2 * 0.5));
        assert_eq!(miss_out.gate, Gate::Xx(FRAC_PI_2));
    }

    #[test]
    fn ms_error_from_under_rotation_matches_scaling() {
        // At θ = π/2, the additive model must equal the multiplicative one.
        let u = 0.22;
        let e = MsError::from_under_rotation(u);
        let g = e.perturb(Gate::Xx(FRAC_PI_2));
        match g {
            Gate::Ms { theta, .. } => {
                assert!((theta - FRAC_PI_2 * (1.0 - u)).abs() < 1e-15);
            }
            _ => panic!("expected MS gate"),
        }
    }

    #[test]
    fn one_qubit_error_perturbs_rotations_only() {
        let e = OneQubitError { dtheta: 0.01, dphi: 0.02 };
        assert_eq!(e.perturb(Gate::Rx(1.0)), Gate::R { theta: 1.01, phi: 0.02 });
        assert_eq!(e.perturb(Gate::H), Gate::H);
    }

    #[test]
    fn faulty_test_circuit_leaks_fidelity() {
        // End-to-end: the four-MS single-output test detects a 22%
        // under-rotation exactly as the analytic formula predicts.
        let fault = CouplingFault::new(Coupling::new(0, 1), 0.22);
        let mut c = Circuit::new(2);
        for _ in 0..4 {
            c.xx(0, 1, FRAC_PI_2);
        }
        let mut noisy = Circuit::new(2);
        for op in c.ops() {
            noisy.push(apply_coupling_faults(op, &[fault]));
        }
        let f = run(&noisy).probability(0);
        let expect = (std::f64::consts::PI * 0.22).cos().powi(2);
        assert!((f - expect).abs() < 1e-12);
    }
}
