//! The Fig. 3 echoed-vs-non-echoed MS-sequence study, shared between
//! the `fig3` binary and the tier-2 statistical regression suite.
//!
//! In a non-echoed sequence every MS gate has the same beam phases, so
//! a deterministic calibration error accumulates coherently; echoing
//! (π phase shift on one ion's drive every other gate) reverses the XX
//! rotation and cancels it pairwise, leaving only stochastic noise.

use itqc_circuit::{Circuit, Coupling};
use itqc_faults::models::CouplingFault;
use itqc_faults::phase_noise::OneOverF;
use itqc_faults::IonTrapNoise;
use itqc_sim::trajectory::run_trajectory;
use itqc_sim::{run, StateVector};
use itqc_trap::chain::{eq1_fidelity_for_pair, IonChain, PulseSegment};
use rand::rngs::SmallRng;
use std::f64::consts::{FRAC_PI_2, PI};

/// The two qubit pairs the paper plots ({3,8} and {0,10} of an 11-ion
/// chain).
pub const FIG3_PAIRS: [(usize, usize); 2] = [(3, 8), (0, 10)];

/// Deterministic calibration offsets per pair (edge pairs couple to
/// more spectator modes — {0,10} is taken slightly worse, matching the
/// ordering visible in the paper's data).
pub const FIG3_CALIB: [f64; 2] = [0.012, 0.020];

/// RMS of the slow 1/f beam-phase noise.
pub const FIG3_PHASE_RMS: f64 = 0.05;

/// Builds the K-gate sequence on a 2-qubit register; `echoed` shifts
/// one ion's phase by π on every other gate.
pub fn sequence(k: usize, echoed: bool) -> Circuit {
    let mut c = Circuit::new(2);
    for g in 0..k {
        let phi1 = if echoed && g % 2 == 1 { PI } else { 0.0 };
        c.ms(0, 1, FRAC_PI_2, phi1, 0.0);
    }
    c
}

/// Per-pair residual odd population derived from the 11-ion chain's
/// mode structure via the paper's Eq. (1), in [`FIG3_PAIRS`] order.
pub fn chain_residuals() -> [f64; 2] {
    let chain = IonChain::new(11);
    let anisotropy: f64 = 25.0;
    let omega_com = anisotropy.sqrt();
    let tau = 2.0 * PI / omega_com * 40.0;
    let pulse = [PulseSegment { amplitude: 0.05, duration: tau * 1.004 }];
    let mut out = [0.0; 2];
    for (slot, &(i, j)) in out.iter_mut().zip(FIG3_PAIRS.iter()) {
        let f = eq1_fidelity_for_pair(&chain, anisotropy, 0.08, &pulse, i, j);
        *slot = (1.0 - f).clamp(0.0, 0.05);
    }
    out
}

/// Average infidelity of the noisy sequence against its ideal output.
pub fn infidelity(
    k: usize,
    echoed: bool,
    calib_error: f64,
    phase_rms: f64,
    residual_odd: f64,
    trials: usize,
    rng: &mut SmallRng,
) -> f64 {
    let circuit = sequence(k, echoed);
    let ideal: StateVector = run(&circuit);
    let mut model = IonTrapNoise::new()
        .with_coupling_fault(CouplingFault::new(Coupling::new(0, 1), calib_error))
        .with_residual_coupling(residual_odd);
    if phase_rms > 0.0 {
        model = model.with_phase_noise(OneOverF::new(phase_rms, 1.0, 8), 0.2);
    }
    let mut acc = 0.0;
    for _ in 0..trials {
        let noisy = run_trajectory(&circuit, &mut model, rng);
        acc += 1.0 - noisy.fidelity(&ideal);
    }
    acc / trials as f64
}
