//! Reusable Monte-Carlo estimators behind the paper's headline numbers.
//!
//! The `table2` binary and the tier-2 statistical regression suite
//! (`tests/paper_regression.rs`) must measure *exactly* the same
//! quantity, so the trial loops live here rather than in the binary.
//! Every estimator runs on [`crate::par_trials`] with per-trial seed
//! streams: results are bit-identical at any thread count.

use crate::ambient::random_couplings;
use crate::{par_trials, split_seed};
use itqc_backend::BackendChoice;
use itqc_core::testplan::ScoreMode;
use itqc_core::{diagnose_all, DecoderPolicy, ExactExecutor, MultiFaultConfig};

/// The planted under-rotation of every Table II fault (§VII: faults of
/// one common magnitude, so the repetition ladder cannot separate them).
pub const TABLE2_FAULT_U: f64 = 0.30;

/// The Table II pipeline configuration for a `k`-fault cell under the
/// given decoder policy (oracle executor: exact scores, no shot noise).
pub fn table2_config(k: usize, decoder: DecoderPolicy) -> MultiFaultConfig {
    MultiFaultConfig {
        reps_ladder: vec![2, 4],
        threshold: 0.5,
        canary_threshold: 0.5,
        shots: 1, // oracle executor: exact scores, no shot noise
        canary_shots: 1,
        max_faults: k + 2,
        decoder,
        // Exact oracle scores: only the forward-model truncation floor.
        ranked_sigma: itqc_core::threshold::observation_sigma(0, 0.0, 4),
        score: ScoreMode::ExactTarget,
        canary_score: ScoreMode::WorstQubit,
        max_threshold_retunes: 4,
        fusion_rounds: 2,
        fault_magnitude: 0.10,
        canary_rotations: 0,
        canary_seed: 0,
    }
}

/// Monte-Carlo probability that the full sequential pipeline identifies
/// `k` planted same-magnitude faults on an `n`-qubit machine *exactly*
/// (diagnosed set equals planted set) — one Table II cell.
///
/// Each trial plants and diagnoses its own fault set from a private
/// seeded stream, so the success count is `--threads`-invariant.
pub fn table2_identification_rate(
    n: usize,
    k: usize,
    trials: usize,
    threads: usize,
    decoder: DecoderPolicy,
    seed: u64,
) -> f64 {
    identification_rate_with(n, k, trials, threads, &table2_config(k, decoder), false, seed)
}

/// [`table2_identification_rate`] with every exact score routed through
/// a simulation backend — the beyond-paper (`table2_xl`) path. The
/// inline oracle evaluates `ExactTarget` by a `2^c` Gray sum per
/// component, fine up to the paper's 16-qubit components but
/// intractable at the 32-qubit components of an `N = 64` machine; a
/// backend preparation answers the same target from the chain sampler's
/// polynomial `(z_T, k)` table instead. Same trial structure, faults
/// and seed streams as the inline path — thread-invariant.
pub fn table2_identification_rate_backed(
    n: usize,
    k: usize,
    trials: usize,
    threads: usize,
    decoder: DecoderPolicy,
    backend: BackendChoice,
    seed: u64,
) -> f64 {
    identification_rate_inner(
        n,
        k,
        trials,
        threads,
        &table2_config(k, decoder),
        false,
        Some(backend),
        seed,
    )
}

/// [`table2_identification_rate`] with an explicit pipeline
/// configuration and optional 300-shot binomial sampling on every test
/// score — the knobs the evidence-fusion regression and property tests
/// turn (fusion on/off at fixed seeds, exact vs shot-noisy
/// observations). Thread-invariant like every `par_trials` estimator.
pub fn identification_rate_with(
    n: usize,
    k: usize,
    trials: usize,
    threads: usize,
    config: &MultiFaultConfig,
    shot_sampled: bool,
    seed: u64,
) -> f64 {
    identification_rate_inner(n, k, trials, threads, config, shot_sampled, None, seed)
}

#[allow(clippy::too_many_arguments)]
fn identification_rate_inner(
    n: usize,
    k: usize,
    trials: usize,
    threads: usize,
    config: &MultiFaultConfig,
    shot_sampled: bool,
    backend: Option<BackendChoice>,
    seed: u64,
) -> f64 {
    use rand::Rng;
    let outcomes = par_trials(
        threads,
        trials,
        |t| split_seed(seed, t),
        |_, rng| {
            let faults = random_couplings(n, k, rng);
            let mut exec =
                ExactExecutor::new(n).with_faults(faults.iter().map(|&c| (c, TABLE2_FAULT_U)));
            if let Some(choice) = backend {
                exec = exec.with_backend(choice);
            }
            let mut truth = faults.clone();
            truth.sort();
            if shot_sampled {
                let mut cfg = config.clone();
                cfg.shots = 300;
                cfg.canary_shots = 300;
                let mut shot_exec = crate::ShotSampled::new(exec, rng.gen());
                diagnose_all(&mut shot_exec, n, &cfg).couplings() == truth
            } else {
                let mut exec = exec;
                diagnose_all(&mut exec, n, config).couplings() == truth
            }
        },
    );
    outcomes.iter().filter(|&&ok| ok).count() as f64 / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fault_cell_is_exact_at_8_qubits() {
        for decoder in DecoderPolicy::ALL {
            let p = table2_identification_rate(8, 1, 40, 1, decoder, 20220402);
            assert_eq!(p, 1.0, "{decoder}");
        }
    }

    #[test]
    fn rate_is_thread_invariant() {
        let serial = table2_identification_rate(8, 2, 24, 1, DecoderPolicy::Ranked, 7);
        let parallel = table2_identification_rate(8, 2, 24, 8, DecoderPolicy::Ranked, 7);
        assert_eq!(serial, parallel);
    }
}
