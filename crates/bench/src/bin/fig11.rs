//! Fig. 11 — how many couplings real circuits actually use.
//!
//! Generates a representative algorithm suite ("real-life quantum
//! circuits", standing in for the workload set of the paper's ref.\ \[27\]),
//! lowers each circuit to the native ion gate set, and censuses the
//! distinct couplings exercised. Panel A: utilised couplings vs qubit
//! count; panel B: utilised fraction of all `C(N,2)` couplings. The paper
//! observes the average utilisation scaling like ~1/3 of all couplings —
//! the headroom that lets circuits be mapped *around* diagnosed faulty
//! couplings instead of recalibrating immediately (§VIII).
//!
//! The suite and census live in [`itqc_bench::coupling_census`], shared
//! with the tier-2 regression suite; each circuit transpiles on its own
//! parallel-engine worker, so stdout is byte-identical at any
//! `--threads` value.

use itqc_bench::coupling_census::{fig11_rows, fraction_by_size, suite_average_fraction};
use itqc_bench::output::{pct, section, Table};
use itqc_bench::Args;

fn main() {
    let args = Args::parse(1);
    section("Fig. 11: utilised couplings in real-life circuits (native gate set)");
    eprintln!("[fig11] running on {} thread(s)", args.threads());

    let rows = fig11_rows(args.seed_for("fig11"), args.threads);
    let mut t = Table::new(["circuit", "qubits", "used", "of total", "fraction"]);
    for row in &rows {
        t.row([
            row.name.clone(),
            row.qubits.to_string(),
            row.used.to_string(),
            row.total.to_string(),
            pct(row.fraction),
        ]);
    }
    println!("{}", t.render());

    // Panel-style aggregation by qubit count.
    section("aggregated by circuit size (panels A and B)");
    let mut agg = Table::new(["qubits", "avg used", "total", "avg fraction"]);
    for (n, avg_used, avg_frac) in fraction_by_size(&rows) {
        agg.row([
            n.to_string(),
            format!("{avg_used:.1}"),
            (n * (n - 1) / 2).to_string(),
            pct(avg_frac),
        ]);
    }
    println!("{}", agg.render());
    println!(
        "suite-average utilised fraction: {} (paper's blue line: ~1/3 of all couplings;\n\
         the exact level depends on the workload mix — chain-structured algorithms pull\n\
         it down, QFT-like all-to-all algorithms pull it up)",
        pct(suite_average_fraction(&rows))
    );
    if args.csv {
        println!("\n{}", t.to_csv());
    }
}
