//! Fig. 11 — how many couplings real circuits actually use.
//!
//! Generates a representative algorithm suite ("real-life quantum
//! circuits", standing in for the workload set of the paper's ref.\ \[27\]),
//! lowers each circuit to the native ion gate set, and censuses the
//! distinct couplings exercised. Panel A: utilised couplings vs qubit
//! count; panel B: utilised fraction of all `C(N,2)` couplings. The paper
//! observes the average utilisation scaling like ~1/3 of all couplings —
//! the headroom that lets circuits be mapped *around* diagnosed faulty
//! couplings instead of recalibrating immediately (§VIII).

use itqc_bench::output::{pct, section, Table};
use itqc_bench::Args;
use itqc_circuit::{library, transpile, Circuit};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn census(name: &str, circuit: &Circuit) -> (String, usize, usize, f64) {
    let native = transpile::to_native_optimized(circuit);
    let n = native.n_qubits();
    let used = native.used_couplings().len();
    let total = n * (n - 1) / 2;
    (name.to_string(), n, used, used as f64 / total as f64)
}

fn main() {
    let args = Args::parse(1);
    section("Fig. 11: utilised couplings in real-life circuits (native gate set)");

    let mut rng = SmallRng::seed_from_u64(args.seed_for("fig11"));
    let mut rows: Vec<(String, usize, usize, f64)> = Vec::new();

    for n in [4usize, 6, 8, 10, 12, 16, 20, 24, 28, 32] {
        rows.push(census(&format!("qft-{n}"), &library::qft(n)));
        rows.push(census(&format!("ghz-{n}"), &library::ghz(n)));
        rows.push(census(
            &format!("bv-{}", n - 1),
            &library::bernstein_vazirani((1 << (n - 1)) - 1, n - 1),
        ));
        let edges = library::random_3_regular(n, &mut rng);
        rows.push(census(
            &format!("qaoa3r-{n}"),
            &library::qaoa_maxcut(n, &edges, &[(0.4, 0.8), (0.7, 0.3)]),
        ));
        rows.push(census(&format!("vqe-{n}"), &library::vqe_ansatz(n, 2, &[0.3, 0.5, 0.7])));
        rows.push(census(&format!("ising-{n}"), &library::trotter_ising(n, 3, 1.0, 0.7, 0.1)));
        if n >= 6 && n % 2 == 0 {
            let bits = (n - 2) / 2;
            if bits >= 1 {
                rows.push(census(&format!("adder-{}b", bits), &library::cuccaro_adder(bits)));
            }
        }
        if n <= 10 {
            rows.push(census(&format!("grover-{n}"), &library::grover(n.min(6), 1, 2)));
        }
        rows.push(census(&format!("wstate-{n}"), &library::w_state(n)));
        if n <= 12 {
            rows.push(census(&format!("qpe-{}b", n - 1), &library::phase_estimation(n - 1, 0.3)));
        }
        rows.push(census(&format!("random-{n}"), &library::random_circuit(n, 4, &mut rng)));
    }

    let mut t = Table::new(["circuit", "qubits", "used", "of total", "fraction"]);
    for (name, n, used, frac) in &rows {
        t.row([
            name.clone(),
            n.to_string(),
            used.to_string(),
            (n * (n - 1) / 2).to_string(),
            pct(*frac),
        ]);
    }
    println!("{}", t.render());

    // Panel-style aggregation by qubit count.
    section("aggregated by circuit size (panels A and B)");
    let mut by_n: BTreeMap<usize, Vec<(usize, f64)>> = BTreeMap::new();
    for (_, n, used, frac) in &rows {
        by_n.entry(*n).or_default().push((*used, *frac));
    }
    let mut agg = Table::new(["qubits", "avg used", "total", "avg fraction"]);
    let mut weighted_frac = 0.0;
    let mut count = 0usize;
    for (n, items) in &by_n {
        let avg_used: f64 = items.iter().map(|(u, _)| *u as f64).sum::<f64>() / items.len() as f64;
        let avg_frac: f64 = items.iter().map(|(_, f)| *f).sum::<f64>() / items.len() as f64;
        weighted_frac += items.iter().map(|(_, f)| *f).sum::<f64>();
        count += items.len();
        agg.row([
            n.to_string(),
            format!("{avg_used:.1}"),
            (n * (n - 1) / 2).to_string(),
            pct(avg_frac),
        ]);
    }
    println!("{}", agg.render());
    println!(
        "suite-average utilised fraction: {} (paper's blue line: ~1/3 of all couplings;\n\
         the exact level depends on the workload mix — chain-structured algorithms pull\n\
         it down, QFT-like all-to-all algorithms pull it up)",
        pct(weighted_frac / count as f64)
    );
    if args.csv {
        println!("\n{}", t.to_csv());
    }
}
