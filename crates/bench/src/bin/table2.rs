//! Table II — probability of identifying 1, 2, and 3 simultaneous
//! same-magnitude faults on 8, 16, and 32 qubits.
//!
//! Equal-magnitude faults cannot be separated by the repetition ladder, so
//! identification rests entirely on the combinatorics: the observed
//! first-round failing set is the union of the individual syndromes, and
//! as faults accumulate, unions start aliasing ("how syndromes start
//! repeating with the increased number of faults", §VII). Each trial
//! plants k distinct faults of 30% under-rotation, runs the full
//! sequential pipeline on a clean machine oracle, and requires the
//! diagnosed set to equal the planted set exactly.
//!
//! The paper's reference values:
//!
//! | qubits | 1 fault | 2 faults | 3 faults |
//! |--------|---------|----------|----------|
//! |   8    |  100%   |   47%    |   22%    |
//! |  16    |  100%   |   23%    |    5%    |
//! |  32    |  100%   |   12%    |    1%    |
//!
//! The main table runs the pipeline with the likelihood-ranked
//! evidence-fusion decoder (`--decoder=ranked`, the reproduction
//! default); a second section ablates the policy (greedy peel vs ranked
//! fusion vs the disputed-member interrogation and set-cover +
//! point-verification fallback extensions) on the 8-qubit cells.

use itqc_bench::output::{pct, section, Table};
use itqc_bench::{table2_identification_rate, table2_identification_rate_backed, Args};
use itqc_core::DecoderPolicy;

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse(300);
    itqc_bench::metrics::init(&args);
    let xl = std::env::args().skip(1).any(|a| a == "--xl");
    let decoder = args.decoder();
    section(&format!("Table II: P(identify) for k same-magnitude faults ({decoder} decoder)"));

    let paper: [[f64; 3]; 3] = [[1.00, 0.47, 0.22], [1.00, 0.23, 0.05], [1.00, 0.12, 0.01]];

    let mut t =
        Table::new(["qubits", "1 fault", "(paper)", "2 faults", "(paper)", "3 faults", "(paper)"]);
    for (ni, n) in [8usize, 16, 32].into_iter().enumerate() {
        let mut cells = vec![n.to_string()];
        for k in 1..=3usize {
            let trials = if n == 32 && k == 3 { args.trials / 2 } else { args.trials };
            let p = table2_identification_rate(
                n,
                k,
                trials.max(2),
                args.threads,
                decoder,
                args.seed_for(&format!("t2/{n}/{k}")),
            );
            cells.push(pct(p));
            cells.push(format!("({})", pct(paper[ni][k - 1])));
        }
        t.row(cells);
    }
    println!("{}", t.render());

    section("decoder-policy ablation, 8 qubits (greedy | ranked | interrogate | set-cover)");
    let mut t2 = Table::new(["faults", "greedy", "ranked", "interrogate", "set-cover"]);
    for k in 1..=3usize {
        let mut cells = vec![k.to_string()];
        for policy in DecoderPolicy::ALL {
            let p = table2_identification_rate(
                8,
                k,
                args.trials.max(2),
                args.threads,
                policy,
                args.seed_for(&format!("t2ab/{policy}/{k}")),
            );
            cells.push(pct(p));
        }
        t2.row(cells);
    }
    println!("{}", t2.render());

    if xl {
        // Beyond-paper scale: N = 64 makes every first-round class a
        // 32-qubit complete component, past the joint-table cap — the
        // exact scores route through the backend seam so the chain
        // sampler's polynomial (z_T, k) tables answer each target.
        section("table2_xl: beyond-paper N = 64 row (backend-routed exact scores)");
        let mut txl = Table::new(["qubits", "1 fault", "2 faults", "3 faults"]);
        let mut cells = vec!["64".to_string()];
        for k in 1..=3usize {
            let trials = if k == 3 { args.trials / 4 } else { args.trials / 2 };
            let p = table2_identification_rate_backed(
                64,
                k,
                trials.max(2),
                args.threads,
                decoder,
                args.backend,
                args.seed_for(&format!("t2xl/64/{k}")),
            );
            cells.push(pct(p));
        }
        txl.row(cells);
        println!("{}", txl.render());
    }

    println!(
        "expected shape: single faults are always identified; multi-fault\n\
         identification decays with fault count and machine size (syndrome\n\
         aliasing grows). The ranked evidence-fusion decoder closes the greedy\n\
         peel's gap to the paper's 3-fault row by accumulating every adaptive\n\
         round's class scores into a shared cover posterior; the interrogation\n\
         and set-cover policies go beyond the paper's pipeline by point-testing\n\
         disputed members (targeted) or every implicated coupling (exhaustive)."
    );
    if args.cost_report {
        let prediction = itqc_bench::cost_report::table2_prediction(args.trials);
        itqc_bench::cost_report::emit("table2", &prediction, started.elapsed());
    }
    itqc_bench::metrics::emit_if_requested("table2", &args, started.elapsed());
}
