//! Table II — probability of identifying 1, 2, and 3 simultaneous
//! same-magnitude faults on 8, 16, and 32 qubits.
//!
//! Equal-magnitude faults cannot be separated by the repetition ladder, so
//! identification rests entirely on the combinatorics: the observed
//! first-round failing set is the union of the individual syndromes, and
//! as faults accumulate, unions start aliasing ("how syndromes start
//! repeating with the increased number of faults", §VII). Each trial
//! plants k distinct faults of 30% under-rotation, runs the full
//! sequential pipeline on a clean machine oracle, and requires the
//! diagnosed set to equal the planted set exactly.
//!
//! The paper's reference values:
//!
//! | qubits | 1 fault | 2 faults | 3 faults |
//! |--------|---------|----------|----------|
//! |   8    |  100%   |   47%    |   22%    |
//! |  16    |  100%   |   23%    |    5%    |
//! |  32    |  100%   |   12%    |    1%    |
//!
//! Also reported: the same trials with the set-cover + point-verification
//! fallback enabled — this workspace's extension beyond the paper's
//! pipeline (an ablation of `MultiFaultConfig::use_cover_fallback`).

use itqc_bench::ambient::random_couplings;
use itqc_bench::output::{pct, section, Table};
use itqc_bench::{par_trials, split_seed, Args};
use itqc_core::testplan::ScoreMode;
use itqc_core::{diagnose_all, ExactExecutor, MultiFaultConfig};

const FAULT_U: f64 = 0.30;

fn run_trials(n: usize, k: usize, trials: usize, threads: usize, fallback: bool, seed: u64) -> f64 {
    let config = MultiFaultConfig {
        reps_ladder: vec![2, 4],
        threshold: 0.5,
        canary_threshold: 0.5,
        shots: 1, // oracle executor: exact scores, no shot noise
        canary_shots: 1,
        max_faults: k + 2,
        use_cover_fallback: fallback,
        score: ScoreMode::ExactTarget,
        canary_score: ScoreMode::WorstQubit,
        max_threshold_retunes: 4,
        fault_magnitude: 0.10,
    };
    // Each trial plants and diagnoses its own fault set from a private
    // seeded stream, so the success count is `--threads`-invariant.
    let outcomes = par_trials(
        threads,
        trials,
        |t| split_seed(seed, t),
        |_, rng| {
            let faults = random_couplings(n, k, rng);
            let mut exec = ExactExecutor::new(n).with_faults(faults.iter().map(|&c| (c, FAULT_U)));
            let report = diagnose_all(&mut exec, n, &config);
            let mut truth = faults.clone();
            truth.sort();
            report.couplings() == truth
        },
    );
    outcomes.iter().filter(|&&ok| ok).count() as f64 / trials as f64
}

fn main() {
    let args = Args::parse(300);
    section("Table II: P(identify) for k same-magnitude faults (paper pipeline)");

    let paper: [[f64; 3]; 3] = [[1.00, 0.47, 0.22], [1.00, 0.23, 0.05], [1.00, 0.12, 0.01]];

    let mut t =
        Table::new(["qubits", "1 fault", "(paper)", "2 faults", "(paper)", "3 faults", "(paper)"]);
    for (ni, n) in [8usize, 16, 32].into_iter().enumerate() {
        let mut cells = vec![n.to_string()];
        for k in 1..=3usize {
            let trials = if n == 32 && k == 3 { args.trials / 2 } else { args.trials };
            let p = run_trials(
                n,
                k,
                trials.max(2),
                args.threads,
                false,
                args.seed_for(&format!("t2/{n}/{k}")),
            );
            cells.push(pct(p));
            cells.push(format!("({})", pct(paper[ni][k - 1])));
        }
        t.row(cells);
    }
    println!("{}", t.render());

    section("extension ablation: set-cover fallback + point verification enabled");
    let mut t2 = Table::new(["qubits", "1 fault", "2 faults", "3 faults"]);
    for n in [8usize, 16, 32] {
        let mut cells = vec![n.to_string()];
        for k in 1..=3usize {
            let trials = (if n == 32 { args.trials / 2 } else { args.trials }).max(2);
            let p = run_trials(
                n,
                k,
                trials,
                args.threads,
                true,
                args.seed_for(&format!("t2fb/{n}/{k}")),
            );
            cells.push(pct(p));
        }
        t2.row(cells);
    }
    println!("{}", t2.render());
    println!(
        "expected shape: single faults are always identified; multi-fault\n\
         identification decays with both fault count and machine size (syndrome\n\
         aliasing grows); the set-cover fallback recovers a large share of the\n\
         collided cases at the price of extra point-verification tests."
    );
}
