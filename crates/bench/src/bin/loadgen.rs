//! `loadgen` — the fleet load driver.
//!
//! Drives a [`Fleet`] through a sustained simulated workload and reports
//! throughput against the ISSUE target of ≥1 M jobs per simulated
//! machine-day. The deterministic end-of-run summary goes to **stdout**
//! (bit-identical at any `--workers`, so CI can diff runs), while
//! wall-clock timings — the only thing the worker count changes — go to
//! **stderr**.
//!
//! ```text
//! $ loadgen --traps=256 --minutes=60 --workers=auto
//! ```
//!
//! Flags (all optional): `--traps=N --workers=N|auto --minutes=N`
//! `--seed=N --qubits=N --rate=F --service-mean=F --cache-budget-mb=N`
//! `--metrics[=PATH]`. Defaults: 256 traps for one simulated hour at
//! the fleet's default operating point (4 jobs/trap/min, 8 s mean
//! service ≈ 1.4 M jobs/simulated-day).
//!
//! `--metrics` enables the `itqc_obs` layer and emits the versioned
//! JSON metrics document (fleet registry merged with the ambient
//! backend/core counters) to stderr, or to a sidecar file with
//! `--metrics=PATH` — never to stdout, which stays worker-diffable.

use itqc_bench::args::MetricsSink;
use itqc_fleet::{Fleet, FleetConfig, MINUTES_PER_DAY};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--traps=N] [--workers=N|auto] [--minutes=N] [--seed=N] \
         [--qubits=N] [--rate=F] [--service-mean=F] [--cache-budget-mb=N] [--metrics[=PATH]]"
    );
    std::process::exit(2);
}

fn parse_flags() -> (FleetConfig, u64, Option<MetricsSink>) {
    let mut config = FleetConfig { traps: 256, ..FleetConfig::default() };
    let mut minutes = 60u64;
    let mut metrics = None;
    for arg in std::env::args().skip(1) {
        // `--metrics` is the one flag with an optional value, so it is
        // matched before the strict `flag=value` split.
        if arg == "--metrics" {
            metrics = Some(MetricsSink::Stderr);
            continue;
        }
        if let Some(path) = arg.strip_prefix("--metrics=") {
            metrics = Some(MetricsSink::File(path.to_string()));
            continue;
        }
        let Some((flag, value)) = arg.split_once('=') else { usage() };
        let ok = match flag {
            "--traps" => value.parse().map(|v| config.traps = v).is_ok(),
            "--workers" if value == "auto" => {
                config.workers = 0;
                true
            }
            "--workers" => value.parse().map(|v| config.workers = v).is_ok(),
            "--minutes" => value.parse().map(|v| minutes = v).is_ok(),
            "--seed" => value.parse().map(|v| config.seed = v).is_ok(),
            "--qubits" => value.parse().map(|v| config.n_qubits = v).is_ok(),
            "--rate" => value.parse().map(|v| config.arrival_rate_per_min = v).is_ok(),
            "--service-mean" => value.parse().map(|v| config.service_secs_mean = v).is_ok(),
            "--cache-budget-mb" => {
                value.parse().map(|v: usize| config.cache_budget_bytes = v << 20).is_ok()
            }
            _ => usage(),
        };
        if !ok {
            usage();
        }
    }
    (config, minutes, metrics)
}

fn main() {
    let (config, minutes, metrics) = parse_flags();
    if metrics.is_some() {
        itqc_obs::set_enabled(true);
    }
    let workers = config.workers;
    let mut fleet = Fleet::new(config);
    let start = Instant::now();
    fleet.run_minutes(minutes);
    let sim_wall = start.elapsed();
    let summary = fleet.summary();
    // Deterministic artifact: stdout only ever depends on
    // (config minus workers, minutes).
    print!("{summary}");
    // Wall-clock telemetry: stderr, so stdout stays diffable.
    let days = minutes as f64 / MINUTES_PER_DAY as f64;
    eprintln!(
        "loadgen: {} traps x {} simulated minutes ({:.3} machine-days) with workers={} \
         in {:.2} s wall",
        summary.traps,
        minutes,
        days,
        if workers == 0 { "auto".to_string() } else { workers.to_string() },
        sim_wall.as_secs_f64()
    );
    eprintln!(
        "loadgen: {:.0} jobs/simulated-machine-day (target 1000000), \
         {:.0} simulated-minutes/wall-second",
        summary.jobs_per_machine_day(),
        minutes as f64 / sim_wall.as_secs_f64().max(1e-9)
    );
    if summary.jobs_per_machine_day() < 1_000_000.0 && minutes > 0 {
        eprintln!("loadgen: WARNING below the 1M jobs/machine-day target");
    }
    if let Some(sink) = &metrics {
        // Merge the fleet's per-instance registry (cache/scheduler
        // counters) into the ambient one (backend/core events flushed
        // at tick barriers) and emit one document.
        itqc_obs::event::flush();
        let registry = itqc_obs::global();
        registry.absorb(fleet.obs());
        let doc = registry.document("loadgen", sim_wall.as_secs_f64());
        itqc_bench::metrics::write_doc(sink, &doc);
    }
}
