//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! 1. **Test statistic** — exact-output-string vs worst-qubit population
//!    scoring, as a function of machine size: quantifies the collapse that
//!    forces the population statistic at scale (DESIGN.md §3.1b).
//! 2. **Threshold retuning** (Fig. 5's "adjust the threshold") — on/off,
//!    on equal-vs-spread multi-fault workloads.
//! 3. **Set-cover fallback** (extension beyond the paper) — what the extra
//!    point-verification tests buy on colliding syndromes.
//! 4. **Canary shot budget** — detection latency vs cost of the per-minute
//!    tripwire.

use itqc_bench::ambient::{
    ambient_executor_uniform, calibrate_threshold_uniform, random_couplings,
};
use itqc_bench::output::{f3, pct, section, Table};
use itqc_bench::{Args, ShotSampled};
use itqc_core::testplan::ScoreMode;
use itqc_core::{
    diagnose_all, DecoderPolicy, Diagnosis, ExactExecutor, LabelSpace, MultiFaultConfig,
    SingleFaultProtocol, TestSpec,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn main() {
    let args = Args::parse(150);

    // ------------------------------------------------------------------
    section("ablation 1: test statistic (exact string vs worst-qubit population)");
    let mut t1 = Table::new([
        "qubits",
        "healthy exact-string",
        "healthy worst-qubit",
        "P(identify u=0.35, exact)",
        "P(identify u=0.35, population)",
    ]);
    for n in [8usize, 16, 32] {
        let mut rng = SmallRng::seed_from_u64(args.seed_for(&format!("ab1/{n}")));
        let space = LabelSpace::new(n);
        let none = BTreeSet::new();
        // Mean healthy first-round scores under ±10% ambient.
        let mut exact_scores = Vec::new();
        let mut pop_scores = Vec::new();
        for _ in 0..20 {
            let exec = ambient_executor_uniform(n, 0.10, &[], &mut rng);
            for class in itqc_core::first_round_classes(&space) {
                let couplings = class.couplings(&space, &none);
                let s_exact = TestSpec::for_couplings("a", &couplings, 2);
                let s_pop =
                    TestSpec::for_couplings("a", &couplings, 2).with_score(ScoreMode::WorstQubit);
                exact_scores.push(exec.exact_score(&s_exact));
                pop_scores.push(exec.exact_score(&s_pop));
            }
        }
        // Identification probability per statistic.
        let mut identify = |score: ScoreMode| -> f64 {
            let threshold =
                calibrate_threshold_uniform(n, 2, 0.10, score, 300, 0.005, 60, &mut rng);
            let mut ok = 0;
            for _ in 0..args.trials {
                let target = random_couplings(n, 1, &mut rng)[0];
                let exec = ambient_executor_uniform(n, 0.10, &[(target, 0.35)], &mut rng);
                let mut shot = ShotSampled::new(exec, rng.gen());
                let protocol =
                    SingleFaultProtocol::new(n, 2, threshold.max(1e-3), 300).with_score(score);
                if protocol.diagnose(&mut shot).diagnosis == Diagnosis::Fault(target) {
                    ok += 1;
                }
            }
            ok as f64 / args.trials as f64
        };
        let p_exact = identify(ScoreMode::ExactTarget);
        let p_pop = identify(ScoreMode::WorstQubit);
        t1.row([
            n.to_string(),
            f3(itqc_math::stats::mean(&exact_scores)),
            f3(itqc_math::stats::mean(&pop_scores)),
            f3(p_exact),
            f3(p_pop),
        ]);
    }
    println!("{}", t1.render());
    println!(
        "the exact-string statistic collapses with class size (couplings multiply);\n\
         the population statistic keeps contrast — the forced substitution of\n\
         DESIGN.md §3.1b.\n"
    );

    // ------------------------------------------------------------------
    section("ablation 2+3: disambiguation policy on syndrome collisions (N=8, 2 faults)");
    let mut t2 =
        Table::new(["workload", "plain", "greedy peel", "ranked", "interrogate", "set-cover"]);
    let policies: [(usize, DecoderPolicy); 5] = [
        (0, DecoderPolicy::Greedy),
        (4, DecoderPolicy::Greedy),
        (4, DecoderPolicy::Ranked),
        (4, DecoderPolicy::Interrogate),
        (4, DecoderPolicy::SetCoverFallback),
    ];
    for (name, u1, u2) in
        [("spread faults (0.40, 0.20)", 0.40, 0.20), ("equal faults (0.30, 0.30)", 0.30, 0.30)]
    {
        let mut cells = vec![name.to_string()];
        for (retunes, policy) in policies {
            let mut rng =
                SmallRng::seed_from_u64(args.seed_for(&format!("ab2/{name}/{retunes}/{policy}")));
            let mut ok = 0;
            for _ in 0..args.trials {
                let faults = random_couplings(8, 2, &mut rng);
                let mut exec =
                    ExactExecutor::new(8).with_fault(faults[0], u1).with_fault(faults[1], u2);
                let config = MultiFaultConfig {
                    // 8-MS amplification is needed for the 20% fault;
                    // magnitude separation catches the 40% one at 4-MS
                    // before its 8-MS alias window (footnote 8).
                    reps_ladder: vec![2, 4, 8],
                    threshold: 0.5,
                    canary_threshold: 0.5,
                    shots: 1,
                    canary_shots: 1,
                    max_faults: 4,
                    decoder: policy,
                    ranked_sigma: itqc_core::threshold::observation_sigma(0, 0.0, 4),
                    score: ScoreMode::ExactTarget,
                    canary_score: ScoreMode::WorstQubit,
                    max_threshold_retunes: retunes,
                    fusion_rounds: 2,
                    fault_magnitude: 0.10,
                    canary_rotations: 0,
                    canary_seed: 0,
                };
                let report = diagnose_all(&mut exec, 8, &config);
                let mut truth = faults.clone();
                truth.sort();
                if report.couplings() == truth {
                    ok += 1;
                }
            }
            cells.push(pct(ok as f64 / args.trials as f64));
        }
        t2.row(cells);
    }
    println!("{}", t2.render());
    println!(
        "'greedy peel' implements Fig. 5's threshold adjustment; 'ranked' replaces\n\
         it with the likelihood-ranked evidence-fusion decoder (the reproduction\n\
         default); 'interrogate' and the set-cover fallback are this workspace's\n\
         extensions that point-test disputed members (targeted) or every\n\
         implicated coupling (exhaustive).\n"
    );

    // ------------------------------------------------------------------
    section("ablation 4: canary shot budget (8 qubits, 25% fault)");
    let mut t4 = Table::new(["canary shots", "P(canary trips)", "canary cost (s, 11q model)"]);
    let timing = itqc_trap::TimingModel::paper_defaults();
    for shots in [10usize, 30, 100, 300] {
        let mut rng = SmallRng::seed_from_u64(args.seed_for(&format!("ab4/{shots}")));
        let space = LabelSpace::new(8);
        let all = space.all_couplings();
        let mut trips = 0;
        for _ in 0..args.trials {
            let target = random_couplings(8, 1, &mut rng)[0];
            let exec = ambient_executor_uniform(8, 0.03, &[(target, 0.25)], &mut rng);
            let mut shot = ShotSampled::new(exec, rng.gen());
            use itqc_core::TestExecutor;
            let spec = TestSpec::for_couplings("canary", &all, 4).with_score(ScoreMode::WorstQubit);
            if shot.run_test(&spec, shots) < 0.6 {
                trips += 1;
            }
        }
        let cost = timing.shots(11, all.len() * 4, 0, shots);
        t4.row([shots.to_string(), pct(trips as f64 / args.trials as f64), format!("{cost:.2}")]);
    }
    println!("{}", t4.render());
    println!(
        "a few dozen shots suffice for the tripwire — the basis for the cheap\n\
         per-minute canary in the duty-cycle studies."
    );
}
