//! Randomized benchmarking on the virtual machine (paper §II-B).
//!
//! The paper's background section describes RB as the standard integrated
//! benchmark ("a random sequence of gates drawn from a restricted set"),
//! quoting ~99.5% single-qubit fidelity for its machine. This harness runs
//! single-qubit RB at three rotation-noise levels and reports the fitted
//! error per Clifford — including one level tuned to land near the paper's
//! quoted 99.5%.

use itqc_bench::output::{f3, section, Table};
use itqc_bench::Args;
use itqc_trap::rb::{single_qubit_rb, RbConfig};
use itqc_trap::{TrapConfig, VirtualTrap};

fn main() {
    let args = Args::parse(8);
    section("single-qubit randomized benchmarking (paper SII-B)");

    let mut summary = Table::new([
        "rotation noise (rad)",
        "fitted decay p",
        "error per Clifford",
        "implied 1q fidelity",
    ]);
    for sigma in [0.02f64, 0.10, 0.20] {
        let mut cfg = TrapConfig::ideal(2, args.seed_for(&format!("rb/{sigma}")));
        cfg.one_qubit_jitter_std = sigma;
        let mut trap = VirtualTrap::new(cfg);
        let rb_config = RbConfig {
            qubit: 0,
            lengths: vec![1, 2, 4, 8, 16, 32, 64],
            sequences_per_length: args.trials.max(4),
            shots: 300,
            seed: args.seed_for(&format!("rb/seq/{sigma}")),
        };
        let result = single_qubit_rb(&mut trap, &rb_config);
        println!("sigma = {sigma}: survival by sequence length");
        let mut t = Table::new(["m", "survival"]);
        for (m, f) in result.lengths.iter().zip(&result.survival) {
            t.row([m.to_string(), f3(*f)]);
        }
        println!("{}", t.render());
        summary.row([
            format!("{sigma}"),
            f3(result.decay_p),
            format!("{:.4}", result.error_per_clifford),
            f3(1.0 - result.error_per_clifford),
        ]);
    }
    section("summary");
    println!("{}", summary.render());
    println!(
        "paper reference: single-qubit gate fidelity ~99.5% — matched by the\n\
         low-noise row; RB error grows quadratically with rotation noise as\n\
         expected for coherent angle jitter."
    );
}
