//! Randomized benchmarking on the virtual machine (paper §II-B).
//!
//! The paper's background section describes RB as the standard integrated
//! benchmark ("a random sequence of gates drawn from a restricted set"),
//! quoting ~99.5% single-qubit fidelity for its machine. This harness runs
//! single-qubit RB at three rotation-noise levels and reports the fitted
//! error per Clifford — including one level tuned to land near the paper's
//! quoted 99.5%.
//!
//! The RB sweep lives in [`itqc_bench::rb_stats`], shared with the tier-2
//! regression suite; the noise levels run on the parallel trial engine,
//! so stdout is byte-identical at any `--threads` value.

use itqc_bench::output::{f3, section, Table};
use itqc_bench::rb_stats::rb_summary;
use itqc_bench::Args;

fn main() {
    let args = Args::parse(8);
    section("single-qubit randomized benchmarking (paper SII-B)");
    eprintln!("[rb] running on {} thread(s)", args.threads());

    let rows = rb_summary(args.seed_for("rb"), args.trials, 300, args.threads);
    let mut summary = Table::new([
        "rotation noise (rad)",
        "fitted decay p",
        "error per Clifford",
        "implied 1q fidelity",
    ]);
    for row in &rows {
        println!("sigma = {}: survival by sequence length", row.sigma);
        let mut t = Table::new(["m", "survival"]);
        for (m, f) in row.result.lengths.iter().zip(&row.result.survival) {
            t.row([m.to_string(), f3(*f)]);
        }
        println!("{}", t.render());
        summary.row([
            format!("{}", row.sigma),
            f3(row.result.decay_p),
            format!("{:.4}", row.result.error_per_clifford),
            f3(1.0 - row.result.error_per_clifford),
        ]);
    }
    section("summary");
    println!("{}", summary.render());
    println!(
        "paper reference: single-qubit gate fidelity ~99.5% — matched by the\n\
         low-noise row; RB error grows quadratically with rotation noise as\n\
         expected for coherent angle jitter."
    );
}
