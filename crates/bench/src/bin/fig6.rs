//! Fig. 6 — single-output tests with artificially introduced errors.
//!
//! On an 8-qubit machine, 47% and 22% under-rotations are injected on
//! couplings {0,4} and {0,7} (the paper's §VI experiment). The full
//! first-round battery runs at 2-MS and 4-MS depth; fidelity thresholds of
//! 0.45 / 0.25 separate faulty from healthy tests. Panel A is the exact
//! unitary-error simulation, panel B the 300-shot "experiment" on the
//! virtual machine (10% random amplitude errors on all two-qubit gates, as
//! in the paper's simulator).

use itqc_bench::output::{f3, section, Table};
use itqc_bench::Args;
use itqc_circuit::Coupling;
use itqc_core::{first_round_classes, LabelSpace, TestSpec};
use itqc_math::stats::Histogram;
use itqc_trap::{Activity, TrapConfig, VirtualTrap};
use std::collections::BTreeSet;

const N: usize = 8;
const FAULTS: [(usize, usize, f64); 2] = [(0, 4, 0.47), (0, 7, 0.22)];
const THRESH_2MS: f64 = 0.45;
const THRESH_4MS: f64 = 0.25;

fn build_trap(seed: u64, jitter: f64) -> VirtualTrap {
    let mut cfg = TrapConfig::ideal(N, seed);
    cfg.amplitude_jitter_std = jitter;
    let mut trap = VirtualTrap::new(cfg);
    for (a, b, u) in FAULTS {
        trap.inject_fault(Coupling::new(a, b), u);
    }
    trap
}

fn main() {
    let args = Args::parse(1);
    section("Fig. 6: tests with artificial 47% ({0,4}) and 22% ({0,7}) under-rotations");

    // The paper's simulator uses 10% random amplitude errors per gate.
    let jitter = 0.10 * (std::f64::consts::PI / 2.0).sqrt();
    let space = LabelSpace::new(N);
    let classes = first_round_classes(&space);
    let none = BTreeSet::new();

    for (panel, shots, label) in [
        ("A (simulation, exact)", 200_000usize, "exact fidelity"),
        ("B (experiment, 300 shots)", 300usize, "300-shot estimate"),
    ] {
        section(&format!("panel {panel}: {label}"));
        let mut trap = build_trap(args.seed_for(panel), jitter);
        let mut table = Table::new(["test", "couplings", "2MS fid", "2MS", "4MS fid", "4MS"]);
        let mut hist2 = Histogram::new(0.0, 1.0, 10);
        let mut hist4 = Histogram::new(0.0, 1.0, 10);
        for class in &classes {
            let couplings = class.couplings(&space, &none);
            let mut cells = vec![format!("{class}"), couplings.len().to_string()];
            for (reps, threshold, hist) in
                [(2usize, THRESH_2MS, &mut hist2), (4usize, THRESH_4MS, &mut hist4)]
            {
                let spec = TestSpec::for_couplings(format!("{class}"), &couplings, reps);
                let hits = trap.run_xx_test(&spec.gates, spec.target, shots, Activity::Testing);
                let f = hits as f64 / shots as f64;
                hist.add(f);
                let verdict = if f < threshold { "FAIL" } else { "pass" };
                cells.push(f3(f));
                cells.push(verdict.to_string());
            }
            table.row(cells);
        }
        println!("{}", table.render());
        println!("2-MS fidelity histogram (threshold {THRESH_2MS}):");
        println!("{}", hist2.render(30));
        println!("4-MS fidelity histogram (threshold {THRESH_4MS}):");
        println!("{}", hist4.render(30));
        if args.csv {
            println!("{}", table.to_csv());
        }
    }

    println!(
        "reading the syndromes: {{0,4}} shares bits 0 and 1 -> classes (0,0) and\n\
         (1,0) fail; {{0,7}} is bit-complementary -> invisible to round 1 (the\n\
         single-fault protocol's adaptive round finds it — see the quickstart\n\
         example). Paper thresholds 0.45 / 0.25 separate faulty from healthy\n\
         tests in both panels."
    );
}
