//! Fig. 6 — single-output tests with artificially introduced errors.
//!
//! On an 8-qubit machine, 47% and 22% under-rotations are injected on
//! couplings {0,4} and {0,7} (the paper's §VI experiment). The full
//! first-round battery runs at 2-MS and 4-MS depth; fidelity thresholds of
//! 0.45 / 0.25 separate faulty from healthy tests. Panel A is the
//! high-statistics simulation, panel B the 300-shot "experiment" on the
//! virtual machine (10% random amplitude errors on all two-qubit gates, as
//! in the paper's simulator).
//!
//! The battery itself lives in [`itqc_bench::single_output`], shared with
//! the tier-2 statistical regression suite; every (class, depth) cell runs
//! on the parallel trial engine, so stdout is byte-identical at any
//! `--threads` value.

use itqc_bench::output::{f3, section, Table};
use itqc_bench::single_output::{fig6_battery, fig6_jitter, FIG6_THRESH_2MS, FIG6_THRESH_4MS};
use itqc_bench::Args;
use itqc_math::stats::Histogram;

fn main() {
    let args = Args::parse(1);
    section("Fig. 6: tests with artificial 47% ({0,4}) and 22% ({0,7}) under-rotations");
    eprintln!("[fig6] running on {} thread(s)", args.threads());

    let jitter = fig6_jitter();
    for (panel, shots, label) in [
        ("A (simulation, exact)", 200_000usize, "exact fidelity"),
        ("B (experiment, 300 shots)", 300usize, "300-shot estimate"),
    ] {
        section(&format!("panel {panel}: {label}"));
        let rows = fig6_battery(args.seed_for(panel), shots, jitter, args.threads);
        let mut table = Table::new(["test", "couplings", "2MS fid", "2MS", "4MS fid", "4MS"]);
        let mut hist2 = Histogram::new(0.0, 1.0, 10);
        let mut hist4 = Histogram::new(0.0, 1.0, 10);
        for row in &rows {
            let (fail2, fail4) = row.verdicts();
            hist2.add(row.fid2);
            hist4.add(row.fid4);
            table.row([
                format!("{}", row.class),
                row.couplings.to_string(),
                f3(row.fid2),
                if fail2 { "FAIL" } else { "pass" }.to_string(),
                f3(row.fid4),
                if fail4 { "FAIL" } else { "pass" }.to_string(),
            ]);
        }
        println!("{}", table.render());
        println!("2-MS fidelity histogram (threshold {FIG6_THRESH_2MS}):");
        println!("{}", hist2.render(30));
        println!("4-MS fidelity histogram (threshold {FIG6_THRESH_4MS}):");
        println!("{}", hist4.render(30));
        if args.csv {
            println!("{}", table.to_csv());
        }
    }

    println!(
        "reading the syndromes: {{0,4}} shares bits 0 and 1 -> classes (0,0) and\n\
         (1,0) fail; {{0,7}} is bit-complementary -> invisible to round 1 (the\n\
         single-fault protocol's adaptive round finds it — see the quickstart\n\
         example). Paper thresholds 0.45 / 0.25 separate faulty from healthy\n\
         tests in both panels."
    );
}
