//! Fig. 2 — the duty cycle of a commercial ion-trap QC.
//!
//! Simulates 24 hours of operation under two maintenance policies and
//! reports the duty-cycle split:
//!
//! * **Periodic full recalibration** (the contemporary practice of Fig. 2):
//!   every coupling is re-characterised and recalibrated on a fixed cadence
//!   → roughly half the wall clock goes to test + calibration (the paper
//!   measures 53% jobs / 47% maintenance).
//! * **Test-driven recalibration** (this paper): a cheap canary runs every
//!   minute; on failure the log-many-test diagnosis runs and only the
//!   diagnosed couplings are recalibrated.
//!
//! The policy implementations live in [`itqc_bench::duty_cycle`], shared
//! with the tier-2 statistical regression suite.

use itqc_bench::duty_cycle::{
    jobs_share_excluding_idle, mean_duty, periodic_policy, test_driven_policy,
};
use itqc_bench::output::{pct, section, Table};
use itqc_bench::Args;

fn main() {
    let args = Args::parse(8);
    section("Fig. 2: duty cycle of an 11-qubit ion-trap QC over 24 h");
    // The thread count goes to stderr so stdout is byte-identical at
    // any `--threads` value.
    println!("(mean over {} simulated machine-days per policy)\n", args.trials);
    eprintln!("[fig2] running on {} thread(s)", args.threads());

    let periodic = mean_duty(
        args.threads,
        args.trials,
        |t| args.seed_for(&format!("fig2/periodic/trial{t}")),
        |seed| periodic_policy(seed, 5.0),
    );
    let driven = mean_duty(
        args.threads,
        args.trials,
        |t| args.seed_for(&format!("fig2/driven/trial{t}")),
        test_driven_policy,
    );

    let mut t = Table::new(["policy", "jobs", "testing", "calibration", "adaptation", "idle"]);
    for (name, secs) in [("periodic full recal", &periodic), ("test-driven (ours)", &driven)] {
        let total: f64 = secs.iter().sum();
        let mut cells = vec![name.to_string()];
        cells.extend(secs.iter().map(|&s| pct(s / total)));
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "paper reference (Fig. 2): ~53% jobs / ~47% test+calibration for the\n\
         contemporary periodic-recalibration policy; the paper's strategy\n\
         shrinks the maintenance share by testing first and recalibrating\n\
         only diagnosed couplings."
    );
    for (name, secs) in [("periodic", &periodic), ("test-driven", &driven)] {
        // The helper returns 0 for an all-idle day (nothing to report).
        let jobs = jobs_share_excluding_idle(secs);
        if jobs > 0.0 {
            println!(
                "{name} policy, excluding idle: jobs {} / maintenance {}",
                pct(jobs),
                pct(1.0 - jobs),
            );
        }
    }
    if args.csv {
        println!("\n{}", t.to_csv());
    }
}
