//! Fig. 2 — the duty cycle of a commercial ion-trap QC.
//!
//! Simulates 24 hours of operation under two maintenance policies and
//! reports the duty-cycle split:
//!
//! * **Periodic full recalibration** (the contemporary practice of Fig. 2):
//!   every coupling is re-characterised and recalibrated on a fixed cadence
//!   → roughly half the wall clock goes to test + calibration (the paper
//!   measures 53% jobs / 47% maintenance).
//! * **Test-driven recalibration** (this paper): a cheap canary runs every
//!   minute; on failure the log-many-test diagnosis runs and only the
//!   diagnosed couplings are recalibrated.

use itqc_bench::output::{pct, section, Table};
use itqc_bench::{par_map, Args};
use itqc_core::cost::CostModel;
use itqc_core::{diagnose_all, MultiFaultConfig};
use itqc_faults::drift::JumpDrift;
use itqc_faults::drift::OrnsteinUhlenbeckDrift;
use itqc_trap::{Activity, TrapConfig, VirtualTrap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: usize = 11;
const HOURS: f64 = 24.0;
const JOB_SECONDS: f64 = 30.0; // one customer batch between maintenance slots

fn drift() -> JumpDrift {
    JumpDrift {
        base: OrnsteinUhlenbeckDrift { tau_minutes: 240.0, sigma: 0.03 },
        jumps_per_minute: 0.0006, // ~2 large faults per machine-day across 55 couplings
        jump_scale: 0.30,
    }
}

/// Policy A: full point-check characterisation + recalibration of every
/// coupling every `cadence_min` minutes.
fn periodic_policy(seed: u64, cadence_min: f64) -> VirtualTrap {
    let mut trap = VirtualTrap::new(TrapConfig::ideal(N, seed));
    let model = CostModel::paper_defaults();
    let d = drift();
    let mut t = 0.0;
    while t < HOURS * 60.0 {
        // Jobs until the next maintenance slot (drift accrues while the
        // machine works; the time is billed to jobs, not idle).
        let mut job_t = 0.0;
        while job_t < cadence_min {
            trap.bill_job_time(JOB_SECONDS);
            trap.apply_drift(JOB_SECONDS / 60.0, &d);
            job_t += JOB_SECONDS / 60.0;
        }
        // Full characterisation of all couplings (billed as testing) plus
        // recalibration of each.
        let check = model.point_check_time(N);
        trap.bill_test_time(check);
        for c in trap.couplings() {
            trap.recalibrate(c);
        }
        t += cadence_min + check / 60.0;
    }
    trap
}

/// Policy B: canary every minute; full diagnosis + targeted recalibration
/// when it trips.
fn test_driven_policy(seed: u64) -> VirtualTrap {
    let mut trap = VirtualTrap::new(TrapConfig::ideal(N, seed));
    let d = drift();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
    let config = MultiFaultConfig {
        reps_ladder: vec![2, 4],
        threshold: 0.5,
        canary_threshold: 0.4,
        shots: 300,
        canary_shots: 30,
        max_faults: 6,
        use_cover_fallback: true,
        score: itqc_core::testplan::ScoreMode::ExactTarget,
        canary_score: itqc_core::testplan::ScoreMode::ExactTarget,
        max_threshold_retunes: 4,
        fault_magnitude: 0.10,
    };
    let mut minutes = 0.0;
    while minutes < HOURS * 60.0 {
        // One minute of jobs (drift accrues during them)…
        for _ in 0..2 {
            trap.bill_job_time(JOB_SECONDS);
        }
        trap.apply_drift(1.0, &d);
        minutes += 1.0;
        // …then the canary (rolled into diagnose_all's first test).
        let report = diagnose_all(&mut trap, N, &config);
        for dfault in &report.diagnosed {
            trap.recalibrate(dfault.coupling);
        }
        // Occasional deliberate spot audit keeps the comparison fair.
        if rng.gen::<f64>() < 0.001 {
            let _ = trap.snapshot_under_rotations(100);
        }
    }
    trap
}

/// Mean seconds per activity (in `Activity::ALL` order) over `trials`
/// independent simulated days, run on the parallel trial engine. Each
/// trial owns its seed, so the result is identical at any `--threads`
/// count.
fn mean_duty(
    args: &Args,
    tag: &str,
    run: impl Fn(u64) -> VirtualTrap + Sync,
) -> [f64; Activity::ALL.len()] {
    let traps =
        par_map(args.threads, args.trials, |t| run(args.seed_for(&format!("{tag}/trial{t}"))));
    let mut mean = [0.0f64; Activity::ALL.len()];
    for trap in &traps {
        let d = trap.duty();
        for (acc, &a) in mean.iter_mut().zip(Activity::ALL.iter()) {
            *acc += d.seconds(a) / traps.len() as f64;
        }
    }
    mean
}

fn main() {
    let args = Args::parse(8);
    section("Fig. 2: duty cycle of an 11-qubit ion-trap QC over 24 h");
    // The thread count goes to stderr so stdout is byte-identical at
    // any `--threads` value.
    println!("(mean over {} simulated machine-days per policy)\n", args.trials);
    eprintln!("[fig2] running on {} thread(s)", args.threads());

    let periodic = mean_duty(&args, "fig2/periodic", |seed| periodic_policy(seed, 5.0));
    let driven = mean_duty(&args, "fig2/driven", test_driven_policy);

    let mut t = Table::new(["policy", "jobs", "testing", "calibration", "adaptation", "idle"]);
    for (name, secs) in [("periodic full recal", &periodic), ("test-driven (ours)", &driven)] {
        let total: f64 = secs.iter().sum();
        let mut cells = vec![name.to_string()];
        cells.extend(secs.iter().map(|&s| pct(s / total)));
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "paper reference (Fig. 2): ~53% jobs / ~47% test+calibration for the\n\
         contemporary periodic-recalibration policy; the paper's strategy\n\
         shrinks the maintenance share by testing first and recalibrating\n\
         only diagnosed couplings."
    );
    let pos = |a: Activity| Activity::ALL.iter().position(|&x| x == a).unwrap();
    for (name, secs) in [("periodic", &periodic), ("test-driven", &driven)] {
        let jobs = secs[pos(Activity::Jobs)];
        let nonidle: f64 = secs.iter().sum::<f64>() - secs[pos(Activity::Idle)];
        if nonidle > 0.0 {
            println!(
                "{name} policy, excluding idle: jobs {} / maintenance {}",
                pct(jobs / nonidle),
                pct(1.0 - jobs / nonidle),
            );
        }
    }
    if args.csv {
        println!("\n{}", t.to_csv());
    }
}
