//! Fig. 3 — infidelity of concatenated MS sequences, echoed vs
//! non-echoed, for the {3,8} and {0,10} qubit pairs of an 11-ion chain.
//!
//! In a non-echoed sequence every MS gate has the same beam phases, so a
//! deterministic calibration error accumulates coherently (infidelity
//! grows ~quadratically in gate count). In an echoed sequence the phase of
//! one ion's drive shifts by π on every successive gate, reversing the XX
//! rotation and cancelling deterministic amplitude errors pairwise —
//! leaving only stochastic noise (slow, ~linear growth). Pair-dependent
//! noise levels are derived from the 11-ion chain's mode structure via the
//! paper's Eq. (1).

use itqc_bench::output::{f3, section, Table};
use itqc_bench::{par_trials, Args};
use itqc_circuit::Circuit;
use itqc_circuit::Coupling;
use itqc_faults::models::CouplingFault;
use itqc_faults::phase_noise::OneOverF;
use itqc_faults::IonTrapNoise;
use itqc_sim::trajectory::run_trajectory;
use itqc_sim::{run, StateVector};
use itqc_trap::chain::{eq1_fidelity_for_pair, IonChain, PulseSegment};
use rand::rngs::SmallRng;
use std::f64::consts::{FRAC_PI_2, PI};

/// Builds the K-gate sequence on a 2-qubit register; `echoed` shifts one
/// ion's phase by π on every other gate.
fn sequence(k: usize, echoed: bool) -> Circuit {
    let mut c = Circuit::new(2);
    for g in 0..k {
        let phi1 = if echoed && g % 2 == 1 { PI } else { 0.0 };
        c.ms(0, 1, FRAC_PI_2, phi1, 0.0);
    }
    c
}

/// Average infidelity of the noisy sequence against its ideal output.
fn infidelity(
    k: usize,
    echoed: bool,
    calib_error: f64,
    phase_rms: f64,
    residual_odd: f64,
    trials: usize,
    rng: &mut SmallRng,
) -> f64 {
    let circuit = sequence(k, echoed);
    let ideal: StateVector = run(&circuit);
    let mut model = IonTrapNoise::new()
        .with_coupling_fault(CouplingFault::new(Coupling::new(0, 1), calib_error))
        .with_residual_coupling(residual_odd);
    if phase_rms > 0.0 {
        model = model.with_phase_noise(OneOverF::new(phase_rms, 1.0, 8), 0.2);
    }
    let mut acc = 0.0;
    for _ in 0..trials {
        let noisy = run_trajectory(&circuit, &mut model, rng);
        acc += 1.0 - noisy.fidelity(&ideal);
    }
    acc / trials as f64
}

fn main() {
    let args = Args::parse(200);
    section("Fig. 3: concatenated MS sequences, echoed vs non-echoed (11-ion chain)");

    // Pair-dependent noise magnitudes from the chain physics: the residual
    // bus coupling of each pair follows Eq. (1) with a pulse tuned to the
    // transverse COM mode.
    let chain = IonChain::new(11);
    let anisotropy: f64 = 25.0;
    let omega_com = anisotropy.sqrt();
    let tau = 2.0 * PI / omega_com * 40.0;
    let pulse = [PulseSegment { amplitude: 0.05, duration: tau * 1.004 }];
    let pairs = [(3usize, 8usize), (0usize, 10usize)];
    println!("chain-derived Eq.(1) per-pair residual infidelity:");
    let mut residuals = Vec::new();
    for &(i, j) in &pairs {
        let f = eq1_fidelity_for_pair(&chain, anisotropy, 0.08, &pulse, i, j);
        let odd = (1.0 - f).clamp(0.0, 0.05);
        println!("    pair {{{i},{j}}}: Eq.(1) fidelity {:.4} -> odd-population {:.4}", f, odd);
        residuals.push(odd);
    }
    // Deterministic calibration offsets differ per pair (edge pairs couple
    // to more spectator modes — {0,10} is taken slightly worse, matching
    // the ordering visible in the paper's data).
    let calib = [0.012, 0.020];
    let phase_rms = 0.05;

    let mut table =
        Table::new(["gates", "{3,8} no-echo", "{3,8} echo", "{0,10} no-echo", "{0,10} echo"]);
    let ks: Vec<usize> = (1..=10).map(|x| 2 * x).collect();
    // One work item per (gate count, pair, echo) cell, each with its own
    // seed, dispatched over the parallel trial engine — the table is
    // identical at any `--threads` count.
    let cells: Vec<(usize, usize, bool)> = ks
        .iter()
        .flat_map(|&k| (0..2).flat_map(move |p| [false, true].map(|e| (k, p, e))))
        .collect();
    let infidelities = par_trials(
        args.threads,
        cells.len(),
        |i| {
            let (k, p, echoed) = cells[i];
            args.seed_for(&format!("fig3/k={k}/pair={p}/echo={echoed}"))
        },
        |i, rng| {
            let (k, p, echoed) = cells[i];
            infidelity(k, echoed, calib[p], phase_rms, residuals[p], args.trials, rng)
        },
    );
    for (ki, &k) in ks.iter().enumerate() {
        let mut row = vec![k.to_string()];
        // Cell order per k: pair0 no-echo, pair0 echo, pair1 no-echo, pair1 echo.
        row.extend(infidelities[ki * 4..ki * 4 + 4].iter().map(|&inf| f3(inf)));
        table.row(row);
    }
    println!("\n{}", table.render());
    println!(
        "expected shape (paper): non-echoed infidelity grows coherently\n\
         (~quadratic in gate count); echoed sequences cancel the deterministic\n\
         error and grow slowly; pair {{0,10}} sits above pair {{3,8}}."
    );
    if args.csv {
        println!("\n{}", table.to_csv());
    }
}
