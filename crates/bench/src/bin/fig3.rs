//! Fig. 3 — infidelity of concatenated MS sequences, echoed vs
//! non-echoed, for the {3,8} and {0,10} qubit pairs of an 11-ion chain.
//!
//! In a non-echoed sequence every MS gate has the same beam phases, so a
//! deterministic calibration error accumulates coherently (infidelity
//! grows ~quadratically in gate count). In an echoed sequence the phase of
//! one ion's drive shifts by π on every successive gate, reversing the XX
//! rotation and cancelling deterministic amplitude errors pairwise —
//! leaving only stochastic noise (slow, ~linear growth). Pair-dependent
//! noise levels are derived from the 11-ion chain's mode structure via the
//! paper's Eq. (1).

//! The sequence builder, noise model, and chain-derived residuals live
//! in [`itqc_bench::echo`], shared with the tier-2 statistical
//! regression suite.

use itqc_bench::echo::{chain_residuals, infidelity, FIG3_CALIB, FIG3_PAIRS, FIG3_PHASE_RMS};
use itqc_bench::output::{f3, section, Table};
use itqc_bench::{par_trials, Args};

fn main() {
    let args = Args::parse(200);
    section("Fig. 3: concatenated MS sequences, echoed vs non-echoed (11-ion chain)");

    // Pair-dependent noise magnitudes from the chain physics: the residual
    // bus coupling of each pair follows Eq. (1) with a pulse tuned to the
    // transverse COM mode.
    let residuals = chain_residuals();
    println!("chain-derived Eq.(1) per-pair residual infidelity:");
    for (&(i, j), &odd) in FIG3_PAIRS.iter().zip(residuals.iter()) {
        println!("    pair {{{i},{j}}}: Eq.(1) odd-population {odd:.4}");
    }
    let calib = FIG3_CALIB;
    let phase_rms = FIG3_PHASE_RMS;

    let mut table =
        Table::new(["gates", "{3,8} no-echo", "{3,8} echo", "{0,10} no-echo", "{0,10} echo"]);
    let ks: Vec<usize> = (1..=10).map(|x| 2 * x).collect();
    // One work item per (gate count, pair, echo) cell, each with its own
    // seed, dispatched over the parallel trial engine — the table is
    // identical at any `--threads` count.
    let cells: Vec<(usize, usize, bool)> = ks
        .iter()
        .flat_map(|&k| (0..2).flat_map(move |p| [false, true].map(|e| (k, p, e))))
        .collect();
    let infidelities = par_trials(
        args.threads,
        cells.len(),
        |i| {
            let (k, p, echoed) = cells[i];
            args.seed_for(&format!("fig3/k={k}/pair={p}/echo={echoed}"))
        },
        |i, rng| {
            let (k, p, echoed) = cells[i];
            infidelity(k, echoed, calib[p], phase_rms, residuals[p], args.trials, rng)
        },
    );
    for (ki, &k) in ks.iter().enumerate() {
        let mut row = vec![k.to_string()];
        // Cell order per k: pair0 no-echo, pair0 echo, pair1 no-echo, pair1 echo.
        row.extend(infidelities[ki * 4..ki * 4 + 4].iter().map(|&inf| f3(inf)));
        table.row(row);
    }
    println!("\n{}", table.render());
    println!(
        "expected shape (paper): non-echoed infidelity grows coherently\n\
         (~quadratic in gate count); echoed sequences cancel the deterministic\n\
         error and grow slowly; pair {{0,10}} sits above pair {{3,8}}."
    );
    if args.csv {
        println!("\n{}", table.to_csv());
    }
}
