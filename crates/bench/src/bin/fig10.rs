//! Fig. 10 — speed-up of adaptive and non-adaptive testing over
//! all-couplings point checks, as a function of machine size.
//!
//! Under the paper's assumptions (gate time scaling `(8/N)²` from 0.2 ms,
//! shallow-circuit runtime dominated by preparation + readout, adaptive
//! programs compiled on the fly vs a precompiled non-adaptive family):
//! the adaptive (binary-search) speed-up plateaus around 10³ — the ratio
//! of per-point-check processing to per-coupling compile time — while the
//! non-adaptive protocol's speed-up keeps growing as `N²/log N`.
//!
//! The cost-model sweep lives in [`itqc_bench::speedup`], shared with the
//! tier-2 regression suite and run on the parallel trial engine; stdout
//! is byte-identical at any `--threads` value.

use itqc_bench::output::{section, Table};
use itqc_bench::speedup::fig10_rows;
use itqc_bench::Args;
use itqc_core::cost::CostModel;

fn main() {
    let args = Args::parse(1);
    section("Fig. 10: testing strategy speed-up vs point checks");
    eprintln!("[fig10] running on {} thread(s)", args.threads());

    let rows = fig10_rows(args.threads);
    let mut t = Table::new([
        "qubits",
        "point-check (s)",
        "adaptive (s)",
        "non-adaptive (s)",
        "speedup adaptive",
        "speedup non-adaptive",
    ]);
    for row in &rows {
        t.row([
            row.qubits.to_string(),
            format!("{:.1}", row.point_check_s),
            format!("{:.1}", row.adaptive_s),
            format!("{:.1}", row.non_adaptive_s),
            format!("{:.1}", row.speedup_adaptive),
            format!("{:.1}", row.speedup_non_adaptive),
        ]);
    }
    println!("{}", t.render());

    let m = CostModel::paper_defaults();
    println!("paper reference points:");
    println!(
        "  - 11-qubit machine: full characterisation over a minute ({:.0} s here),\n\
         \u{20}   diagnosis in ~10 s ({:.1} s here)",
        m.point_check_time(11),
        m.non_adaptive_time(11)
    );
    println!(
        "  - adaptive speed-up plateaus near 10^3 (compile-bound): {:.0} at N = 4096",
        m.speedup_adaptive(4096)
    );
    println!(
        "  - non-adaptive speed-up grows ~ N^2/log N: x{:.1} from N = 256 to N = 1024\n\
         \u{20}   (N^2/log N predicts x{:.1})",
        m.speedup_non_adaptive(1024) / m.speedup_non_adaptive(256),
        (1024.0f64 * 1024.0 / 10.0) / (256.0 * 256.0 / 8.0)
    );
    if args.csv {
        println!("\n{}", t.to_csv());
    }
}
