//! Fig. 8 — test contrast and detectability vs under-rotation at scale.
//!
//! For N = 8, 16, 32 qubits and 2-MS / 4-MS tests: one coupling receives a
//! swept under-rotation `u` while every other coupling carries a random
//! ±10% ambient calibration error (the paper's "10% average calibration
//! error" noise floor). Reported per sweep point: the mean worst-qubit
//! score of tests containing the faulty pair vs those not containing it
//! (the paper's solid curves and dashed ambient baselines), and the
//! probability that the full single-fault protocol identifies the planted
//! coupling — with the minimum `u` reaching 95% identification (paper:
//! 2MS ≈ 25/30/35%, 4MS ≈ 20/25/30% for 8/16/32 qubits).
//!
//! The measurement itself lives in `itqc_bench::detectability` on the
//! deterministic parallel trial engine; this binary only renders it.
//! Every shot is a genuine output string drawn through the pluggable
//! simulation-backend subsystem — select the engine with
//! `--backend=dense|analytic|auto` (the analytic engine factorizes each
//! test over its coupling-graph components, which is what makes the
//! 32-qubit sweep minutes-scale; `dense` is the exact cross-check,
//! feasible at N = 8). `--sizes=8,16` restricts the panel sizes (the CI
//! cross-check runs `--sizes=8` under both backends and diffs stdout).

use itqc_bench::detectability::{fig8_curve, fig8_threshold, FIG8_SHOTS};
use itqc_bench::output::{f3, pct, section, Table};
use itqc_bench::Args;

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse(120);
    itqc_bench::metrics::init(&args);
    let sizes: Vec<usize> = std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("--sizes=").map(str::to_owned))
        .map(|v| {
            let parsed: Vec<usize> = v
                .split(',')
                .map(|s| {
                    s.parse().unwrap_or_else(|_| panic!("--sizes: '{s}' is not a machine size"))
                })
                .collect();
            // A silently empty or unmatched selection would print empty
            // tables and exit 0 — vacuously passing the CI cross-check.
            assert!(
                parsed.iter().any(|n| [8, 16, 32, 64, 128].contains(n)),
                "--sizes={v} selects none of the measured sizes 8,16,32,64,128"
            );
            parsed
        })
        .unwrap_or_else(|| vec![8, 16, 32]);
    section("Fig. 8: fault contrast and identification vs under-rotation");
    println!("backend: {}  shots/test: {FIG8_SHOTS}", args.backend);

    let mut summary = Table::new(["qubits", "test", "threshold", "min u @ 95% ident", "paper"]);
    let paper_min = [[(8, 0.25), (16, 0.30), (32, 0.35)], [(8, 0.20), (16, 0.25), (32, 0.30)]];

    for (ri, reps) in [2usize, 4].into_iter().enumerate() {
        // 64 and 128 qubits are beyond-paper sizes (chain-sampled
        // components, common-mode ambient — see itqc_bench::ambient);
        // the default selection stays at the paper's panels.
        for n in [8usize, 16, 32, 64, 128] {
            if !sizes.contains(&n) {
                continue;
            }
            let tag = format!("fig8/n={n}/r={reps}");
            let threshold = {
                let _span = itqc_obs::span::timed("fig8.calibrate");
                fig8_threshold(
                    n,
                    reps,
                    60.max(args.trials / 2),
                    args.threads,
                    args.backend,
                    args.seed_for(&format!("{tag}/threshold")),
                )
            };
            section(&format!("{n} qubits, {reps}-MS tests (threshold {})", f3(threshold)));
            let curve = {
                let _span = itqc_obs::span::timed("fig8.curve");
                fig8_curve(
                    n,
                    reps,
                    threshold,
                    args.trials,
                    args.threads,
                    args.backend,
                    args.seed_for(&tag),
                )
            };

            let mut table =
                Table::new(["under-rot", "faulty-test score", "healthy-test score", "P(identify)"]);
            for p in &curve.points {
                table.row([
                    pct(p.under_rotation),
                    f3(p.faulty_mean),
                    f3(p.healthy_mean),
                    f3(p.p_identify),
                ]);
            }
            println!("{}", table.render());
            if args.csv {
                println!("{}", table.to_csv());
            }
            let paper = paper_min[ri].iter().find(|&&(pn, _)| pn == n).map(|&(_, v)| v);
            summary.row([
                n.to_string(),
                format!("{reps}MS"),
                f3(threshold),
                curve.min_u_at(0.95).map(pct).unwrap_or_else(|| ">50%".into()),
                paper.map(pct).unwrap_or_else(|| "—".into()),
            ]);
        }
    }

    section("summary: minimum under-rotation identified in 95% of cases");
    println!("{}", summary.render());
    println!(
        "expected shape: 4-MS amplifies faults harder than 2-MS (smaller minimum\n\
         detectable under-rotation) and larger machines need larger outliers."
    );
    if args.cost_report {
        let prediction = itqc_bench::cost_report::fig8_prediction(&sizes, args.trials, FIG8_SHOTS);
        itqc_bench::cost_report::emit("fig8", &prediction, started.elapsed());
    }
    itqc_bench::metrics::emit_if_requested("fig8", &args, started.elapsed());
}
